# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_catalog_monitor "/root/repo/build/examples/catalog_monitor")
set_tests_properties(example_catalog_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_version_store "/root/repo/build/examples/version_store")
set_tests_properties(example_version_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_website_snapshot "/root/repo/build/examples/website_snapshot")
set_tests_properties(example_website_snapshot PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_change_statistics "/root/repo/build/examples/change_statistics")
set_tests_properties(example_change_statistics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collaborative_merge "/root/repo/build/examples/collaborative_merge")
set_tests_properties(example_collaborative_merge PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse_crawl "/root/repo/build/examples/warehouse_crawl")
set_tests_properties(example_warehouse_crawl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
