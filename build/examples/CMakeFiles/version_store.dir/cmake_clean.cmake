file(REMOVE_RECURSE
  "CMakeFiles/version_store.dir/version_store.cpp.o"
  "CMakeFiles/version_store.dir/version_store.cpp.o.d"
  "version_store"
  "version_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
