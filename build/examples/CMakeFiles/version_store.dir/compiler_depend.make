# Empty compiler generated dependencies file for version_store.
# This may be replaced when dependencies are built.
