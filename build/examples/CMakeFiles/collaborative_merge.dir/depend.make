# Empty dependencies file for collaborative_merge.
# This may be replaced when dependencies are built.
