file(REMOVE_RECURSE
  "CMakeFiles/collaborative_merge.dir/collaborative_merge.cpp.o"
  "CMakeFiles/collaborative_merge.dir/collaborative_merge.cpp.o.d"
  "collaborative_merge"
  "collaborative_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
