file(REMOVE_RECURSE
  "CMakeFiles/website_snapshot.dir/website_snapshot.cpp.o"
  "CMakeFiles/website_snapshot.dir/website_snapshot.cpp.o.d"
  "website_snapshot"
  "website_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/website_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
