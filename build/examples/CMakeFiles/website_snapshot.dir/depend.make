# Empty dependencies file for website_snapshot.
# This may be replaced when dependencies are built.
