file(REMOVE_RECURSE
  "CMakeFiles/change_statistics.dir/change_statistics.cpp.o"
  "CMakeFiles/change_statistics.dir/change_statistics.cpp.o.d"
  "change_statistics"
  "change_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
