# Empty compiler generated dependencies file for change_statistics.
# This may be replaced when dependencies are built.
