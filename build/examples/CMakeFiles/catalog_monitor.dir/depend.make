# Empty dependencies file for catalog_monitor.
# This may be replaced when dependencies are built.
