file(REMOVE_RECURSE
  "CMakeFiles/catalog_monitor.dir/catalog_monitor.cpp.o"
  "CMakeFiles/catalog_monitor.dir/catalog_monitor.cpp.o.d"
  "catalog_monitor"
  "catalog_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
