file(REMOVE_RECURSE
  "CMakeFiles/warehouse_crawl.dir/warehouse_crawl.cpp.o"
  "CMakeFiles/warehouse_crawl.dir/warehouse_crawl.cpp.o.d"
  "warehouse_crawl"
  "warehouse_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
