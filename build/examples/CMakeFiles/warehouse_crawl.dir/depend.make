# Empty dependencies file for warehouse_crawl.
# This may be replaced when dependencies are built.
