file(REMOVE_RECURSE
  "CMakeFiles/xydiff_tool.dir/xydiff_tool.cc.o"
  "CMakeFiles/xydiff_tool.dir/xydiff_tool.cc.o.d"
  "xydiff_tool"
  "xydiff_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xydiff_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
