# Empty compiler generated dependencies file for xydiff_tool.
# This may be replaced when dependencies are built.
