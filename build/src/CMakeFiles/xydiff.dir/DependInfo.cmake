
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ladiff.cc" "src/CMakeFiles/xydiff.dir/baseline/ladiff.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/baseline/ladiff.cc.o.d"
  "/root/repo/src/baseline/list_diff.cc" "src/CMakeFiles/xydiff.dir/baseline/list_diff.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/baseline/list_diff.cc.o.d"
  "/root/repo/src/baseline/myers_diff.cc" "src/CMakeFiles/xydiff.dir/baseline/myers_diff.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/baseline/myers_diff.cc.o.d"
  "/root/repo/src/baseline/selkow.cc" "src/CMakeFiles/xydiff.dir/baseline/selkow.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/baseline/selkow.cc.o.d"
  "/root/repo/src/baseline/zhang_shasha.cc" "src/CMakeFiles/xydiff.dir/baseline/zhang_shasha.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/baseline/zhang_shasha.cc.o.d"
  "/root/repo/src/core/buld.cc" "src/CMakeFiles/xydiff.dir/core/buld.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/buld.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/xydiff.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/delta_builder.cc" "src/CMakeFiles/xydiff.dir/core/delta_builder.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/delta_builder.cc.o.d"
  "/root/repo/src/core/diff_tree.cc" "src/CMakeFiles/xydiff.dir/core/diff_tree.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/diff_tree.cc.o.d"
  "/root/repo/src/core/lcs.cc" "src/CMakeFiles/xydiff.dir/core/lcs.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/lcs.cc.o.d"
  "/root/repo/src/core/match_ids.cc" "src/CMakeFiles/xydiff.dir/core/match_ids.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/match_ids.cc.o.d"
  "/root/repo/src/core/propagate.cc" "src/CMakeFiles/xydiff.dir/core/propagate.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/propagate.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/CMakeFiles/xydiff.dir/core/signature.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/core/signature.cc.o.d"
  "/root/repo/src/delta/apply.cc" "src/CMakeFiles/xydiff.dir/delta/apply.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/apply.cc.o.d"
  "/root/repo/src/delta/compose.cc" "src/CMakeFiles/xydiff.dir/delta/compose.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/compose.cc.o.d"
  "/root/repo/src/delta/delta.cc" "src/CMakeFiles/xydiff.dir/delta/delta.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/delta.cc.o.d"
  "/root/repo/src/delta/delta_xml.cc" "src/CMakeFiles/xydiff.dir/delta/delta_xml.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/delta_xml.cc.o.d"
  "/root/repo/src/delta/invert.cc" "src/CMakeFiles/xydiff.dir/delta/invert.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/invert.cc.o.d"
  "/root/repo/src/delta/merge.cc" "src/CMakeFiles/xydiff.dir/delta/merge.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/merge.cc.o.d"
  "/root/repo/src/delta/summary.cc" "src/CMakeFiles/xydiff.dir/delta/summary.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/summary.cc.o.d"
  "/root/repo/src/delta/validate.cc" "src/CMakeFiles/xydiff.dir/delta/validate.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/delta/validate.cc.o.d"
  "/root/repo/src/monitor/change_stats.cc" "src/CMakeFiles/xydiff.dir/monitor/change_stats.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/monitor/change_stats.cc.o.d"
  "/root/repo/src/monitor/index.cc" "src/CMakeFiles/xydiff.dir/monitor/index.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/monitor/index.cc.o.d"
  "/root/repo/src/monitor/subscription.cc" "src/CMakeFiles/xydiff.dir/monitor/subscription.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/monitor/subscription.cc.o.d"
  "/root/repo/src/simulator/change_simulator.cc" "src/CMakeFiles/xydiff.dir/simulator/change_simulator.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/simulator/change_simulator.cc.o.d"
  "/root/repo/src/simulator/doc_generator.cc" "src/CMakeFiles/xydiff.dir/simulator/doc_generator.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/simulator/doc_generator.cc.o.d"
  "/root/repo/src/simulator/web_corpus.cc" "src/CMakeFiles/xydiff.dir/simulator/web_corpus.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/simulator/web_corpus.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/xydiff.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/util/hash.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/xydiff.dir/util/random.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xydiff.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/xydiff.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/util/string_util.cc.o.d"
  "/root/repo/src/version/repository.cc" "src/CMakeFiles/xydiff.dir/version/repository.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/version/repository.cc.o.d"
  "/root/repo/src/version/site_diff.cc" "src/CMakeFiles/xydiff.dir/version/site_diff.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/version/site_diff.cc.o.d"
  "/root/repo/src/version/storage.cc" "src/CMakeFiles/xydiff.dir/version/storage.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/version/storage.cc.o.d"
  "/root/repo/src/version/warehouse.cc" "src/CMakeFiles/xydiff.dir/version/warehouse.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/version/warehouse.cc.o.d"
  "/root/repo/src/xid/xid_map.cc" "src/CMakeFiles/xydiff.dir/xid/xid_map.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xid/xid_map.cc.o.d"
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/xydiff.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/CMakeFiles/xydiff.dir/xml/dtd.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/dtd.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xydiff.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xydiff.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/path.cc" "src/CMakeFiles/xydiff.dir/xml/path.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/path.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xydiff.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xydiff.dir/xml/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
