# Empty compiler generated dependencies file for xydiff.
# This may be replaced when dependencies are built.
