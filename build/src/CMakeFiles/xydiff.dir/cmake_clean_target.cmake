file(REMOVE_RECURSE
  "libxydiff.a"
)
