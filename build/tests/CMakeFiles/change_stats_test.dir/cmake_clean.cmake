file(REMOVE_RECURSE
  "CMakeFiles/change_stats_test.dir/change_stats_test.cc.o"
  "CMakeFiles/change_stats_test.dir/change_stats_test.cc.o.d"
  "change_stats_test"
  "change_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
