# Empty compiler generated dependencies file for change_stats_test.
# This may be replaced when dependencies are built.
