file(REMOVE_RECURSE
  "CMakeFiles/delta_example_test.dir/delta_example_test.cc.o"
  "CMakeFiles/delta_example_test.dir/delta_example_test.cc.o.d"
  "delta_example_test"
  "delta_example_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
