# Empty dependencies file for delta_example_test.
# This may be replaced when dependencies are built.
