file(REMOVE_RECURSE
  "CMakeFiles/delta_xml_test.dir/delta_xml_test.cc.o"
  "CMakeFiles/delta_xml_test.dir/delta_xml_test.cc.o.d"
  "delta_xml_test"
  "delta_xml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
