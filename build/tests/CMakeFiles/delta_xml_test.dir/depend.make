# Empty dependencies file for delta_xml_test.
# This may be replaced when dependencies are built.
