file(REMOVE_RECURSE
  "CMakeFiles/apply_test.dir/apply_test.cc.o"
  "CMakeFiles/apply_test.dir/apply_test.cc.o.d"
  "apply_test"
  "apply_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
