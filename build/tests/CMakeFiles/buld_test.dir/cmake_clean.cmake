file(REMOVE_RECURSE
  "CMakeFiles/buld_test.dir/buld_test.cc.o"
  "CMakeFiles/buld_test.dir/buld_test.cc.o.d"
  "buld_test"
  "buld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
