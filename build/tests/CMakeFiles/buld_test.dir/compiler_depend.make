# Empty compiler generated dependencies file for buld_test.
# This may be replaced when dependencies are built.
