# Empty compiler generated dependencies file for invert_test.
# This may be replaced when dependencies are built.
