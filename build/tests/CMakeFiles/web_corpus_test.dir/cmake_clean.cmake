file(REMOVE_RECURSE
  "CMakeFiles/web_corpus_test.dir/web_corpus_test.cc.o"
  "CMakeFiles/web_corpus_test.dir/web_corpus_test.cc.o.d"
  "web_corpus_test"
  "web_corpus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
