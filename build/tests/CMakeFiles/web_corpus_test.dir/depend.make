# Empty dependencies file for web_corpus_test.
# This may be replaced when dependencies are built.
