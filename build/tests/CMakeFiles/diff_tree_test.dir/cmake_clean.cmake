file(REMOVE_RECURSE
  "CMakeFiles/diff_tree_test.dir/diff_tree_test.cc.o"
  "CMakeFiles/diff_tree_test.dir/diff_tree_test.cc.o.d"
  "diff_tree_test"
  "diff_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
