# Empty dependencies file for diff_tree_test.
# This may be replaced when dependencies are built.
