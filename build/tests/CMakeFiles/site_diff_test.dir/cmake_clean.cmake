file(REMOVE_RECURSE
  "CMakeFiles/site_diff_test.dir/site_diff_test.cc.o"
  "CMakeFiles/site_diff_test.dir/site_diff_test.cc.o.d"
  "site_diff_test"
  "site_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
