# Empty dependencies file for site_diff_test.
# This may be replaced when dependencies are built.
