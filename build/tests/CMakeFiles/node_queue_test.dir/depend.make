# Empty dependencies file for node_queue_test.
# This may be replaced when dependencies are built.
