file(REMOVE_RECURSE
  "CMakeFiles/node_queue_test.dir/node_queue_test.cc.o"
  "CMakeFiles/node_queue_test.dir/node_queue_test.cc.o.d"
  "node_queue_test"
  "node_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
