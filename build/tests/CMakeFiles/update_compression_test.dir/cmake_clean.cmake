file(REMOVE_RECURSE
  "CMakeFiles/update_compression_test.dir/update_compression_test.cc.o"
  "CMakeFiles/update_compression_test.dir/update_compression_test.cc.o.d"
  "update_compression_test"
  "update_compression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
