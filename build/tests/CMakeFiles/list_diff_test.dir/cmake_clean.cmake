file(REMOVE_RECURSE
  "CMakeFiles/list_diff_test.dir/list_diff_test.cc.o"
  "CMakeFiles/list_diff_test.dir/list_diff_test.cc.o.d"
  "list_diff_test"
  "list_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
