# Empty dependencies file for list_diff_test.
# This may be replaced when dependencies are built.
