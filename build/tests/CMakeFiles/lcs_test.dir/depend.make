# Empty dependencies file for lcs_test.
# This may be replaced when dependencies are built.
