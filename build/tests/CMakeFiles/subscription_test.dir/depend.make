# Empty dependencies file for subscription_test.
# This may be replaced when dependencies are built.
