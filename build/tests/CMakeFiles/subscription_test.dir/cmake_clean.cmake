file(REMOVE_RECURSE
  "CMakeFiles/subscription_test.dir/subscription_test.cc.o"
  "CMakeFiles/subscription_test.dir/subscription_test.cc.o.d"
  "subscription_test"
  "subscription_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subscription_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
