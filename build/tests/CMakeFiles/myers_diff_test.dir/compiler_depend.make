# Empty compiler generated dependencies file for myers_diff_test.
# This may be replaced when dependencies are built.
