file(REMOVE_RECURSE
  "CMakeFiles/myers_diff_test.dir/myers_diff_test.cc.o"
  "CMakeFiles/myers_diff_test.dir/myers_diff_test.cc.o.d"
  "myers_diff_test"
  "myers_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myers_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
