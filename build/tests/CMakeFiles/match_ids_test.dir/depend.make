# Empty dependencies file for match_ids_test.
# This may be replaced when dependencies are built.
