file(REMOVE_RECURSE
  "CMakeFiles/match_ids_test.dir/match_ids_test.cc.o"
  "CMakeFiles/match_ids_test.dir/match_ids_test.cc.o.d"
  "match_ids_test"
  "match_ids_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_ids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
