# Empty dependencies file for ladiff_test.
# This may be replaced when dependencies are built.
