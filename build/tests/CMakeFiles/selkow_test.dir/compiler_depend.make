# Empty compiler generated dependencies file for selkow_test.
# This may be replaced when dependencies are built.
