file(REMOVE_RECURSE
  "CMakeFiles/selkow_test.dir/selkow_test.cc.o"
  "CMakeFiles/selkow_test.dir/selkow_test.cc.o.d"
  "selkow_test"
  "selkow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selkow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
