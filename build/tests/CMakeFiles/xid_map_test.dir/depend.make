# Empty dependencies file for xid_map_test.
# This may be replaced when dependencies are built.
