file(REMOVE_RECURSE
  "CMakeFiles/xid_map_test.dir/xid_map_test.cc.o"
  "CMakeFiles/xid_map_test.dir/xid_map_test.cc.o.d"
  "xid_map_test"
  "xid_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xid_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
