file(REMOVE_RECURSE
  "CMakeFiles/bench_repository.dir/bench_repository.cpp.o"
  "CMakeFiles/bench_repository.dir/bench_repository.cpp.o.d"
  "bench_repository"
  "bench_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
