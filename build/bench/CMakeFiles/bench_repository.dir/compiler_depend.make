# Empty compiler generated dependencies file for bench_repository.
# This may be replaced when dependencies are built.
