file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_unixdiff.dir/bench_fig6_unixdiff.cpp.o"
  "CMakeFiles/bench_fig6_unixdiff.dir/bench_fig6_unixdiff.cpp.o.d"
  "bench_fig6_unixdiff"
  "bench_fig6_unixdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_unixdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
