file(REMOVE_RECURSE
  "CMakeFiles/bench_site_snapshot.dir/bench_site_snapshot.cpp.o"
  "CMakeFiles/bench_site_snapshot.dir/bench_site_snapshot.cpp.o.d"
  "bench_site_snapshot"
  "bench_site_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_site_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
