// Catalog monitoring: the paper's §2 motivating scenario. A crawler keeps
// fetching new versions of a product catalog; the diff module computes
// deltas and the Alerter fires subscriptions such as "tell me when a new
// product appears under NewProducts" or "watch every price".
//
// This example wires the Figure-1 pipeline end to end with the change
// simulator standing in for the web.

#include <cstdio>
#include <iostream>

#include "core/buld.h"
#include "monitor/subscription.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;

  // The catalog the warehouse tracks.
  Result<XmlDocument> parsed = ParseXml(R"(<Category>
    <Title>Digital Cameras</Title>
    <Discount>
      <Product status="sale"><Name>tx123</Name><Price>$499</Price></Product>
    </Discount>
    <NewProducts>
      <Product status="new"><Name>zy456</Name><Price>$799</Price></Product>
    </NewProducts>
  </Category>)");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  XmlDocument current = std::move(parsed.value());
  current.AssignInitialXids();

  // Subscriptions, as a Xyleme user would register them.
  Alerter alerter;
  for (Status s : {
           alerter.Subscribe("new-product", "/Category/NewProducts/Product",
                             ChangeKind::kInsert),
           alerter.Subscribe("price-watch", "//Price", ChangeKind::kUpdate),
           alerter.Subscribe("discount-activity", "/Category/Discount/*"),
       }) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }
  std::printf("registered %zu subscriptions\n\n",
              alerter.subscription_count());

  // Simulate a few crawl cycles: each fetch yields a changed catalog.
  Rng rng(2002);
  ChangeSimOptions weekly;
  weekly.delete_probability = 0.02;
  weekly.update_probability = 0.20;
  weekly.insert_probability = 0.08;
  weekly.move_probability = 0.03;

  for (int cycle = 1; cycle <= 5; ++cycle) {
    Result<SimulatedChange> crawl = SimulateChanges(current, weekly, &rng);
    if (!crawl.ok()) {
      std::cerr << crawl.status().ToString() << "\n";
      return 1;
    }
    XmlDocument fetched = std::move(crawl->new_version);

    // The diff module of Figure 1: old version + new version -> delta.
    XmlDocument old_version = std::move(current);
    Result<Delta> delta = XyDiff(&old_version, &fetched);
    if (!delta.ok()) {
      std::cerr << delta.status().ToString() << "\n";
      return 1;
    }

    const auto alerts = alerter.Evaluate(*delta, old_version, fetched);
    std::printf("cycle %d: %zu operations, %zu alert(s)\n", cycle,
                delta->operation_count(), alerts.size());
    for (const Alert& alert : alerts) {
      std::printf("  [%s] %-18s xid=%llu  %s\n", ChangeKindName(alert.kind),
                  alert.subscription_id.c_str(),
                  static_cast<unsigned long long>(alert.xid),
                  alert.detail.c_str());
    }
    current = std::move(fetched);
  }

  std::cout << "\nfinal catalog:\n"
            << SerializeDocument(current, {.pretty = true});
  return 0;
}
