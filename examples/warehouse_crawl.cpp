// The assembled warehouse: Figure 1 end to end over many documents. A
// simulated crawler delivers weekly batches; the warehouse diffs each
// document against its stored version, appends deltas, fires
// subscriptions, learns per-label change statistics, keeps a cross-
// document full-text index fresh, and can check out any page's history.

#include <cstdio>
#include <iostream>

#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/warehouse.h"

int main() {
  using namespace xydiff;
  Rng rng(1999);  // The year Xyleme started.

  Warehouse warehouse;
  for (Status s : {
           warehouse.Subscribe("new-items", "//item", ChangeKind::kInsert),
           warehouse.Subscribe("any-change", "//*"),
       }) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
  }

  // Week 1: first crawl of 40 documents.
  DocGenOptions gen;
  gen.target_bytes = 4096;
  std::vector<std::pair<std::string, XmlDocument>> week1;
  for (int i = 0; i < 40; ++i) {
    week1.emplace_back("http://site" + std::to_string(i % 8) + "/doc" +
                           std::to_string(i),
                       GenerateDocument(&rng, gen));
  }
  for (auto& report : warehouse.IngestBatch(std::move(week1), 4)) {
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
  }
  std::printf("week 1: %zu documents stored\n", warehouse.document_count());

  // Weeks 2-4: the web changes.
  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  for (int week = 2; week <= 4; ++week) {
    std::vector<std::pair<std::string, XmlDocument>> batch;
    for (const std::string& url : warehouse.urls()) {
      Result<XmlDocument> current =
          warehouse.Checkout(url, warehouse.version_count(url));
      if (!current.ok()) return 1;
      Result<SimulatedChange> change =
          SimulateChanges(*current, weekly, &rng);
      if (!change.ok()) return 1;
      // Fresh crawls carry no XIDs.
      change->new_version.root()->Visit(
          [](XmlNode* n) { n->set_xid(kNoXid); });
      batch.emplace_back(url, std::move(change->new_version));
    }
    size_t ops = 0;
    size_t alerts = 0;
    for (auto& report : warehouse.IngestBatch(std::move(batch), 4)) {
      if (!report.ok()) {
        std::cerr << report.status().ToString() << "\n";
        return 1;
      }
      ops += report->operations;
      alerts += report->alerts.size();
    }
    std::printf("week %d: %zu delta operations, %zu alert(s)\n", week, ops,
                alerts);
  }

  // What the warehouse knows now.
  std::printf("\n%s\n", warehouse.StatsReport(6).c_str());

  // Pick a real word out of one stored document and find it everywhere.
  std::string probe = "1";  // The generator numbers its texts.
  {
    Result<XmlDocument> sample = warehouse.Checkout(
        warehouse.urls().front(), 1);
    if (sample.ok()) {
      sample->root()->Visit([&](const XmlNode* n) {
        if (n->is_text() && probe == "1") {
          const auto words = FullTextIndex::Tokenize(n->text());
          if (!words.empty() && words.front().size() > 3) {
            probe = words.front();
          }
        }
      });
    }
  }
  const auto hits = warehouse.Search(probe);
  std::printf("full-text: '%s' appears in %zu text node(s) across the"
              " warehouse\n", probe.c_str(), hits.size());

  // Time travel on one document.
  const std::string url = warehouse.urls().front();
  std::printf("\nhistory of %s: %d versions, all checkoutable:",
              url.c_str(), warehouse.version_count(url));
  for (int v = 1; v <= warehouse.version_count(url); ++v) {
    Result<XmlDocument> doc = warehouse.Checkout(url, v);
    if (!doc.ok()) return 1;
    std::printf(" v%d=%zu nodes", v, doc->node_count());
  }
  std::printf("\n");
  return 0;
}
