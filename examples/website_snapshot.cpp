// Website snapshots: §6.2's closing experiment. A crawler represents a
// whole site as one XML document (one <page> element per page); given two
// snapshots, the diff reports what changed across the site in one pass.
// The paper's www.inria.fr document was ~14 000 pages / ~5 MB; pass a
// page count on the command line to reproduce that scale
// (./website_snapshot 14000).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/site_diff.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main(int argc, char** argv) {
  using namespace xydiff;
  const size_t pages =
      argc > 1 ? static_cast<size_t>(std::strtoull(argv[1], nullptr, 10))
               : 2000;

  Rng rng(31337);
  std::printf("generating a %zu-page site snapshot...\n", pages);
  XmlDocument week1 = GenerateSiteSnapshot(&rng, pages);
  week1.AssignInitialXids();
  const std::string week1_xml = SerializeDocument(week1);
  std::printf("snapshot: %zu nodes, %.2f MB serialized\n",
              week1.node_count(),
              static_cast<double>(week1_xml.size()) / 1e6);

  // A week passes; some pages change, appear, vanish or move section.
  Result<SimulatedChange> week = SimulateChanges(
      week1, WeeklyWebChangeProfile(), &rng);
  if (!week.ok()) {
    std::cerr << week.status().ToString() << "\n";
    return 1;
  }
  XmlDocument week2 = std::move(week->new_version);

  // Full pipeline timing, §6.2 style: parse (simulated by reparse of the
  // serialized snapshot) + core diff + delta write.
  XmlDocument old_version = week1.Clone();
  DiffStats stats;
  Result<Delta> delta = XyDiff(&old_version, &week2, DiffOptions{}, &stats);
  if (!delta.ok()) {
    std::cerr << delta.status().ToString() << "\n";
    return 1;
  }
  const std::string delta_xml = SerializeDelta(*delta);

  std::printf("\nwhat changed on the site this week:\n");
  std::printf("  pages deleted  : %zu subtree(s)\n", delta->deletes().size());
  std::printf("  pages inserted : %zu subtree(s)\n", delta->inserts().size());
  std::printf("  moves          : %zu\n", delta->moves().size());
  std::printf("  text updates   : %zu\n", delta->updates().size());
  std::printf("  attr changes   : %zu\n", delta->attribute_ops().size());

  std::printf("\ncore diff time  : %.3f s (phases 1+2 %.3f, 3 %.3f, 4 %.3f,"
              " 5 %.3f)\n",
              stats.total_seconds(),
              stats.phase1_seconds + stats.phase2_seconds,
              stats.phase3_seconds, stats.phase4_seconds,
              stats.phase5_seconds);
  std::printf("delta size      : %.2f MB (%.1f%% of the snapshot)\n",
              static_cast<double>(delta_xml.size()) / 1e6,
              100.0 * static_cast<double>(delta_xml.size()) /
                  static_cast<double>(week1_xml.size()));
  std::printf("matched nodes   : %zu / %zu\n", stats.matched_nodes,
              stats.nodes_new);

  // Page-level view (the §7 site-diff extension): summarize the same
  // change set per page URL.
  XmlDocument site_old = week1.Clone();
  XmlDocument site_new = week2.Clone();
  site_new.root()->Visit([](XmlNode* n) { n->set_xid(kNoXid); });
  site_old.root()->Visit([](XmlNode* n) { n->set_xid(kNoXid); });
  Result<SiteDiffResult> site = DiffSites(&site_old, &site_new);
  if (!site.ok()) {
    std::cerr << site.status().ToString() << "\n";
    return 1;
  }
  std::printf("\npage-level summary (%zu -> %zu pages):\n", site->pages_old,
              site->pages_new);
  std::printf("  added %zu, removed %zu, modified %zu, moved %zu,"
              " unchanged %zu\n",
              site->pages_added, site->pages_removed, site->pages_modified,
              site->pages_moved, site->pages_unchanged());
  size_t shown = 0;
  for (const PageChange& change : site->changes) {
    if (++shown > 5) break;
    std::printf("  [%-8s] %s (%zu op%s)\n", PageChangeKindName(change.kind),
                change.url.c_str(), change.operations,
                change.operations == 1 ? "" : "s");
  }
  if (site->changes.size() > 5) {
    std::printf("  ... and %zu more changed pages\n",
                site->changes.size() - 5);
  }
  return 0;
}
