// Quickstart: diff two XML documents, inspect the delta, patch the old
// version, and reconstruct it back — the whole public API in ~60 lines.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;

  const std::string old_xml = R"(<Category>
    <Title>Digital Cameras</Title>
    <Discount>
      <Product><Name>tx123</Name><Price>$499</Price></Product>
    </Discount>
    <NewProducts>
      <Product><Name>zy456</Name><Price>$799</Price></Product>
    </NewProducts>
  </Category>)";

  const std::string new_xml = R"(<Category>
    <Title>Digital Cameras</Title>
    <Discount>
      <Product><Name>zy456</Name><Price>$699</Price></Product>
    </Discount>
    <NewProducts>
      <Product><Name>abc</Name><Price>$899</Price></Product>
    </NewProducts>
  </Category>)";

  // 1. Parse. The first version gets persistent identifiers (XIDs).
  Result<XmlDocument> old_doc = ParseXml(old_xml);
  Result<XmlDocument> new_doc = ParseXml(new_xml);
  if (!old_doc.ok() || !new_doc.ok()) {
    std::cerr << "parse error\n";
    return 1;
  }
  old_doc->AssignInitialXids();

  // 2. Diff. Matched nodes in the new version inherit their XIDs.
  DiffStats stats;
  Result<Delta> delta =
      XyDiff(&old_doc.value(), &new_doc.value(), DiffOptions{}, &stats);
  if (!delta.ok()) {
    std::cerr << "diff failed: " << delta.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Delta (an XML document itself) ===\n"
            << SerializeDelta(*delta, /*pretty=*/true) << "\n";
  std::printf("operations: %zu (%zu del, %zu ins, %zu mov, %zu upd)\n",
              delta->operation_count(), delta->deletes().size(),
              delta->inserts().size(), delta->moves().size(),
              delta->updates().size());
  std::printf("matched %zu of %zu nodes in %.3f ms\n\n", stats.matched_nodes,
              stats.nodes_new, stats.total_seconds() * 1e3);

  // 3. Patch the old version forward...
  XmlDocument patched = old_doc->Clone();
  if (Status s = ApplyDelta(*delta, &patched); !s.ok()) {
    std::cerr << "apply failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "=== Old version patched forward ===\n"
            << SerializeDocument(patched, {.pretty = true}) << "\n";

  // 4. ...and reconstruct it back with the inverse delta.
  if (Status s = ApplyDelta(InvertDelta(*delta), &patched); !s.ok()) {
    std::cerr << "inverse apply failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "round trip "
            << (patched.root()->DeepEquals(*old_doc->root()) ? "OK" : "BROKEN")
            << "\n";
  return 0;
}
