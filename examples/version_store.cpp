// Change-centric versioning: §2 "Versions and Querying the past". The
// repository stores only the newest version plus the delta chain, yet can
// check out any version, answer temporal queries on persistent node IDs,
// and aggregate the changes between arbitrary versions.

#include <cstdio>
#include <iostream>

#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/repository.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;
  Rng rng(777);

  // Version 1: a generated catalog (~4 KB).
  DocGenOptions gen;
  gen.target_bytes = 4096;
  VersionRepository repo(GenerateDocument(&rng, gen));
  std::printf("v1: %zu nodes, %zu bytes\n", repo.current().node_count(),
              SerializeDocument(repo.current()).size());

  // Pick a text node to follow through time.
  Xid tracked = kNoXid;
  repo.current().root()->Visit([&](const XmlNode* n) {
    if (tracked == kNoXid && n->is_text()) tracked = n->xid();
  });

  // Commit five more versions produced by the change simulator. Use the
  // gentle weekly-web profile: per-node probabilities compound across
  // commits (a deleted node takes its whole subtree), so aggressive rates
  // would erode the document to nothing in a few versions.
  const ChangeSimOptions churn = WeeklyWebChangeProfile();
  for (int v = 2; v <= 6; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), churn, &rng);
    if (!change.ok()) {
      std::cerr << change.status().ToString() << "\n";
      return 1;
    }
    Result<int> committed = repo.Commit(std::move(change->new_version));
    if (!committed.ok()) {
      std::cerr << committed.status().ToString() << "\n";
      return 1;
    }
    const DiffStats& stats = repo.last_commit_stats();
    std::printf(
        "v%d: committed (%zu -> %zu nodes, diff %.2f ms, matched %zu)\n", v,
        stats.nodes_old, stats.nodes_new, stats.total_seconds() * 1e3,
        stats.matched_nodes);
  }

  std::printf("\nhistory: %d versions, %zu delta bytes stored\n",
              repo.version_count(), repo.stored_delta_bytes());

  // Temporal query: the tracked node's text at every version.
  std::printf("\ntext of node %llu through time:\n",
              static_cast<unsigned long long>(tracked));
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<std::optional<std::string>> text = repo.TextAt(v, tracked);
    if (!text.ok()) {
      std::cerr << text.status().ToString() << "\n";
      return 1;
    }
    std::printf("  v%d: %s\n", v,
                text->has_value() ? ("\"" + **text + "\"").c_str()
                                  : "(node absent)");
  }

  // Reconstruct v1 and verify it byte-for-byte.
  Result<XmlDocument> v1 = repo.Checkout(1);
  if (!v1.ok()) {
    std::cerr << v1.status().ToString() << "\n";
    return 1;
  }
  std::printf("\ncheckout v1: %zu nodes reconstructed\n", v1->node_count());

  // Aggregate everything that happened between v1 and the newest version.
  Result<Delta> overall = repo.ChangesBetween(1, repo.version_count());
  if (!overall.ok()) {
    std::cerr << overall.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "changes v1 -> v%d: %zu ops (%zu del, %zu ins, %zu mov, %zu upd)\n",
      repo.version_count(), overall->operation_count(),
      overall->deletes().size(), overall->inserts().size(),
      overall->moves().size(), overall->updates().size());
  return 0;
}
