// Offline collaboration: §2 "Learning about changes" — "different users
// may modify the same XML document off-line, and later want to
// synchronize their respective versions. The diff algorithm could be used
// to detect and describe the modifications in order to detect conflicts
// and solve some of them" (the CVS analogy of reference [26]).
//
// Two editors start from the same article. Alice rewrites the abstract
// and adds a section; Bob fixes a typo elsewhere, reorders sections, and
// — unluckily — also rewrites the abstract. The diff detects each side's
// changes; the three-way merge combines them and reports the one real
// conflict.

#include <cstdio>
#include <iostream>

#include "core/buld.h"
#include "delta/merge.h"
#include "delta/summary.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;

  Result<XmlDocument> parsed = ParseXml(R"(<article>
  <abstract>The original abstract text.</abstract>
  <section><title>Intro</title><p>Once upon a tme.</p></section>
  <section><title>Method</title><p>We did things.</p></section>
  <section><title>Results</title><p>They worked.</p></section>
</article>)");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  XmlDocument base = std::move(parsed.value());
  base.AssignInitialXids();

  const auto edit = [&](const char* who, std::string_view new_xml) {
    XmlDocument old_doc = base.Clone();
    Result<XmlDocument> new_doc = ParseXml(new_xml);
    Result<Delta> delta = XyDiff(&old_doc, &new_doc.value());
    if (delta.ok()) {
      Result<std::string> report =
          ExplainDelta(*delta, old_doc, *new_doc);
      std::printf("--- %s's changes ---\n%s\n", who,
                  report.ok() ? report->c_str() : "(unexplainable)");
    }
    return std::move(delta.value());
  };

  // Alice: new abstract + a new Discussion section.
  const Delta alice = edit("Alice", R"(<article>
  <abstract>A much better abstract, by Alice.</abstract>
  <section><title>Intro</title><p>Once upon a tme.</p></section>
  <section><title>Method</title><p>We did things.</p></section>
  <section><title>Results</title><p>They worked.</p></section>
  <section><title>Discussion</title><p>What it means.</p></section>
</article>)");

  // Bob: typo fix, section reorder, and a competing abstract rewrite.
  const Delta bob = edit("Bob", R"(<article>
  <abstract>Bob's competing abstract.</abstract>
  <section><title>Intro</title><p>Once upon a time.</p></section>
  <section><title>Results</title><p>They worked.</p></section>
  <section><title>Method</title><p>We did things.</p></section>
</article>)");

  Result<MergeResult> merged = ThreeWayMerge(base, alice, bob);
  if (!merged.ok()) {
    std::cerr << merged.status().ToString() << "\n";
    return 1;
  }

  std::printf("--- merge: %zu of Bob's ops applied, %zu duplicates dropped,"
              " %zu conflict(s) ---\n",
              merged->theirs_applied, merged->theirs_dropped_duplicates,
              merged->conflicts.size());
  for (const MergeConflict& conflict : merged->conflicts) {
    std::printf("  CONFLICT [%s] %s\n",
                MergeConflictKindName(conflict.kind),
                conflict.description.c_str());
  }

  std::printf("\n--- merged document (Alice's side wins conflicts) ---\n%s",
              SerializeDocument(merged->merged, {.pretty = true}).c_str());
  return 0;
}
