// Learning what changes: §5.2 suggests using the document's type
// structure "to record statistical information ... e.g. learn that a
// price node is more likely to change than a description node", and §7
// calls for gathering statistics on change frequency and patterns.
//
// This example tracks a product catalog across many crawl cycles and lets
// ChangeStatistics discover, from the deltas alone, which element labels
// are volatile and which are stable.

#include <cstdio>
#include <iostream>

#include "core/buld.h"
#include "monitor/change_stats.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/parser.h"

namespace {

using namespace xydiff;

/// Builds a catalog whose fields have very different natural volatility.
std::string MakeCatalog(Rng* rng, int cycle) {
  std::string xml = "<catalog>";
  for (int i = 0; i < 30; ++i) {
    xml += "<product>";
    xml += "<sku>SKU-" + std::to_string(i) + "</sku>";  // Never changes.
    xml += "<description>a perfectly stable description of product " +
           std::to_string(i) + "</description>";        // Never changes.
    // Price: changes almost every cycle (values unique per product so the
    // diff sees updates, not cross-product matches of identical texts).
    xml += "<price>" +
           std::to_string(1000 + i * 100 + (cycle * 3 + i * cycle) % 11) +
           "</price>";
    // Stock: changes often.
    xml += "<stock>" +
           std::to_string(i * 1000 + (i * 13 + cycle * 5) % 50) + "</stock>";
    // Promo appears and disappears.
    if ((i + cycle) % 4 == 0) {
      xml += "<promo>save " + std::to_string(5 + cycle % 10) + "%</promo>";
    }
    xml += "</product>";
  }
  (void)rng;
  xml += "</catalog>";
  return xml;
}

}  // namespace

int main() {
  Rng rng(99);
  ChangeStatistics stats;

  Result<XmlDocument> current = ParseXml(MakeCatalog(&rng, 0));
  if (!current.ok()) {
    std::cerr << current.status().ToString() << "\n";
    return 1;
  }
  current->AssignInitialXids();

  const int kCycles = 12;
  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    Result<XmlDocument> next = ParseXml(MakeCatalog(&rng, cycle));
    if (!next.ok()) {
      std::cerr << next.status().ToString() << "\n";
      return 1;
    }
    Result<Delta> delta = XyDiff(&current.value(), &next.value());
    if (!delta.ok()) {
      std::cerr << delta.status().ToString() << "\n";
      return 1;
    }
    stats.Accumulate(*delta, *current, *next);
    current = std::move(next);
  }

  std::printf("tracked the catalog across %d crawl cycles\n\n", kCycles);
  std::fputs(stats.Report(8).c_str(), stdout);

  const auto price = stats.ForLabel("price");
  const auto desc = stats.ForLabel("description");
  std::printf("\nlearned: <price> changes %.2fx per occurrence,"
              " <description> %.2fx\n",
              price.change_rate(), desc.change_rate());
  std::printf("-> a subscription system can prioritize price alerts and an\n"
              "   indexer can skip re-indexing stable fields (Section 2).\n");
  return 0;
}
