#ifndef XYDIFF_SIMULATOR_CHANGE_SIMULATOR_H_
#define XYDIFF_SIMULATOR_CHANGE_SIMULATOR_H_

#include "delta/delta.h"
#include "util/random.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Per-node change probabilities (§6.1: "all probabilities are given per
/// node"). The paper's Figure 4/5 setting is 10% for every operation.
struct ChangeSimOptions {
  double delete_probability = 0.1;  ///< A node (and its subtree) is deleted.
  double update_probability = 0.1;  ///< A surviving text node is rewritten.
  double insert_probability = 0.1;  ///< A surviving element gains a child.
  double move_probability = 0.1;    ///< The gained child is deleted data
                                    ///< (i.e. the operation is a move).
};

/// Output of one simulation run.
struct SimulatedChange {
  XmlDocument new_version;  ///< The changed document; kept nodes keep XIDs.
  Delta perfect_delta;      ///< The "synthetic (perfect) changes" (§6.1).

  // Counters of what actually happened (for experiment reporting).
  size_t deleted_subtrees = 0;
  size_t deleted_nodes = 0;
  size_t updated_texts = 0;
  size_t inserted_nodes = 0;
  size_t moved_subtrees = 0;
};

/// The change simulator of §6.1. Reads `base` (which must carry XIDs) and
/// produces a new version in three phases:
///
///   [delete]  each node is deleted with its entire subtree with
///             probability `delete_probability`;
///   [update]  each remaining text node is rewritten with original text
///             with (re-normalized) probability `update_probability`;
///   [insert/move] random remaining elements gain a child: with
///             the move share of the (re-normalized) probability mass the
///             child is previously deleted data — a move, XIDs preserved —
///             otherwise it is original data whose label is copied from a
///             sibling, cousin or ascendant to preserve the document's
///             label distribution. Text is never inserted adjacent to
///             text (the two would merge on re-parsing).
///
/// Probabilities for the later phases are re-normalized by the node-count
/// shrinkage of the delete phase, as in the paper. The perfect delta is
/// derived from persistent identifiers and is guaranteed to transform
/// `base` into `new_version` (a tested invariant).
Result<SimulatedChange> SimulateChanges(const XmlDocument& base,
                                        const ChangeSimOptions& options,
                                        Rng* rng);

}  // namespace xydiff

#endif  // XYDIFF_SIMULATOR_CHANGE_SIMULATOR_H_
