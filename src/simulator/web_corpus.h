#ifndef XYDIFF_SIMULATOR_WEB_CORPUS_H_
#define XYDIFF_SIMULATOR_WEB_CORPUS_H_

#include <cstddef>
#include <vector>

#include "simulator/change_simulator.h"
#include "util/random.h"
#include "xml/document.h"

namespace xydiff {

/// Substitute for the paper's real web data (§6.2): the crawl of 10 000+
/// XML documents and the INRIA site-metadata snapshots are not available,
/// so we generate documents with the same size distribution and shape.

/// Options for the simulated crawl.
struct WebCorpusOptions {
  /// Number of documents ("about two hundred XML documents that changed
  /// on a per-week basis").
  size_t document_count = 200;

  /// Log-normal size distribution: median ~= `median_bytes`, long tail.
  /// The paper: average web XML is ~20 KB, observed range ~100 B – 1 MB.
  size_t median_bytes = 8 * 1024;
  double log_sigma = 1.8;
  size_t min_bytes = 100;
  size_t max_bytes = 1 << 20;
};

/// Generates a corpus of documents with a web-like size distribution.
std::vector<XmlDocument> GenerateWebCorpus(Rng* rng,
                                           const WebCorpusOptions& options = {});

/// Per-week change profile for web documents: low change rates (most
/// pages change a little), few moves — matching the paper's observation
/// that the Figure-5 middle-range change rates are "much more than what
/// is generally found on real web documents".
ChangeSimOptions WeeklyWebChangeProfile();

/// Generates a site-metadata snapshot like the paper's www.inria.fr
/// document: one `<page>` element (URL, title, modification data, link
/// list) per page. ~14 000 pages yields a document of roughly five
/// million bytes, as in §6.2.
XmlDocument GenerateSiteSnapshot(Rng* rng, size_t page_count);

}  // namespace xydiff

#endif  // XYDIFF_SIMULATOR_WEB_CORPUS_H_
