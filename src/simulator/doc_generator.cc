#include "simulator/doc_generator.h"

#include <algorithm>
#include <vector>

namespace xydiff {

namespace {

/// Tracks approximate serialized size as the tree grows, so generation
/// can stop near the byte target without re-serializing.
struct Budget {
  size_t used = 0;
  size_t target;

  explicit Budget(size_t target_bytes) : target(target_bytes) {}
  bool exhausted() const { return used >= target; }
  void ChargeElement(std::string_view label) {
    used += 2 * label.size() + 5;  // <label></label>
  }
  void ChargeText(std::string_view text) { used += text.size(); }
  void ChargeAttribute(const std::string& name, const std::string& value) {
    used += name.size() + value.size() + 4;
  }
};

class Generator {
 public:
  Generator(Rng* rng, const DocGenOptions& options)
      : rng_(rng), options_(options), budget_(options.target_bytes) {
    // A fixed vocabulary keeps the label distribution narrow, like real
    // XML. Level 0 labels are section-ish, later ones item/field-ish.
    vocabulary_.reserve(options_.label_vocabulary);
    for (size_t i = 0; i < options_.label_vocabulary; ++i) {
      vocabulary_.push_back(rng_->NextWord(4, 9));
    }
  }

  XmlDocument Generate() {
    XmlDocument doc;
    auto root = XmlNode::Element("catalog");
    budget_.ChargeElement(root->label());
    // Keep adding top-level sections until the byte budget is gone.
    while (!budget_.exhausted()) {
      root->AppendChild(MakeSection(options_.section_depth));
    }
    if (options_.with_id_attributes) {
      doc.dtd().DeclareIdAttribute("item", "id");
      doc.dtd().set_doctype_name("catalog");
    }
    doc.set_root(std::move(root));
    return doc;
  }

 private:
  const std::string& Label(int level) {
    // Labels are drawn from a per-level slice of the vocabulary so that
    // structure repeats (many siblings share a label).
    const size_t slice = std::max<size_t>(vocabulary_.size() / 4, 1);
    const size_t base = (static_cast<size_t>(level) * slice) % vocabulary_.size();
    const size_t index = (base + rng_->NextIndex(slice)) % vocabulary_.size();
    return vocabulary_[index];
  }

  XmlNodePtr MakeSection(int depth) {
    if (depth <= 0) return MakeItem();
    auto section = XmlNode::Element(Label(options_.section_depth - depth));
    budget_.ChargeElement(section->label());
    const int fanout = static_cast<int>(
        rng_->NextInRange(options_.min_fanout, options_.max_fanout));
    for (int i = 0; i < fanout && !budget_.exhausted(); ++i) {
      XmlNode* child = section->AppendChild(MakeSection(depth - 1));
      MaybeDuplicate(section.get(), child);
    }
    return section;
  }

  /// Appends up to max_duplicate_run clones of `child` to `parent` —
  /// sibling runs with colliding subtree signatures. A clone sometimes
  /// gains one extra word in its first text leaf, so runs mix exact and
  /// *near* duplicates.
  void MaybeDuplicate(XmlNode* parent, const XmlNode* child) {
    if (child == nullptr ||
        !rng_->NextBool(options_.duplicate_sibling_probability)) {
      return;
    }
    const int run = static_cast<int>(
        rng_->NextInRange(1, std::max(options_.max_duplicate_run, 1)));
    for (int i = 0; i < run && !budget_.exhausted(); ++i) {
      XmlNodePtr clone = child->Clone();
      if (rng_->NextBool(0.5)) {
        XmlNode* first_text = nullptr;
        clone->Visit([&](XmlNode* n) {
          if (first_text == nullptr && !n->is_element()) first_text = n;
        });
        if (first_text != nullptr) {
          first_text->set_text(std::string(first_text->text()) + " " +
                               rng_->NextWord(2, 9));
        }
      }
      ChargeSubtree(*clone);
      parent->AppendChild(std::move(clone));
    }
  }

  void ChargeSubtree(const XmlNode& node) {
    node.Visit([&](const XmlNode* n) {
      if (n->is_element()) {
        budget_.ChargeElement(n->label());
      } else {
        budget_.ChargeText(n->text());
      }
    });
  }

  XmlNodePtr MakeItem() {
    auto item = XmlNode::Element("item");
    budget_.ChargeElement(item->label());
    if (options_.with_id_attributes) {
      const std::string id = "id" + std::to_string(next_id_++);
      item->SetAttribute("id", id);
      budget_.ChargeAttribute("id", id);
    }
    if (rng_->NextBool(options_.attribute_probability)) {
      const std::string value = rng_->NextWord(3, 8);
      item->SetAttribute("kind", value);
      budget_.ChargeAttribute("kind", value);
    }
    // A handful of labelled fields, each with one text leaf.
    const int fields = static_cast<int>(rng_->NextInRange(2, 5));
    for (int i = 0; i < fields && !budget_.exhausted(); ++i) {
      auto field = XmlNode::Element(Label(options_.section_depth + 1));
      budget_.ChargeElement(field->label());
      std::string text = GenerateText(rng_, options_.min_text_words,
                                      options_.max_text_words, &text_counter_);
      budget_.ChargeText(text);
      field->AppendChild(XmlNode::Text(std::move(text)));
      item->AppendChild(std::move(field));
    }
    return item;
  }

  Rng* rng_;
  DocGenOptions options_;
  Budget budget_;
  std::vector<std::string> vocabulary_;
  uint64_t next_id_ = 1;
  uint64_t text_counter_ = 1;
};

}  // namespace

std::string GenerateText(Rng* rng, int min_words, int max_words,
                         uint64_t* counter) {
  const int words = static_cast<int>(rng->NextInRange(min_words, max_words));
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += rng->NextWord(2, 9);
  }
  // A counter keeps every generated text distinct, so identical-subtree
  // signatures arise from true structure, not from text collisions.
  out += ' ';
  out += std::to_string((*counter)++);
  return out;
}

XmlDocument GenerateDocument(Rng* rng, const DocGenOptions& options) {
  Generator generator(rng, options);
  return generator.Generate();
}

}  // namespace xydiff
