#include "simulator/web_corpus.h"

#include <algorithm>
#include <cmath>

#include "simulator/doc_generator.h"

namespace xydiff {

namespace {

/// Standard-normal draw via Box–Muller on the deterministic Rng.
double NextGaussian(Rng* rng) {
  const double u1 = std::max(rng->NextDouble(), 1e-12);
  const double u2 = rng->NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

std::vector<XmlDocument> GenerateWebCorpus(Rng* rng,
                                           const WebCorpusOptions& options) {
  std::vector<XmlDocument> corpus;
  corpus.reserve(options.document_count);
  for (size_t i = 0; i < options.document_count; ++i) {
    const double log_size =
        std::log(static_cast<double>(options.median_bytes)) +
        options.log_sigma * NextGaussian(rng);
    const size_t size = static_cast<size_t>(
        std::clamp(std::exp(log_size), static_cast<double>(options.min_bytes),
                   static_cast<double>(options.max_bytes)));
    DocGenOptions doc_options;
    doc_options.target_bytes = size;
    corpus.push_back(GenerateDocument(rng, doc_options));
  }
  return corpus;
}

ChangeSimOptions WeeklyWebChangeProfile() {
  ChangeSimOptions options;
  options.delete_probability = 0.02;
  options.update_probability = 0.05;
  options.insert_probability = 0.03;
  options.move_probability = 0.005;
  return options;
}

XmlDocument GenerateSiteSnapshot(Rng* rng, size_t page_count) {
  auto site = XmlNode::Element("site");
  site->SetAttribute("host", "www.example-institute.example");
  uint64_t text_counter = 1;
  for (size_t p = 0; p < page_count; ++p) {
    auto page = XmlNode::Element("page");
    page->SetAttribute("url", "/section" + std::to_string(p % 37) + "/page" +
                                  std::to_string(p) + ".html");
    page->SetAttribute("depth", std::to_string(1 + p % 5));

    auto title = XmlNode::Element("title");
    title->AppendChild(
        XmlNode::Text(GenerateText(rng, 2, 7, &text_counter)));
    page->AppendChild(std::move(title));

    auto modified = XmlNode::Element("lastModified");
    modified->AppendChild(XmlNode::Text(
        "2001-" + std::to_string(1 + rng->NextIndex(12)) + "-" +
        std::to_string(1 + rng->NextIndex(28))));
    page->AppendChild(std::move(modified));

    auto links = XmlNode::Element("links");
    const size_t link_count = 2 + rng->NextIndex(6);
    for (size_t l = 0; l < link_count; ++l) {
      auto link = XmlNode::Element("link");
      link->SetAttribute(
          "href", "/section" + std::to_string(rng->NextIndex(37)) + "/page" +
                      std::to_string(rng->NextIndex(std::max<size_t>(
                          page_count, 1))) +
                      ".html");
      links->AppendChild(std::move(link));
    }
    page->AppendChild(std::move(links));

    auto summary = XmlNode::Element("summary");
    summary->AppendChild(
        XmlNode::Text(GenerateText(rng, 8, 24, &text_counter)));
    page->AppendChild(std::move(summary));

    site->AppendChild(std::move(page));
  }
  return XmlDocument(std::move(site));
}

}  // namespace xydiff
