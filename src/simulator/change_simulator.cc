#include "simulator/change_simulator.h"

#include <algorithm>
#include <vector>

#include "delta/compose.h"
#include "simulator/doc_generator.h"

namespace xydiff {

namespace {

class Simulator {
 public:
  Simulator(const XmlDocument& base, const ChangeSimOptions& options, Rng* rng)
      : options_(options), rng_(rng), work_(base.Clone()) {}

  Result<SimulatedChange> Run(const XmlDocument& base) {
    const size_t original_nodes = work_.node_count();
    DeletePhase();
    const size_t remaining = work_.node_count();
    // Re-normalize so the expected op counts match the original document
    // size despite the delete-phase shrinkage (§6.1).
    const double scale =
        remaining > 0 ? static_cast<double>(original_nodes) /
                            static_cast<double>(remaining)
                      : 1.0;
    UpdatePhase(std::min(1.0, options_.update_probability * scale));
    InsertMovePhase(std::min(1.0, options_.insert_probability * scale),
                    std::min(1.0, options_.move_probability * scale));

    SimulatedChange out;
    out.deleted_subtrees = deleted_subtrees_;
    out.deleted_nodes = deleted_nodes_;
    out.updated_texts = updated_texts_;
    out.inserted_nodes = inserted_nodes_;
    out.moved_subtrees = moved_subtrees_;
    // Nodes still in the graveyard stayed deleted; nodes re-inserted from
    // it are moves. Either way XIDs tell the whole story.
    XmlDocument source = base.Clone();
    Result<Delta> delta = DeltaFromXidCorrespondence(&source, &work_);
    if (!delta.ok()) return delta.status();
    out.perfect_delta = std::move(*delta);
    out.new_version = std::move(work_);
    return out;
  }

 private:
  // --- [delete] --------------------------------------------------------------

  void DeletePhase() {
    DeleteWalk(work_.root());
  }

  /// Per-child delete decisions; a deleted child's subtree is detached
  /// whole into the graveyard and its descendants get no decisions of
  /// their own (they are absorbed, as in the paper).
  void DeleteWalk(XmlNode* node) {
    for (size_t i = 0; i < node->child_count();) {
      if (rng_->NextBool(options_.delete_probability)) {
        XmlNodePtr gone = node->RemoveChild(i);
        ++deleted_subtrees_;
        deleted_nodes_ += gone->SubtreeSize();
        graveyard_.push_back(std::move(gone));
      } else {
        DeleteWalk(node->child(i));
        ++i;
      }
    }
  }

  // --- [update] --------------------------------------------------------------

  void UpdatePhase(double probability) {
    std::vector<XmlNode*> texts;
    work_.root()->Visit([&](XmlNode* n) {
      if (n->is_text()) texts.push_back(n);
    });
    for (XmlNode* t : texts) {
      if (!rng_->NextBool(probability)) continue;
      const int words = std::max<int>(
          1, static_cast<int>(std::count(t->text().begin(), t->text().end(),
                                         ' ')));
      t->set_text(GenerateText(rng_, std::max(1, words - 1), words + 1,
                               &text_counter_));
      ++updated_texts_;
    }
  }

  // --- [insert/move] -----------------------------------------------------------

  void InsertMovePhase(double insert_probability, double move_probability) {
    std::vector<XmlNode*> elements;
    work_.root()->Visit([&](XmlNode* n) {
      if (n->is_element()) elements.push_back(n);
    });
    const double event_probability =
        std::min(1.0, insert_probability + move_probability);
    const double move_share =
        event_probability > 0
            ? move_probability / (insert_probability + move_probability)
            : 0.0;
    for (XmlNode* parent : elements) {
      if (!rng_->NextBool(event_probability)) continue;
      const size_t pos = rng_->NextIndex(parent->child_count() + 1);
      const bool want_move = !graveyard_.empty() && rng_->NextBool(move_share);
      if (want_move) {
        InsertFromGraveyard(parent, pos);
      } else {
        InsertOriginal(parent, pos);
      }
    }
  }

  /// True if a text node may sit at `pos` under `parent` (no adjacent
  /// text nodes, or the two would merge when the document is re-parsed).
  static bool TextAllowedAt(const XmlNode& parent, size_t pos) {
    if (pos > 0 && parent.child(pos - 1)->is_text()) return false;
    if (pos < parent.child_count() && parent.child(pos)->is_text()) {
      return false;
    }
    return true;
  }

  void InsertFromGraveyard(XmlNode* parent, size_t pos) {
    const size_t pick = rng_->NextIndex(graveyard_.size());
    if (graveyard_[pick]->is_text() && !TextAllowedAt(*parent, pos)) {
      InsertOriginal(parent, pos);  // Fall back to original data.
      return;
    }
    XmlNodePtr subtree = std::move(graveyard_[pick]);
    graveyard_.erase(graveyard_.begin() + static_cast<ptrdiff_t>(pick));
    ++moved_subtrees_;
    parent->InsertChild(pos, std::move(subtree));
  }

  void InsertOriginal(XmlNode* parent, size_t pos) {
    const bool as_text = TextAllowedAt(*parent, pos) && rng_->NextBool(0.5);
    XmlNodePtr node;
    if (as_text) {
      node = XmlNode::Text(GenerateText(rng_, 1, 8, &text_counter_));
    } else {
      node = XmlNode::Element(NearbyLabel(parent));
      // Give the new element a text child half of the time, mimicking the
      // field/value style of the document.
      if (rng_->NextBool(0.5)) {
        auto text = XmlNode::Text(GenerateText(rng_, 1, 6, &text_counter_));
        text->set_xid(work_.AllocateXid());
        node->AppendChild(std::move(text));
        ++inserted_nodes_;
      }
    }
    node->set_xid(work_.AllocateXid());
    ++inserted_nodes_;
    parent->InsertChild(pos, std::move(node));
  }

  /// Copies a label from a sibling, cousin, or ascendant (§6.1:
  /// "important ... to preserve the distribution of labels").
  std::string NearbyLabel(const XmlNode* parent) {
    // Siblings (i.e. parent's element children).
    std::vector<const XmlNode*> pool;
    for (size_t i = 0; i < parent->child_count(); ++i) {
      if (parent->child(i)->is_element()) pool.push_back(parent->child(i));
    }
    // Cousins: children of the parent's siblings.
    if (const XmlNode* grand = parent->parent()) {
      for (size_t i = 0; i < grand->child_count(); ++i) {
        const XmlNode* uncle = grand->child(i);
        if (!uncle->is_element()) continue;
        for (size_t k = 0; k < uncle->child_count(); ++k) {
          if (uncle->child(k)->is_element()) pool.push_back(uncle->child(k));
        }
      }
    }
    if (!pool.empty()) {
      return std::string(pool[rng_->NextIndex(pool.size())]->label());
    }
    // Ascendants.
    for (const XmlNode* anc = parent; anc != nullptr; anc = anc->parent()) {
      if (anc->is_element()) return std::string(anc->label());
    }
    return "node";
  }

  ChangeSimOptions options_;
  Rng* rng_;
  XmlDocument work_;
  std::vector<XmlNodePtr> graveyard_;
  uint64_t text_counter_ = 1000000;  // Distinct from generator texts.
  size_t deleted_subtrees_ = 0;
  size_t deleted_nodes_ = 0;
  size_t updated_texts_ = 0;
  size_t inserted_nodes_ = 0;
  size_t moved_subtrees_ = 0;
};

}  // namespace

Result<SimulatedChange> SimulateChanges(const XmlDocument& base,
                                        const ChangeSimOptions& options,
                                        Rng* rng) {
  if (base.root() == nullptr) {
    return Status::InvalidArgument("cannot simulate changes on an empty document");
  }
  if (!base.AllXidsAssigned()) {
    return Status::InvalidArgument(
        "change simulation requires XIDs on the base document");
  }
  Simulator simulator(base, options, rng);
  return simulator.Run(base);
}

}  // namespace xydiff
