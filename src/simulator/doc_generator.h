#ifndef XYDIFF_SIMULATOR_DOC_GENERATOR_H_
#define XYDIFF_SIMULATOR_DOC_GENERATOR_H_

#include <cstddef>

#include "util/random.h"
#include "xml/document.h"

namespace xydiff {

/// Synthetic document shape knobs. The defaults produce catalog-like
/// documents: a shallow hierarchy of repeated element structures with
/// short text leaves — the XML shape the paper's experiments and
/// motivating examples (product catalogs) use.
struct DocGenOptions {
  /// Approximate serialized size to aim for, in bytes.
  size_t target_bytes = 20 * 1024;  ///< Average web XML size per §6.1.

  /// Depth of the element hierarchy below the root (sections nest this
  /// deep before item subtrees are emitted).
  int section_depth = 3;

  /// Children per section at each level.
  int min_fanout = 2;
  int max_fanout = 6;

  /// Words per text leaf.
  int min_text_words = 1;
  int max_text_words = 10;

  /// Size of the element-label vocabulary (XML's label distribution is
  /// narrow: many nodes share few labels).
  size_t label_vocabulary = 24;

  /// Attach an `id` ID-attribute (declared in the DTD) to item elements.
  bool with_id_attributes = false;

  /// Probability that an item element carries a non-ID attribute.
  double attribute_probability = 0.3;

  /// Probability that a generated child subtree is duplicated in place:
  /// up to `max_duplicate_run` clones are appended as its next siblings,
  /// each with a slight chance of one extra text word. Near-duplicate
  /// sibling runs give distinct subtrees identical (or near-identical)
  /// signatures — the collision workload the fuzzer's
  /// `near-duplicate-siblings` grammar targets. 0 disables (default).
  double duplicate_sibling_probability = 0.0;
  int max_duplicate_run = 3;
};

/// Generates a random catalog-like document of roughly
/// `options.target_bytes` serialized bytes. Deterministic in `*rng`.
/// Nodes carry no XIDs (call AssignInitialXids for a first version).
XmlDocument GenerateDocument(Rng* rng, const DocGenOptions& options = {});

/// Generates a few words of synthetic text, numbered so that distinct
/// calls produce distinct content ("original text data", §6.1). Exposed
/// for the change simulator.
std::string GenerateText(Rng* rng, int min_words, int max_words,
                         uint64_t* counter);

}  // namespace xydiff

#endif  // XYDIFF_SIMULATOR_DOC_GENERATOR_H_
