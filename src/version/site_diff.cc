#include "version/site_diff.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <unordered_map>

#include "core/buld.h"
#include "util/thread_pool.h"
#include "xml/parser.h"

namespace xydiff {

namespace {

constexpr const char* kPageLabel = "page";
constexpr const char* kUrlAttribute = "url";

/// URL of the nearest enclosing `<page>` of `node`, or nullptr when the
/// node is outside any page (site-level chrome).
const std::string_view* OwningPageUrl(const XmlNode* node) {
  for (; node != nullptr; node = node->parent()) {
    if (node->is_element() && node->label() == kPageLabel) {
      return node->FindAttribute(kUrlAttribute);
    }
  }
  return nullptr;
}

std::unordered_map<Xid, const XmlNode*> IndexByXid(const XmlDocument& doc) {
  std::unordered_map<Xid, const XmlNode*> index;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&](const XmlNode* n) { index.emplace(n->xid(), n); });
  }
  return index;
}

}  // namespace

const char* PageChangeKindName(PageChangeKind kind) {
  switch (kind) {
    case PageChangeKind::kAdded: return "added";
    case PageChangeKind::kRemoved: return "removed";
    case PageChangeKind::kModified: return "modified";
    case PageChangeKind::kMoved: return "moved";
  }
  return "unknown";
}

Result<SiteDiffResult> DiffSites(XmlDocument* old_site, XmlDocument* new_site,
                                 const DiffOptions& options) {
  if (old_site->root() == nullptr || new_site->root() == nullptr) {
    return Status::InvalidArgument("both snapshots must have a root element");
  }
  // Pin pages by URL through Phase 1.
  old_site->dtd().DeclareIdAttribute(kPageLabel, kUrlAttribute);
  new_site->dtd().DeclareIdAttribute(kPageLabel, kUrlAttribute);

  Result<Delta> delta = XyDiff(old_site, new_site, options);
  if (!delta.ok()) return delta.status();

  SiteDiffResult result;
  const auto count_pages = [](const XmlDocument& doc) {
    size_t pages = 0;
    doc.root()->Visit([&](const XmlNode* n) {
      if (n->is_element() && n->label() == kPageLabel) ++pages;
    });
    return pages;
  };
  result.pages_old = count_pages(*old_site);
  result.pages_new = count_pages(*new_site);
  result.total_operations = delta->operation_count();

  const auto old_index = IndexByXid(*old_site);
  const auto new_index = IndexByXid(*new_site);
  const auto resolve = [](const std::unordered_map<Xid, const XmlNode*>& index,
                          Xid xid) -> const XmlNode* {
    auto it = index.find(xid);
    return it == index.end() ? nullptr : it->second;
  };

  // kind-per-URL accumulator: added/removed win over moved over modified.
  struct Accumulated {
    bool added = false;
    bool removed = false;
    bool relocated = false;
    size_t operations = 0;
  };
  std::map<std::string, Accumulated> by_url;

  const auto charge = [&](const XmlNode* node, bool relocation) {
    const std::string_view* url = OwningPageUrl(node);
    if (url == nullptr) return;
    Accumulated& acc = by_url[std::string(*url)];
    acc.operations += 1;
    if (relocation && node->is_element() && node->label() == kPageLabel) {
      acc.relocated = true;
    }
  };

  // Page creation/removal is read off the op *snapshots*: they exclude
  // moved-in/moved-out material, so a page that merely relocated through
  // an inserted or deleted region is not miscounted.
  for (const InsertOp& op : delta->inserts()) {
    bool counted_pages = false;
    if (op.subtree != nullptr) {
      op.subtree->Visit([&](const XmlNode* n) {
        if (n->is_element() && n->label() == kPageLabel) {
          const std::string_view* url = n->FindAttribute(kUrlAttribute);
          if (url != nullptr) {
            by_url[std::string(*url)].added = true;
            by_url[std::string(*url)].operations += 1;
            counted_pages = true;
          }
        }
      });
    }
    if (!counted_pages) charge(resolve(new_index, op.xid), false);
  }
  for (const DeleteOp& op : delta->deletes()) {
    bool counted_pages = false;
    if (op.subtree != nullptr) {
      op.subtree->Visit([&](const XmlNode* n) {
        if (n->is_element() && n->label() == kPageLabel) {
          const std::string_view* url = n->FindAttribute(kUrlAttribute);
          if (url != nullptr) {
            by_url[std::string(*url)].removed = true;
            by_url[std::string(*url)].operations += 1;
            counted_pages = true;
          }
        }
      });
    }
    if (!counted_pages) charge(resolve(old_index, op.xid), false);
  }
  for (const MoveOp& op : delta->moves()) {
    charge(resolve(new_index, op.xid), /*relocation=*/true);
  }
  for (const UpdateOp& op : delta->updates()) {
    charge(resolve(new_index, op.xid), false);
  }
  for (const AttributeOp& op : delta->attribute_ops()) {
    charge(resolve(new_index, op.element_xid), false);
  }

  for (auto& [url, acc] : by_url) {
    PageChange change;
    change.url = url;
    change.operations = acc.operations;
    if (acc.added && acc.removed) {
      // Same URL deleted and re-created: report as modified.
      change.kind = PageChangeKind::kModified;
      ++result.pages_modified;
    } else if (acc.added) {
      change.kind = PageChangeKind::kAdded;
      ++result.pages_added;
    } else if (acc.removed) {
      change.kind = PageChangeKind::kRemoved;
      ++result.pages_removed;
    } else if (acc.relocated && acc.operations == 1) {
      change.kind = PageChangeKind::kMoved;
      ++result.pages_moved;
    } else {
      change.kind = PageChangeKind::kModified;
      ++result.pages_modified;
    }
    result.changes.push_back(std::move(change));
  }
  return result;
}

std::vector<Result<SiteDiffResult>> DiffSitesBatch(
    std::vector<SiteDiffJob> jobs, int threads, const DiffOptions& options) {
  std::vector<Result<SiteDiffResult>> results;
  results.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    results.emplace_back(Status::Corruption("site diff never ran"));
  }
  if (jobs.empty()) return results;

  // Pairs share nothing — each worker parses its pair into fresh arenas
  // and runs the whole site diff; the only shared state is the claim
  // index. Results land in pre-sized slots, so no output lock either.
  std::atomic<size_t> next_job{0};
  const int worker_count =
      std::max(1, std::min<int>(threads, static_cast<int>(jobs.size())));
  ThreadPool pool(worker_count);
  for (int w = 0; w < worker_count; ++w) {
    pool.Submit([&jobs, &results, &next_job, &options] {
      for (size_t index = next_job.fetch_add(1, std::memory_order_relaxed);
           index < jobs.size();
           index = next_job.fetch_add(1, std::memory_order_relaxed)) {
        Result<XmlDocument> old_site = ParseXml(jobs[index].old_xml);
        if (!old_site.ok()) {
          results[index] = Status::ParseError("old snapshot: " +
                                              old_site.status().ToString());
          continue;
        }
        Result<XmlDocument> new_site = ParseXml(jobs[index].new_xml);
        if (!new_site.ok()) {
          results[index] = Status::ParseError("new snapshot: " +
                                              new_site.status().ToString());
          continue;
        }
        results[index] =
            DiffSites(&old_site.value(), &new_site.value(), options);
      }
    });
  }
  pool.Wait();
  return results;
}

}  // namespace xydiff
