#ifndef XYDIFF_VERSION_STORAGE_H_
#define XYDIFF_VERSION_STORAGE_H_

#include <string>
#include <vector>

#include "util/context.h"
#include "util/env.h"
#include "util/status.h"
#include "version/repository.h"

namespace xydiff {

/// On-disk persistence for the change-centric repository (Figure 1's
/// "Repository" box), crash-safe. Layout of a repository directory:
///
///   MANIFEST            the commit point. Names the live epoch, the
///                       chain length, and the size + CRC-64 of every
///                       live file; self-checksummed (last line is the
///                       CRC of everything above it). A repository IS
///                       whatever its MANIFEST says — files the
///                       MANIFEST does not mention are ignored.
///   current.<E>.xml     newest version for epoch E (plain XML, DOCTYPE
///                       with the document's ID-attribute declarations)
///   current.<E>.meta    XID bookkeeping: line 1 `nextxid <N>`, line 2
///                       the XID-map of the whole document ("(1-15;17)")
///   delta.000001.bin    delta chain in the compact binary codec
///   delta.000002.bin    (delta/codec.h); delta.00000k transforms
///                       version k into version k+1. Legacy stores hold
///                       delta.00000k.xml instead (the XML delta
///                       serialization); the loader accepts either
///                       format per position and the next save rewrites
///                       the whole chain in binary.
///   checkpoint.000001.xml/.meta
///                       pinned version 1 (same pair format as current),
///                       the base of forward reconstruction
///   skip.<L>.<I>.bin    skip-delta levels[L][I] of the reconstruction
///                       index (binary codec): the composition of chain
///                       deltas [I*S, (I+1)*S) with S = 2^(L+1)
///   quarantine/         corrupt files moved aside by recovery, never
///                       deleted — forensics, not garbage
///
/// Write protocol (see DESIGN.md "Durability and recovery"): every file
/// goes temp → fsync → rename; the epoch counter gives changed current
/// files a fresh name; the MANIFEST rename is the single atomic commit
/// point; one directory fsync makes the batch durable. A crash at any
/// step leaves either the old or the new repository, never a hybrid.
///
/// Checkpoint and skip files are *derived* state: they are loaded only
/// from a fully verified, fully clean store, and on any damage (or any
/// chain renumbering during recovery) the whole index is discarded and
/// reconstruction falls back to the plain chain — degraded cost, never
/// degraded correctness.
///
/// All I/O is routed through an Env (util/env.h); `env == nullptr`
/// means Env::Default(). Chain deltas are stored in the binary codec
/// for compactness; the XML delta serialization (delta/delta_xml.h)
/// remains the interchange format — the two round-trip byte-identically
/// through Delta, so the §2 queryability property is one decode away.

/// What LoadRepository had to do to hand back a repository. `clean`
/// means the store verified end-to-end; anything else is degradation,
/// reported instead of failing wholesale.
struct RecoveryReport {
  bool clean = true;
  bool manifest_valid = true;   ///< MANIFEST present and self-consistent.
  bool used_fallback = false;   ///< Current files came from the previous
                                ///< epoch (crash before cleanup).
  int recovered_version_count = 0;
  size_t dropped_deltas = 0;    ///< Oldest history entries lost: a corrupt
                                ///< delta severs everything older than
                                ///< itself (reconstruction walks backward
                                ///< from the current version).
  std::vector<std::string> quarantined;  ///< Files moved to quarantine/.
  std::vector<std::string> notes;        ///< Human-readable event log.

  /// Multi-line summary for logs and the command-line tool.
  std::string ToString() const;
};

/// Writes the repository into `directory` (created if absent). Atomic:
/// after a crash at any point, LoadRepository yields either the previous
/// contents or this repository, bit-exactly. An error return means the
/// previous contents are still live (the MANIFEST was not committed),
/// except for IOError during post-commit cleanup, which is swallowed —
/// stale files are invisible to the loader.
Status SaveRepository(const VersionRepository& repo,
                      const std::string& directory, Env* env = nullptr);

/// One repository in a group commit: what to write and where —
/// `subdirectory` is a single path component under the batch parent
/// directory (no separators).
struct RepositorySaveSlot {
  const VersionRepository* repo = nullptr;
  std::string subdirectory;
};

/// Group-commits many repositories under `parent` with ONE durable
/// commit point for the whole batch, instead of one MANIFEST rename +
/// directory sync per repository. Protocol (see DESIGN.md "Group
/// commit"):
///
///   1. every slot's data files are written and made durable (its
///      MANIFEST still names the old state);
///   2. a `BATCH-COMMIT` journal holding every slot's new MANIFEST is
///      atomically written into `parent` and synced — THE commit point;
///   3. each slot's MANIFEST is renamed into place and the journal is
///      removed (crash here: RecoverRepositoryBatch finishes the job
///      from the journal alone).
///
/// Atomicity is all-or-nothing across the whole batch: a reopen after a
/// crash at any point sees either every slot pre-batch or every slot
/// post-batch, never a mix. An error return means the journal was not
/// committed and every slot is still pre-batch, except errors during
/// step 3, where the journal is committed and recovery completes the
/// batch. Empty batches are a no-op.
///
/// `context` (optional, not owned) is checked between slots in step 1
/// and once more immediately before the journal write; a deadline or
/// cancellation there returns with every slot still pre-batch (the
/// already-written data files are unreferenced and invisible). It is
/// deliberately NOT checked after the journal commit: past the commit
/// point the batch must roll forward, or cancellation could manufacture
/// exactly the hybrid state the journal exists to prevent.
Status SaveRepositoryBatch(const std::vector<RepositorySaveSlot>& slots,
                           const std::string& parent, Env* env = nullptr,
                           const Context* context = nullptr);

/// Rolls forward (or discards) an interrupted SaveRepositoryBatch:
/// a committed journal re-writes every not-yet-switched slot MANIFEST;
/// a torn uncommitted journal is removed, leaving every slot pre-batch.
/// Call before loading repositories out of a batch parent directory
/// (Warehouse::Load does). No journal present is OK. `notes` (optional)
/// receives a human-readable event log.
Status RecoverRepositoryBatch(const std::string& parent, Env* env = nullptr,
                              std::vector<std::string>* notes = nullptr);

/// Loads a repository persisted by SaveRepository, verifying every file
/// against the MANIFEST checksums and self-healing where possible:
/// corrupt current files fall back to the previous epoch if it
/// survives; a corrupt delta quarantines itself and the (unreachable)
/// older chain; `report` (optional) says what happened. Corruption is
/// only declared for bytes that were read successfully but verify
/// wrong — a transient IOError aborts the load untouched.
Result<VersionRepository> LoadRepository(const std::string& directory,
                                         Env* env = nullptr,
                                         RecoveryReport* report = nullptr);

/// Persists a standalone document with its XID bookkeeping (an
/// xml/meta pair at an arbitrary path prefix, no MANIFEST). Each file
/// is written atomically. Used by the command-line tools to chain
/// diffs across invocations.
Status SaveDocumentWithXids(const XmlDocument& doc,
                            const std::string& xml_path,
                            const std::string& meta_path, Env* env = nullptr);

/// Loads a document persisted by SaveDocumentWithXids.
Result<XmlDocument> LoadDocumentWithXids(const std::string& xml_path,
                                         const std::string& meta_path,
                                         Env* env = nullptr);

}  // namespace xydiff

#endif  // XYDIFF_VERSION_STORAGE_H_
