#ifndef XYDIFF_VERSION_STORAGE_H_
#define XYDIFF_VERSION_STORAGE_H_

#include <string>

#include "util/status.h"
#include "version/repository.h"

namespace xydiff {

/// On-disk persistence for the change-centric repository (Figure 1's
/// "Repository" box). Layout of a repository directory:
///
///   current.xml        newest version (plain XML, DOCTYPE with the
///                      document's ID-attribute declarations)
///   current.meta       XID bookkeeping: line 1 `nextxid <N>`, line 2 the
///                      XID-map of the whole document ("(1-15;17)"),
///                      which restores every node's persistent identifier
///                      on load (text nodes cannot carry attributes, so
///                      XIDs live here, not in the XML)
///   delta.000001.xml   delta chain; delta.00000k transforms version k
///   delta.000002.xml   into version k+1
///   ...
///
/// Everything is XML or one trivial text file — the "deltas are regular
/// XML documents, queryable like any other" property of §2 extends to the
/// persisted store.

/// Writes the repository into `directory` (created if absent; existing
/// repository files are overwritten).
Status SaveRepository(const VersionRepository& repo,
                      const std::string& directory);

/// Loads a repository persisted by SaveRepository.
Result<VersionRepository> LoadRepository(const std::string& directory);

/// Persists a standalone document with its XID bookkeeping (the
/// `current.xml`/`current.meta` pair at an arbitrary path prefix). Used
/// by the command-line tools to chain diffs across invocations.
Status SaveDocumentWithXids(const XmlDocument& doc,
                            const std::string& xml_path,
                            const std::string& meta_path);

/// Loads a document persisted by SaveDocumentWithXids.
Result<XmlDocument> LoadDocumentWithXids(const std::string& xml_path,
                                         const std::string& meta_path);

}  // namespace xydiff

#endif  // XYDIFF_VERSION_STORAGE_H_
