#include "version/storage.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "delta/delta_xml.h"
#include "util/sharded_mutex.h"
#include "util/string_util.h"
#include "xid/xid_map.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

namespace fs = std::filesystem;

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::Corruption("short write: " + path);
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string DeltaPath(const std::string& directory, size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "delta.%06zu.xml", index + 1);
  return directory + "/" + name;
}

/// Concurrent batch workers may save/load distinct repositories at once;
/// this sharded map serializes accesses *per directory* (two shards for
/// two different directories proceed in parallel) so a reader never sees
/// a half-written delta chain.
ShardedMutexMap<16>& DirectoryLocks() {
  static ShardedMutexMap<16> locks;
  return locks;
}

}  // namespace

Status SaveDocumentWithXids(const XmlDocument& doc,
                            const std::string& xml_path,
                            const std::string& meta_path) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("cannot persist an empty document");
  }
  SerializeOptions options;
  options.xml_declaration = true;
  options.doctype = true;
  XYDIFF_RETURN_IF_ERROR(WriteFile(xml_path, SerializeDocument(doc, options)));
  std::ostringstream meta;
  meta << "nextxid " << doc.next_xid() << "\n"
       << XidMap::FromSubtree(*doc.root()).ToString() << "\n";
  return WriteFile(meta_path, meta.str());
}

Result<XmlDocument> LoadDocumentWithXids(const std::string& xml_path,
                                         const std::string& meta_path) {
  Result<XmlDocument> doc = ParseXmlFile(xml_path);
  if (!doc.ok()) return doc.status();
  Result<std::string> meta = ReadFile(meta_path);
  if (!meta.ok()) return meta.status();

  const std::vector<std::string_view> lines = SplitLines(*meta);
  if (lines.size() < 2 || !StartsWith(lines[0], "nextxid ")) {
    return Status::Corruption("malformed meta file: " + meta_path);
  }
  uint64_t next_xid = 0;
  if (!ParseUint64(Trim(lines[0].substr(8)), &next_xid) || next_xid == 0) {
    return Status::Corruption("bad nextxid in meta file: " + meta_path);
  }
  Result<XidMap> map = XidMap::Parse(lines[1]);
  if (!map.ok()) return map.status();
  if (doc->root() == nullptr) {
    return Status::Corruption("persisted document has no root: " + xml_path);
  }
  XYDIFF_RETURN_IF_ERROR(map->ApplyToSubtree(doc->root()));
  doc->set_next_xid(next_xid);
  return doc;
}

Status SaveRepository(const VersionRepository& repo,
                      const std::string& directory) {
  MutexLock lock(DirectoryLocks().For(directory));
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::NotFound("cannot create directory " + directory + ": " +
                            ec.message());
  }
  XYDIFF_RETURN_IF_ERROR(SaveDocumentWithXids(repo.current(),
                                              directory + "/current.xml",
                                              directory + "/current.meta"));
  for (size_t i = 0; i < repo.deltas().size(); ++i) {
    XYDIFF_RETURN_IF_ERROR(
        WriteFile(DeltaPath(directory, i), SerializeDelta(repo.deltas()[i])));
  }
  // Drop stale chain entries from a longer previous save. A failed
  // removal must be an error, not a shrug: a leftover delta.NNNNNN.xml
  // past the real chain would be loaded as version history.
  for (size_t i = repo.deltas().size();; ++i) {
    const std::string path = DeltaPath(directory, i);
    if (!fs::exists(path)) break;
    if (!fs::remove(path, ec) || ec) {
      return Status::Corruption("cannot remove stale delta " + path + ": " +
                                ec.message());
    }
  }
  return Status::OK();
}

Result<VersionRepository> LoadRepository(const std::string& directory) {
  MutexLock lock(DirectoryLocks().For(directory));
  Result<XmlDocument> current = LoadDocumentWithXids(
      directory + "/current.xml", directory + "/current.meta");
  if (!current.ok()) return current.status();

  std::vector<Delta> deltas;
  for (size_t i = 0;; ++i) {
    const std::string path = DeltaPath(directory, i);
    if (!fs::exists(path)) break;
    Result<std::string> text = ReadFile(path);
    if (!text.ok()) return text.status();
    Result<Delta> delta = ParseDelta(*text);
    if (!delta.ok()) {
      return Status::Corruption("bad delta " + path + ": " +
                                delta.status().message());
    }
    deltas.push_back(std::move(*delta));
  }
  return VersionRepository::FromParts(std::move(current.value()),
                                      std::move(deltas));
}

}  // namespace xydiff
