#include "version/storage.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "delta/apply.h"
#include "delta/codec.h"
#include "delta/delta_xml.h"
#include "util/hash.h"
#include "util/sharded_mutex.h"
#include "util/string_util.h"
#include "xid/xid_map.h"
#include "xml/xid_map_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestMagic[] = "xydiff-manifest 2";
constexpr char kQuarantineDir[] = "quarantine";
constexpr char kBatchJournalName[] = "BATCH-COMMIT";
constexpr char kBatchMagic[] = "xydiff-batch 1";

std::string DeltaName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "delta.%06zu.xml", index + 1);
  return name;
}

std::string DeltaBinName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "delta.%06zu.bin", index + 1);
  return name;
}

constexpr char kCheckpointXmlName[] = "checkpoint.000001.xml";
constexpr char kCheckpointMetaName[] = "checkpoint.000001.meta";

/// Skip-delta file for ReconstructionIndex::levels[level][index]
/// (both zero-based; the file covers chain deltas
/// [index*span, (index+1)*span) with span = 2 << level).
std::string SkipName(size_t level, size_t index) {
  char name[64];
  std::snprintf(name, sizeof(name), "skip.%06zu.%06zu.bin", level, index);
  return name;
}

bool ParseSkipName(const std::string& name, size_t* level, size_t* index) {
  unsigned long long l = 0, i = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "skip.%06llu.%06llu.bin%n", &l, &i,
                  &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *level = static_cast<size_t>(l);
  *index = static_cast<size_t>(i);
  return true;
}

std::string CurrentXmlName(int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "current.%06d.xml", epoch);
  return name;
}

std::string CurrentMetaName(int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "current.%06d.meta", epoch);
  return name;
}

std::string Hex64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

/// One `file <name> <size> <crc64>` manifest entry.
struct ManifestFile {
  std::string name;
  size_t size = 0;
  uint64_t crc = 0;
};

/// Parsed MANIFEST: the complete description of one live repository
/// state. `prev_*` point at the epoch this save superseded, which is
/// the recovery fallback while the old files still exist.
struct Manifest {
  int epoch = 0;
  size_t chain = 0;
  int prev_epoch = 0;
  size_t prev_chain = 0;
  std::vector<ManifestFile> files;

  const ManifestFile* Find(const std::string& name) const {
    for (const ManifestFile& f : files) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

std::string FormatManifest(const Manifest& manifest) {
  std::ostringstream out;
  out << kManifestMagic << "\n"
      << "epoch " << manifest.epoch << "\n"
      << "chain " << manifest.chain << "\n";
  if (manifest.prev_epoch > 0) {
    out << "prev " << manifest.prev_epoch << " " << manifest.prev_chain
        << "\n";
  }
  for (const ManifestFile& f : manifest.files) {
    out << "file " << f.name << " " << f.size << " " << Hex64(f.crc) << "\n";
  }
  const std::string body = out.str();
  return body + "crc " + Hex64(Crc64(body)) + "\n";
}

/// Strict parse with self-checksum verification: any deviation is
/// Corruption (the caller decides whether that means salvage or a fresh
/// epoch counter).
Result<Manifest> ParseManifest(std::string_view text) {
  const size_t crc_line = text.rfind("crc ");
  if (crc_line == std::string::npos ||
      (crc_line != 0 && text[crc_line - 1] != '\n')) {
    return Status::Corruption("MANIFEST has no checksum line");
  }
  uint64_t stored_crc = 0;
  if (!ParseHex64(Trim(text.substr(crc_line + 4)), &stored_crc)) {
    return Status::Corruption("MANIFEST checksum line is malformed");
  }
  if (Crc64(text.substr(0, crc_line)) != stored_crc) {
    return Status::Corruption("MANIFEST failed its self-checksum");
  }

  Manifest manifest;
  const std::vector<std::string_view> lines =
      SplitLines(text.substr(0, crc_line));
  if (lines.empty() || lines[0] != kManifestMagic) {
    return Status::Corruption("MANIFEST has a bad magic line");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::istringstream line{std::string(lines[i])};
    std::string keyword;
    line >> keyword;
    if (keyword == "epoch") {
      line >> manifest.epoch;
    } else if (keyword == "chain") {
      line >> manifest.chain;
    } else if (keyword == "prev") {
      line >> manifest.prev_epoch >> manifest.prev_chain;
    } else if (keyword == "file") {
      ManifestFile f;
      std::string crc_text;
      line >> f.name >> f.size >> crc_text;
      if (!ParseHex64(crc_text, &f.crc)) {
        return Status::Corruption("MANIFEST file entry has a bad checksum: " +
                                  std::string(lines[i]));
      }
      manifest.files.push_back(std::move(f));
    } else if (!keyword.empty()) {
      return Status::Corruption("MANIFEST has an unknown line: " +
                                std::string(lines[i]));
    }
    if (line.fail()) {
      return Status::Corruption("MANIFEST line is malformed: " +
                                std::string(lines[i]));
    }
  }
  if (manifest.epoch <= 0) {
    return Status::Corruption("MANIFEST has no epoch");
  }
  return manifest;
}

std::string SerializeCurrentXml(const XmlDocument& doc) {
  SerializeOptions options;
  options.xml_declaration = true;
  options.doctype = true;
  return SerializeDocument(doc, options);
}

std::string SerializeCurrentMeta(const XmlDocument& doc) {
  std::ostringstream meta;
  meta << "nextxid " << doc.next_xid() << "\n"
       << XidMapFromSubtree(*doc.root()).ToString() << "\n";
  return meta.str();
}

/// Rebuilds a document from its persisted xml/meta texts, restoring
/// every node's XID. The document is internally validated (XID-map
/// arity must match the tree), so this doubles as a structural check.
Result<XmlDocument> ParseDocumentPair(std::string_view xml_text,
                                      std::string_view meta_text,
                                      const std::string& context) {
  Result<XmlDocument> doc = ParseXml(xml_text);
  if (!doc.ok()) return doc.status();
  const std::vector<std::string_view> lines = SplitLines(meta_text);
  if (lines.size() < 2 || !StartsWith(lines[0], "nextxid ")) {
    return Status::Corruption("malformed meta file: " + context);
  }
  uint64_t next_xid = 0;
  if (!ParseUint64(Trim(lines[0].substr(8)), &next_xid) || next_xid == 0) {
    return Status::Corruption("bad nextxid in meta file: " + context);
  }
  Result<XidMap> map = XidMap::Parse(lines[1]);
  if (!map.ok()) return map.status();
  if (doc->root() == nullptr) {
    return Status::Corruption("persisted document has no root: " + context);
  }
  XYDIFF_RETURN_IF_ERROR(ApplyXidMapToSubtree(*map, doc->root()));
  doc->set_next_xid(next_xid);
  return doc;
}

/// Concurrent batch workers may save/load distinct repositories at once;
/// this sharded map serializes accesses *per directory* (two shards for
/// two different directories proceed in parallel) so a reader never sees
/// a half-written delta chain.
ShardedMutexMap<16>& DirectoryLocks() {
  static ShardedMutexMap<16> locks;
  return locks;
}

Env* Resolve(Env* env) { return env != nullptr ? env : Env::Default(); }

/// Reads the MANIFEST. Outcomes: a manifest; `nullopt` (absent or
/// corrupt — `*corrupt` says which); or a propagated transient error.
Result<std::optional<Manifest>> TryReadManifest(const std::string& directory,
                                                Env* env, bool* corrupt) {
  *corrupt = false;
  Result<std::string> text =
      env->ReadFile(directory + "/" + kManifestName);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return std::optional<Manifest>();
    }
    return text.status();
  }
  Result<Manifest> manifest = ParseManifest(*text);
  if (!manifest.ok()) {
    *corrupt = true;
    return std::optional<Manifest>();
  }
  return std::optional<Manifest>(std::move(*manifest));
}

/// Moves `dir/name` into `dir/quarantine/` — best effort: recovery must
/// not die on the forensics step. Records the outcome in the report.
void QuarantineFile(const std::string& directory, const std::string& name,
                    Env* env, RecoveryReport* report) {
  Status made = env->CreateDirs(directory + "/" + kQuarantineDir);
  Status moved =
      made.ok() ? env->RenameFile(directory + "/" + name,
                                  directory + "/" + kQuarantineDir + "/" +
                                      name)
                : made;
  if (moved.ok()) {
    report->quarantined.push_back(name);
  } else {
    report->notes.push_back("could not quarantine " + name + ": " +
                            moved.ToString());
  }
}

/// Reads and checksum-verifies one manifest-listed file. Corruption and
/// absence come back as Corruption (recoverable by quarantine/fallback);
/// transient read failures propagate as IOError so the caller aborts
/// instead of "healing" a store that is merely unreachable.
Result<std::string> ReadVerified(const std::string& directory,
                                 const ManifestFile& entry, Env* env) {
  Result<std::string> text = env->ReadFile(directory + "/" + entry.name);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return Status::Corruption("manifest-listed file missing: " +
                                entry.name);
    }
    return text.status();
  }
  if (text->size() != entry.size) {
    return Status::Corruption(entry.name + " has " +
                              std::to_string(text->size()) +
                              " bytes, manifest says " +
                              std::to_string(entry.size));
  }
  if (Crc64(*text) != entry.crc) {
    return Status::Corruption(entry.name + " failed its CRC-64 check");
  }
  return text;
}

/// Post-commit removal of files the new MANIFEST does not reference:
/// stale deltas, superseded current epochs, leftover temp files. Best
/// effort — the loader never looks at unreferenced files, so a failed
/// removal costs bytes, not correctness (unlike the pre-MANIFEST
/// scan-based loader, where a stale delta silently became history).
void CleanupUnreferenced(const std::string& directory,
                         const Manifest& manifest, Env* env) {
  Result<std::vector<std::string>> names = env->ListDir(directory);
  // Justified discard: cleanup is best-effort by contract (see above).
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    if (name == kManifestName || name == kQuarantineDir) continue;
    const bool managed = StartsWith(name, "delta.") ||
                         StartsWith(name, "current.") ||
                         StartsWith(name, "checkpoint.") ||
                         StartsWith(name, "skip.") ||
                         (name.size() > 4 &&
                          name.compare(name.size() - 4, 4, ".tmp") == 0);
    if (!managed || manifest.Find(name) != nullptr) continue;
    // Justified discard: see function comment — stale files are inert.
    (void)env->RemoveFile(directory + "/" + name);
  }
}

/// Walks the chain backward from the current version, proving every
/// delta still applies (deltas are invertible, so validation is one
/// inverse-apply each). Returns the number of *oldest* deltas that must
/// be dropped: a delta that no longer applies severs every older one,
/// because reconstruction can never step past it.
size_t VerifyChainApplies(const XmlDocument& current,
                          const std::vector<Delta>& deltas,
                          size_t file_index_base, RecoveryReport* report) {
  XmlDocument doc = current.Clone();
  for (size_t j = deltas.size(); j > 0; --j) {
    const Status applied = ApplyDeltaInverse(deltas[j - 1], &doc);
    if (!applied.ok()) {
      report->notes.push_back(
          "chain delta " + std::to_string(file_index_base + j) +
          " no longer applies to the recovered document (" +
          applied.ToString() + "); dropping it and the older chain");
      return j;
    }
  }
  return 0;
}

/// Quarantines whichever on-disk forms of chain delta `index` exist
/// (binary and/or legacy XML — a half-upgraded store may hold both).
void QuarantineDelta(const std::string& directory, size_t index, Env* env,
                     RecoveryReport* report) {
  for (const std::string& name : {DeltaBinName(index), DeltaName(index)}) {
    if (env->FileExists(directory + "/" + name)) {
      QuarantineFile(directory, name, env, report);
    }
  }
}

/// Pre-MANIFEST layout (`current.xml` + scanned chain), kept loadable:
/// strict, no checksums — the report flags the store as unverified.
Result<VersionRepository> LoadLegacyRepository(const std::string& directory,
                                               Env* env,
                                               RecoveryReport* report) {
  report->manifest_valid = false;
  report->clean = false;
  report->notes.push_back("legacy layout (no MANIFEST): loaded unverified");
  Result<std::string> xml = env->ReadFile(directory + "/current.xml");
  if (!xml.ok()) return xml.status();
  Result<std::string> meta = env->ReadFile(directory + "/current.meta");
  if (!meta.ok()) return meta.status();
  Result<XmlDocument> current =
      ParseDocumentPair(*xml, *meta, directory + "/current.meta");
  if (!current.ok()) return current.status();

  std::vector<Delta> deltas;
  for (size_t i = 0;; ++i) {
    const std::string path = directory + "/" + DeltaName(i);
    if (!env->FileExists(path)) break;
    Result<std::string> text = env->ReadFile(path);
    if (!text.ok()) return text.status();
    Result<Delta> delta = ParseDelta(*text);
    if (!delta.ok()) {
      return Status::Corruption("bad delta " + path + ": " +
                                delta.status().message());
    }
    deltas.push_back(std::move(*delta));
  }
  report->recovered_version_count = static_cast<int>(deltas.size()) + 1;
  return VersionRepository::FromParts(std::move(current.value()),
                                      std::move(deltas));
}

/// Loads the current document for `epoch` without manifest checksums
/// (used for the previous-epoch fallback, whose manifest is gone):
/// parse-level validation only.
Result<XmlDocument> LoadCurrentUnverified(const std::string& directory,
                                          int epoch, Env* env) {
  Result<std::string> xml =
      env->ReadFile(directory + "/" + CurrentXmlName(epoch));
  if (!xml.ok()) return xml.status();
  Result<std::string> meta =
      env->ReadFile(directory + "/" + CurrentMetaName(epoch));
  if (!meta.ok()) return meta.status();
  return ParseDocumentPair(*xml, *meta,
                           directory + "/" + CurrentMetaName(epoch));
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream out;
  out << (clean ? "clean" : "recovered") << ": "
      << recovered_version_count << " version(s)";
  if (!manifest_valid) out << ", manifest invalid";
  if (used_fallback) out << ", fell back to previous epoch";
  if (dropped_deltas > 0) out << ", dropped " << dropped_deltas
                              << " oldest delta(s)";
  if (!quarantined.empty()) {
    out << ", quarantined:";
    for (const std::string& name : quarantined) out << " " << name;
  }
  for (const std::string& note : notes) out << "\n  " << note;
  return out.str();
}

Status SaveDocumentWithXids(const XmlDocument& doc,
                            const std::string& xml_path,
                            const std::string& meta_path, Env* env) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("cannot persist an empty document");
  }
  env = Resolve(env);
  XYDIFF_RETURN_IF_ERROR(
      env->WriteFileAtomic(xml_path, SerializeCurrentXml(doc)));
  return env->WriteFileAtomic(meta_path, SerializeCurrentMeta(doc));
}

Result<XmlDocument> LoadDocumentWithXids(const std::string& xml_path,
                                         const std::string& meta_path,
                                         Env* env) {
  env = Resolve(env);
  Result<std::string> xml = env->ReadFile(xml_path);
  if (!xml.ok()) return xml.status();
  Result<std::string> meta = env->ReadFile(meta_path);
  if (!meta.ok()) return meta.status();
  return ParseDocumentPair(*xml, *meta, meta_path);
}

namespace {

/// Writes a repository's *data* files (delta chain + epoch-fresh current
/// snapshot) into `directory` and returns the manifest describing them —
/// WITHOUT committing it. The live MANIFEST still names the old state
/// until the caller writes the returned manifest (SaveRepository) or
/// group-commits it through a batch journal (SaveRepositoryBatch).
/// Caller holds the directory's lock.
Result<Manifest> WriteRepositoryData(const VersionRepository& repo,
                                     const std::string& directory, Env* env) {
  if (repo.current().root() == nullptr) {
    return Status::InvalidArgument("cannot persist an empty document");
  }
  XYDIFF_RETURN_IF_ERROR(env->CreateDirs(directory));

  bool old_corrupt = false;
  Result<std::optional<Manifest>> old_manifest =
      TryReadManifest(directory, env, &old_corrupt);
  if (!old_manifest.ok()) return old_manifest.status();
  const Manifest* old =
      old_manifest->has_value() ? &old_manifest->value() : nullptr;

  Manifest next;
  next.epoch = old != nullptr ? old->epoch + 1 : 1;
  next.chain = repo.deltas().size();
  if (old != nullptr) {
    next.prev_epoch = old->epoch;
    next.prev_chain = old->chain;
  }

  // Writes one data file unless the old manifest already lists the same
  // bytes under the same name — in the common append-only case every
  // prefix delta, the checkpoint, and every old skip span are skipped,
  // so a commit writes one delta, the newly completed skip spans, two
  // current files, and the MANIFEST.
  auto write_unless_unchanged = [&](std::string name,
                                    const std::string& text) -> Status {
    ManifestFile entry{std::move(name), text.size(), Crc64(text)};
    const ManifestFile* existing =
        old != nullptr ? old->Find(entry.name) : nullptr;
    // The existence check matters after recovery: a quarantined file is
    // still listed (with matching bytes) in the superseded manifest but
    // is gone from the directory, and must be rewritten, not skipped.
    const bool unchanged = existing != nullptr &&
                           existing->size == entry.size &&
                           existing->crc == entry.crc &&
                           env->FileExists(directory + "/" + entry.name);
    if (!unchanged) {
      XYDIFF_RETURN_IF_ERROR(
          env->WriteFileAtomic(directory + "/" + entry.name, text));
    }
    next.files.push_back(std::move(entry));
    return Status::OK();
  };

  // Delta chain, in the compact binary codec (delta/codec.h). A legacy
  // store whose manifest lists delta.*.xml entries finds no matching
  // .bin entry, so the whole chain is rewritten in binary here and the
  // XML files become unreferenced — upgraded on the next save.
  for (size_t i = 0; i < repo.deltas().size(); ++i) {
    XYDIFF_RETURN_IF_ERROR(write_unless_unchanged(
        DeltaBinName(i), EncodeDeltaBinary(repo.deltas()[i])));
  }

  // Reconstruction index: the version-1 checkpoint plus every present
  // skip-delta entry. All of it is derived state — a reader that finds
  // it missing or damaged falls back to the plain chain — but persisting
  // it keeps reopened stores at O(log n) Checkout without re-deriving
  // ~n compositions. Crash-safety is inherited: these are ordinary
  // manifest-listed data files, invisible until the MANIFEST commits.
  const ReconstructionIndex& index = repo.reconstruction_index();
  if (index.checkpoint.has_value() && !repo.deltas().empty()) {
    XYDIFF_RETURN_IF_ERROR(write_unless_unchanged(
        kCheckpointXmlName, SerializeCurrentXml(*index.checkpoint)));
    XYDIFF_RETURN_IF_ERROR(write_unless_unchanged(
        kCheckpointMetaName, SerializeCurrentMeta(*index.checkpoint)));
    for (size_t level = 0; level < index.levels.size(); ++level) {
      for (size_t i = 0; i < index.levels[level].size(); ++i) {
        if (!index.levels[level][i].has_value()) continue;
        XYDIFF_RETURN_IF_ERROR(write_unless_unchanged(
            SkipName(level, i), EncodeDeltaBinary(*index.levels[level][i])));
      }
    }
  }

  // Current snapshot under an epoch-fresh name, so the live epoch's
  // files are never written over and a crashed save cannot corrupt them.
  const std::string xml_text = SerializeCurrentXml(repo.current());
  const std::string meta_text = SerializeCurrentMeta(repo.current());
  const std::string xml_name = CurrentXmlName(next.epoch);
  const std::string meta_name = CurrentMetaName(next.epoch);
  XYDIFF_RETURN_IF_ERROR(
      env->WriteFileAtomic(directory + "/" + xml_name, xml_text));
  XYDIFF_RETURN_IF_ERROR(
      env->WriteFileAtomic(directory + "/" + meta_name, meta_text));
  next.files.push_back({xml_name, xml_text.size(), Crc64(xml_text)});
  next.files.push_back({meta_name, meta_text.size(), Crc64(meta_text)});
  return next;
}

}  // namespace

Status SaveRepository(const VersionRepository& repo,
                      const std::string& directory, Env* env) {
  MutexLock lock(DirectoryLocks().For(directory));
  env = Resolve(env);
  Result<Manifest> next = WriteRepositoryData(repo, directory, env);
  if (!next.ok()) return next.status();

  // The commit point: the MANIFEST rename atomically switches the live
  // state; the directory fsync makes the whole batch durable.
  XYDIFF_RETURN_IF_ERROR(env->WriteFileAtomic(
      directory + "/" + kManifestName, FormatManifest(*next)));
  XYDIFF_RETURN_IF_ERROR(env->SyncDir(directory));

  CleanupUnreferenced(directory, *next, env);
  return Status::OK();
}

namespace {

/// A multi-directory batch commit needs one *outer* lock per parent
/// directory (the ShardedMutexMap contract forbids holding two shards
/// of one map at once, and two aliasing keys from the same map would
/// self-deadlock against the per-slot DirectoryLocks). Lock order is
/// always batch lock, then one slot lock at a time.
ShardedMutexMap<16>& BatchLocks() {
  static ShardedMutexMap<16> locks;
  return locks;
}

/// One slot entry recovered from a batch journal.
struct BatchSlotEntry {
  std::string subdirectory;
  std::string manifest_text;  ///< Verbatim MANIFEST bytes to install.
  Manifest manifest;          ///< Parsed form (epoch guard, cleanup).
};

/// `subdirectory` must be one sane path component: the journal is
/// written by us, but a corrupted journal must never direct writes
/// outside the batch parent.
bool ValidSubdirectory(std::string_view name) {
  return !name.empty() && name != "." && name != ".." &&
         name.find('/') == std::string_view::npos &&
         name.find('\\') == std::string_view::npos;
}

std::string FormatBatchJournal(const std::vector<BatchSlotEntry>& entries) {
  std::string out = std::string(kBatchMagic) + "\n";
  for (const BatchSlotEntry& entry : entries) {
    out += "slot " + entry.subdirectory + " " +
           std::to_string(entry.manifest_text.size()) + "\n";
    out += entry.manifest_text;  // Ends with '\n' (FormatManifest).
  }
  out += "crc " + Hex64(Crc64(out)) + "\n";
  return out;
}

/// Strict parse with self-checksum verification. Any deviation is
/// Corruption, which recovery treats as "never committed": embedded
/// manifests end with their own `crc` lines, but the journal's final
/// line is the last one, so `rfind` lands on it — and a journal torn
/// off right after an embedded crc line fails the whole-body checksum.
Result<std::vector<BatchSlotEntry>> ParseBatchJournal(std::string_view text) {
  const size_t crc_line = text.rfind("crc ");
  if (crc_line == std::string::npos ||
      (crc_line != 0 && text[crc_line - 1] != '\n')) {
    return Status::Corruption("batch journal has no checksum line");
  }
  uint64_t stored_crc = 0;
  if (!ParseHex64(Trim(text.substr(crc_line + 4)), &stored_crc)) {
    return Status::Corruption("batch journal checksum line is malformed");
  }
  if (Crc64(text.substr(0, crc_line)) != stored_crc) {
    return Status::Corruption("batch journal failed its self-checksum");
  }

  size_t pos = text.find('\n');
  if (pos == std::string_view::npos ||
      text.substr(0, pos) != kBatchMagic) {
    return Status::Corruption("batch journal has a bad magic line");
  }
  ++pos;

  std::vector<BatchSlotEntry> entries;
  while (pos < crc_line) {
    const size_t line_end = text.find('\n', pos);
    if (line_end == std::string_view::npos || line_end >= crc_line) {
      return Status::Corruption("batch journal slot header is truncated");
    }
    std::istringstream header{std::string(text.substr(pos, line_end - pos))};
    std::string keyword, name;
    size_t size = 0;
    header >> keyword >> name >> size;
    if (header.fail() || keyword != "slot" || !ValidSubdirectory(name)) {
      return Status::Corruption("batch journal slot header is malformed: " +
                                std::string(text.substr(pos, line_end - pos)));
    }
    pos = line_end + 1;
    if (pos + size > crc_line) {
      return Status::Corruption("batch journal manifest overruns: " + name);
    }
    BatchSlotEntry entry;
    entry.subdirectory = std::move(name);
    entry.manifest_text = std::string(text.substr(pos, size));
    Result<Manifest> manifest = ParseManifest(entry.manifest_text);
    if (!manifest.ok()) {
      return Status::Corruption("batch journal embeds a bad manifest for " +
                                entry.subdirectory + ": " +
                                manifest.status().message());
    }
    entry.manifest = std::move(*manifest);
    entries.push_back(std::move(entry));
    pos += size;
  }
  return entries;
}

/// Rolls the journal forward (caller holds the batch lock). The journal
/// is the committed truth: every slot whose live MANIFEST is older than
/// the journal's gets the journal's installed; slots already at or past
/// it are skipped (a crash can interrupt a previous roll-forward half
/// way). A journal that fails verification was never the commit point —
/// it is removed and every slot stays pre-batch.
Status ApplyBatchJournalLocked(const std::string& parent, Env* env,
                               std::vector<std::string>* notes) {
  const std::string journal_path = std::string(parent) + "/" +
                                   kBatchJournalName;
  Result<std::string> text = env->ReadFile(journal_path);
  if (!text.ok()) {
    if (text.status().code() == StatusCode::kNotFound) {
      return Status::OK();  // Nothing pending.
    }
    return text.status();
  }
  Result<std::vector<BatchSlotEntry>> entries = ParseBatchJournal(*text);
  if (!entries.ok()) {
    if (notes != nullptr) {
      notes->push_back("discarding uncommitted batch journal: " +
                       entries.status().ToString());
    }
    // Justified discard: a torn journal is inert either way — if it
    // cannot be removed now, the next recovery discards it again.
    (void)env->RemoveFile(journal_path);
    return Status::OK();
  }
  for (const BatchSlotEntry& entry : *entries) {
    const std::string dir = parent + "/" + entry.subdirectory;
    MutexLock slot_lock(DirectoryLocks().For(dir));
    bool corrupt = false;
    Result<std::optional<Manifest>> live = TryReadManifest(dir, env, &corrupt);
    if (!live.ok()) return live.status();
    if (live->has_value() && (*live)->epoch >= entry.manifest.epoch) {
      continue;  // Already rolled forward (or overtaken by a later save).
    }
    XYDIFF_RETURN_IF_ERROR(env->CreateDirs(dir));
    XYDIFF_RETURN_IF_ERROR(
        env->WriteFileAtomic(dir + "/" + kManifestName, entry.manifest_text));
    XYDIFF_RETURN_IF_ERROR(env->SyncDir(dir));
    CleanupUnreferenced(dir, entry.manifest, env);
    if (notes != nullptr) {
      notes->push_back("rolled " + entry.subdirectory + " forward to epoch " +
                       std::to_string(entry.manifest.epoch));
    }
  }
  XYDIFF_RETURN_IF_ERROR(env->RemoveFile(journal_path));
  return env->SyncDir(parent);
}

}  // namespace

Status SaveRepositoryBatch(const std::vector<RepositorySaveSlot>& slots,
                           const std::string& parent, Env* env,
                           const Context* context) {
  env = Resolve(env);
  if (slots.empty()) return Status::OK();
  DeadlineChecker checkpoint(context, /*stride=*/1);
  XYDIFF_RETURN_IF_ERROR(checkpoint.CheckNow());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].repo == nullptr) {
      return Status::InvalidArgument("batch slot without a repository");
    }
    if (!ValidSubdirectory(slots[i].subdirectory)) {
      return Status::InvalidArgument("batch slot subdirectory invalid: " +
                                     slots[i].subdirectory);
    }
    for (size_t j = 0; j < i; ++j) {
      if (slots[j].subdirectory == slots[i].subdirectory) {
        return Status::InvalidArgument("duplicate batch slot: " +
                                       slots[i].subdirectory);
      }
    }
  }

  MutexLock batch_lock(BatchLocks().For(parent));
  XYDIFF_RETURN_IF_ERROR(env->CreateDirs(parent));
  // An interrupted predecessor rolls forward first: its journal is
  // committed truth and must not be overwritten with ours while slots
  // still point at the state before it.
  XYDIFF_RETURN_IF_ERROR(ApplyBatchJournalLocked(parent, env, nullptr));

  // Phase 1: every slot's data files, made durable NOW. The journal
  // below carries manifests only — recovery has no repositories in
  // memory, so the bytes those manifests describe must already be on
  // disk at the commit point.
  std::vector<BatchSlotEntry> entries(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    // Pre-commit check-point: bailing between slots leaves only
    // unreferenced data files behind — every slot is still pre-batch.
    XYDIFF_RETURN_IF_ERROR(checkpoint.Check());
    const std::string dir = parent + "/" + slots[i].subdirectory;
    MutexLock slot_lock(DirectoryLocks().For(dir));
    Result<Manifest> next = WriteRepositoryData(*slots[i].repo, dir, env);
    if (!next.ok()) return next.status();
    XYDIFF_RETURN_IF_ERROR(env->SyncDir(dir));
    entries[i].subdirectory = slots[i].subdirectory;
    entries[i].manifest_text = FormatManifest(*next);
    entries[i].manifest = std::move(*next);
  }

  // Phase 2: THE commit point — one atomic journal write + one parent
  // directory sync covers the entire group. The LAST context check
  // happens here; once the journal is durable the batch rolls forward
  // no matter what the context says (see the header contract).
  XYDIFF_RETURN_IF_ERROR(checkpoint.CheckNow());
  XYDIFF_RETURN_IF_ERROR(env->WriteFileAtomic(
      parent + "/" + kBatchJournalName, FormatBatchJournal(entries)));
  XYDIFF_RETURN_IF_ERROR(env->SyncDir(parent));

  // Phase 3: roll forward — deliberately the same code path recovery
  // runs, so every successful save also proves the recovery path.
  return ApplyBatchJournalLocked(parent, env, nullptr);
}

Status RecoverRepositoryBatch(const std::string& parent, Env* env,
                              std::vector<std::string>* notes) {
  env = Resolve(env);
  MutexLock batch_lock(BatchLocks().For(parent));
  return ApplyBatchJournalLocked(parent, env, notes);
}

Result<VersionRepository> LoadRepository(const std::string& directory,
                                         Env* env, RecoveryReport* report) {
  MutexLock lock(DirectoryLocks().For(directory));
  env = Resolve(env);
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};

  bool manifest_corrupt = false;
  Result<std::optional<Manifest>> read =
      TryReadManifest(directory, env, &manifest_corrupt);
  if (!read.ok()) return read.status();

  std::optional<Manifest> manifest = std::move(*read);
  if (!manifest.has_value()) {
    if (manifest_corrupt) {
      report->manifest_valid = false;
      report->clean = false;
      report->notes.push_back("MANIFEST failed verification");
      QuarantineFile(directory, kManifestName, env, report);
      // Salvage: the newest epoch whose current files still parse.
      Result<std::vector<std::string>> names = env->ListDir(directory);
      if (!names.ok()) return names.status();
      int best_epoch = 0;
      for (const std::string& name : *names) {
        int epoch = 0;
        if (std::sscanf(name.c_str(), "current.%06d.xml", &epoch) == 1) {
          best_epoch = std::max(best_epoch, epoch);
        }
      }
      while (best_epoch > 0) {
        if (LoadCurrentUnverified(directory, best_epoch, env).ok()) break;
        --best_epoch;
      }
      if (best_epoch == 0) {
        if (env->FileExists(directory + "/current.xml")) {
          return LoadLegacyRepository(directory, env, report);
        }
        return Status::Corruption(
            "MANIFEST corrupt and no loadable current version in " +
            directory);
      }
      report->notes.push_back("salvaged epoch " + std::to_string(best_epoch));
      // Synthesize a checksum-less manifest over whatever chain parses.
      Manifest salvaged;
      salvaged.epoch = best_epoch;
      salvaged.chain = 0;
      while (env->FileExists(directory + "/" +
                             DeltaBinName(salvaged.chain)) ||
             env->FileExists(directory + "/" + DeltaName(salvaged.chain))) {
        ++salvaged.chain;
      }
      manifest = std::move(salvaged);
    } else if (env->FileExists(directory + "/current.xml")) {
      return LoadLegacyRepository(directory, env, report);
    } else {
      return Status::NotFound("no repository in " + directory);
    }
  }

  const bool verified = report->manifest_valid;

  // --- current version --------------------------------------------------
  Result<XmlDocument> current = Status::Corruption("unset");
  size_t chain = manifest->chain;
  if (verified) {
    const ManifestFile* xml_entry =
        manifest->Find(CurrentXmlName(manifest->epoch));
    const ManifestFile* meta_entry =
        manifest->Find(CurrentMetaName(manifest->epoch));
    if (xml_entry == nullptr || meta_entry == nullptr) {
      return Status::Corruption("MANIFEST lists no current version for " +
                                directory);
    }
    Result<std::string> xml = ReadVerified(directory, *xml_entry, env);
    if (!xml.ok() && xml.status().code() == StatusCode::kIOError) {
      return xml.status();
    }
    Result<std::string> meta = ReadVerified(directory, *meta_entry, env);
    if (!meta.ok() && meta.status().code() == StatusCode::kIOError) {
      return meta.status();
    }
    if (xml.ok() && meta.ok()) {
      current = ParseDocumentPair(*xml, *meta,
                                  directory + "/" + meta_entry->name);
    } else {
      current = xml.ok() ? meta.status() : xml.status();
    }
    if (!current.ok()) {
      // The live epoch is damaged. Quarantine what is provably bad and
      // fall back to the superseded epoch if its files survived (a
      // crash between commit and cleanup leaves exactly that state).
      report->clean = false;
      report->notes.push_back("current epoch " +
                              std::to_string(manifest->epoch) +
                              " unusable: " + current.status().ToString());
      if (!xml.ok()) QuarantineFile(directory, xml_entry->name, env, report);
      if (!meta.ok()) {
        QuarantineFile(directory, meta_entry->name, env, report);
      }
      if (manifest->prev_epoch > 0) {
        Result<XmlDocument> fallback =
            LoadCurrentUnverified(directory, manifest->prev_epoch, env);
        if (fallback.ok()) {
          report->used_fallback = true;
          report->notes.push_back("fell back to epoch " +
                                  std::to_string(manifest->prev_epoch));
          current = std::move(fallback);
          chain = manifest->prev_chain;
        }
      }
      if (!current.ok()) {
        return Status::Corruption("current version unrecoverable in " +
                                  directory + ": " +
                                  current.status().message() + " (" +
                                  report->ToString() + ")");
      }
    }
  } else {
    current = LoadCurrentUnverified(directory, manifest->epoch, env);
    if (!current.ok()) return current.status();
  }

  // --- delta chain ------------------------------------------------------
  // Each position is read in whichever format the store holds: the
  // binary codec (delta.<k>.bin, what saves write today) or legacy XML
  // (delta.<k>.xml, pre-codec stores — loaded as-is and upgraded to
  // binary by the next save). A salvaged manifest has no file entries,
  // so the format is sniffed from the bytes instead.
  std::vector<Delta> deltas;
  size_t last_bad = 0;  // 1-based index of the newest unusable delta.
  for (size_t i = 0; i < chain; ++i) {
    std::string name = DeltaBinName(i);
    bool binary = true;
    Result<std::string> text = Status::Corruption("unset");
    if (verified && manifest->Find(name) != nullptr) {
      text = ReadVerified(directory, *manifest->Find(name), env);
    } else if (verified && manifest->Find(DeltaName(i)) != nullptr) {
      name = DeltaName(i);
      binary = false;
      text = ReadVerified(directory, *manifest->Find(name), env);
    } else {
      if (!env->FileExists(directory + "/" + name)) name = DeltaName(i);
      text = env->ReadFile(directory + "/" + name);
      binary = text.ok() && LooksLikeBinaryDelta(*text);
    }
    if (!text.ok() && text.status().code() == StatusCode::kIOError) {
      return text.status();
    }
    Result<Delta> delta = !text.ok() ? Result<Delta>(text.status())
                          : binary  ? DecodeDeltaBinary(*text)
                                    : ParseDelta(*text);
    if (!delta.ok()) {
      report->clean = false;
      report->notes.push_back(name + ": " + delta.status().ToString());
      last_bad = i + 1;
      deltas.clear();  // Everything older than a bad delta is unreachable.
      continue;
    }
    if (last_bad == 0 || i + 1 > last_bad) deltas.push_back(std::move(*delta));
  }
  if (last_bad > 0) {
    for (size_t i = 0; i < last_bad; ++i) {
      QuarantineDelta(directory, i, env, report);
    }
    report->dropped_deltas += last_bad;
  }

  // --- deep verification on any degradation -----------------------------
  // Replaying the surviving chain against the recovered current version
  // proves the pieces still fit together (checksums can only vouch for
  // files the MANIFEST knew; a fallback epoch has no such vouching).
  if (!report->clean || report->used_fallback) {
    const size_t drop =
        VerifyChainApplies(*current, deltas, report->dropped_deltas, report);
    if (drop > 0) {
      report->clean = false;
      const size_t already_dropped = report->dropped_deltas;
      for (size_t i = 0; i < drop; ++i) {
        QuarantineDelta(directory, already_dropped + i, env, report);
      }
      report->dropped_deltas += drop;
      deltas.erase(deltas.begin(),
                   deltas.begin() + static_cast<long>(drop));
    }
  }

  // --- reconstruction index ---------------------------------------------
  // Loaded only from a fully clean, fully verified store: dropped deltas
  // or an epoch fallback renumber the chain, so persisted checkpoint and
  // skip files would describe versions that no longer exist. The index
  // is derived state — on any damage the offending file is quarantined
  // and the WHOLE index is discarded, leaving the plain chain (Checkout
  // falls back to backward replay; EnsureReconstructionIndex rebuilds).
  ReconstructionIndex index;
  if (verified && report->clean && !deltas.empty() &&
      manifest->Find(kCheckpointXmlName) != nullptr) {
    bool index_ok = true;
    auto fail_index = [&](const std::string& name, const Status& why) {
      index_ok = false;
      report->clean = false;
      report->notes.push_back("reconstruction index discarded (" + name +
                              ": " + why.ToString() + ")");
      if (env->FileExists(directory + "/" + name)) {
        QuarantineFile(directory, name, env, report);
      }
    };

    const ManifestFile* cp_xml = manifest->Find(kCheckpointXmlName);
    const ManifestFile* cp_meta = manifest->Find(kCheckpointMetaName);
    if (cp_meta == nullptr) {
      fail_index(kCheckpointMetaName,
                 Status::Corruption("not listed in MANIFEST"));
    } else {
      Result<std::string> xml = ReadVerified(directory, *cp_xml, env);
      if (!xml.ok() && xml.status().code() == StatusCode::kIOError) {
        return xml.status();
      }
      Result<std::string> meta = ReadVerified(directory, *cp_meta, env);
      if (!meta.ok() && meta.status().code() == StatusCode::kIOError) {
        return meta.status();
      }
      Result<XmlDocument> checkpoint =
          !xml.ok() ? Result<XmlDocument>(xml.status())
          : !meta.ok()
              ? Result<XmlDocument>(meta.status())
              : ParseDocumentPair(*xml, *meta,
                                  directory + "/" + kCheckpointMetaName);
      if (checkpoint.ok()) {
        index.checkpoint = std::move(*checkpoint);
      } else {
        fail_index(xml.ok() ? kCheckpointMetaName : kCheckpointXmlName,
                   checkpoint.status());
      }
    }

    for (const ManifestFile& entry : manifest->files) {
      if (!index_ok) break;
      size_t level = 0, idx = 0;
      if (!ParseSkipName(entry.name, &level, &idx)) continue;
      // Overflow-safe placement check: the entry must cover a whole,
      // in-range span of the recovered chain.
      const size_t span = level < 60 ? ReconstructionIndex::SpanAtLevel(level)
                                     : deltas.size() + 1;
      if (span > deltas.size() || idx >= deltas.size() / span) {
        fail_index(entry.name,
                   Status::Corruption("skip span outside the chain"));
        break;
      }
      Result<std::string> bytes = ReadVerified(directory, entry, env);
      if (!bytes.ok() && bytes.status().code() == StatusCode::kIOError) {
        return bytes.status();
      }
      Result<Delta> skip = bytes.ok() ? DecodeDeltaBinary(*bytes)
                                      : Result<Delta>(bytes.status());
      if (!skip.ok()) {
        fail_index(entry.name, skip.status());
        break;
      }
      if (index.levels.size() <= level) index.levels.resize(level + 1);
      if (index.levels[level].size() <= idx) {
        index.levels[level].resize(idx + 1);
      }
      index.levels[level][idx] = std::move(*skip);
    }
    if (!index_ok) index = ReconstructionIndex{};
  }

  report->recovered_version_count = static_cast<int>(deltas.size()) + 1;
  return VersionRepository::FromParts(std::move(current.value()),
                                      std::move(deltas), std::move(index));
}

}  // namespace xydiff
