#ifndef XYDIFF_VERSION_WAREHOUSE_H_
#define XYDIFF_VERSION_WAREHOUSE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/options.h"
#include "monitor/change_stats.h"
#include "monitor/index.h"
#include "monitor/subscription.h"
#include "version/repository.h"

namespace xydiff {

/// The dynamic XML warehouse of Figure 1, assembled from the library's
/// parts: "When a new version of a document V(n) is received (or crawled
/// from the web), it is installed in the repository. It is then sent to
/// the diff module that also acquires the previous version V(n-1) ...
/// The delta is appended to the existing sequence of deltas ... The
/// alerter is in charge of detecting, in the document V(n) or in the
/// delta, patterns that may interest some subscriptions."
///
/// One Warehouse tracks many documents, keyed by URL. Each ingest runs
/// the full pipeline: diff against the stored version, append the delta
/// to the document's chain, evaluate subscriptions, feed the change
/// statistics, and maintain the full-text index incrementally.
///
/// Ingests of *different* documents are independent; `IngestBatch` runs
/// them on a small thread pool (the paper's crawler loads millions of
/// pages per day — per-document work parallelizes trivially). All public
/// methods are thread-safe.
class Warehouse {
 public:
  /// Outcome of one ingest.
  struct IngestReport {
    std::string url;
    int version = 0;          ///< Version number after the ingest.
    bool first_version = false;
    size_t operations = 0;    ///< Delta operations (0 for first versions).
    std::vector<Alert> alerts;
  };

  explicit Warehouse(DiffOptions options = {}) : options_(options) {}

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;

  /// Registers a subscription evaluated on every subsequent ingest.
  Status Subscribe(std::string id, std::string_view path_expression,
                   std::optional<ChangeKind> kind = std::nullopt,
                   std::string detail_contains = {});

  /// Ingests a crawled version of `url`: first sight stores it as
  /// version 1; later sights run the diff pipeline.
  Result<IngestReport> Ingest(const std::string& url, XmlDocument document);

  /// Ingests many documents concurrently on up to `threads` workers.
  /// URLs must be distinct within one batch. Reports come back in input
  /// order; a failed document carries its error in the result slot.
  std::vector<Result<IngestReport>> IngestBatch(
      std::vector<std::pair<std::string, XmlDocument>> batch, int threads = 4);

  /// Number of tracked documents.
  size_t document_count() const;
  /// URLs in lexicographic order.
  std::vector<std::string> urls() const;
  /// Version count for one URL (0 if unknown).
  int version_count(const std::string& url) const;

  /// Checks out a version of one document.
  Result<XmlDocument> Checkout(const std::string& url, int version) const;

  /// Full-text lookup across all current versions: (url, text-node XID)
  /// pairs whose node contains `word`.
  std::vector<std::pair<std::string, Xid>> Search(
      std::string_view word) const;

  /// Aggregated per-label change statistics across every ingest.
  ChangeStatistics::LabelStats StatsForLabel(const std::string& label) const;
  std::string StatsReport(size_t limit = 10) const;

  /// Persists every document's repository under `directory/<sanitized
  /// url>/`. Subscriptions, statistics and the index are derived state
  /// and are rebuilt on load.
  Status Save(const std::string& directory) const;

  /// Loads a warehouse persisted by Save. Subscriptions must be
  /// re-registered by the caller; the full-text index is rebuilt.
  /// (Returned by pointer: the warehouse owns mutexes and cannot move.)
  static Result<std::unique_ptr<Warehouse>> Load(const std::string& directory,
                                                 DiffOptions options = {});

 private:
  struct Document {
    std::unique_ptr<VersionRepository> repo;
    FullTextIndex index;
    std::mutex mutex;  // Serializes ingests of this one document.
  };

  /// Directory-safe encoding of a URL.
  static std::string SanitizeUrl(const std::string& url);

  Document* FindDocument(const std::string& url) const;

  DiffOptions options_;
  mutable std::mutex mutex_;  // Guards the documents_ map shape.
  std::map<std::string, std::unique_ptr<Document>> documents_;
  // Subscriptions change rarely but are read on every ingest: readers
  // share, Subscribe() excludes.
  mutable std::shared_mutex alerter_mutex_;
  Alerter alerter_;
  // Statistics are folded in per ingest; the heavy per-document work
  // happens in a thread-local collector, the merge is O(labels).
  mutable std::mutex stats_mutex_;
  ChangeStatistics stats_;
};

}  // namespace xydiff

#endif  // XYDIFF_VERSION_WAREHOUSE_H_
