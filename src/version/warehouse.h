#ifndef XYDIFF_VERSION_WAREHOUSE_H_
#define XYDIFF_VERSION_WAREHOUSE_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "delta/options.h"
#include "monitor/change_stats.h"
#include "util/arena.h"
#include "monitor/index.h"
#include "monitor/subscription.h"
#include "util/annotations.h"
#include "util/context.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "version/repository.h"

namespace xydiff {

/// The dynamic XML warehouse of Figure 1, assembled from the library's
/// parts: "When a new version of a document V(n) is received (or crawled
/// from the web), it is installed in the repository. It is then sent to
/// the diff module that also acquires the previous version V(n-1) ...
/// The delta is appended to the existing sequence of deltas ... The
/// alerter is in charge of detecting, in the document V(n) or in the
/// delta, patterns that may interest some subscriptions."
///
/// One Warehouse tracks many documents, keyed by URL. Each ingest runs
/// the full pipeline: diff against the stored version, append the delta
/// to the document's chain, evaluate subscriptions, feed the change
/// statistics, and maintain the full-text index incrementally.
///
/// Ingests of *different* documents are independent; the document map is
/// sharded by URL hash so concurrent ingests only contend when their
/// URLs share a shard. `IngestBatch` spreads pre-parsed documents over a
/// work-stealing pool; `DiffBatch` is the full crawler hand-off — raw
/// XML text through a staged parse → diff → store pipeline with bounded
/// queues and backpressure (see DESIGN.md "Parallel warehouse
/// pipeline"). All public methods are thread-safe.
class Warehouse {
 public:
  /// Outcome of one ingest.
  struct IngestReport {
    std::string url;
    int version = 0;          ///< Version number after the ingest.
    bool first_version = false;
    size_t operations = 0;    ///< Delta operations (0 for first versions).
    size_t delta_bytes = 0;   ///< Serialized delta size (DiffBatch only).
    size_t store_retries = 0; ///< Transient-I/O retries spent persisting.
    bool store_degraded = false;  ///< Persistence gave up after retries:
                                  ///< the in-memory ingest succeeded but
                                  ///< this slot is not on disk.
    std::vector<Alert> alerts;
  };

  /// One unit of crawler hand-off: a URL and the raw XML bytes fetched
  /// for it. Parsing happens inside the pipeline, on a worker.
  struct DiffJob {
    std::string url;
    std::string xml;
  };

  /// Tuning for DiffBatch.
  struct PipelineOptions {
    int threads = 4;
    /// Bound of each inter-stage queue. Small keeps memory flat (at most
    /// threads + 2*queue_capacity documents materialized at once);
    /// large absorbs stage-speed jitter.
    size_t queue_capacity = 8;
    /// When non-empty, the store stage persists each updated document's
    /// repository under `save_directory/<sanitized url>/` (crash-safe,
    /// see version/storage.h), so a crawler batch survives a crash.
    std::string save_directory;
    /// Env for store-stage persistence; nullptr means Env::Default().
    Env* env = nullptr;
    /// Transient I/O errors (Status kIOError: EIO, ENOSPC...) during
    /// persistence are retried up to this many times with doubling
    /// backoff before the slot is marked degraded. Corruption and other
    /// non-transient errors are never retried.
    int max_io_retries = 3;
    /// First retry backoff; doubles per attempt. Kept tiny so tests can
    /// exercise the path without slowing a healthy batch.
    int retry_backoff_ms = 1;
    /// Stop admitting new slots after the first failed slot; the
    /// not-yet-started remainder comes back as Status kAborted. Slots
    /// already in flight still finish (their documents stay consistent).
    bool fail_fast = false;
    /// Recycle parse arenas across slots through the warehouse's
    /// ArenaPool instead of malloc'ing a fresh arena per document. The
    /// pool is thread-sharded, so with shard-affine workers a slot's
    /// blocks are usually reused warm by the same worker. Off = the
    /// pre-pool behaviour (one fresh arena per slot), kept for A/B
    /// testing and the aliasing regression tests.
    bool reuse_arenas = true;
    /// Store stage group-commit width: up to this many finished slots
    /// are persisted by ONE batched crash-safe commit (one journal
    /// fsync + directory sync for the whole group instead of one
    /// manifest rename + sync per slot — see SaveRepositoryBatch).
    /// 1 = per-slot commits (the pre-batch behaviour).
    size_t group_commit_slots = 8;
    /// Deadline/cancellation for the whole batch (not owned; may be
    /// null). Checked at admission, at stage boundaries, inside the
    /// diff's long loops, and in the store stage up to (never past) the
    /// group-commit journal write. Slots that the context kills come
    /// back as kDeadlineExceeded/kCancelled; slots whose in-memory
    /// ingest finished but whose group save was cut short are reported
    /// degraded (in memory yes, on disk no — the journal is the single
    /// commit point, so disk is bit-exactly pre-batch for them).
    const Context* context = nullptr;
    /// Admission budget: cumulative raw-XML bytes admitted per DiffBatch
    /// call. Once spent, remaining slots are SHED with
    /// kResourceExhausted instead of queued (overload sheds at the front
    /// door, it does not build unbounded backlog). 0 = unlimited.
    size_t max_batch_bytes = 0;
    /// Per-document byte cap: a single oversized (possibly hostile)
    /// document is shed with kResourceExhausted before it can balloon a
    /// parse arena. 0 = unlimited.
    size_t max_document_bytes = 0;
    /// Circuit breaker: a URL whose slots fail this many consecutive
    /// times (parse/diff errors, or a deadline firing while its slot was
    /// being processed) has its breaker opened — subsequent slots for it
    /// are rejected with kUnavailable ("quarantined") without spending
    /// any work. 0 disables the breaker.
    int breaker_failure_threshold = 0;
    /// While a breaker is open, every Nth rejected admission is let
    /// through as a probe; one success closes the breaker. Deterministic
    /// (count-based, no wall clock) so tests replay exactly.
    int breaker_probe_interval = 4;
    /// Degraded mode: after this many consecutive store-stage commits
    /// failing with persistent IOError, the warehouse flips to degraded
    /// (health().degraded) and rejects further ingest admissions with
    /// kUnavailable while still serving reads (Search/Checkout). A
    /// successful commit, or ResetHealth(), clears it. 0 disables.
    int degrade_after_io_failures = 0;
    /// Bulk-load mode (default): the batch defers full-text index and
    /// statistics maintenance out of the ingest critical path — each
    /// touched document's index is marked stale and rebuilt lazily on
    /// the next Search(). This is the same contract Load() already has
    /// ("the index is rebuilt; statistics are derived state"), and it
    /// keeps the staged pipeline's per-document cost equal to the
    /// straight-line diff it replaces. Alerts are NEVER deferred: when
    /// subscriptions are registered they are evaluated inline exactly
    /// as in Ingest(). Set false to maintain index and statistics
    /// incrementally inside the batch (the Ingest() behaviour).
    bool defer_monitor_updates = true;
  };

  explicit Warehouse(DiffOptions options = {}) : options_(options) {}

  Warehouse(const Warehouse&) = delete;
  Warehouse& operator=(const Warehouse&) = delete;

  /// Registers a subscription evaluated on every subsequent ingest.
  Status Subscribe(std::string id, std::string_view path_expression,
                   std::optional<ChangeKind> kind = std::nullopt,
                   std::string detail_contains = {});

  /// Ingests a crawled version of `url`: first sight stores it as
  /// version 1; later sights run the diff pipeline.
  Result<IngestReport> Ingest(const std::string& url, XmlDocument document);

  /// Ingests many pre-parsed documents concurrently on a work-stealing
  /// pool of up to `threads` workers. URLs must be distinct within one
  /// batch. Reports come back in input order; a failed document carries
  /// its error in the result slot.
  std::vector<Result<IngestReport>> IngestBatch(
      std::vector<std::pair<std::string, XmlDocument>> batch, int threads = 4);

  /// Diffs a batch of raw crawled documents through the staged pipeline:
  /// parse → diff/ingest → serialize+account the delta. Each stage runs
  /// on the shared work-stealing pool; stages are joined by bounded
  /// queues, and a worker that cannot hand off downstream drains the
  /// downstream queue itself, so backpressure never deadlocks and at
  /// most O(threads + queue_capacity) documents are in memory at once.
  ///
  /// One malformed document fails only its own slot — the batch always
  /// completes. Reports come back in input order. When `stats` is
  /// non-null it receives the per-stage counters of this run.
  std::vector<Result<IngestReport>> DiffBatch(std::vector<DiffJob> jobs,
                                              const PipelineOptions& pipeline,
                                              PipelineStats* stats = nullptr);
  /// Default-tuned overload (C++ forbids a nested-class default argument
  /// whose initializers are still pending inside the enclosing class).
  std::vector<Result<IngestReport>> DiffBatch(std::vector<DiffJob> jobs) {
    return DiffBatch(std::move(jobs), PipelineOptions());
  }

  /// Point-in-time health snapshot (see DESIGN.md §3.17). `degraded`
  /// means the store Env reported persistent IOError and the warehouse
  /// is rejecting ingest while serving reads; `open_breakers` counts
  /// URLs currently quarantined by their circuit breaker.
  struct Health {
    bool degraded = false;
    size_t io_failure_streak = 0;
    size_t open_breakers = 0;
    size_t documents = 0;

    std::string ToString() const;
  };
  Health health() const;

  /// Operator action: leaves degraded mode and closes every circuit
  /// breaker. State also self-heals (a successful store commit resets
  /// the IOError streak; a successful probe closes a breaker).
  void ResetHealth();

  /// Number of tracked documents.
  size_t document_count() const;
  /// URLs in lexicographic order.
  std::vector<std::string> urls() const;
  /// Version count for one URL (0 if unknown).
  int version_count(const std::string& url) const;

  /// Checks out a version of one document.
  Result<XmlDocument> Checkout(const std::string& url, int version) const;

  /// Full-text lookup across all current versions: (url, text-node XID)
  /// pairs whose node contains `word`.
  std::vector<std::pair<std::string, Xid>> Search(
      std::string_view word) const;

  /// Aggregated per-label change statistics across every ingest.
  ChangeStatistics::LabelStats StatsForLabel(const std::string& label) const;
  std::string StatsReport(size_t limit = 10) const;

  /// Persists every document's repository under `directory/<sanitized
  /// url>/` (each crash-safe, see version/storage.h). Subscriptions,
  /// statistics and the index are derived state and are rebuilt on load.
  /// All I/O goes through `env` (nullptr means Env::Default()).
  Status Save(const std::string& directory, Env* env = nullptr) const;

  /// Loads a warehouse persisted by Save. Subscriptions must be
  /// re-registered by the caller; the full-text index is rebuilt.
  /// A corrupt per-document repository does not kill the load: each
  /// repository self-heals where it can (quarantining corrupt tails —
  /// see LoadRepository), and one that is beyond recovery is skipped
  /// with its error recorded in `skipped` (when non-null), so one
  /// truncated file cannot take down the warehouse.
  /// (Returned by pointer: the warehouse owns mutexes and cannot move.)
  static Result<std::unique_ptr<Warehouse>> Load(
      const std::string& directory, DiffOptions options = {},
      std::vector<std::string>* skipped = nullptr, Env* env = nullptr);

 private:
  struct Document {
    /// Serializes ingests of this one document.
    Mutex mutex;
    std::unique_ptr<VersionRepository> repo XY_GUARDED_BY(mutex);
    FullTextIndex index XY_GUARDED_BY(mutex);
    /// True when a deferred-monitor ingest left `index` stale; the next
    /// reader (Search) or inline ingest rebuilds it from the current
    /// version before use.
    bool index_dirty XY_GUARDED_BY(mutex) = false;
  };

  /// Per-URL circuit breaker state (deterministic, count-based — no
  /// wall clock, so quarantine behaviour replays exactly in tests and
  /// fuzz trials). Lives beside the document map because failed parses
  /// never create a Document slot, yet must still trip the breaker.
  struct Breaker {
    int consecutive_failures = 0;
    bool open = false;
    size_t rejected_while_open = 0;  ///< Drives the probe cadence.
  };

  /// The document map is split into shards locked independently, so the
  /// map-shape lock is never a global serialization point for a batch.
  /// Only the map *shape* is guarded — Document contents have their own
  /// lock, always taken WITHOUT the shard lock held (see Search()).
  struct Shard {
    mutable Mutex mutex;
    std::map<std::string, std::unique_ptr<Document>> documents
        XY_GUARDED_BY(mutex);
    std::map<std::string, Breaker> breakers XY_GUARDED_BY(mutex);
  };
  static constexpr size_t kShards = 16;

  /// Directory-safe encoding of a URL.
  static std::string SanitizeUrl(const std::string& url);

  /// Ingest with the monitor-maintenance policy chosen by the caller:
  /// `defer_monitors` marks the document's index stale (lazily rebuilt)
  /// and skips statistics instead of updating both inline. Alert
  /// evaluation is unconditional whenever subscriptions exist.
  Result<IngestReport> IngestInternal(const std::string& url,
                                      XmlDocument document,
                                      bool defer_monitors,
                                      const Context* context = nullptr);

  /// Circuit-breaker admission check for `url`: true admits (closed
  /// breaker, or an open breaker's probe turn). False rejects and
  /// advances the probe counter. No-op (always true) when the breaker
  /// is disabled.
  bool BreakerAdmits(const std::string& url, const PipelineOptions& pipeline);
  /// Feeds one slot outcome into `url`'s breaker: success closes it and
  /// clears the streak; failure (slot-intrinsic: parse/diff error or a
  /// deadline during processing) may open it.
  void RecordBreakerOutcome(const std::string& url, bool success,
                            const PipelineOptions& pipeline);
  /// Feeds one store-commit outcome into degraded-mode tracking.
  /// Context errors (deadline/cancel) are neutral — only real IOError
  /// advances the streak, only success clears it.
  void RecordStoreHealth(const Status& saved,
                         const PipelineOptions& pipeline);

  Shard& ShardFor(const std::string& url) const;
  Document* FindDocument(const std::string& url) const;
  /// Finds or creates the slot for `url`; sets `created`.
  Document* FindOrCreateDocument(const std::string& url, bool* created);
  /// Snapshot of (url, slot) pairs across all shards, sorted by URL.
  std::vector<std::pair<std::string, Document*>> SnapshotSlots() const;

  DiffOptions options_;
  mutable std::array<Shard, kShards> shards_;
  // Parse-arena recycling across slots AND across batches: freed
  // documents return their (rewound) arenas here, so steady-state
  // pipelines stop allocating arena blocks entirely. Lives on the
  // warehouse — a per-batch pool would never carry blocks from one
  // crawl round to the next.
  mutable ArenaPool arena_pool_;
  // Subscriptions change rarely but are read on every ingest: readers
  // share, Subscribe() excludes.
  mutable SharedMutex alerter_mutex_;
  Alerter alerter_ XY_GUARDED_BY(alerter_mutex_);
  // Statistics are folded in per ingest; the heavy per-document work
  // happens in a thread-local collector, the merge is O(labels).
  mutable Mutex stats_mutex_;
  ChangeStatistics stats_ XY_GUARDED_BY(stats_mutex_);
  // Degraded-mode tracking (plain atomics, not a mutex: updated from
  // the store stage with document locks held, and a new lock there
  // would grow the lock-order graph for two monotonic counters).
  mutable std::atomic<size_t> io_failure_streak_{0};
  mutable std::atomic<bool> degraded_{false};
};

}  // namespace xydiff

#endif  // XYDIFF_VERSION_WAREHOUSE_H_
