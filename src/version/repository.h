#ifndef XYDIFF_VERSION_REPOSITORY_H_
#define XYDIFF_VERSION_REPOSITORY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/buld.h"
#include "delta/options.h"
#include "delta/delta.h"
#include "util/annotations.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Derived acceleration structure for any-version reconstruction: a
/// pinned snapshot of version 1 (the checkpoint) plus skip-deltas in a
/// binary-lifting layout. `levels[l][i]`, when present, transforms
/// version i*2^(l+1)+1 directly into version (i+1)*2^(l+1)+1 — the
/// composition of 2^(l+1) consecutive chain deltas, built by composing
/// the two level-(l-1) entries covering its halves (so the whole index
/// costs ~one composition per commit, amortized).
///
/// Everything here is re-derivable from the chain: a missing or dropped
/// entry degrades Checkout cost, never correctness, which is what lets
/// the store treat persisted index files as expendable during recovery.
struct ReconstructionIndex {
  std::optional<XmlDocument> checkpoint;  ///< Version 1, with XIDs.
  std::vector<std::vector<std::optional<Delta>>> levels;

  /// Chain deltas covered by one level-`level` entry.
  static size_t SpanAtLevel(size_t level) { return size_t{2} << level; }
};

/// What one Checkout cost and which path it took.
struct CheckoutStats {
  size_t applications = 0;  ///< Delta applications performed.
  bool forward = false;     ///< Checkpoint + skip path (vs backward replay).
};

/// Change-centric version storage (§2, Figure 1; after [19]).
///
/// Mirrors the Xyleme repository: only the *current* version is
/// materialized, together with the chain of deltas
/// delta(V1,V2), delta(V2,V3), … ("The old version is then possibly
/// removed from the repository"). Any past version is reconstructed
/// from deltas; with the reconstruction index active (built once by
/// EnsureReconstructionIndex, or loaded from a persisted store, then
/// maintained incrementally by Commit) any version is reachable in at
/// most ⌈log₂ n⌉ + C delta applications — the greedy plan walks the
/// binary decomposition of version-1, so its length is
/// popcount(version-1) plus one step per index hole. A repository that
/// never activates the index pays nothing for it and keeps the plain
/// backward replay. The changes between two arbitrary versions come
/// from the persistent XIDs.
class VersionRepository {
 public:
  /// Starts a history with `first_version` as version 1. Initial XIDs are
  /// assigned if the document carries none.
  explicit VersionRepository(XmlDocument first_version);

  /// Reassembles a repository from persisted parts (see storage.h):
  /// the newest version (with XIDs) plus its delta chain, and optionally
  /// the persisted reconstruction index.
  static VersionRepository FromParts(XmlDocument current,
                                     std::vector<Delta> deltas);
  static VersionRepository FromParts(XmlDocument current,
                                     std::vector<Delta> deltas,
                                     ReconstructionIndex index);

  /// Commits the next version: diffs it against the current one, stores
  /// the delta, and replaces the current version. Returns the new version
  /// number. `new_version` is consumed.
  ///
  /// When `superseded` is non-null it receives the previous current
  /// version instead of having it destroyed — the diff reads but never
  /// mutates the old document, so consumers (index maintenance, alerter,
  /// statistics) get the exact pre-commit tree without paying a Clone.
  Result<int> Commit(XmlDocument new_version, const DiffOptions& options = {},
                     XmlDocument* superseded = nullptr);

  /// Number of committed versions (>= 1).
  int version_count() const { return static_cast<int>(deltas_.size()) + 1; }
  /// The newest version number (== version_count()).
  int current_version() const { return version_count(); }
  /// The newest version's document.
  const XmlDocument& current() const { return current_; }

  /// Reconstructs version `version` (1-based). With the reconstruction
  /// index this costs O(log n) delta applications (the cheaper of the
  /// forward checkpoint + skip plan and the backward replay is chosen);
  /// without it, O(n - version) inverse applications as before. `stats`
  /// (optional) reports the cost actually paid.
  ///
  /// `context` (optional, not owned) is checked before each delta
  /// application, so a long replay chain under a deadline returns
  /// kDeadlineExceeded/kCancelled; the repository itself is never
  /// mutated by Checkout, so bailing is always clean.
  Result<XmlDocument> Checkout(int version, CheckoutStats* stats = nullptr,
                               const Context* context = nullptr) const;

  /// Activates the reconstruction index and builds every missing piece:
  /// the version-1 checkpoint (one backward replay when absent) and all
  /// buildable skip-delta entries, including interior holes left by
  /// recovery. Idempotent; O(chain) compositions worst case. Once
  /// active, Commit extends the index at amortized O(1) compositions
  /// per commit; repositories that never call this (and load no
  /// persisted index) skip index maintenance entirely.
  Status EnsureReconstructionIndex();

  /// The reconstruction accelerator (persisted by storage.h).
  const ReconstructionIndex& reconstruction_index() const { return index_; }

  /// Delta committed between `version` and `version + 1`.
  Result<const Delta*> DeltaFor(int version) const
      XY_ARENA_BOUND("repository");

  /// Aggregated changes between two versions (from < to), derived from
  /// persistent identifiers — the "construct the changes between some
  /// versions n and n'" requirement of §2.
  Result<Delta> ChangesBetween(int from, int to) const;

  /// Temporal query (§2 "Querying the past"): the text content of the
  /// node with `xid` as of `version`, or nullopt if it did not exist or
  /// is not a text node.
  Result<std::optional<std::string>> TextAt(int version, Xid xid) const;

  /// Storage accounting: total bytes of the stored deltas in the binary
  /// storage codec (delta/codec.h) — what the version store writes.
  size_t stored_delta_bytes() const;

  /// The stored delta chain; deltas[k] transforms version k+1 into k+2.
  const std::vector<Delta>& deltas() const XY_ARENA_BOUND("repository") {
    return deltas_;
  }

  /// DiffStats of the most recent Commit.
  const DiffStats& last_commit_stats() const { return last_stats_; }

 private:
  Status CheckVersion(int version) const;
  /// Builds missing index entries bottom-up. `fill_holes` rescans whole
  /// levels for interior gaps; without it only the append-only tail of
  /// each level is considered (the amortized-O(1) Commit path).
  Status BuildIndexEntries(bool fill_holes);

  XmlDocument current_;
  std::vector<Delta> deltas_;  // deltas_[k] transforms version k+1 -> k+2.
  ReconstructionIndex index_;
  DiffStats last_stats_;
};

}  // namespace xydiff

#endif  // XYDIFF_VERSION_REPOSITORY_H_
