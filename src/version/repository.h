#ifndef XYDIFF_VERSION_REPOSITORY_H_
#define XYDIFF_VERSION_REPOSITORY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/buld.h"
#include "core/options.h"
#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Change-centric version storage (§2, Figure 1; after [19]).
///
/// Mirrors the Xyleme repository: only the *current* version is
/// materialized, together with the chain of deltas
/// delta(V1,V2), delta(V2,V3), … ("The old version is then possibly
/// removed from the repository"). Any past version is reconstructed by
/// applying inverse deltas backwards from the current one; the changes
/// between two arbitrary versions come from the persistent XIDs.
class VersionRepository {
 public:
  /// Starts a history with `first_version` as version 1. Initial XIDs are
  /// assigned if the document carries none.
  explicit VersionRepository(XmlDocument first_version);

  /// Reassembles a repository from persisted parts (see storage.h):
  /// the newest version (with XIDs) plus its delta chain.
  static VersionRepository FromParts(XmlDocument current,
                                     std::vector<Delta> deltas);

  /// Commits the next version: diffs it against the current one, stores
  /// the delta, and replaces the current version. Returns the new version
  /// number. `new_version` is consumed.
  ///
  /// When `superseded` is non-null it receives the previous current
  /// version instead of having it destroyed — the diff reads but never
  /// mutates the old document, so consumers (index maintenance, alerter,
  /// statistics) get the exact pre-commit tree without paying a Clone.
  Result<int> Commit(XmlDocument new_version, const DiffOptions& options = {},
                     XmlDocument* superseded = nullptr);

  /// Number of committed versions (>= 1).
  int version_count() const { return static_cast<int>(deltas_.size()) + 1; }
  /// The newest version number (== version_count()).
  int current_version() const { return version_count(); }
  /// The newest version's document.
  const XmlDocument& current() const { return current_; }

  /// Reconstructs version `version` (1-based). O(total delta size) time.
  Result<XmlDocument> Checkout(int version) const;

  /// Delta committed between `version` and `version + 1`.
  Result<const Delta*> DeltaFor(int version) const;

  /// Aggregated changes between two versions (from < to), derived from
  /// persistent identifiers — the "construct the changes between some
  /// versions n and n'" requirement of §2.
  Result<Delta> ChangesBetween(int from, int to) const;

  /// Temporal query (§2 "Querying the past"): the text content of the
  /// node with `xid` as of `version`, or nullopt if it did not exist or
  /// is not a text node.
  Result<std::optional<std::string>> TextAt(int version, Xid xid) const;

  /// Storage accounting: total serialized bytes of the stored deltas.
  size_t stored_delta_bytes() const;

  /// The stored delta chain; deltas[k] transforms version k+1 into k+2.
  const std::vector<Delta>& deltas() const { return deltas_; }

  /// DiffStats of the most recent Commit.
  const DiffStats& last_commit_stats() const { return last_stats_; }

 private:
  Status CheckVersion(int version) const;

  XmlDocument current_;
  std::vector<Delta> deltas_;  // deltas_[k] transforms version k+1 -> k+2.
  DiffStats last_stats_;
};

}  // namespace xydiff

#endif  // XYDIFF_VERSION_REPOSITORY_H_
