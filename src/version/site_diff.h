#ifndef XYDIFF_VERSION_SITE_DIFF_H_
#define XYDIFF_VERSION_SITE_DIFF_H_

#include <string>
#include <vector>

#include "delta/options.h"
#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Site-level change detection — the §7 extension ("We are also extending
/// the diff to observe changes between websites compared to changes to
/// pages") over the §6.2 site-metadata representation: a snapshot is one
/// XML document with a `<page url="...">` element per page.
///
/// Pages are identified by their `url` attribute, which is declared as an
/// ID attribute so that Phase 1 pins every surviving page regardless of
/// how the site reorganizes; the ordinary diff then runs once over the
/// whole snapshot and the delta is summarized per page.

/// What happened to one page between the snapshots.
enum class PageChangeKind { kAdded, kRemoved, kModified, kMoved };

const char* PageChangeKindName(PageChangeKind kind);

struct PageChange {
  std::string url;
  PageChangeKind kind = PageChangeKind::kModified;
  /// Number of elementary delta operations touching the page (1 for
  /// added/removed pages).
  size_t operations = 0;
};

/// Summary of a site-to-site diff.
struct SiteDiffResult {
  std::vector<PageChange> changes;  ///< Sorted by URL.
  size_t pages_old = 0;
  size_t pages_new = 0;
  size_t pages_added = 0;
  size_t pages_removed = 0;
  size_t pages_modified = 0;
  size_t pages_moved = 0;   ///< Relocated in the site tree, content intact.
  size_t total_operations = 0;

  /// Pages untouched between the snapshots.
  size_t pages_unchanged() const {
    return pages_new - pages_added - pages_modified - pages_moved;
  }
};

/// Diffs two site snapshots. Both documents must use `<page url="...">`
/// elements (any nesting). `old_site` receives initial XIDs if it has
/// none; both documents get `url` registered as the ID attribute of
/// `page`, so repeated calls chain like ordinary diffs.
Result<SiteDiffResult> DiffSites(XmlDocument* old_site, XmlDocument* new_site,
                                 const DiffOptions& options = {});

/// One snapshot pair for batch site diffing: the raw XML of both
/// versions, as the crawler stores them. Parsing happens on a worker.
struct SiteDiffJob {
  std::string old_xml;
  std::string new_xml;
};

/// Diffs many snapshot pairs concurrently on a work-stealing pool of up
/// to `threads` workers. Each pair is parsed into its own arenas and
/// diffed independently (site pairs share no state), so scaling is
/// per-document, like Warehouse::DiffBatch. Results come back in input
/// order; a malformed pair fails only its own slot.
std::vector<Result<SiteDiffResult>> DiffSitesBatch(
    std::vector<SiteDiffJob> jobs, int threads,
    const DiffOptions& options = {});

}  // namespace xydiff

#endif  // XYDIFF_VERSION_SITE_DIFF_H_
