#include "version/repository.h"

#include "delta/apply.h"
#include "delta/compose.h"
#include "delta/delta_xml.h"

namespace xydiff {

VersionRepository::VersionRepository(XmlDocument first_version)
    : current_(std::move(first_version)) {
  if (current_.root() != nullptr && !current_.AllXidsAssigned()) {
    current_.AssignInitialXids();
  }
}

VersionRepository VersionRepository::FromParts(XmlDocument current,
                                               std::vector<Delta> deltas) {
  VersionRepository repo(std::move(current));
  repo.deltas_ = std::move(deltas);
  return repo;
}

Result<int> VersionRepository::Commit(XmlDocument new_version,
                                      const DiffOptions& options,
                                      XmlDocument* superseded) {
  if (current_.root() == nullptr) {
    return Status::Corruption("repository has no current version");
  }
  if (new_version.root() == nullptr) {
    return Status::InvalidArgument("cannot commit an empty document");
  }
  Result<Delta> delta = XyDiff(&current_, &new_version, options, &last_stats_);
  if (!delta.ok()) return delta.status();
  // Snapshot subtrees live in the delta's own arena and update values
  // are copied strings, so the delta is self-contained: the superseded
  // document can be handed off (or dropped) freely.
  deltas_.push_back(std::move(*delta));
  if (superseded != nullptr) {
    *superseded = std::move(current_);
  }
  current_ = std::move(new_version);
  return current_version();
}

Status VersionRepository::CheckVersion(int version) const {
  if (version < 1 || version > version_count()) {
    return Status::NotFound("no version " + std::to_string(version) +
                            " (history has " +
                            std::to_string(version_count()) + ")");
  }
  return Status::OK();
}

Result<XmlDocument> VersionRepository::Checkout(int version) const {
  XYDIFF_RETURN_IF_ERROR(CheckVersion(version));
  if (current_.root() == nullptr) {
    return Status::Corruption("repository has no current version");
  }
  XmlDocument doc = current_.Clone();
  for (int v = current_version(); v > version; --v) {
    // deltas_[v-2] transforms version v-1 into v; undo it.
    XYDIFF_RETURN_IF_ERROR(
        ApplyDeltaInverse(deltas_[static_cast<size_t>(v) - 2], &doc));
  }
  return doc;
}

Result<const Delta*> VersionRepository::DeltaFor(int version) const {
  XYDIFF_RETURN_IF_ERROR(CheckVersion(version));
  if (version == version_count()) {
    return Status::NotFound("version " + std::to_string(version) +
                            " is the newest; no outgoing delta");
  }
  return &deltas_[static_cast<size_t>(version) - 1];
}

Result<Delta> VersionRepository::ChangesBetween(int from, int to) const {
  XYDIFF_RETURN_IF_ERROR(CheckVersion(from));
  XYDIFF_RETURN_IF_ERROR(CheckVersion(to));
  if (from >= to) {
    return Status::InvalidArgument("ChangesBetween requires from < to");
  }
  Result<XmlDocument> from_doc = Checkout(from);
  if (!from_doc.ok()) return from_doc.status();
  Result<XmlDocument> to_doc = Checkout(to);
  if (!to_doc.ok()) return to_doc.status();
  return DeltaFromXidCorrespondence(&from_doc.value(), &to_doc.value());
}

Result<std::optional<std::string>> VersionRepository::TextAt(int version,
                                                             Xid xid) const {
  Result<XmlDocument> doc = Checkout(version);
  if (!doc.ok()) return doc.status();
  std::optional<std::string> out;
  doc->root()->Visit([&](const XmlNode* n) {
    if (n->xid() == xid && n->is_text()) out = n->text();
  });
  return out;
}

size_t VersionRepository::stored_delta_bytes() const {
  size_t total = 0;
  for (const Delta& d : deltas_) total += SerializeDelta(d).size();
  return total;
}

}  // namespace xydiff
