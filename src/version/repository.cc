#include "version/repository.h"

#include "delta/apply.h"
#include "delta/codec.h"
#include "delta/compose.h"

namespace xydiff {

VersionRepository::VersionRepository(XmlDocument first_version)
    : current_(std::move(first_version)) {
  if (current_.root() != nullptr && !current_.AllXidsAssigned()) {
    current_.AssignInitialXids();
  }
}

VersionRepository VersionRepository::FromParts(XmlDocument current,
                                               std::vector<Delta> deltas) {
  return FromParts(std::move(current), std::move(deltas),
                   ReconstructionIndex{});
}

VersionRepository VersionRepository::FromParts(XmlDocument current,
                                               std::vector<Delta> deltas,
                                               ReconstructionIndex index) {
  VersionRepository repo(std::move(current));
  repo.deltas_ = std::move(deltas);
  repo.index_ = std::move(index);
  return repo;
}

Result<int> VersionRepository::Commit(XmlDocument new_version,
                                      const DiffOptions& options,
                                      XmlDocument* superseded) {
  if (current_.root() == nullptr) {
    return Status::Corruption("repository has no current version");
  }
  if (new_version.root() == nullptr) {
    return Status::InvalidArgument("cannot commit an empty document");
  }
  Result<Delta> delta = XyDiff(&current_, &new_version, options, &last_stats_);
  if (!delta.ok()) return delta.status();
  // Snapshot subtrees live in the delta's own arena and update values
  // are copied strings, so the delta is self-contained: the superseded
  // document can be handed off (or dropped) freely.
  deltas_.push_back(std::move(*delta));
  if (superseded != nullptr) {
    *superseded = std::move(current_);
  }
  current_ = std::move(new_version);
  // Extend an *active* reconstruction index (checkpoint pinned by
  // EnsureReconstructionIndex or a loaded persisted index) with the
  // spans this commit completed. An inactive index costs a commit
  // nothing — pure diff pipelines never pay for reconstruction they
  // never ask for. Derived state: a failure here degrades future
  // Checkout cost, never the chain that was just committed.
  if (index_.checkpoint.has_value()) {
    // Justified discard: index maintenance is best-effort by contract.
    (void)BuildIndexEntries(/*fill_holes=*/false);
  }
  return current_version();
}

Status VersionRepository::CheckVersion(int version) const {
  if (version < 1 || version > version_count()) {
    return Status::NotFound("no version " + std::to_string(version) +
                            " (history has " +
                            std::to_string(version_count()) + ")");
  }
  return Status::OK();
}

Status VersionRepository::BuildIndexEntries(bool fill_holes) {
  if (!index_.checkpoint.has_value()) {
    // Version 1 was never pinned (the chain came from FromParts without
    // an index, or the index is being activated on a fresh repository).
    // One backward replay recreates it; every later call finds it
    // present — including Commit, which from now on maintains the index
    // incrementally.
    Result<XmlDocument> v1 = Checkout(1);
    if (!v1.ok()) return v1.status();
    index_.checkpoint = std::move(*v1);
  }
  if (deltas_.empty()) return Status::OK();
  for (size_t level = 0;
       ReconstructionIndex::SpanAtLevel(level) <= deltas_.size(); ++level) {
    const size_t span = ReconstructionIndex::SpanAtLevel(level);
    if (index_.levels.size() <= level) index_.levels.emplace_back();
    std::vector<std::optional<Delta>>& entries = index_.levels[level];
    const size_t complete = deltas_.size() / span;
    const size_t first = fill_holes ? 0 : entries.size();
    if (entries.size() < complete) entries.resize(complete);
    for (size_t i = first; i < complete; ++i) {
      if (entries[i].has_value()) continue;
      const Delta* d1 = nullptr;
      const Delta* d2 = nullptr;
      if (level == 0) {
        d1 = &deltas_[2 * i];
        d2 = &deltas_[2 * i + 1];
      } else {
        const std::vector<std::optional<Delta>>& lower =
            index_.levels[level - 1];
        if (lower.size() < 2 * i + 2 || !lower[2 * i].has_value() ||
            !lower[2 * i + 1].has_value()) {
          continue;  // Halves missing: the hole stays until they exist.
        }
        d1 = &*lower[2 * i];
        d2 = &*lower[2 * i + 1];
      }
      // The span's base version is reachable cheaply: every entry the
      // plan below it needs was built first (bottom-up, left-to-right).
      Result<XmlDocument> base = Checkout(static_cast<int>(i * span + 1));
      if (!base.ok()) return base.status();
      Result<Delta> composed = ComposeDeltas(*base, *d1, *d2);
      if (!composed.ok()) return composed.status();
      entries[i] = std::move(*composed);
    }
  }
  return Status::OK();
}

Status VersionRepository::EnsureReconstructionIndex() {
  return BuildIndexEntries(/*fill_holes=*/true);
}

Result<XmlDocument> VersionRepository::Checkout(int version,
                                                CheckoutStats* stats,
                                                const Context* context) const {
  if (stats != nullptr) *stats = CheckoutStats{};
  DeadlineChecker checkpoint_guard(context, /*stride=*/1);
  XYDIFF_RETURN_IF_ERROR(checkpoint_guard.CheckNow());
  XYDIFF_RETURN_IF_ERROR(CheckVersion(version));
  if (current_.root() == nullptr) {
    return Status::Corruption("repository has no current version");
  }
  const size_t backward_cost =
      static_cast<size_t>(version_count() - version);
  if (backward_cost == 0) return current_.Clone();

  // Forward plan: from the checkpoint, greedily take the largest
  // aligned skip span that exists and fits, falling back to single
  // chain deltas. With a complete index this is the binary
  // decomposition of version-1 — popcount(version-1) ≤ ⌈log₂ n⌉ steps.
  // Planning aborts as soon as it cannot beat the backward replay.
  std::vector<const Delta*> plan;
  bool plan_complete = false;
  if (index_.checkpoint.has_value()) {
    const size_t target = static_cast<size_t>(version);
    size_t cur = 1;
    while (cur < target && plan.size() < backward_cost) {
      const Delta* step = nullptr;
      size_t span = 1;
      for (size_t level = index_.levels.size(); level-- > 0;) {
        const size_t s = ReconstructionIndex::SpanAtLevel(level);
        if (s > target - cur || (cur - 1) % s != 0) continue;
        const size_t i = (cur - 1) / s;
        if (i < index_.levels[level].size() &&
            index_.levels[level][i].has_value()) {
          step = &*index_.levels[level][i];
          span = s;
          break;
        }
      }
      if (step == nullptr) step = &deltas_[cur - 1];
      plan.push_back(step);
      cur += span;
    }
    plan_complete = cur == static_cast<size_t>(version);
  }

  if (plan_complete) {
    DeltaPathApplicator applicator(index_.checkpoint->Clone());
    for (const Delta* step : plan) {
      // One check per application: each Push is O(delta), the natural
      // granularity for abandoning a reconstruction under deadline.
      XYDIFF_RETURN_IF_ERROR(checkpoint_guard.Check());
      XYDIFF_RETURN_IF_ERROR(applicator.Push(*step));
    }
    if (stats != nullptr) {
      stats->applications = applicator.applications();
      stats->forward = true;
    }
    return std::move(applicator).Finish();
  }

  DeltaPathApplicator applicator(current_.Clone());
  for (int v = current_version(); v > version; --v) {
    XYDIFF_RETURN_IF_ERROR(checkpoint_guard.Check());
    // deltas_[v-2] transforms version v-1 into v; undo it.
    XYDIFF_RETURN_IF_ERROR(applicator.Push(
        deltas_[static_cast<size_t>(v) - 2], /*inverse=*/true));
  }
  if (stats != nullptr) stats->applications = applicator.applications();
  return std::move(applicator).Finish();
}

Result<const Delta*> VersionRepository::DeltaFor(int version) const {
  XYDIFF_RETURN_IF_ERROR(CheckVersion(version));
  if (version == version_count()) {
    return Status::NotFound("version " + std::to_string(version) +
                            " is the newest; no outgoing delta");
  }
  return &deltas_[static_cast<size_t>(version) - 1];
}

Result<Delta> VersionRepository::ChangesBetween(int from, int to) const {
  XYDIFF_RETURN_IF_ERROR(CheckVersion(from));
  XYDIFF_RETURN_IF_ERROR(CheckVersion(to));
  if (from >= to) {
    return Status::InvalidArgument("ChangesBetween requires from < to");
  }
  Result<XmlDocument> from_doc = Checkout(from);
  if (!from_doc.ok()) return from_doc.status();
  Result<XmlDocument> to_doc = Checkout(to);
  if (!to_doc.ok()) return to_doc.status();
  return DeltaFromXidCorrespondence(&from_doc.value(), &to_doc.value());
}

Result<std::optional<std::string>> VersionRepository::TextAt(int version,
                                                             Xid xid) const {
  Result<XmlDocument> doc = Checkout(version);
  if (!doc.ok()) return doc.status();
  std::optional<std::string> out;
  doc->root()->Visit([&](const XmlNode* n) {
    if (n->xid() == xid && n->is_text()) out = n->text();
  });
  return out;
}

size_t VersionRepository::stored_delta_bytes() const {
  size_t total = 0;
  for (const Delta& d : deltas_) total += EncodeDeltaBinary(d).size();
  return total;
}

}  // namespace xydiff
