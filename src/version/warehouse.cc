#include "version/warehouse.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <functional>
#include <string_view>
#include <thread>
#include <unordered_set>

#include "delta/delta_xml.h"
#include "util/string_util.h"
#include "version/storage.h"
#include "xml/parser.h"

namespace xydiff {

namespace {

/// Runs `op` up to 1 + max_retries times, retrying only transient
/// IOError with doubling backoff. Any other status (including
/// Corruption) returns immediately — retrying cannot fix wrong bytes.
Status RetryTransient(int max_retries, int backoff_ms,
                      const std::function<Status()>& op, size_t* retries) {
  Status status = op();
  for (int attempt = 0;
       !status.ok() && status.code() == StatusCode::kIOError &&
       attempt < max_retries;
       ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_ms << attempt));
    if (retries != nullptr) ++*retries;
    status = op();
  }
  return status;
}

}  // namespace

Status Warehouse::Subscribe(std::string id, std::string_view path_expression,
                            std::optional<ChangeKind> kind,
                            std::string detail_contains) {
  WriterMutexLock lock(alerter_mutex_);
  return alerter_.Subscribe(std::move(id), path_expression, kind,
                            std::move(detail_contains));
}

Warehouse::Shard& Warehouse::ShardFor(const std::string& url) const {
  return shards_[std::hash<std::string>{}(url) % kShards];
}

Warehouse::Document* Warehouse::FindDocument(const std::string& url) const {
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  auto it = shard.documents.find(url);
  return it == shard.documents.end() ? nullptr : it->second.get();
}

Warehouse::Document* Warehouse::FindOrCreateDocument(const std::string& url,
                                                     bool* created) {
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  auto it = shard.documents.find(url);
  if (it != shard.documents.end()) {
    *created = false;
    return it->second.get();
  }
  auto slot = std::make_unique<Document>();
  Document* doc = slot.get();
  shard.documents.emplace(url, std::move(slot));
  *created = true;
  return doc;
}

std::vector<std::pair<std::string, Warehouse::Document*>>
Warehouse::SnapshotSlots() const {
  std::vector<std::pair<std::string, Document*>> slots;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [url, doc] : shard.documents) {
      slots.emplace_back(url, doc.get());
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return slots;
}

Result<Warehouse::IngestReport> Warehouse::Ingest(const std::string& url,
                                                  XmlDocument document) {
  if (document.root() == nullptr) {
    return Status::InvalidArgument("cannot ingest an empty document: " + url);
  }
  IngestReport report;
  report.url = url;

  // Find or create the per-document slot (map shape under the shard
  // lock; per-document work under the document lock).
  bool created = false;
  Document* doc = FindOrCreateDocument(url, &created);

  MutexLock doc_lock(doc->mutex);
  if (created || doc->repo == nullptr) {
    doc->repo = std::make_unique<VersionRepository>(std::move(document));
    doc->index = FullTextIndex::Build(doc->repo->current());
    report.version = 1;
    report.first_version = true;
    return report;
  }

  const XmlDocument old_version = doc->repo->current().Clone();
  Result<int> version = doc->repo->Commit(std::move(document), options_);
  if (!version.ok()) return version.status();
  report.version = *version;

  Result<const Delta*> delta = doc->repo->DeltaFor(*version - 1);
  if (!delta.ok()) return delta.status();
  report.operations = (*delta)->operation_count();

  XYDIFF_RETURN_IF_ERROR(
      doc->index.Apply(**delta, old_version, doc->repo->current()));

  // Subscription evaluation: read-only on the alerter, so concurrent
  // ingests share the lock and the O(n) index builds run in parallel.
  {
    ReaderMutexLock lock(alerter_mutex_);
    report.alerts =
        alerter_.Evaluate(**delta, old_version, doc->repo->current());
  }
  // Statistics: heavy work in a local collector, cheap merge under lock.
  ChangeStatistics local;
  local.Accumulate(**delta, old_version, doc->repo->current());
  {
    MutexLock lock(stats_mutex_);
    stats_.Merge(local);
  }
  return report;
}

std::vector<Result<Warehouse::IngestReport>> Warehouse::IngestBatch(
    std::vector<std::pair<std::string, XmlDocument>> batch, int threads) {
  std::vector<Result<IngestReport>> results;
  results.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    results.emplace_back(Status::Corruption("ingest never ran"));
  }
  // Distinct URLs within one batch make items fully independent.
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!seen.insert(batch[i].first).second) {
        results[i] = Status::InvalidArgument("duplicate URL in batch: " +
                                             batch[i].first);
      }
    }
  }

  const int worker_count =
      std::max(1, std::min<int>(threads, static_cast<int>(batch.size())));
  ThreadPool pool(worker_count);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!results[i].ok() &&
        results[i].status().code() == StatusCode::kInvalidArgument) {
      continue;  // Pre-flagged duplicate.
    }
    pool.Submit([this, i, &batch, &results] {
      results[i] = Ingest(batch[i].first, std::move(batch[i].second));
    });
  }
  pool.Wait();
  return results;
}

std::vector<Result<Warehouse::IngestReport>> Warehouse::DiffBatch(
    std::vector<DiffJob> jobs, const PipelineOptions& pipeline,
    PipelineStats* stats) {
  using Clock = std::chrono::steady_clock;
  const auto batch_start = Clock::now();

  std::vector<Result<IngestReport>> results;
  results.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    results.emplace_back(Status::Corruption("pipeline never ran"));
  }
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!seen.insert(jobs[i].url).second) {
        results[i] = Status::InvalidArgument("duplicate URL in batch: " +
                                             jobs[i].url);
      }
    }
  }

  struct ParsedItem {
    size_t index;
    XmlDocument doc;
  };
  // Stage hand-off queues. Capacities bound how many parsed documents
  // can pile up ahead of the diff stage — the pipeline's working-set
  // ceiling (backpressure), not a correctness requirement.
  BoundedQueue<ParsedItem> diff_queue(pipeline.queue_capacity);
  BoundedQueue<size_t> store_queue(pipeline.queue_capacity);

  std::atomic<size_t> next_job{0};
  std::atomic<size_t> done_count{0};
  std::atomic<size_t> in_flight{0};
  std::atomic<size_t> peak_in_flight{0};
  std::atomic<size_t> parse_items{0}, parse_failed{0};
  std::atomic<size_t> diff_items{0}, diff_failed{0};
  std::atomic<size_t> store_items{0}, store_failed{0}, store_retries{0};
  std::atomic<size_t> degraded_slots{0};
  std::atomic<bool> batch_failed{false};
  std::atomic<uint64_t> parse_stall_ns{0}, diff_stall_ns{0};

  const auto finish_item = [&](size_t) {
    in_flight.fetch_sub(1, std::memory_order_relaxed);
    done_count.fetch_add(1, std::memory_order_acq_rel);
  };

  // Stage 3: serialize the committed delta, account its size, and (when
  // the batch persists) write the document's repository crash-safely.
  // Transient I/O errors are retried with backoff; a slot whose
  // persistence still fails is *degraded*, not failed — the in-memory
  // ingest stands, and the report says the disk does not have it.
  const auto store_one = [&](size_t index) {
    store_items.fetch_add(1, std::memory_order_relaxed);
    IngestReport& report = *results[index];
    Document* doc = FindDocument(report.url);
    if (doc != nullptr) {
      MutexLock doc_lock(doc->mutex);
      if (doc->repo != nullptr) {
        Result<const Delta*> delta = doc->repo->DeltaFor(report.version - 1);
        if (delta.ok()) {
          report.delta_bytes = SerializeDelta(**delta).size();
        }
        if (!pipeline.save_directory.empty()) {
          const Status saved = RetryTransient(
              pipeline.max_io_retries, pipeline.retry_backoff_ms,
              [&] {
                return SaveRepository(*doc->repo,
                                      pipeline.save_directory + "/" +
                                          SanitizeUrl(report.url),
                                      pipeline.env);
              },
              &report.store_retries);
          if (!saved.ok()) {
            report.store_degraded = true;
            store_failed.fetch_add(1, std::memory_order_relaxed);
          }
          if (report.store_retries > 0 || report.store_degraded) {
            degraded_slots.fetch_add(1, std::memory_order_relaxed);
          }
          store_retries.fetch_add(report.store_retries,
                                  std::memory_order_relaxed);
        }
      }
    }
    finish_item(index);
  };

  // Pushing into a full queue: drain one item of that queue inline
  // (this worker becomes the downstream stage), so a fixed-size pool
  // can never deadlock on backpressure. Time spent here is "stall".
  const auto push_store = [&](size_t index) {
    const auto start = Clock::now();
    bool stalled = false;
    while (!store_queue.TryPush(index)) {
      stalled = true;
      if (std::optional<size_t> other = store_queue.TryPop()) {
        store_one(*other);
      }
    }
    if (stalled) {
      diff_stall_ns.fetch_add(
          static_cast<uint64_t>((Clock::now() - start).count()),
          std::memory_order_relaxed);
    }
  };

  // Stage 2: the diff pipeline proper (diff + chain append + alerter +
  // statistics + incremental index), then hand off to the store stage.
  const auto diff_one = [&](ParsedItem item) {
    diff_items.fetch_add(1, std::memory_order_relaxed);
    results[item.index] = Ingest(jobs[item.index].url, std::move(item.doc));
    if (!results[item.index].ok()) {
      diff_failed.fetch_add(1, std::memory_order_relaxed);
      batch_failed.store(true, std::memory_order_release);
      finish_item(item.index);
      return;
    }
    if (results[item.index]->first_version) {
      finish_item(item.index);  // No delta to store for version 1.
      return;
    }
    push_store(item.index);
  };

  const auto push_diff = [&](ParsedItem item) {
    const auto start = Clock::now();
    bool stalled = false;
    while (!diff_queue.TryPush(std::move(item))) {
      stalled = true;
      if (std::optional<ParsedItem> other = diff_queue.TryPop()) {
        diff_one(std::move(*other));
      }
    }
    if (stalled) {
      parse_stall_ns.fetch_add(
          static_cast<uint64_t>((Clock::now() - start).count()),
          std::memory_order_relaxed);
    }
  };

  // Stage 1: parse the raw crawl bytes into an arena-backed document.
  const auto parse_one = [&](size_t index) {
    const size_t now_in_flight =
        in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
    size_t peak = peak_in_flight.load(std::memory_order_relaxed);
    while (now_in_flight > peak &&
           !peak_in_flight.compare_exchange_weak(peak, now_in_flight,
                                                 std::memory_order_relaxed)) {
    }
    parse_items.fetch_add(1, std::memory_order_relaxed);
    Result<XmlDocument> doc = ParseXml(jobs[index].xml);
    if (!doc.ok()) {
      parse_failed.fetch_add(1, std::memory_order_relaxed);
      batch_failed.store(true, std::memory_order_release);
      results[index] = Status::ParseError("cannot parse " + jobs[index].url +
                                          ": " + doc.status().message());
      finish_item(index);
      return;
    }
    push_diff(ParsedItem{index, std::move(*doc)});
  };

  // Count pre-flagged duplicates as already done.
  size_t preflagged = 0;
  for (const Result<IngestReport>& r : results) {
    if (!r.ok() && r.status().code() == StatusCode::kInvalidArgument) {
      ++preflagged;
    }
  }
  done_count.store(preflagged, std::memory_order_relaxed);

  // Every pool worker runs the same loop and prefers downstream stages,
  // so completed work leaves the pipeline as fast as it entered.
  const auto worker = [&] {
    for (;;) {
      if (std::optional<size_t> s = store_queue.TryPop()) {
        store_one(*s);
        continue;
      }
      if (std::optional<ParsedItem> d = diff_queue.TryPop()) {
        diff_one(std::move(*d));
        continue;
      }
      const size_t i = next_job.fetch_add(1, std::memory_order_relaxed);
      if (i < jobs.size()) {
        if (!results[i].ok() &&
            results[i].status().code() == StatusCode::kInvalidArgument) {
          continue;  // Pre-flagged duplicate.
        }
        if (pipeline.fail_fast &&
            batch_failed.load(std::memory_order_acquire)) {
          // Not a failure of this slot's own making: Aborted, so callers
          // can tell "skipped by fail-fast" from real errors.
          results[i] = Status::Aborted("slot skipped: fail-fast after an "
                                       "earlier slot failed");
          done_count.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        parse_one(i);
        continue;
      }
      if (done_count.load(std::memory_order_acquire) >= jobs.size()) return;
      // Tail: peers still hold items; re-poll shortly.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };

  const int worker_count = std::max(
      1, std::min<int>(pipeline.threads, static_cast<int>(
                                             std::max<size_t>(1, jobs.size()))));
  {
    ThreadPool pool(worker_count);
    for (int t = 0; t < worker_count; ++t) pool.Submit(worker);
    pool.Wait();
  }

  if (stats != nullptr) {
    *stats = PipelineStats{};
    StageStats parse_stage;
    parse_stage.name = "parse";
    parse_stage.items = parse_items.load();
    parse_stage.failed = parse_failed.load();
    parse_stage.stall_seconds =
        static_cast<double>(parse_stall_ns.load()) * 1e-9;
    StageStats diff_stage;
    diff_stage.name = "diff";
    diff_stage.items = diff_items.load();
    diff_stage.failed = diff_failed.load();
    diff_stage.peak_queue_depth = diff_queue.peak_depth();
    diff_stage.stall_seconds = static_cast<double>(diff_stall_ns.load()) * 1e-9;
    StageStats store_stage;
    store_stage.name = "store";
    store_stage.items = store_items.load();
    store_stage.failed = store_failed.load();
    store_stage.retries = store_retries.load();
    store_stage.peak_queue_depth = store_queue.peak_depth();
    stats->stages = {parse_stage, diff_stage, store_stage};
    stats->peak_in_flight = peak_in_flight.load();
    stats->degraded_slots = degraded_slots.load();
    stats->wall_seconds =
        std::chrono::duration<double>(Clock::now() - batch_start).count();
  }
  return results;
}

size_t Warehouse::document_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    count += shard.documents.size();
  }
  return count;
}

std::vector<std::string> Warehouse::urls() const {
  std::vector<std::string> out;
  for (const auto& [url, doc] : SnapshotSlots()) out.push_back(url);
  return out;
}

int Warehouse::version_count(const std::string& url) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) return 0;
  MutexLock lock(doc->mutex);
  return doc->repo == nullptr ? 0 : doc->repo->version_count();
}

Result<XmlDocument> Warehouse::Checkout(const std::string& url,
                                        int version) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) {
    return Status::NotFound("unknown document: " + url);
  }
  MutexLock lock(doc->mutex);
  if (doc->repo == nullptr) {
    return Status::NotFound("document has no versions yet: " + url);
  }
  return doc->repo->Checkout(version);
}

std::vector<std::pair<std::string, Xid>> Warehouse::Search(
    std::string_view word) const {
  // Snapshot the slot list first: document locks are always taken
  // WITHOUT any shard lock held (Ingest acquires doc->mutex before it
  // re-enters shared state for the alerter, so nesting the other way
  // around would deadlock).
  std::vector<std::pair<std::string, Xid>> hits;
  for (const auto& [url, doc] : SnapshotSlots()) {
    MutexLock doc_lock(doc->mutex);
    for (Xid xid : doc->index.Lookup(word)) {
      hits.emplace_back(url, xid);
    }
  }
  return hits;
}

ChangeStatistics::LabelStats Warehouse::StatsForLabel(
    const std::string& label) const {
  MutexLock lock(stats_mutex_);
  return stats_.ForLabel(label);
}

std::string Warehouse::StatsReport(size_t limit) const {
  MutexLock lock(stats_mutex_);
  return stats_.Report(limit);
}

std::string Warehouse::SanitizeUrl(const std::string& url) {
  std::string out;
  out.reserve(url.size());
  for (char c : url) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '-')
               ? c
               : '_';
  }
  return out.empty() ? "_" : out;
}

Status Warehouse::Save(const std::string& directory, Env* env) const {
  if (env == nullptr) env = Env::Default();
  XYDIFF_RETURN_IF_ERROR(env->CreateDirs(directory));
  std::string manifest;
  for (const auto& [url, doc] : SnapshotSlots()) {
    MutexLock doc_lock(doc->mutex);
    if (doc->repo == nullptr) continue;  // Slot created, never committed.
    const std::string sub = directory + "/" + SanitizeUrl(url);
    XYDIFF_RETURN_IF_ERROR(SaveRepository(*doc->repo, sub, env));
    manifest += SanitizeUrl(url) + "\t" + url + "\n";
  }
  return env->WriteFileAtomic(directory + "/manifest.tsv", manifest);
}

Result<std::unique_ptr<Warehouse>> Warehouse::Load(
    const std::string& directory, DiffOptions options,
    std::vector<std::string>* skipped, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> manifest = env->ReadFile(directory + "/manifest.tsv");
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no warehouse manifest in " + directory);
    }
    return manifest.status();
  }
  auto warehouse = std::make_unique<Warehouse>(options);
  for (std::string_view line : SplitLines(*manifest)) {
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    const std::string sub(line.substr(0, tab));
    const std::string url(line.substr(tab + 1));
    Result<VersionRepository> repo =
        LoadRepository(directory + "/" + sub, env);
    if (!repo.ok()) {
      // A malformed stored document loses only itself, never the batch:
      // record the error and keep loading the healthy documents.
      if (skipped != nullptr) {
        skipped->push_back(url + ": " + repo.status().ToString());
      }
      continue;
    }
    bool created = false;
    Document* slot = warehouse->FindOrCreateDocument(url, &created);
    // Uncontended (the warehouse is not yet published), but the slot's
    // contents are guarded members, so hold the lock anyway.
    MutexLock lock(slot->mutex);
    slot->repo = std::make_unique<VersionRepository>(std::move(*repo));
    slot->index = FullTextIndex::Build(slot->repo->current());
  }
  return warehouse;
}

}  // namespace xydiff
