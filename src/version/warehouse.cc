#include "version/warehouse.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <unordered_set>

#include "delta/delta_xml.h"
#include "delta/node_index.h"
#include "util/retry.h"
#include "util/string_util.h"
#include "version/storage.h"
#include "xml/parser.h"

namespace xydiff {

namespace {

/// The store stage's retry policy, derived from the pipeline knobs.
/// The jitter seed mixes in a per-call salt so concurrent flush groups
/// retrying the same transient fault desynchronize deterministically.
RetryPolicy StoreRetryPolicy(int max_retries, int backoff_ms, uint64_t salt) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.backoff_ms = backoff_ms;
  policy.jitter_seed = 0x5EEDF00DULL ^ salt;
  return policy;
}

}  // namespace

Status Warehouse::Subscribe(std::string id, std::string_view path_expression,
                            std::optional<ChangeKind> kind,
                            std::string detail_contains) {
  WriterMutexLock lock(alerter_mutex_);
  return alerter_.Subscribe(std::move(id), path_expression, kind,
                            std::move(detail_contains));
}

Warehouse::Shard& Warehouse::ShardFor(const std::string& url) const {
  return shards_[std::hash<std::string>{}(url) % kShards];
}

Warehouse::Document* Warehouse::FindDocument(const std::string& url) const {
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  auto it = shard.documents.find(url);
  return it == shard.documents.end() ? nullptr : it->second.get();
}

Warehouse::Document* Warehouse::FindOrCreateDocument(const std::string& url,
                                                     bool* created) {
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  auto it = shard.documents.find(url);
  if (it != shard.documents.end()) {
    *created = false;
    return it->second.get();
  }
  auto slot = std::make_unique<Document>();
  Document* doc = slot.get();
  shard.documents.emplace(url, std::move(slot));
  *created = true;
  return doc;
}

std::vector<std::pair<std::string, Warehouse::Document*>>
Warehouse::SnapshotSlots() const {
  std::vector<std::pair<std::string, Document*>> slots;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [url, doc] : shard.documents) {
      slots.emplace_back(url, doc.get());
    }
  }
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return slots;
}

Result<Warehouse::IngestReport> Warehouse::Ingest(const std::string& url,
                                                  XmlDocument document) {
  if (degraded_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "warehouse degraded (persistent store IOError): ingest rejected, "
        "reads still served: " + url);
  }
  return IngestInternal(url, std::move(document), /*defer_monitors=*/false);
}

Result<Warehouse::IngestReport> Warehouse::IngestInternal(
    const std::string& url, XmlDocument document, bool defer_monitors,
    const Context* context) {
  if (document.root() == nullptr) {
    return Status::InvalidArgument("cannot ingest an empty document: " + url);
  }
  IngestReport report;
  report.url = url;

  // Find or create the per-document slot (map shape under the shard
  // lock; per-document work under the document lock).
  bool created = false;
  Document* doc = FindOrCreateDocument(url, &created);

  MutexLock doc_lock(doc->mutex);
  if (created || doc->repo == nullptr) {
    doc->repo = std::make_unique<VersionRepository>(std::move(document));
    if (defer_monitors) {
      doc->index_dirty = true;
    } else {
      doc->index = FullTextIndex::Build(doc->repo->current());
      doc->index_dirty = false;
    }
    report.version = 1;
    report.first_version = true;
    return report;
  }

  // Commit hands back the superseded version instead of us deep-cloning
  // it up front — the diff reads the old tree but never mutates it.
  // The batch context rides into the diff through its options, so the
  // BULD matching loop observes the deadline cooperatively; on a
  // context error Commit leaves the repository untouched (the delta is
  // never appended).
  DiffOptions diff_options = options_;
  diff_options.context = context;
  XmlDocument old_version;
  Result<int> version =
      doc->repo->Commit(std::move(document), diff_options, &old_version);
  if (!version.ok()) return version.status();
  report.version = *version;

  Result<const Delta*> delta = doc->repo->DeltaFor(*version - 1);
  if (!delta.ok()) return delta.status();
  report.operations = (*delta)->operation_count();

  // Alerts are never deferred; with no subscriptions a deferred ingest
  // is done here — index marked stale, statistics skipped (derived
  // state, the contract Load() already has).
  bool evaluate_alerts = true;
  if (defer_monitors) {
    ReaderMutexLock lock(alerter_mutex_);
    evaluate_alerts = alerter_.subscription_count() > 0;
    if (!evaluate_alerts) {
      doc->index_dirty = true;
      return report;
    }
  }

  // Resolve the delta's nodes once; index, alerter, and statistics all
  // consume the same DeltaNodeIndex instead of each rebuilding an O(n)
  // XID map over both versions.
  const DeltaNodeIndex nodes =
      DeltaNodeIndex::Build(**delta, old_version, doc->repo->current());

  if (defer_monitors) {
    doc->index_dirty = true;
  } else if (doc->index_dirty) {
    // A previous deferred batch left the index stale; incremental Apply
    // would corrupt it. Rebuild from the (post-commit) current version.
    doc->index = FullTextIndex::Build(doc->repo->current());
    doc->index_dirty = false;
  } else {
    XYDIFF_RETURN_IF_ERROR(doc->index.Apply(**delta, nodes));
  }

  // Subscription evaluation: read-only on the alerter, so concurrent
  // ingests share the lock.
  if (evaluate_alerts) {
    ReaderMutexLock lock(alerter_mutex_);
    report.alerts = alerter_.Evaluate(**delta, nodes);
  }
  if (!defer_monitors) {
    // Statistics: heavy work in a local collector, cheap merge under
    // lock.
    ChangeStatistics local;
    local.Accumulate(**delta, doc->repo->current(), nodes);
    {
      MutexLock lock(stats_mutex_);
      stats_.Merge(local);
    }
  }
  return report;
}

std::vector<Result<Warehouse::IngestReport>> Warehouse::IngestBatch(
    std::vector<std::pair<std::string, XmlDocument>> batch, int threads) {
  std::vector<Result<IngestReport>> results;
  results.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    results.emplace_back(Status::Corruption("ingest never ran"));
  }
  // Distinct URLs within one batch make items fully independent.
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!seen.insert(batch[i].first).second) {
        results[i] = Status::InvalidArgument("duplicate URL in batch: " +
                                             batch[i].first);
      }
    }
  }

  const int worker_count =
      std::max(1, std::min<int>(threads, static_cast<int>(batch.size())));
  ThreadPool pool(worker_count);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!results[i].ok() &&
        results[i].status().code() == StatusCode::kInvalidArgument) {
      continue;  // Pre-flagged duplicate.
    }
    pool.Submit([this, i, &batch, &results] {
      results[i] = Ingest(batch[i].first, std::move(batch[i].second));
    });
  }
  pool.Wait();
  return results;
}

std::vector<Result<Warehouse::IngestReport>> Warehouse::DiffBatch(
    std::vector<DiffJob> jobs, const PipelineOptions& pipeline,
    PipelineStats* stats) {
  using Clock = std::chrono::steady_clock;
  const auto batch_start = Clock::now();

  std::vector<Result<IngestReport>> results;
  results.reserve(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    results.emplace_back(Status::Corruption("pipeline never ran"));
  }
  {
    std::unordered_set<std::string_view> seen;
    seen.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (!seen.insert(jobs[i].url).second) {
        results[i] = Status::InvalidArgument("duplicate URL in batch: " +
                                             jobs[i].url);
      }
    }
  }

  struct ParsedItem {
    size_t index;
    XmlDocument doc;
  };
  // Stage hand-off queues. Capacities bound how many parsed documents
  // can pile up ahead of the diff stage — the pipeline's working-set
  // ceiling (backpressure), not a correctness requirement.
  BoundedQueue<ParsedItem> diff_queue(pipeline.queue_capacity);
  BoundedQueue<size_t> store_queue(pipeline.queue_capacity);

  std::atomic<size_t> next_job{0};
  std::atomic<size_t> done_count{0};
  std::atomic<size_t> in_flight{0};
  std::atomic<size_t> peak_in_flight{0};
  std::atomic<size_t> parse_items{0}, parse_failed{0};
  std::atomic<size_t> parse_peak_backlog{0};
  std::atomic<size_t> diff_items{0}, diff_failed{0};
  std::atomic<size_t> store_items{0}, store_failed{0}, store_retries{0};
  std::atomic<size_t> degraded_slots{0};
  std::atomic<bool> batch_failed{false};
  std::atomic<uint64_t> parse_stall_ns{0}, diff_stall_ns{0};
  // Overload accounting: slots declined or abandoned, by cause.
  std::atomic<size_t> shed_count{0}, quarantined_count{0};
  std::atomic<size_t> deadline_count{0}, cancelled_count{0};
  // Byte budget spent by admitted slots (admission control).
  std::atomic<size_t> admitted_bytes{0};
  // Flush-group ordinal, salting the retry jitter stream per group.
  std::atomic<uint64_t> flush_ordinal{0};

  // Classifies a context error into the overload counters and fails the
  // slot with it. `failed_while_processing` feeds the circuit breaker:
  // a slot whose own processing blew the deadline counts against its
  // URL (repeated time-outs quarantine the input), a slot that was
  // merely never admitted does not.
  const auto fail_slot_with_context_error = [&](size_t index,
                                                const Status& status,
                                                bool failed_while_processing) {
    if (status.code() == StatusCode::kCancelled) {
      cancelled_count.fetch_add(1, std::memory_order_relaxed);
    } else {
      deadline_count.fetch_add(1, std::memory_order_relaxed);
    }
    if (failed_while_processing) {
      RecordBreakerOutcome(jobs[index].url, /*success=*/false, pipeline);
    }
    results[index] = status;
  };

  const int worker_count = std::max(
      1, std::min<int>(pipeline.threads, static_cast<int>(
                                             std::max<size_t>(1, jobs.size()))));
  // A worker carries its slot straight into the next stage while queues
  // are shallow: the hand-off (queue lock, deque churn, another worker's
  // wakeup) costs more than it buys when nobody is waiting for work.
  // Queues only come into play once they hold enough for every worker.
  const size_t carry_threshold = static_cast<size_t>(worker_count);

  const auto finish_item = [&](size_t) {
    in_flight.fetch_sub(1, std::memory_order_relaxed);
    done_count.fetch_add(1, std::memory_order_acq_rel);
  };

  // Group commit: finished slots park here until a full group (or the
  // batch tail) flushes them through ONE SaveRepositoryBatch — one
  // journal fsync + parent sync for the whole group instead of a
  // manifest rename + directory sync per slot.
  const bool group_commit = !pipeline.save_directory.empty() &&
                            pipeline.group_commit_slots > 1;
  Mutex group_mutex;
  std::vector<size_t> parked_slots;

  // Persists one flushed group. Annotation opt-out: the per-document
  // locks are taken in a loop (URL order), which the static analysis
  // cannot follow. The order is deadlock-free — group flushers agree on
  // it, and every other path holds at most one document lock at a time.
  const auto flush_group = [&](std::vector<size_t> group)
      XY_NO_THREAD_SAFETY_ANALYSIS {
    if (group.empty()) return;
    std::sort(group.begin(), group.end(), [&](size_t a, size_t b) {
      return results[a]->url < results[b]->url;
    });
    std::vector<Document*> docs(group.size(), nullptr);
    std::vector<RepositorySaveSlot> slots;
    slots.reserve(group.size());
    // Resolve every document BEFORE taking the first lock: FindDocument
    // acquires a shard mutex, and calling it from inside the locking
    // loop would nest shard acquisition under already-held document
    // locks — the inverse of the shard -> document order used everywhere
    // else.
    for (size_t g = 0; g < group.size(); ++g) {
      docs[g] = FindDocument(results[group[g]]->url);
    }
    for (size_t g = 0; g < group.size(); ++g) {
      if (docs[g] != nullptr) docs[g]->mutex.lock();
    }
    for (size_t g = 0; g < group.size(); ++g) {
      if (docs[g] != nullptr && docs[g]->repo != nullptr) {
        slots.push_back(RepositorySaveSlot{
            docs[g]->repo.get(), SanitizeUrl(results[group[g]]->url)});
      }
    }
    size_t group_retries = 0;
    // Deadline-aware, jittered retry around the group commit. The
    // context is also threaded INTO SaveRepositoryBatch, which checks
    // it between slots and before — never after — the journal write, so
    // a deadline mid-save leaves disk bit-exactly pre-batch.
    const Status saved = RetryTransient(
        StoreRetryPolicy(pipeline.max_io_retries, pipeline.retry_backoff_ms,
                         flush_ordinal.fetch_add(1)),
        pipeline.context,
        [&] {
          return SaveRepositoryBatch(slots, pipeline.save_directory,
                                     pipeline.env, pipeline.context);
        },
        &group_retries);
    for (size_t g = group.size(); g > 0; --g) {
      if (docs[g - 1] != nullptr) docs[g - 1]->mutex.unlock();
    }
    RecordStoreHealth(saved, pipeline);
    if (!saved.ok() && IsContextError(saved.code())) {
      // The in-memory ingests stand; only persistence was cut short.
      // Count once per group under the deadline/cancel columns so the
      // overload report shows WHY the disk is behind.
      if (saved.code() == StatusCode::kCancelled) {
        cancelled_count.fetch_add(1, std::memory_order_relaxed);
      } else {
        deadline_count.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // The commit is shared, so its cost and its outcome are attributed
    // to every slot in the group: all-or-nothing on disk.
    store_retries.fetch_add(group_retries, std::memory_order_relaxed);
    for (size_t index : group) {
      IngestReport& report = *results[index];
      report.store_retries += group_retries;
      if (!saved.ok()) {
        report.store_degraded = true;
        store_failed.fetch_add(1, std::memory_order_relaxed);
      }
      if (group_retries > 0 || report.store_degraded) {
        degraded_slots.fetch_add(1, std::memory_order_relaxed);
      }
      finish_item(index);
    }
  };

  // Stage 3: serialize the committed delta, account its size, and (when
  // the batch persists) write the document's repository crash-safely.
  // Transient I/O errors are retried with backoff; a slot whose
  // persistence still fails is *degraded*, not failed — the in-memory
  // ingest stands, and the report says the disk does not have it.
  const auto store_one = [&](size_t index) {
    store_items.fetch_add(1, std::memory_order_relaxed);
    IngestReport& report = *results[index];
    Document* doc = FindDocument(report.url);
    if (doc != nullptr) {
      MutexLock doc_lock(doc->mutex);
      if (doc->repo != nullptr) {
        Result<const Delta*> delta = doc->repo->DeltaFor(report.version - 1);
        if (delta.ok()) {
          report.delta_bytes = SerializeDelta(**delta).size();
        }
        if (!pipeline.save_directory.empty() && !group_commit) {
          const Status saved = RetryTransient(
              StoreRetryPolicy(pipeline.max_io_retries,
                               pipeline.retry_backoff_ms, index),
              pipeline.context,
              [&] {
                return SaveRepository(*doc->repo,
                                      pipeline.save_directory + "/" +
                                          SanitizeUrl(report.url),
                                      pipeline.env);
              },
              &report.store_retries);
          RecordStoreHealth(saved, pipeline);
          if (!saved.ok()) {
            report.store_degraded = true;
            store_failed.fetch_add(1, std::memory_order_relaxed);
          }
          if (report.store_retries > 0 || report.store_degraded) {
            degraded_slots.fetch_add(1, std::memory_order_relaxed);
          }
          store_retries.fetch_add(report.store_retries,
                                  std::memory_order_relaxed);
        }
      }
    }
    if (group_commit) {
      // Park the slot; its finish_item runs when the group flushes.
      std::vector<size_t> full;
      {
        MutexLock lock(group_mutex);
        parked_slots.push_back(index);
        if (parked_slots.size() >= pipeline.group_commit_slots) {
          full.swap(parked_slots);
        }
      }
      flush_group(std::move(full));
      return;
    }
    finish_item(index);
  };

  // Pushing into a full queue: drain one item of that queue inline
  // (this worker becomes the downstream stage), so a fixed-size pool
  // can never deadlock on backpressure. Time spent here is "stall".
  const auto push_store = [&](size_t index) {
    if (store_queue.size() < carry_threshold) {
      store_one(index);  // Carry the slot through; no hand-off.
      return;
    }
    const auto start = Clock::now();
    bool stalled = false;
    while (!store_queue.TryPush(index)) {
      stalled = true;
      if (std::optional<size_t> other = store_queue.TryPop()) {
        store_one(*other);
      }
    }
    if (stalled) {
      diff_stall_ns.fetch_add(
          static_cast<uint64_t>((Clock::now() - start).count()),
          std::memory_order_relaxed);
    }
  };

  // Stage 2: the diff pipeline proper (diff + chain append + alerter;
  // index and statistics follow the batch's monitor policy), then hand
  // off to the store stage.
  const auto diff_one = [&](ParsedItem item) {
    diff_items.fetch_add(1, std::memory_order_relaxed);
    // Stage boundary check-point: a slot parked in the diff queue past
    // the deadline fails here instead of running a doomed diff.
    if (pipeline.context != nullptr) {
      const Status live = pipeline.context->Check();
      if (!live.ok()) {
        diff_failed.fetch_add(1, std::memory_order_relaxed);
        fail_slot_with_context_error(item.index, live,
                                     /*failed_while_processing=*/true);
        finish_item(item.index);
        return;
      }
    }
    results[item.index] = IngestInternal(jobs[item.index].url,
                                         std::move(item.doc),
                                         pipeline.defer_monitor_updates,
                                         pipeline.context);
    if (!results[item.index].ok()) {
      diff_failed.fetch_add(1, std::memory_order_relaxed);
      const Status& status = results[item.index].status();
      if (IsContextError(status.code())) {
        fail_slot_with_context_error(item.index, status,
                                     /*failed_while_processing=*/true);
      } else {
        // Context deaths are not the batch's fault; everything else is
        // and arms fail-fast + the slot's circuit breaker.
        batch_failed.store(true, std::memory_order_release);
        RecordBreakerOutcome(jobs[item.index].url, /*success=*/false,
                             pipeline);
      }
      finish_item(item.index);
      return;
    }
    RecordBreakerOutcome(jobs[item.index].url, /*success=*/true, pipeline);
    if (results[item.index]->first_version) {
      finish_item(item.index);  // No delta to store for version 1.
      return;
    }
    push_store(item.index);
  };

  const auto push_diff = [&](ParsedItem item) {
    if (diff_queue.size() < carry_threshold) {
      diff_one(std::move(item));  // Carry the slot through; no hand-off.
      return;
    }
    const auto start = Clock::now();
    bool stalled = false;
    while (!diff_queue.TryPush(std::move(item))) {
      stalled = true;
      if (std::optional<ParsedItem> other = diff_queue.TryPop()) {
        diff_one(std::move(*other));
      }
    }
    if (stalled) {
      parse_stall_ns.fetch_add(
          static_cast<uint64_t>((Clock::now() - start).count()),
          std::memory_order_relaxed);
    }
  };

  // Stage 1: parse the raw crawl bytes into an arena-backed document.
  const auto parse_one = [&](size_t index) {
    const size_t now_in_flight =
        in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
    UpdateAtomicMax(peak_in_flight, now_in_flight);
    // The parse stage's backlog is the admission queue itself: every job
    // not yet claimed is waiting to be parsed.
    UpdateAtomicMax(parse_peak_backlog, jobs.size() - index);
    parse_items.fetch_add(1, std::memory_order_relaxed);
    ParseOptions parse_options;
    if (pipeline.reuse_arenas) {
      // A recycled arena keeps its largest block, so steady-state slots
      // parse without touching malloc for node storage at all.
      parse_options.arena = arena_pool_.Acquire(
          std::min(std::max(jobs[index].xml.size(), Arena::kDefaultFirstBlock),
                   Arena::kMaxBlock));
    }
    Result<XmlDocument> doc = ParseXml(jobs[index].xml, parse_options);
    if (!doc.ok()) {
      parse_failed.fetch_add(1, std::memory_order_relaxed);
      batch_failed.store(true, std::memory_order_release);
      RecordBreakerOutcome(jobs[index].url, /*success=*/false, pipeline);
      results[index] = Status::ParseError("cannot parse " + jobs[index].url +
                                          ": " + doc.status().message());
      finish_item(index);
      return;
    }
    push_diff(ParsedItem{index, std::move(*doc)});
  };

  // Count pre-flagged duplicates as already done.
  size_t preflagged = 0;
  for (const Result<IngestReport>& r : results) {
    if (!r.ok() && r.status().code() == StatusCode::kInvalidArgument) {
      ++preflagged;
    }
  }
  done_count.store(preflagged, std::memory_order_relaxed);

  // Every pool worker runs the same loop and prefers downstream stages,
  // so completed work leaves the pipeline as fast as it entered.
  const auto worker = [&] {
    for (;;) {
      if (std::optional<size_t> s = store_queue.TryPop()) {
        store_one(*s);
        continue;
      }
      if (std::optional<ParsedItem> d = diff_queue.TryPop()) {
        diff_one(std::move(*d));
        continue;
      }
      const size_t i = next_job.fetch_add(1, std::memory_order_relaxed);
      if (i < jobs.size()) {
        if (!results[i].ok() &&
            results[i].status().code() == StatusCode::kInvalidArgument) {
          continue;  // Pre-flagged duplicate.
        }
        if (pipeline.fail_fast &&
            batch_failed.load(std::memory_order_acquire)) {
          // Not a failure of this slot's own making: Aborted, so callers
          // can tell "skipped by fail-fast" from real errors.
          results[i] = Status::Aborted("slot skipped: fail-fast after an "
                                       "earlier slot failed");
          done_count.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        // --- Admission control (DESIGN.md §3.17). Checked at claim time,
        // before the slot consumes any pipeline resources. Rejected slots
        // were never in flight, so they bypass finish_item.
        if (degraded_.load(std::memory_order_acquire)) {
          quarantined_count.fetch_add(1, std::memory_order_relaxed);
          results[i] = Status::Unavailable(
              "warehouse degraded (persistent store IOError): slot "
              "rejected, reads still served: " + jobs[i].url);
          done_count.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        if (pipeline.context != nullptr) {
          const Status live = pipeline.context->Check();
          if (!live.ok()) {
            fail_slot_with_context_error(i, live,
                                         /*failed_while_processing=*/false);
            done_count.fetch_add(1, std::memory_order_acq_rel);
            continue;
          }
        }
        if (!BreakerAdmits(jobs[i].url, pipeline)) {
          quarantined_count.fetch_add(1, std::memory_order_relaxed);
          results[i] = Status::Unavailable(
              "quarantined by circuit breaker after repeated failures: " +
              jobs[i].url);
          done_count.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        const size_t slot_bytes = jobs[i].xml.size();
        if (pipeline.max_document_bytes != 0 &&
            slot_bytes > pipeline.max_document_bytes) {
          shed_count.fetch_add(1, std::memory_order_relaxed);
          results[i] = Status::ResourceExhausted(
              "document exceeds max_document_bytes, shed: " + jobs[i].url);
          done_count.fetch_add(1, std::memory_order_acq_rel);
          continue;
        }
        if (pipeline.max_batch_bytes != 0) {
          const size_t before =
              admitted_bytes.fetch_add(slot_bytes, std::memory_order_relaxed);
          if (before + slot_bytes > pipeline.max_batch_bytes) {
            // Give the reservation back so a smaller later slot may fit.
            admitted_bytes.fetch_sub(slot_bytes, std::memory_order_relaxed);
            shed_count.fetch_add(1, std::memory_order_relaxed);
            results[i] = Status::ResourceExhausted(
                "batch byte budget exhausted, slot shed: " + jobs[i].url);
            done_count.fetch_add(1, std::memory_order_acq_rel);
            continue;
          }
        }
        parse_one(i);
        continue;
      }
      if (done_count.load(std::memory_order_acquire) >= jobs.size()) return;
      if (group_commit) {
        // Tail: no admissions and no queued work left, so an under-full
        // parked group would otherwise wait forever. Flush it partial.
        std::vector<size_t> partial;
        {
          MutexLock lock(group_mutex);
          partial.swap(parked_slots);
        }
        if (!partial.empty()) {
          flush_group(std::move(partial));
          continue;
        }
      }
      // Tail: peers still hold items; re-poll shortly.
      SleepFor(std::chrono::microseconds(50));
    }
  };

  {
    ThreadPool pool(worker_count);
    for (int t = 0; t < worker_count; ++t) pool.Submit(worker);
    pool.Wait();
  }

  if (stats != nullptr) {
    *stats = PipelineStats{};
    StageStats parse_stage;
    parse_stage.name = "parse";
    parse_stage.items = parse_items.load();
    parse_stage.failed = parse_failed.load();
    // The admission backlog: before this was wired up, BENCH_parallel
    // always reported parse_peak_queue = 0.
    parse_stage.peak_queue_depth = parse_peak_backlog.load();
    parse_stage.stall_seconds =
        static_cast<double>(parse_stall_ns.load()) * 1e-9;
    StageStats diff_stage;
    diff_stage.name = "diff";
    diff_stage.items = diff_items.load();
    diff_stage.failed = diff_failed.load();
    diff_stage.peak_queue_depth = diff_queue.peak_depth();
    diff_stage.stall_seconds = static_cast<double>(diff_stall_ns.load()) * 1e-9;
    StageStats store_stage;
    store_stage.name = "store";
    store_stage.items = store_items.load();
    store_stage.failed = store_failed.load();
    store_stage.retries = store_retries.load();
    store_stage.peak_queue_depth = store_queue.peak_depth();
    stats->stages = {parse_stage, diff_stage, store_stage};
    stats->peak_in_flight = peak_in_flight.load();
    stats->degraded_slots = degraded_slots.load();
    stats->shed_slots = shed_count.load();
    stats->quarantined_slots = quarantined_count.load();
    stats->deadline_slots = deadline_count.load();
    stats->cancelled_slots = cancelled_count.load();
    stats->wall_seconds =
        std::chrono::duration<double>(Clock::now() - batch_start).count();
  }
  return results;
}

size_t Warehouse::document_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    count += shard.documents.size();
  }
  return count;
}

bool Warehouse::BreakerAdmits(const std::string& url,
                              const PipelineOptions& pipeline) {
  if (pipeline.breaker_failure_threshold <= 0) return true;  // Disabled.
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  const auto it = shard.breakers.find(url);
  if (it == shard.breakers.end() || !it->second.open) return true;
  // While open, every probe_interval-th arrival is admitted as a probe
  // so a healed input can close its own breaker; the rest are rejected.
  const int interval = std::max(1, pipeline.breaker_probe_interval);
  const size_t seen = it->second.rejected_while_open++;
  return seen % static_cast<size_t>(interval) ==
         static_cast<size_t>(interval) - 1;
}

void Warehouse::RecordBreakerOutcome(const std::string& url, bool success,
                                     const PipelineOptions& pipeline) {
  if (pipeline.breaker_failure_threshold <= 0) return;  // Disabled.
  Shard& shard = ShardFor(url);
  MutexLock lock(shard.mutex);
  if (success) {
    shard.breakers.erase(url);  // Healed: forget the history entirely.
    return;
  }
  Breaker& breaker = shard.breakers[url];
  breaker.consecutive_failures++;
  if (breaker.consecutive_failures >= pipeline.breaker_failure_threshold) {
    breaker.open = true;
  }
}

void Warehouse::RecordStoreHealth(const Status& saved,
                                  const PipelineOptions& pipeline) {
  if (saved.ok()) {
    io_failure_streak_.store(0, std::memory_order_release);
    return;
  }
  // Only real I/O errors advance the streak: a deadline or cancellation
  // during a save says nothing about the store Env's health.
  if (saved.code() != StatusCode::kIOError) return;
  const size_t streak =
      io_failure_streak_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pipeline.degrade_after_io_failures > 0 &&
      streak >= static_cast<size_t>(pipeline.degrade_after_io_failures)) {
    degraded_.store(true, std::memory_order_release);
  }
}

Warehouse::Health Warehouse::health() const {
  Health snapshot;
  snapshot.degraded = degraded_.load(std::memory_order_acquire);
  snapshot.io_failure_streak =
      io_failure_streak_.load(std::memory_order_acquire);
  snapshot.open_breakers = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [url, breaker] : shard.breakers) {
      if (breaker.open) snapshot.open_breakers++;
    }
  }
  snapshot.documents = document_count();
  return snapshot;
}

void Warehouse::ResetHealth() {
  degraded_.store(false, std::memory_order_release);
  io_failure_streak_.store(0, std::memory_order_release);
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.breakers.clear();
  }
}

std::string Warehouse::Health::ToString() const {
  std::string out = degraded ? "DEGRADED (ingest rejected, reads served)"
                             : "healthy";
  out += ": io_failure_streak=" + std::to_string(io_failure_streak);
  out += " open_breakers=" + std::to_string(open_breakers);
  out += " documents=" + std::to_string(documents);
  return out;
}

std::vector<std::string> Warehouse::urls() const {
  std::vector<std::string> out;
  for (const auto& [url, doc] : SnapshotSlots()) out.push_back(url);
  return out;
}

int Warehouse::version_count(const std::string& url) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) return 0;
  MutexLock lock(doc->mutex);
  return doc->repo == nullptr ? 0 : doc->repo->version_count();
}

Result<XmlDocument> Warehouse::Checkout(const std::string& url,
                                        int version) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) {
    return Status::NotFound("unknown document: " + url);
  }
  MutexLock lock(doc->mutex);
  if (doc->repo == nullptr) {
    return Status::NotFound("document has no versions yet: " + url);
  }
  return doc->repo->Checkout(version);
}

std::vector<std::pair<std::string, Xid>> Warehouse::Search(
    std::string_view word) const {
  // Snapshot the slot list first: document locks are always taken
  // WITHOUT any shard lock held (Ingest acquires doc->mutex before it
  // re-enters shared state for the alerter, so nesting the other way
  // around would deadlock).
  std::vector<std::pair<std::string, Xid>> hits;
  for (const auto& [url, doc] : SnapshotSlots()) {
    MutexLock doc_lock(doc->mutex);
    if (doc->index_dirty && doc->repo != nullptr) {
      // A deferred-monitor batch left this index stale; rebuild it once
      // here — amortized, this is the same total work the batch skipped.
      doc->index = FullTextIndex::Build(doc->repo->current());
      doc->index_dirty = false;
    }
    for (Xid xid : doc->index.Lookup(word)) {
      hits.emplace_back(url, xid);
    }
  }
  return hits;
}

ChangeStatistics::LabelStats Warehouse::StatsForLabel(
    const std::string& label) const {
  MutexLock lock(stats_mutex_);
  return stats_.ForLabel(label);
}

std::string Warehouse::StatsReport(size_t limit) const {
  MutexLock lock(stats_mutex_);
  return stats_.Report(limit);
}

std::string Warehouse::SanitizeUrl(const std::string& url) {
  std::string out;
  out.reserve(url.size());
  for (char c : url) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '-')
               ? c
               : '_';
  }
  return out.empty() ? "_" : out;
}

Status Warehouse::Save(const std::string& directory, Env* env) const {
  if (env == nullptr) env = Env::Default();
  XYDIFF_RETURN_IF_ERROR(env->CreateDirs(directory));
  std::string manifest;
  for (const auto& [url, doc] : SnapshotSlots()) {
    MutexLock doc_lock(doc->mutex);
    if (doc->repo == nullptr) continue;  // Slot created, never committed.
    const std::string sub = directory + "/" + SanitizeUrl(url);
    XYDIFF_RETURN_IF_ERROR(SaveRepository(*doc->repo, sub, env));
    manifest += SanitizeUrl(url) + "\t" + url + "\n";
  }
  return env->WriteFileAtomic(directory + "/manifest.tsv", manifest);
}

Result<std::unique_ptr<Warehouse>> Warehouse::Load(
    const std::string& directory, DiffOptions options,
    std::vector<std::string>* skipped, Env* env) {
  if (env == nullptr) env = Env::Default();
  // A crashed DiffBatch group commit may have left a batch journal; roll
  // it forward (or discard a torn one) before trusting the slots.
  XYDIFF_RETURN_IF_ERROR(RecoverRepositoryBatch(directory, env));
  Result<std::string> manifest = env->ReadFile(directory + "/manifest.tsv");
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no warehouse manifest in " + directory);
    }
    return manifest.status();
  }
  auto warehouse = std::make_unique<Warehouse>(options);
  for (std::string_view line : SplitLines(*manifest)) {
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    const std::string sub(line.substr(0, tab));
    const std::string url(line.substr(tab + 1));
    Result<VersionRepository> repo =
        LoadRepository(directory + "/" + sub, env);
    if (!repo.ok()) {
      // A malformed stored document loses only itself, never the batch:
      // record the error and keep loading the healthy documents.
      if (skipped != nullptr) {
        skipped->push_back(url + ": " + repo.status().ToString());
      }
      continue;
    }
    bool created = false;
    Document* slot = warehouse->FindOrCreateDocument(url, &created);
    // Uncontended (the warehouse is not yet published), but the slot's
    // contents are guarded members, so hold the lock anyway.
    MutexLock lock(slot->mutex);
    slot->repo = std::make_unique<VersionRepository>(std::move(*repo));
    slot->index = FullTextIndex::Build(slot->repo->current());
  }
  return warehouse;
}

}  // namespace xydiff
