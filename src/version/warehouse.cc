#include "version/warehouse.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <thread>

#include "version/storage.h"

namespace xydiff {

namespace fs = std::filesystem;

Status Warehouse::Subscribe(std::string id, std::string_view path_expression,
                            std::optional<ChangeKind> kind,
                            std::string detail_contains) {
  std::unique_lock<std::shared_mutex> lock(alerter_mutex_);
  return alerter_.Subscribe(std::move(id), path_expression, kind,
                            std::move(detail_contains));
}

Warehouse::Document* Warehouse::FindDocument(const std::string& url) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = documents_.find(url);
  return it == documents_.end() ? nullptr : it->second.get();
}

Result<Warehouse::IngestReport> Warehouse::Ingest(const std::string& url,
                                                  XmlDocument document) {
  if (document.root() == nullptr) {
    return Status::InvalidArgument("cannot ingest an empty document: " + url);
  }
  IngestReport report;
  report.url = url;

  // Find or create the per-document slot (map shape under the global
  // lock; per-document work under the document lock).
  Document* doc = nullptr;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = documents_.find(url);
    if (it == documents_.end()) {
      auto slot = std::make_unique<Document>();
      doc = slot.get();
      documents_.emplace(url, std::move(slot));
      created = true;
    } else {
      doc = it->second.get();
    }
  }

  std::lock_guard<std::mutex> doc_lock(doc->mutex);
  if (created || doc->repo == nullptr) {
    doc->repo = std::make_unique<VersionRepository>(std::move(document));
    doc->index = FullTextIndex::Build(doc->repo->current());
    report.version = 1;
    report.first_version = true;
    return report;
  }

  const XmlDocument old_version = doc->repo->current().Clone();
  Result<int> version = doc->repo->Commit(std::move(document), options_);
  if (!version.ok()) return version.status();
  report.version = *version;

  Result<const Delta*> delta = doc->repo->DeltaFor(*version - 1);
  if (!delta.ok()) return delta.status();
  report.operations = (*delta)->operation_count();

  XYDIFF_RETURN_IF_ERROR(
      doc->index.Apply(**delta, old_version, doc->repo->current()));

  // Subscription evaluation: read-only on the alerter, so concurrent
  // ingests share the lock and the O(n) index builds run in parallel.
  {
    std::shared_lock<std::shared_mutex> lock(alerter_mutex_);
    report.alerts =
        alerter_.Evaluate(**delta, old_version, doc->repo->current());
  }
  // Statistics: heavy work in a local collector, cheap merge under lock.
  ChangeStatistics local;
  local.Accumulate(**delta, old_version, doc->repo->current());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.Merge(local);
  }
  return report;
}

std::vector<Result<Warehouse::IngestReport>> Warehouse::IngestBatch(
    std::vector<std::pair<std::string, XmlDocument>> batch, int threads) {
  std::vector<Result<IngestReport>> results;
  results.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    results.emplace_back(Status::Corruption("ingest never ran"));
  }
  // Distinct URLs within one batch make items fully independent.
  for (size_t i = 0; i < batch.size(); ++i) {
    for (size_t j = i + 1; j < batch.size(); ++j) {
      if (batch[i].first == batch[j].first) {
        results[j] = Status::InvalidArgument(
            "duplicate URL in batch: " + batch[j].first);
      }
    }
  }

  const int worker_count =
      std::max(1, std::min<int>(threads, static_cast<int>(batch.size())));
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= batch.size()) return;
      if (!results[i].ok() &&
          results[i].status().code() == StatusCode::kInvalidArgument) {
        continue;  // Pre-flagged duplicate.
      }
      results[i] = Ingest(batch[i].first, std::move(batch[i].second));
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(worker_count));
  for (int t = 0; t < worker_count; ++t) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();
  return results;
}

size_t Warehouse::document_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return documents_.size();
}

std::vector<std::string> Warehouse::urls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(documents_.size());
  for (const auto& [url, doc] : documents_) out.push_back(url);
  return out;
}

int Warehouse::version_count(const std::string& url) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) return 0;
  std::lock_guard<std::mutex> lock(doc->mutex);
  return doc->repo == nullptr ? 0 : doc->repo->version_count();
}

Result<XmlDocument> Warehouse::Checkout(const std::string& url,
                                        int version) const {
  Document* doc = FindDocument(url);
  if (doc == nullptr) {
    return Status::NotFound("unknown document: " + url);
  }
  std::lock_guard<std::mutex> lock(doc->mutex);
  return doc->repo->Checkout(version);
}

std::vector<std::pair<std::string, Xid>> Warehouse::Search(
    std::string_view word) const {
  // Snapshot the slot list first: document locks are always taken
  // WITHOUT the map lock held (Ingest acquires doc->mutex before it
  // re-enters mutex_ for the shared alerter, so nesting the other way
  // around would deadlock).
  std::vector<std::pair<std::string, Document*>> slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots.reserve(documents_.size());
    for (const auto& [url, doc] : documents_) {
      slots.emplace_back(url, doc.get());
    }
  }
  std::vector<std::pair<std::string, Xid>> hits;
  for (const auto& [url, doc] : slots) {
    std::lock_guard<std::mutex> doc_lock(doc->mutex);
    for (Xid xid : doc->index.Lookup(word)) {
      hits.emplace_back(url, xid);
    }
  }
  return hits;
}

ChangeStatistics::LabelStats Warehouse::StatsForLabel(
    const std::string& label) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_.ForLabel(label);
}

std::string Warehouse::StatsReport(size_t limit) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_.Report(limit);
}

std::string Warehouse::SanitizeUrl(const std::string& url) {
  std::string out;
  out.reserve(url.size());
  for (char c : url) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '-')
               ? c
               : '_';
  }
  return out.empty() ? "_" : out;
}

Status Warehouse::Save(const std::string& directory) const {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::NotFound("cannot create " + directory + ": " +
                            ec.message());
  }
  std::vector<std::pair<std::string, Document*>> slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots.reserve(documents_.size());
    for (const auto& [url, doc] : documents_) {
      slots.emplace_back(url, doc.get());
    }
  }
  std::string manifest;
  for (const auto& [url, doc] : slots) {
    std::lock_guard<std::mutex> doc_lock(doc->mutex);
    const std::string sub = directory + "/" + SanitizeUrl(url);
    XYDIFF_RETURN_IF_ERROR(SaveRepository(*doc->repo, sub));
    manifest += SanitizeUrl(url) + "\t" + url + "\n";
  }
  std::ofstream out(directory + "/manifest.tsv",
                    std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot write manifest");
  out << manifest;
  return Status::OK();
}

Result<std::unique_ptr<Warehouse>> Warehouse::Load(
    const std::string& directory, DiffOptions options) {
  std::ifstream in(directory + "/manifest.tsv", std::ios::binary);
  if (!in) return Status::NotFound("no warehouse manifest in " + directory);
  auto warehouse = std::make_unique<Warehouse>(options);
  std::string line;
  while (std::getline(in, line)) {
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    const std::string sub = line.substr(0, tab);
    const std::string url = line.substr(tab + 1);
    Result<VersionRepository> repo = LoadRepository(directory + "/" + sub);
    if (!repo.ok()) return repo.status();
    auto slot = std::make_unique<Document>();
    slot->repo = std::make_unique<VersionRepository>(std::move(*repo));
    slot->index = FullTextIndex::Build(slot->repo->current());
    warehouse->documents_.emplace(url, std::move(slot));
  }
  return warehouse;
}

}  // namespace xydiff
