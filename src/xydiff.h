#ifndef XYDIFF_XYDIFF_H_
#define XYDIFF_XYDIFF_H_

/// Umbrella header: the public surface of the XyDiff reproduction.
/// Fine-grained headers remain available for targeted includes; this one
/// is for applications that just want the system.
///
///   #include "xydiff.h"
///
///   xydiff::Result<xydiff::Delta> delta =
///       xydiff::XyDiffText(old_xml, new_xml);

#include "baseline/ladiff.h"          // IWYU pragma: export
#include "baseline/list_diff.h"      // IWYU pragma: export
#include "baseline/myers_diff.h"     // IWYU pragma: export
#include "baseline/selkow.h"         // IWYU pragma: export
#include "baseline/zhang_shasha.h"   // IWYU pragma: export
#include "core/buld.h"               // IWYU pragma: export
#include "delta/apply.h"             // IWYU pragma: export
#include "delta/codec.h"             // IWYU pragma: export
#include "delta/compose.h"           // IWYU pragma: export
#include "delta/delta.h"             // IWYU pragma: export
#include "delta/delta_xml.h"         // IWYU pragma: export
#include "delta/invert.h"            // IWYU pragma: export
#include "delta/merge.h"             // IWYU pragma: export
#include "delta/options.h"           // IWYU pragma: export
#include "delta/summary.h"           // IWYU pragma: export
#include "delta/validate.h"          // IWYU pragma: export
#include "fuzz/fuzz.h"               // IWYU pragma: export
#include "fuzz/grammar.h"            // IWYU pragma: export
#include "fuzz/oracles.h"            // IWYU pragma: export
#include "fuzz/shrink.h"             // IWYU pragma: export
#include "monitor/change_stats.h"    // IWYU pragma: export
#include "monitor/index.h"           // IWYU pragma: export
#include "monitor/subscription.h"    // IWYU pragma: export
#include "simulator/change_simulator.h"  // IWYU pragma: export
#include "simulator/doc_generator.h"     // IWYU pragma: export
#include "simulator/web_corpus.h"        // IWYU pragma: export
#include "util/context.h"            // IWYU pragma: export
#include "util/env.h"                // IWYU pragma: export
#include "util/fault_env.h"          // IWYU pragma: export
#include "util/retry.h"              // IWYU pragma: export
#include "util/status.h"             // IWYU pragma: export
#include "version/repository.h"      // IWYU pragma: export
#include "version/site_diff.h"       // IWYU pragma: export
#include "version/storage.h"         // IWYU pragma: export
#include "version/warehouse.h"       // IWYU pragma: export
#include "xml/builder.h"             // IWYU pragma: export
#include "xml/document.h"            // IWYU pragma: export
#include "xml/parser.h"              // IWYU pragma: export
#include "xml/path.h"                // IWYU pragma: export
#include "xml/serializer.h"          // IWYU pragma: export

#endif  // XYDIFF_XYDIFF_H_
