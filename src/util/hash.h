#ifndef XYDIFF_UTIL_HASH_H_
#define XYDIFF_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xydiff {

/// 64-bit subtree signatures (§5.2 Phase 2 of the paper).
///
/// The diff never compares subtree content byte-by-byte: two subtrees are
/// considered identical iff their signatures are equal. A 64-bit hash makes
/// an accidental collision within one document pair (≤ ~10^7 nodes)
/// vanishingly unlikely (~n^2 / 2^64).
using Signature = uint64_t;

/// Hashes a byte string (xxHash64-style avalanche mixing, self-contained).
Signature HashBytes(std::string_view data, uint64_t seed = 0);

/// Combines an accumulated signature with one more component. Order
/// sensitive: Combine(Combine(s,a),b) != Combine(Combine(s,b),a) in general,
/// which is what ordered XML trees require.
Signature HashCombine(Signature acc, Signature next);

/// Convenience: combines a string component into an accumulator.
inline Signature HashCombine(Signature acc, std::string_view next) {
  return HashCombine(acc, HashBytes(next));
}

/// Finalization step giving full avalanche behaviour; apply after the last
/// Combine when a signature is stored or compared.
Signature HashFinalize(Signature acc);

/// CRC-64 (ECMA-182 polynomial, reflected — the CRC-64/XZ variant) for
/// on-disk integrity checks in the version store. Unlike HashBytes, this
/// is a standardized checksum: the stored value stays verifiable even if
/// the in-process hash mixing ever changes. Incremental: pass the
/// previous return value as `crc` to extend a checksum over more bytes.
uint64_t Crc64(std::string_view data, uint64_t crc = 0);

}  // namespace xydiff

#endif  // XYDIFF_UTIL_HASH_H_
