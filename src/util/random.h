#ifndef XYDIFF_UTIL_RANDOM_H_
#define XYDIFF_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xydiff {

/// Deterministic PRNG (xoshiro256** core with splitmix64 seeding).
///
/// All randomized components of the library (document generator, change
/// simulator, property tests) draw from this generator so that every
/// experiment in EXPERIMENTS.md is reproducible from a seed.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x5EEDF00D5EEDF00DULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Independent generator derived from this one's stream; lets parallel
  /// components share one seed without sharing a sequence.
  Rng Split();

  /// Uniformly chosen element index for a container of `size` elements.
  /// Precondition: size > 0.
  size_t NextIndex(size_t size) {
    return static_cast<size_t>(NextBelow(static_cast<uint64_t>(size)));
  }

  /// Random lowercase word of length in [min_len, max_len].
  std::string NextWord(int min_len, int max_len);

 private:
  uint64_t s_[4];
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_RANDOM_H_
