#ifndef XYDIFF_UTIL_ENV_H_
#define XYDIFF_UTIL_ENV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xydiff {

/// Filesystem environment, RocksDB style: every byte the library reads
/// from or writes to disk goes through one of these virtuals. Production
/// code uses `Env::Default()` (POSIX); tests substitute a
/// `FaultInjectionEnv` (util/fault_env.h) to inject EIO/ENOSPC, tear
/// writes mid-file, and simulate crashes — which is how the store's
/// crash-safety is proven rather than assumed (see
/// tests/fault_injection_test.cc and DESIGN.md "Durability and
/// recovery").
///
/// The primitives are deliberately low-level (write / sync / rename are
/// separate calls) so that a fault-injection wrapper sees every
/// syscall-shaped step of the atomic-write protocol and can fail each
/// one independently.
///
/// Error discipline: a missing file is `NotFound`; every other failure
/// is `IOError` with the `errno` text appended — callers can treat
/// `IOError` as possibly transient (retry) and everything else as
/// permanent.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Reads a whole file. NotFound if it does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Creates/truncates `path` and writes `content` in place. No
  /// durability guarantee until SyncFile; no atomicity — a crash can
  /// leave any prefix. Use WriteFileAtomic for anything that matters.
  virtual Status WriteFile(const std::string& path,
                           std::string_view content) = 0;

  /// fsync(2) on the file's contents.
  virtual Status SyncFile(const std::string& path) = 0;

  /// fsync(2) on a directory — makes completed renames/creates/removes
  /// inside it durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// rename(2): atomic replacement of `to` by `from`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// unlink(2). NotFound if absent.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// mkdir -p. OK if the directory already exists.
  virtual Status CreateDirs(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Names (not paths) of the entries in a directory, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// The crash-safe write protocol, composed from the primitives above
  /// (so a fault-injection env intercepts each step): write
  /// `path + ".tmp"`, sync it, rename over `path`. After an OK return
  /// the file has either its old content or `content`, never a mix;
  /// durability of the rename itself still requires SyncDir on the
  /// containing directory.
  Status WriteFileAtomic(const std::string& path, std::string_view content);
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_ENV_H_
