#ifndef XYDIFF_UTIL_INTERNER_H_
#define XYDIFF_UTIL_INTERNER_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/arena.h"

namespace xydiff {

/// Per-document string interner for element labels and attribute names.
///
/// Web corpora reuse a tiny label vocabulary (§6: a handful of element
/// types covers millions of pages), so labels are stored once in the
/// document's arena and every element shares the same bytes: equal labels
/// from one interner have equal `data()` pointers and equal ids, turning
/// label comparison into a pointer/id compare and shrinking resident
/// memory.
///
/// Ids are dense (0..size()-1) in first-seen order, which lets consumers
/// (DiffTree::Build) map them through flat arrays instead of hash lookups.
/// The arena must outlive the interner's views.
class StringInterner {
 public:
  explicit StringInterner(Arena* arena) : arena_(arena) {}

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Returns the dense id for `s`, creating one if needed.
  int32_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const std::string_view stored = arena_->CopyString(s);
    const int32_t id = static_cast<int32_t>(views_.size());
    views_.push_back(stored);
    ids_.emplace(stored, id);
    return id;
  }

  /// Interns `s` and returns the canonical stored bytes.
  std::string_view InternView(std::string_view s)
      XY_ARENA_BOUND("interner arena") {
    return views_[static_cast<size_t>(Intern(s))];
  }

  /// Id for `s`, or -1 if never interned.
  int32_t Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? -1 : it->second;
  }

  /// Canonical bytes for an id returned by Intern.
  std::string_view View(int32_t id) const XY_ARENA_BOUND("interner arena") {
    return views_[static_cast<size_t>(id)];
  }

  size_t size() const { return views_.size(); }

 private:
  Arena* arena_;
  std::unordered_map<std::string_view, int32_t> ids_;  // Keys view the arena.
  std::vector<std::string_view> views_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_INTERNER_H_
