#ifndef XYDIFF_UTIL_FAULT_ENV_H_
#define XYDIFF_UTIL_FAULT_ENV_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/context.h"
#include "util/env.h"
#include "util/mutex.h"

namespace xydiff {

/// An Env wrapper that injects faults, in the spirit of RocksDB's
/// FaultInjectionTestEnv. Three fault modes, armed against the Nth
/// intercepted operation (0-based; every virtual Env call counts except
/// FileExists, whose bool return cannot carry an error):
///
///   InjectErrorAt(n, k)  ops n..n+k-1 fail with IOError ("transient"
///                        EIO/ENOSPC); later ops succeed again.
///   CrashAt(n)           op n and everything after it fail — the
///                        process "died" mid-protocol.
///   TearWriteAt(n, keep) if op n is a WriteFile, only the first `keep`
///                        bytes reach disk, then the env behaves
///                        crashed. A non-write op n degrades to CrashAt.
///
/// Two further plans overlay the fault modes (they do not fail the op,
/// so a sweep can combine e.g. deadline x torn-write):
///
///   DelayAt(n, ms, k)    ops n..n+k-1 stall `ms` milliseconds before
///                        executing — a suddenly slow disk. The delay
///                        holds the env lock, so a slow op stalls every
///                        concurrent env op, like a saturated device.
///   CancelAt(n, src)     op n fires `src.Cancel()` and then proceeds
///                        normally — the caller's *next* context check
///                        sees the cancellation, exactly the race a
///                        real mid-I/O cancel produces.
///
/// The wrapper tracks the *durable* image of every file it touches: a
/// write or rename leaves the affected paths "dirty" until SyncFile
/// (that file) or SyncDir (every dirty path in that directory, which is
/// what persists renames). After a simulated crash, call
/// DropUnsyncedData() to roll every dirty path back to its durable
/// image — exactly what a machine reset does to a page cache. A reopen
/// through a fresh Env then sees the disk a crash would have left.
///
/// Thread-safe; one op counter across all threads.
class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (Env::Default() when null). The wrapper never owns it.
  explicit FaultInjectionEnv(Env* base = nullptr);

  // --- fault plan -------------------------------------------------------
  void InjectErrorAt(int op, int count = 1) XY_EXCLUDES(mutex_);
  void CrashAt(int op) XY_EXCLUDES(mutex_);
  void TearWriteAt(int op, size_t keep_bytes) XY_EXCLUDES(mutex_);
  void DelayAt(int op, int delay_ms, int count = 1) XY_EXCLUDES(mutex_);
  void CancelAt(int op, CancellationSource source) XY_EXCLUDES(mutex_);

  /// Rolls every un-synced path back to its durable content (deleting
  /// files whose creation was never made durable). Clears the crashed
  /// state so the "reopened" store can be inspected through this env.
  Status DropUnsyncedData() XY_EXCLUDES(mutex_);

  /// Forgets plan, counters, and durability bookkeeping (not the disk).
  void Reset() XY_EXCLUDES(mutex_);

  /// Ops intercepted so far.
  int op_count() const XY_EXCLUDES(mutex_);
  /// True once the armed fault has fired — a sweep is exhausted when a
  /// run completes with triggered() == false.
  bool triggered() const XY_EXCLUDES(mutex_);

  // --- Env --------------------------------------------------------------
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view content) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  enum class FaultKind { kNone, kError, kCrash, kTornWrite };

  /// What a crash would leave for one path: present-with-bytes or absent.
  using DurableImage = std::optional<std::string>;

  /// Fate of one intercepted op.
  struct OpFate {
    std::optional<Status> fail;  ///< Set: return this without doing the op.
    bool tear = false;  ///< WriteFile only: persist torn_keep_ bytes, fail.
  };

  /// Counts one op and decides its fate. `is_write` marks WriteFile, the
  /// only op a torn-write plan can tear (others degrade to crash).
  OpFate NextOp(bool is_write) XY_REQUIRES(mutex_);

  /// Records the current on-disk state of `path` as its durable image,
  /// if not already recorded, and marks it dirty.
  void MarkDirty(const std::string& path) XY_REQUIRES(mutex_);

  Env* const base_;
  mutable Mutex mutex_;
  int op_counter_ XY_GUARDED_BY(mutex_) = 0;
  FaultKind kind_ XY_GUARDED_BY(mutex_) = FaultKind::kNone;
  int fault_op_ XY_GUARDED_BY(mutex_) = -1;
  int error_count_ XY_GUARDED_BY(mutex_) = 1;
  size_t torn_keep_ XY_GUARDED_BY(mutex_) = 0;
  bool crashed_ XY_GUARDED_BY(mutex_) = false;
  bool triggered_ XY_GUARDED_BY(mutex_) = false;
  // Overlay plans (independent of kind_):
  int delay_op_ XY_GUARDED_BY(mutex_) = -1;
  int delay_count_ XY_GUARDED_BY(mutex_) = 0;
  int delay_ms_ XY_GUARDED_BY(mutex_) = 0;
  int cancel_op_ XY_GUARDED_BY(mutex_) = -1;
  std::optional<CancellationSource> cancel_source_ XY_GUARDED_BY(mutex_);
  std::map<std::string, DurableImage> durable_ XY_GUARDED_BY(mutex_);
  std::set<std::string> dirty_ XY_GUARDED_BY(mutex_);
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_FAULT_ENV_H_
