#ifndef XYDIFF_UTIL_ARENA_H_
#define XYDIFF_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <string_view>
#include <utility>

namespace xydiff {

/// Bump-pointer arena allocator.
///
/// All memory of one XML document (nodes, labels, character data, child
/// arrays) comes from one arena, so building a document is a sequence of
/// pointer bumps instead of per-node heap allocations, and destroying it
/// is a handful of block frees instead of a recursive teardown — the
/// "little memory / indexer speed" requirement of §1-§2 of the paper.
///
/// Ownership rules (see DESIGN.md "Memory layout and arenas"):
///  * The arena owns raw memory only. `New<T>` placement-constructs but
///    never runs destructors; allocate only objects whose owned memory
///    also lives in the same arena (or is trivially destructible).
///  * Individual allocations cannot be freed; memory is reclaimed all at
///    once when the arena dies (or via Reset()).
///  * The arena must outlive every pointer and string_view handed out.
class Arena {
 public:
  static constexpr size_t kDefaultFirstBlock = 4096;
  static constexpr size_t kMaxBlock = 256 * 1024;

  /// `first_block_hint` sizes the first block (useful when the total need
  /// is known to be tiny or large). Blocks are only allocated on demand.
  explicit Arena(size_t first_block_hint = kDefaultFirstBlock);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Placement-constructs a T in the arena. The destructor is NEVER run:
  /// T must not own memory outside this arena.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  /// Copies `s` into the arena and returns a stable view of the copy.
  /// Empty input returns an empty view without allocating.
  std::string_view CopyString(std::string_view s);

  /// Drops every block and rewinds. All outstanding pointers/views into
  /// the arena become dangling.
  void Reset();

  /// Bytes handed out by Allocate (including alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes obtained from the system allocator.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return block_count_; }

 private:
  struct Block {
    Block* prev;
    size_t size;  // Usable payload bytes following this header.
  };

  void AddBlock(size_t min_payload);
  void FreeBlocks();

  Block* head_ = nullptr;
  char* ptr_ = nullptr;  // Bump cursor inside the head block.
  char* end_ = nullptr;
  size_t next_block_size_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t block_count_ = 0;
};

/// Minimal std-compatible allocator over an Arena, with a heap fallback
/// when constructed with a null arena. Lets one container type
/// (std::vector<T, ArenaAllocator<T>>) serve both arena-backed and
/// standalone heap objects.
///
/// deallocate() is a no-op for arena memory: freed space is reclaimed when
/// the arena dies. Containers that grow geometrically waste at most the
/// final capacity in abandoned buffers.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_ARENA_H_
