#ifndef XYDIFF_UTIL_ARENA_H_
#define XYDIFF_UTIL_ARENA_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace xydiff {

/// Bump-pointer arena allocator.
///
/// All memory of one XML document (nodes, labels, character data, child
/// arrays) comes from one arena, so building a document is a sequence of
/// pointer bumps instead of per-node heap allocations, and destroying it
/// is a handful of block frees instead of a recursive teardown — the
/// "little memory / indexer speed" requirement of §1-§2 of the paper.
///
/// Ownership rules (see DESIGN.md "Memory layout and arenas"):
///  * The arena owns raw memory only. `New<T>` placement-constructs but
///    never runs destructors; allocate only objects whose owned memory
///    also lives in the same arena (or is trivially destructible).
///  * Individual allocations cannot be freed; memory is reclaimed all at
///    once when the arena dies (or via Reset()).
///  * The arena must outlive every pointer and string_view handed out.
class Arena {
 public:
  static constexpr size_t kDefaultFirstBlock = 4096;
  static constexpr size_t kMaxBlock = 256 * 1024;

  /// `first_block_hint` sizes the first block (useful when the total need
  /// is known to be tiny or large). Blocks are only allocated on demand.
  explicit Arena(size_t first_block_hint = kDefaultFirstBlock);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Placement-constructs a T in the arena. The destructor is NEVER run:
  /// T must not own memory outside this arena.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* mem = Allocate(sizeof(T), alignof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  /// Copies `s` into the arena and returns a stable view of the copy.
  /// Empty input returns an empty view without allocating.
  std::string_view CopyString(std::string_view s);

  /// Drops every block and rewinds. All outstanding pointers/views into
  /// the arena become dangling.
  void Reset();

  /// Rewinds the bump cursor for reuse while *keeping* the newest block
  /// (under geometric growth that one block holds roughly half the
  /// reserved bytes, so the next document of similar size allocates
  /// little or nothing). All outstanding pointers/views become dangling,
  /// exactly as with Reset(); only the system-allocator traffic differs.
  void Rewind();

  /// Bytes handed out by Allocate (including alignment padding).
  size_t bytes_used() const { return bytes_used_; }
  /// Bytes obtained from the system allocator.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return block_count_; }

 private:
  struct Block {
    Block* prev;
    size_t size;  // Usable payload bytes following this header.
  };

  void AddBlock(size_t min_payload);
  void FreeBlocks();

  Block* head_ = nullptr;
  char* ptr_ = nullptr;  // Bump cursor inside the head block.
  char* end_ = nullptr;
  size_t next_block_size_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
  size_t block_count_ = 0;
};

/// Recycles arenas across short-lived owners — the warehouse pipeline's
/// per-worker arena pool (DESIGN.md §3.13).
///
/// `Acquire()` hands out a `std::shared_ptr<Arena>` whose deleter, once
/// the last owner (document, repository version, delta snapshot) lets
/// go, Rewind()s the arena and parks it on a free list instead of
/// freeing its blocks. A steady-state re-crawl then parses every new
/// version into memory recycled from the version it supersedes.
///
/// The free list is sharded by the calling thread's id: a pipeline
/// worker that releases an arena (committing a version) gets the same
/// memory back on its next `Acquire` (parsing the next slot) without
/// crossing a contended lock — the "per-worker" part. A shard whose
/// list runs dry steals from its neighbours before allocating fresh.
///
/// Ownership rules:
///  * A pooled arena must reach the pool only through the shared_ptr's
///    deleter — never call Rewind()/Reset() on one yourself.
///  * Recycling is refcount-driven, so aliasing between two documents is
///    impossible by construction: an arena re-enters the pool only when
///    NO owner remains. (A differential test pins this down anyway.)
///  * The pool may die before its arenas: the deleter holds a weak_ptr
///    and simply frees the arena when the pool is gone.
class ArenaPool {
 public:
  /// At most `max_idle_per_shard` arenas are kept per shard; surplus
  /// releases free their memory normally.
  explicit ArenaPool(size_t max_idle_per_shard = 4);

  /// Returns a pooled (rewound) arena when one is idle, else a fresh
  /// arena whose first block is sized by `first_block_hint`.
  std::shared_ptr<Arena> Acquire(
      size_t first_block_hint = Arena::kDefaultFirstBlock);

  /// Arenas currently parked across all shards.
  size_t idle_count() const;
  /// Acquires served from the free list (recycles) since construction.
  size_t recycled_count() const;

 private:
  static constexpr size_t kPoolShards = 8;
  struct Shard {
    mutable Mutex mutex;
    std::vector<std::unique_ptr<Arena>> idle XY_GUARDED_BY(mutex);
  };
  struct State {
    std::array<Shard, kPoolShards> shards;
    size_t max_idle_per_shard = 4;
    std::atomic<size_t> recycled{0};
  };

  /// The shard owned by the calling thread (stable per thread id).
  static Shard& ShardForThisThread(State& state);

  std::shared_ptr<State> state_;
};

/// Minimal std-compatible allocator over an Arena, with a heap fallback
/// when constructed with a null arena. Lets one container type
/// (std::vector<T, ArenaAllocator<T>>) serve both arena-backed and
/// standalone heap objects.
///
/// deallocate() is a no-op for arena memory: freed space is reclaimed when
/// the arena dies. Containers that grow geometrically waste at most the
/// final capacity in abandoned buffers.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_ARENA_H_
