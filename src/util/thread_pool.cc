#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>

namespace xydiff {

namespace {

/// Which pool (if any) the current thread belongs to, and its worker
/// index — lets Submit from inside a task prefer the local deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const size_t n = static_cast<size_t>(std::max(1, threads));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(coord_mutex_);
    stopping_ = true;
    work_cv_.NotifyAll();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  {
    MutexLock lock(coord_mutex_);
    // Count the task *before* publishing it: the instant it is in a
    // deque a peer may steal, run, and decrement pending_, and the
    // count must never underflow nor let Wait() observe a transient
    // zero while this task (or children it will submit) is in flight.
    ++pending_;
    ++queued_;
    target = tls_pool == this
                 ? tls_worker  // Continuation: stay cache-warm here.
                 : next_submit_++ % workers_.size();
  }
  {
    MutexLock lock(workers_[target]->mutex);
    workers_[target]->tasks.push_front(std::move(task));
  }
  work_cv_.NotifyOne();
}

bool ThreadPool::TryTake(size_t self, std::function<void()>* task) {
  // Own deque first, front (newest, cache-warm)...
  {
    Worker& own = *workers_[self];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // ...then steal from the back (oldest) of the others, starting after
  // self so victims rotate.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(self + k) % workers_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    std::function<void()> task;
    if (TryTake(self, &task)) {
      {
        MutexLock lock(coord_mutex_);
        --queued_;
      }
      task();
      MutexLock lock(coord_mutex_);
      if (--pending_ == 0) idle_cv_.NotifyAll();
      continue;
    }
    MutexLock lock(coord_mutex_);
    if (stopping_) return;
    // Re-check under the lock: a Submit may have raced the steal scan.
    // A bounded wait (not a predicate loop) suffices — waking early or
    // spuriously only costs one more TryTake scan. Sleep whenever no
    // *queued* task is claimable — peers merely *running* long tasks
    // (pending_ > 0) leave nothing to steal, and spinning on them
    // starves the very tasks being waited for on small machines.
    if (queued_ == 0) {
      work_cv_.WaitFor(coord_mutex_, std::chrono::milliseconds(50));
    }
    if (stopping_) return;
  }
}

void ThreadPool::Wait() {
  MutexLock lock(coord_mutex_);
  while (pending_ != 0) idle_cv_.Wait(coord_mutex_);
}

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

std::string PipelineStats::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %10s %8s %8s %12s %12s\n", "stage",
                "items", "failed", "retries", "peak_queue", "stall_s");
  out += line;
  for (const StageStats& s : stages) {
    std::snprintf(line, sizeof(line), "%-10s %10zu %8zu %8zu %12zu %12.3f\n",
                  s.name.c_str(), s.items, s.failed, s.retries,
                  s.peak_queue_depth, s.stall_seconds);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "peak in flight %zu, degraded slots %zu, wall %.3f s\n",
                peak_in_flight, degraded_slots, wall_seconds);
  out += line;
  if (shed_slots + quarantined_slots + deadline_slots + cancelled_slots > 0) {
    std::snprintf(line, sizeof(line),
                  "shed %zu, quarantined %zu, deadline %zu, cancelled %zu\n",
                  shed_slots, quarantined_slots, deadline_slots,
                  cancelled_slots);
    out += line;
  }
  return out;
}

}  // namespace xydiff
