#include "util/random.h"

#include <cassert>

namespace xydiff {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(Next()); }

std::string Rng::NextWord(int min_len, int max_len) {
  assert(min_len >= 1 && min_len <= max_len);
  const int len = static_cast<int>(NextInRange(min_len, max_len));
  std::string word(static_cast<size_t>(len), 'a');
  for (auto& c : word) c = static_cast<char>('a' + NextBelow(26));
  return word;
}

}  // namespace xydiff
