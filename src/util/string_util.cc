#include "util/string_util.h"

namespace xydiff {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) out.push_back(text.substr(start));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && IsXmlWhitespace(text[b])) ++b;
  while (e > b && IsXmlWhitespace(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool IsAllXmlWhitespace(std::string_view text) {
  for (char c : text) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

}  // namespace xydiff
