#ifndef XYDIFF_UTIL_SHARDED_MUTEX_H_
#define XYDIFF_UTIL_SHARDED_MUTEX_H_

#include <array>
#include <cstddef>
#include <functional>
#include <string_view>

#include "util/annotations.h"
#include "util/mutex.h"

namespace xydiff {

/// A fixed array of mutexes indexed by key hash — the cheap way to give
/// a keyed resource (URL slot, repository directory) per-key exclusion
/// without a mutex per key or one global bottleneck. Two distinct keys
/// may alias to the same shard; that costs contention, never correctness.
///
/// Lock ordering rule: never hold two shards of the same map at once
/// (aliasing would self-deadlock). Callers that need multi-key atomicity
/// must use a dedicated outer lock instead.
///
/// The shards are annotated `Mutex` capabilities: lock the result of
/// `For(key)` with `MutexLock` so `-Wthread-safety` tracks the hold.
template <size_t kShards = 16>
class ShardedMutexMap {
  static_assert(kShards > 0);

 public:
  /// The mutex shard owning `key`.
  Mutex& For(std::string_view key) { return shards_[ShardIndex(key)]; }

  /// Stable shard index of `key` (for sharding companion data).
  size_t ShardIndex(std::string_view key) const {
    return std::hash<std::string_view>{}(key) % kShards;
  }

  static constexpr size_t shard_count() { return kShards; }

 private:
  std::array<Mutex, kShards> shards_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_SHARDED_MUTEX_H_
