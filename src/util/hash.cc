#include "util/hash.h"

#include <array>
#include <cstring>

namespace xydiff {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Read64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

Signature HashBytes(std::string_view data, uint64_t seed) {
  const char* p = data.data();
  const char* const end = p + data.size();
  uint64_t h;

  if (data.size() >= 32) {
    const char* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p)) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }
  return Avalanche(h);
}

Signature HashCombine(Signature acc, Signature next) {
  // Order-sensitive mixing in the style of boost::hash_combine widened to
  // 64 bits; the rotation keeps long child sequences from cancelling.
  acc ^= next + kPrime1 + (acc << 6) + (acc >> 2);
  return Rotl(acc, 13) * kPrime2 + kPrime3;
}

Signature HashFinalize(Signature acc) { return Avalanche(acc); }

namespace {

/// CRC-64/XZ table, generated once: reflected ECMA-182 polynomial.
const uint64_t* Crc64Table() {
  static const auto table = [] {
    constexpr uint64_t kPoly = 0xC96C5795D7870F42ULL;  // reflected ECMA-182
    std::array<uint64_t, 256> t{};
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[static_cast<size_t>(i)] = crc;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

uint64_t Crc64(std::string_view data, uint64_t crc) {
  const uint64_t* table = Crc64Table();
  crc = ~crc;
  for (char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace xydiff
