#ifndef XYDIFF_UTIL_ANNOTATIONS_H_
#define XYDIFF_UTIL_ANNOTATIONS_H_

/// Clang thread-safety (capability) annotations, in the Abseil/LLVM
/// style. Under Clang with `-Wthread-safety` (the `analyze` preset,
/// `XYDIFF_THREAD_SAFETY=ON`) these turn lock discipline into a
/// compile-time check: reading a `XY_GUARDED_BY(mu)` member without
/// holding `mu`, or calling a `XY_REQUIRES(mu)` function outside the
/// lock, is a hard error. Under GCC (which has no capability analysis)
/// every macro expands to nothing, so annotated headers stay portable.
///
/// Conventions (see DESIGN.md §3.11 for the full write-up):
///  - Lock-protected members are declared with `XY_GUARDED_BY(mu)`.
///  - Functions that must be called with `mu` held say `XY_REQUIRES(mu)`.
///  - Functions that must NOT be called with `mu` held (they take it
///    themselves) say `XY_EXCLUDES(mu)`.
///  - Use the `Mutex`/`MutexLock` wrappers from util/mutex.h, not bare
///    `std::mutex` — the std types carry no capability attributes, so
///    the analysis cannot see through them.

#if defined(__clang__)
#define XY_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define XY_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define XY_CAPABILITY(x) XY_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (MutexLock and friends).
#define XY_SCOPED_CAPABILITY XY_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define XY_GUARDED_BY(x) XY_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define XY_PT_GUARDED_BY(x) XY_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Callers must hold the capability (exclusively / shared).
#define XY_REQUIRES(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define XY_REQUIRES_SHARED(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (and does not release it).
#define XY_ACQUIRE(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define XY_ACQUIRE_SHARED(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability.
#define XY_RELEASE(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define XY_RELEASE_SHARED(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
/// Releases a capability acquired either exclusively or shared (for the
/// destructor of a scoped lock that supports both modes).
#define XY_RELEASE_GENERIC(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Try-lock: acquires only when returning `succ` (usually true).
#define XY_TRY_ACQUIRE(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Callers must NOT hold the capability — the function takes it itself.
#define XY_EXCLUDES(...) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the capability is held; teaches the
/// analysis about invariants it cannot deduce.
#define XY_ASSERT_CAPABILITY(x) \
  XY_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the named capability.
#define XY_RETURN_CAPABILITY(x) XY_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch — document WHY at every use site (see DESIGN.md §3.11
/// "suppressing a false positive").
#define XY_NO_THREAD_SAFETY_ANALYSIS \
  XY_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Arena-lifetime contract marker, checked by tools/xyverify (see
/// DESIGN.md §3.16). A declaration returning a raw pointer, reference,
/// or string_view into arena-backed storage must carry this annotation,
/// naming the owner whose lifetime bounds the returned memory:
///
///   XmlNode* root() const XY_ARENA_BOUND("document");
///   std::string_view label() const XY_ARENA_BOUND("document arena");
///
/// The macro expands to nothing — it is machine-checked documentation:
/// xyverify fails the build when an arena-escaping declaration lacks it,
/// so every such contract in the API surface is explicit and reviewed.
#define XY_ARENA_BOUND(owner)

#endif  // XYDIFF_UTIL_ANNOTATIONS_H_
