#ifndef XYDIFF_UTIL_FENWICK_H_
#define XYDIFF_UTIL_FENWICK_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace xydiff {

/// Fenwick (binary indexed) tree over the *maximum* operation.
///
/// Supports prefix-maximum queries and point "raise" updates in O(log n);
/// used by the weighted largest-order-preserving-subsequence solver
/// (§5.2 Phase 5): `MaxPrefix(i)` returns the best subsequence weight among
/// elements whose key is < i.
template <typename V>
class FenwickMax {
 public:
  /// Creates a tree over keys 0..size-1 with every value at `identity`
  /// (the neutral element, e.g. 0 or -inf).
  explicit FenwickMax(size_t size, V identity = V())
      : identity_(identity), tree_(size + 1, identity) {}

  size_t size() const { return tree_.size() - 1; }

  /// Raises the value at `index` to at least `value`.
  void Update(size_t index, V value) {
    assert(index < size());
    for (size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      if (value > tree_[i]) tree_[i] = value;
    }
  }

  /// Maximum over keys in [0, count); `count` may be 0 (returns identity).
  V MaxPrefix(size_t count) const {
    assert(count <= size());
    V best = identity_;
    for (size_t i = count; i > 0; i -= i & (~i + 1)) {
      if (tree_[i] > best) best = tree_[i];
    }
    return best;
  }

 private:
  V identity_;
  std::vector<V> tree_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_FENWICK_H_
