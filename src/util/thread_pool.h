#ifndef XYDIFF_UTIL_THREAD_POOL_H_
#define XYDIFF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace xydiff {

/// A work-stealing thread pool for the warehouse's batch pipelines.
///
/// Each worker owns a deque: it pushes and pops its own tasks at the
/// front (LIFO, cache-warm) and steals from the *back* of a victim's
/// deque when its own runs dry (FIFO, oldest first — the classic
/// Blumofe/Leiserson discipline). `Submit` from a non-worker thread
/// round-robins across deques so a batch spreads before stealing kicks
/// in; `Submit` from inside a task goes to the calling worker's own
/// deque, which is what makes continuation-style pipelines cheap.
///
/// Lock discipline (enforced by `-Wthread-safety` under the `analyze`
/// preset): `pending_`/`next_submit_`/`stopping_` are guarded by
/// `coord_mutex_`, each deque by its worker's own mutex. The PR 2
/// submit/steal race — publishing a task before counting it, letting a
/// peer's decrement underflow `pending_` — is now a compile-time
/// invariant: no path can touch `pending_` without `coord_mutex_`.
///
/// Tasks must not block on other tasks' *submission* (they may block on
/// queues drained by other workers — see BoundedQueue). The pool is
/// fixed-size and joins in the destructor; `Wait` blocks until every
/// submitted task has finished.
class ThreadPool {
 public:
  /// Creates `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task) XY_EXCLUDES(coord_mutex_);

  /// Blocks until all tasks submitted so far have completed.
  void Wait() XY_EXCLUDES(coord_mutex_);

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Reasonable default width for CPU-bound batch work.
  static int DefaultThreadCount();

 private:
  struct Worker {
    Mutex mutex;
    /// Front: own; back: stolen.
    std::deque<std::function<void()>> tasks XY_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t self) XY_EXCLUDES(coord_mutex_);
  bool TryTake(size_t self, std::function<void()>* task)
      XY_EXCLUDES(coord_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Coordination: pending_ counts queued + running tasks; workers sleep
  // on work_cv_ when every deque is empty, Wait sleeps on idle_cv_.
  Mutex coord_mutex_;
  CondVar work_cv_;
  CondVar idle_cv_;
  size_t pending_ XY_GUARDED_BY(coord_mutex_) = 0;
  /// Tasks published but not yet claimed by a worker. Idle workers
  /// sleep when this is zero — pending_ alone cannot tell "work to
  /// steal" from "peers busy running", and spinning on the latter
  /// starves the running tasks on machines with few cores.
  size_t queued_ XY_GUARDED_BY(coord_mutex_) = 0;
  /// Round-robin cursor for external submits.
  size_t next_submit_ XY_GUARDED_BY(coord_mutex_) = 0;
  bool stopping_ XY_GUARDED_BY(coord_mutex_) = false;
};

/// Lock-free running maximum: raises `target` to at least `value`.
/// Pipeline stages use it for high-water marks (peak in-flight, peak
/// backlog) sampled from many workers at once.
inline void UpdateAtomicMax(std::atomic<size_t>& target, size_t value) {
  size_t current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Per-stage counters of one pipeline run. "Stall" is time a worker
/// spent unable to hand an item to the next stage (backpressure) — the
/// number to watch when sizing queue capacities.
struct StageStats {
  std::string name;
  size_t items = 0;             ///< Items processed by the stage.
  size_t failed = 0;            ///< Items that left the pipeline here.
  size_t retries = 0;           ///< Transient-I/O retries absorbed here.
  size_t peak_queue_depth = 0;  ///< High-water mark of the input queue.
  double stall_seconds = 0;     ///< Summed backpressure wait, all workers.
};

/// Counters for a whole DiffBatch-style pipeline run; see
/// DESIGN.md "Parallel warehouse pipeline" for how to read them.
struct PipelineStats {
  std::vector<StageStats> stages;
  size_t peak_in_flight = 0;  ///< Max documents alive at once.
  size_t degraded_slots = 0;  ///< Slots that succeeded only after retries,
                              ///< or completed without their side effects
                              ///< (e.g. persistence gave up) — per-slot
                              ///< degradation, distinct from failures.
  // Overload accounting (DESIGN.md §3.17). These four partition the
  // slots that the pipeline declined or abandoned, by cause:
  size_t shed_slots = 0;        ///< Admission control: a byte/slot budget
                                ///< would be exceeded (kResourceExhausted).
  size_t quarantined_slots = 0; ///< Circuit breaker open for the URL, or
                                ///< warehouse degraded (kUnavailable).
  size_t deadline_slots = 0;    ///< Context deadline fired (kDeadlineExceeded).
  size_t cancelled_slots = 0;   ///< Context cancelled (kCancelled).
  double wall_seconds = 0;

  /// Human-readable multi-line table.
  std::string ToString() const;
};

/// A small bounded MPMC queue gluing pipeline stages together.
///
/// `TryPush` fails instead of blocking when the queue is at capacity —
/// pipeline workers use that signal to *help downstream* (drain the full
/// queue themselves) rather than blocking, which keeps a fixed-size pool
/// deadlock-free. Blocking `Push`/`Pop` are provided for plain
/// producer/consumer use. Closing wakes all waiters; `Pop` then drains
/// what is left and reports emptiness.
///
/// Shutdown has two flavours with different drain semantics:
///  - `Close()` — graceful: producers are refused, consumers drain the
///    remaining items, then see nullopt;
///  - `Cancel()` — abandoning: both sides return immediately (Push
///    false, Pop nullopt) WITHOUT draining; items still queued are
///    dropped on the floor. Every caller blocked at the moment of the
///    call wakes exactly once and returns; callers arriving later
///    return without blocking. TryPop keeps draining after Cancel so
///    an owner can still reclaim items for cleanup.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocking push; false only if the queue was closed or cancelled.
  bool Push(T item) XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained, or
  /// immediately (no drain) once cancelled.
  std::optional<T> Pop() XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.Wait(mutex_);
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// No more pushes; waiters wake up. Pop still drains queued items.
  void Close() XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  /// Abandoning shutdown: wakes every blocked Push (returns false) and
  /// every blocked Pop (returns nullopt, WITHOUT draining — a cancelled
  /// consumer must not start work on a stale item). Idempotent; implies
  /// Close for producers. This is the fix for the original shutdown
  /// semantics, where a consumer blocked in Pop could only be released
  /// by Close, which forced it to drain items the caller wanted
  /// abandoned.
  void Cancel() XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    cancelled_ = true;
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool cancelled() const XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return cancelled_;
  }

  size_t size() const XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  /// High-water mark since construction.
  size_t peak_depth() const XY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return peak_depth_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ XY_GUARDED_BY(mutex_);
  size_t peak_depth_ XY_GUARDED_BY(mutex_) = 0;
  bool closed_ XY_GUARDED_BY(mutex_) = false;
  bool cancelled_ XY_GUARDED_BY(mutex_) = false;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_THREAD_POOL_H_
