#include "util/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace xydiff {

namespace {

namespace fs = std::filesystem;

/// "context path: strerror" with the errno name class encoded in the
/// Status code: ENOENT reads as NotFound, everything else as IOError.
Status ErrnoStatus(const std::string& context, const std::string& path,
                   int err) {
  const std::string msg =
      context + " " + path + ": " + std::strerror(err) + " (errno " +
      std::to_string(err) + ")";
  if (err == ENOENT) return Status::NotFound(msg);
  return Status::IOError(msg);
}

/// RAII fd so early returns cannot leak descriptors.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    // Best effort on the error path only; success paths close explicitly
    // so the close(2) result is checked.
    if (fd_ >= 0) ::close(fd_);
  }
  int get() const { return fd_; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0) return ErrnoStatus("cannot open", path, errno);
    std::string content;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd.get(), buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("cannot read", path, errno);
      }
      if (n == 0) break;
      content.append(buffer, static_cast<size_t>(n));
    }
    return content;
  }

  Status WriteFile(const std::string& path,
                   std::string_view content) override {
    Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644));
    if (fd.get() < 0) return ErrnoStatus("cannot open for writing", path,
                                         errno);
    size_t written = 0;
    while (written < content.size()) {
      const ssize_t n = ::write(fd.get(), content.data() + written,
                                content.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("short write to", path, errno);
      }
      written += static_cast<size_t>(n);
    }
    if (::close(fd.release()) != 0) {
      return ErrnoStatus("cannot close", path, errno);
    }
    return Status::OK();
  }

  Status SyncFile(const std::string& path) override {
    Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0) return ErrnoStatus("cannot open for sync", path, errno);
    if (::fsync(fd.get()) != 0) return ErrnoStatus("cannot fsync", path,
                                                   errno);
    if (::close(fd.release()) != 0) {
      return ErrnoStatus("cannot close", path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    Fd fd(::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
    if (fd.get() < 0) return ErrnoStatus("cannot open directory", path,
                                         errno);
    if (::fsync(fd.get()) != 0) {
      return ErrnoStatus("cannot fsync directory", path, errno);
    }
    if (::close(fd.release()) != 0) {
      return ErrnoStatus("cannot close directory", path, errno);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("cannot rename " + from + " to", to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus("cannot remove", path, errno);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IOError("cannot create directory " + path + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) {
      const Status s = Status::IOError("cannot list directory " + path +
                                       ": " + ec.message());
      if (ec == std::errc::no_such_file_or_directory) {
        return Status::NotFound(s.message());
      }
      return s;
    }
    std::vector<std::string> names;
    for (const fs::directory_entry& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status Env::WriteFileAtomic(const std::string& path,
                            std::string_view content) {
  const std::string tmp = path + ".tmp";
  XYDIFF_RETURN_IF_ERROR(WriteFile(tmp, content));
  XYDIFF_RETURN_IF_ERROR(SyncFile(tmp));
  return RenameFile(tmp, path);
}

}  // namespace xydiff
