#ifndef XYDIFF_UTIL_RETRY_H_
#define XYDIFF_UTIL_RETRY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/context.h"
#include "util/status.h"

namespace xydiff {

/// The one retry-with-backoff policy in the tree. PR 5 (storage
/// recovery) and PR 6 (warehouse store stage) each grew a private
/// doubling-backoff loop; this unifies them and adds the two properties
/// a pipeline under deadline needs:
///  - deadline-aware: never sleeps past `Context::deadline()`, and stops
///    retrying (returning the context error) once the context is dead;
///  - jittered: backoff is "equal jitter" (half fixed, half drawn from a
///    deterministic splitmix64 stream keyed by `jitter_seed`), so
///    parallel store workers hitting the same transient fault do not
///    retry in lockstep. The seed is explicit — reproducibility is a
///    repo-wide invariant (xylint `nondet-seed`).
struct RetryPolicy {
  /// Additional attempts after the first (so max_retries == 3 means up
  /// to 4 calls of `op`).
  int max_retries = 3;
  /// Base backoff before jitter; doubles each attempt.
  int backoff_ms = 1;
  /// Upper clamp on any single sleep.
  int max_backoff_ms = 1000;
  /// Seed for the jitter stream. Same seed + same attempt => same
  /// delay, so tests and fuzz trials replay bit-exactly.
  uint64_t jitter_seed = 0;
};

/// Runs `op` up to `1 + policy.max_retries` times, retrying only
/// transient kIOError. Any other status returns immediately — retrying
/// cannot fix wrong bytes (kCorruption) or bad input (kParseError).
///
/// `context` may be null (no deadline, not cancellable). When it is
/// live, the sleep between attempts is capped at the time remaining,
/// and a dead context surfaces as kCancelled/kDeadlineExceeded instead
/// of another attempt. `retries` (optional) is incremented once per
/// re-attempt, matching the PipelineStats accounting.
Status RetryTransient(const RetryPolicy& policy, const Context* context,
                      const std::function<Status()>& op,
                      size_t* retries = nullptr);

/// Computes the jittered, clamped backoff for `attempt` (0-based)
/// without sleeping. Exposed for tests and for the overload bench's
/// deadline-accuracy model.
std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy, int attempt);

/// The single sanctioned blocking sleep in the library (xylint
/// `naked-sleep` bans sleep_for/usleep everywhere else in src/ and
/// tools/). Centralizing it keeps every stall attributable: pipeline
/// tail-polls, retry backoff, and fault-injected latency all funnel
/// through here.
void SleepFor(std::chrono::microseconds duration);

}  // namespace xydiff

#endif  // XYDIFF_UTIL_RETRY_H_
