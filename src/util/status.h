#ifndef XYDIFF_UTIL_STATUS_H_
#define XYDIFF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xydiff {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow status idiom: no exceptions cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< XML (or delta) text could not be parsed.
  kNotFound,          ///< A referenced entity (XID, version, ...) is absent.
  kCorruption,        ///< Internal invariant violated by stored data.
  kConflict,          ///< A delta operation conflicts with the document.
  kUnimplemented,     ///< Feature intentionally not supported.
  kIOError,           ///< The environment failed an I/O operation (possibly
                      ///< transient: EIO, ENOSPC, ...). Distinct from
                      ///< kCorruption — the bytes were never read/written,
                      ///< as opposed to read successfully but wrong.
  kAborted,           ///< Work intentionally not performed (e.g. a batch
                      ///< slot skipped by fail-fast after an earlier error).
  kDeadlineExceeded,  ///< A Context deadline expired before the operation
                      ///< finished; any partial in-memory work was discarded
                      ///< and no store state was committed.
  kCancelled,         ///< The caller fired the Context cancellation token.
                      ///< Same no-partial-state guarantee as a deadline.
  kResourceExhausted, ///< Admission control shed the work: a byte or slot
                      ///< budget would be exceeded. Retryable with a smaller
                      ///< batch or after in-flight work drains.
  kUnavailable,       ///< The service declines the work right now: document
                      ///< quarantined by its circuit breaker, or warehouse in
                      ///< degraded mode. Reads still work; retry later.
};

/// Returns a human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). `Status::OK()` is the success value. An error carries
/// a code and a message; for parse errors the message embeds line/column.
///
/// `[[nodiscard]]`: a dropped Status is a silently swallowed error, so
/// discarding one is a compile error under the `analyze` preset (and a
/// warning everywhere else). Discards that are genuinely intentional
/// must be spelled `(void)` with a one-line justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Success.
  static Status OK() { return Status(); }
  /// Error constructors, one per code.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of
/// an error result is a programming bug (asserted in debug builds).
/// `[[nodiscard]]` for the same reason as Status: dropping a Result drops
/// the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so that `return value;` works in functions returning Result.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit so that `return Status::ParseError(...)` works.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status has no value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression, RocksDB style:
///   XYDIFF_RETURN_IF_ERROR(DoThing());
#define XYDIFF_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::xydiff::Status _s = (expr);                   \
    if (!_s.ok()) return _s;                        \
  } while (false)

}  // namespace xydiff

#endif  // XYDIFF_UTIL_STATUS_H_
