#include "util/retry.h"

#include <algorithm>
#include <thread>

namespace xydiff {

namespace {

/// splitmix64 (Steele et al.) — one multiply-xor round per draw; enough
/// for jitter, and deterministic from the explicit policy seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::chrono::milliseconds RetryBackoff(const RetryPolicy& policy,
                                       int attempt) {
  // Cap the exponent and clamp the delay: `backoff_ms << attempt` with
  // an unbounded attempt count overflows int (undefined behaviour past
  // shift 31) and would sleep for minutes long before that.
  const int shift = std::min(std::max(attempt, 0), 10);
  const int64_t base = std::clamp<int64_t>(
      static_cast<int64_t>(policy.backoff_ms) << shift, 0,
      policy.max_backoff_ms);
  // Equal jitter: half the window is fixed so backoff still grows, half
  // is drawn from the seed+attempt stream so workers desynchronize.
  const int64_t half = base / 2;
  const int64_t jitter =
      half > 0 ? static_cast<int64_t>(
                     SplitMix64(policy.jitter_seed +
                                static_cast<uint64_t>(attempt)) %
                     static_cast<uint64_t>(half + 1))
               : 0;
  return std::chrono::milliseconds(half + jitter);
}

Status RetryTransient(const RetryPolicy& policy, const Context* context,
                      const std::function<Status()>& op, size_t* retries) {
  Status status = op();
  for (int attempt = 0;
       !status.ok() && status.code() == StatusCode::kIOError &&
       attempt < policy.max_retries;
       ++attempt) {
    if (context != nullptr) {
      Status live = context->Check();
      if (!live.ok()) return live;
    }
    std::chrono::milliseconds delay = RetryBackoff(policy, attempt);
    if (context != nullptr) {
      // Never sleep past the deadline: a retry that cannot finish in
      // time should surface kDeadlineExceeded now, not after stalling.
      if (auto left = context->remaining(); left.has_value()) {
        delay = std::min(delay, *left);
      }
    }
    SleepFor(std::chrono::duration_cast<std::chrono::microseconds>(delay));
    if (retries != nullptr) ++*retries;
    status = op();
  }
  return status;
}

void SleepFor(std::chrono::microseconds duration) {
  if (duration.count() <= 0) return;
  std::this_thread::sleep_for(duration);
}

}  // namespace xydiff
