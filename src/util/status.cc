#include "util/status.h"

namespace xydiff {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xydiff
