#ifndef XYDIFF_UTIL_STRING_UTIL_H_
#define XYDIFF_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xydiff {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits `text` into lines (on '\n'), keeping empty lines, without the
/// terminators. A trailing newline does not produce a final empty line.
std::vector<std::string_view> SplitLines(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Parses a non-negative decimal integer; returns false on any non-digit
/// or overflow.
bool ParseUint64(std::string_view text, uint64_t* out);

/// True for XML whitespace characters (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// True if the string is entirely XML whitespace (or empty).
bool IsAllXmlWhitespace(std::string_view text);

}  // namespace xydiff

#endif  // XYDIFF_UTIL_STRING_UTIL_H_
