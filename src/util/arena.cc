#include "util/arena.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace xydiff {

namespace {

size_t RoundUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

}  // namespace

Arena::Arena(size_t first_block_hint)
    : next_block_size_(first_block_hint < 64 ? 64 : first_block_hint) {}

Arena::~Arena() { FreeBlocks(); }

void Arena::FreeBlocks() {
  Block* b = head_;
  while (b != nullptr) {
    Block* prev = b->prev;
    ::operator delete(static_cast<void*>(b));
    b = prev;
  }
  head_ = nullptr;
  ptr_ = end_ = nullptr;
}

void Arena::AddBlock(size_t min_payload) {
  size_t payload = next_block_size_;
  if (payload < min_payload) payload = min_payload;
  const size_t header = RoundUp(sizeof(Block), alignof(std::max_align_t));
  Block* b = static_cast<Block*>(::operator new(header + payload));
  b->prev = head_;
  b->size = payload;
  head_ = b;
  ptr_ = reinterpret_cast<char*>(b) + header;
  end_ = ptr_ + payload;
  bytes_reserved_ += header + payload;
  ++block_count_;
  // Geometric growth keeps block count O(log n) for big documents while
  // capping per-block size so huge arenas stay allocator-friendly.
  if (next_block_size_ < kMaxBlock) {
    next_block_size_ *= 2;
    if (next_block_size_ > kMaxBlock) next_block_size_ = kMaxBlock;
  }
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  char* aligned =
      reinterpret_cast<char*>(RoundUp(reinterpret_cast<uintptr_t>(ptr_), align));
  if (aligned == nullptr || aligned + bytes > end_) {
    // New blocks start max_align_t-aligned, so min_payload = bytes suffices
    // for any align <= alignof(max_align_t); oversized alignments pad.
    AddBlock(bytes + (align > alignof(std::max_align_t) ? align : 0));
    aligned = reinterpret_cast<char*>(
        RoundUp(reinterpret_cast<uintptr_t>(ptr_), align));
  }
  ptr_ = aligned + bytes;
  bytes_used_ += bytes;
  return aligned;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return {};
  char* mem = static_cast<char*>(Allocate(s.size(), 1));
  std::memcpy(mem, s.data(), s.size());
  return {mem, s.size()};
}

void Arena::Reset() {
  FreeBlocks();
  bytes_used_ = 0;
  bytes_reserved_ = 0;
  block_count_ = 0;
}

}  // namespace xydiff
