#include "util/arena.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

namespace xydiff {

namespace {

size_t RoundUp(size_t n, size_t align) { return (n + align - 1) & ~(align - 1); }

}  // namespace

Arena::Arena(size_t first_block_hint)
    : next_block_size_(first_block_hint < 64 ? 64 : first_block_hint) {}

Arena::~Arena() { FreeBlocks(); }

void Arena::FreeBlocks() {
  Block* b = head_;
  while (b != nullptr) {
    Block* prev = b->prev;
    ::operator delete(static_cast<void*>(b));
    b = prev;
  }
  head_ = nullptr;
  ptr_ = end_ = nullptr;
}

void Arena::AddBlock(size_t min_payload) {
  size_t payload = next_block_size_;
  if (payload < min_payload) payload = min_payload;
  const size_t header = RoundUp(sizeof(Block), alignof(std::max_align_t));
  Block* b = static_cast<Block*>(::operator new(header + payload));
  b->prev = head_;
  b->size = payload;
  head_ = b;
  ptr_ = reinterpret_cast<char*>(b) + header;
  end_ = ptr_ + payload;
  bytes_reserved_ += header + payload;
  ++block_count_;
  // Geometric growth keeps block count O(log n) for big documents while
  // capping per-block size so huge arenas stay allocator-friendly.
  if (next_block_size_ < kMaxBlock) {
    next_block_size_ *= 2;
    if (next_block_size_ > kMaxBlock) next_block_size_ = kMaxBlock;
  }
}

void* Arena::Allocate(size_t bytes, size_t align) {
  assert((align & (align - 1)) == 0 && "alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  char* aligned =
      reinterpret_cast<char*>(RoundUp(reinterpret_cast<uintptr_t>(ptr_), align));
  if (aligned == nullptr || aligned + bytes > end_) {
    // New blocks start max_align_t-aligned, so min_payload = bytes suffices
    // for any align <= alignof(max_align_t); oversized alignments pad.
    AddBlock(bytes + (align > alignof(std::max_align_t) ? align : 0));
    aligned = reinterpret_cast<char*>(
        RoundUp(reinterpret_cast<uintptr_t>(ptr_), align));
  }
  ptr_ = aligned + bytes;
  bytes_used_ += bytes;
  return aligned;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return {};
  char* mem = static_cast<char*>(Allocate(s.size(), 1));
  std::memcpy(mem, s.data(), s.size());
  return {mem, s.size()};
}

void Arena::Reset() {
  FreeBlocks();
  bytes_used_ = 0;
  bytes_reserved_ = 0;
  block_count_ = 0;
}

void Arena::Rewind() {
  if (head_ != nullptr) {
    Block* b = head_->prev;
    while (b != nullptr) {
      Block* prev = b->prev;
      ::operator delete(static_cast<void*>(b));
      b = prev;
    }
    head_->prev = nullptr;
    const size_t header = RoundUp(sizeof(Block), alignof(std::max_align_t));
    ptr_ = reinterpret_cast<char*>(head_) + header;
    end_ = ptr_ + head_->size;
    bytes_reserved_ = header + head_->size;
    block_count_ = 1;
#ifndef NDEBUG
    // Scribble the recycled payload so any stale pointer into a rewound
    // arena reads garbage instead of the previous owner's bytes (turns
    // a silent aliasing bug into a loud differential-test failure).
    std::memset(ptr_, 0xAB, static_cast<size_t>(end_ - ptr_));
#endif
  }
  bytes_used_ = 0;
}

ArenaPool::ArenaPool(size_t max_idle_per_shard)
    : state_(std::make_shared<State>()) {
  state_->max_idle_per_shard =
      max_idle_per_shard == 0 ? 1 : max_idle_per_shard;
}

ArenaPool::Shard& ArenaPool::ShardForThisThread(State& state) {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return state.shards[h % kPoolShards];
}

std::shared_ptr<Arena> ArenaPool::Acquire(size_t first_block_hint) {
  std::unique_ptr<Arena> arena;
  {
    Shard& own = ShardForThisThread(*state_);
    MutexLock lock(own.mutex);
    if (!own.idle.empty()) {
      arena = std::move(own.idle.back());
      own.idle.pop_back();
    }
  }
  if (arena == nullptr) {
    // Own shard dry: steal a parked arena from a neighbour before
    // paying the system allocator.
    for (Shard& shard : state_->shards) {
      MutexLock lock(shard.mutex);
      if (!shard.idle.empty()) {
        arena = std::move(shard.idle.back());
        shard.idle.pop_back();
        break;
      }
    }
  }
  if (arena != nullptr) {
    state_->recycled.fetch_add(1, std::memory_order_relaxed);
  } else {
    arena = std::make_unique<Arena>(first_block_hint);
  }
  // The deleter routes the arena back into the releasing thread's shard
  // (weak_ptr: an arena outliving its pool is simply freed).
  std::weak_ptr<State> weak = state_;
  Arena* raw = arena.release();
  return std::shared_ptr<Arena>(raw, [weak](Arena* a) {
    std::unique_ptr<Arena> owned(a);
    std::shared_ptr<State> state = weak.lock();
    if (state == nullptr) return;  // Pool gone; unique_ptr frees.
    owned->Rewind();
    Shard& shard = ShardForThisThread(*state);
    MutexLock lock(shard.mutex);
    if (shard.idle.size() < state->max_idle_per_shard) {
      shard.idle.push_back(std::move(owned));
    }
  });
}

size_t ArenaPool::idle_count() const {
  size_t total = 0;
  for (const Shard& shard : state_->shards) {
    MutexLock lock(shard.mutex);
    total += shard.idle.size();
  }
  return total;
}

size_t ArenaPool::recycled_count() const {
  return state_->recycled.load(std::memory_order_relaxed);
}

}  // namespace xydiff
