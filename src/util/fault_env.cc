#include "util/fault_env.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/retry.h"

namespace xydiff {

namespace {

/// Parent directory by string prefix. Storage code always composes
/// paths as `dir + "/" + name`, so no normalization is needed.
std::string ParentOf(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::InjectErrorAt(int op, int count) {
  MutexLock lock(mutex_);
  kind_ = FaultKind::kError;
  fault_op_ = op;
  error_count_ = count;
}

void FaultInjectionEnv::CrashAt(int op) {
  MutexLock lock(mutex_);
  kind_ = FaultKind::kCrash;
  fault_op_ = op;
}

void FaultInjectionEnv::TearWriteAt(int op, size_t keep_bytes) {
  MutexLock lock(mutex_);
  kind_ = FaultKind::kTornWrite;
  fault_op_ = op;
  torn_keep_ = keep_bytes;
}

void FaultInjectionEnv::DelayAt(int op, int delay_ms, int count) {
  MutexLock lock(mutex_);
  delay_op_ = op;
  delay_ms_ = delay_ms;
  delay_count_ = count;
}

void FaultInjectionEnv::CancelAt(int op, CancellationSource source) {
  MutexLock lock(mutex_);
  cancel_op_ = op;
  cancel_source_ = std::move(source);
}

Status FaultInjectionEnv::DropUnsyncedData() {
  MutexLock lock(mutex_);
  for (const std::string& path : dirty_) {
    auto it = durable_.find(path);
    if (it == durable_.end()) continue;  // Never recorded: nothing to undo.
    if (it->second.has_value()) {
      XYDIFF_RETURN_IF_ERROR(base_->WriteFile(path, *it->second));
    } else if (base_->FileExists(path)) {
      XYDIFF_RETURN_IF_ERROR(base_->RemoveFile(path));
    }
  }
  dirty_.clear();
  crashed_ = false;
  return Status::OK();
}

void FaultInjectionEnv::Reset() {
  MutexLock lock(mutex_);
  op_counter_ = 0;
  kind_ = FaultKind::kNone;
  fault_op_ = -1;
  error_count_ = 1;
  torn_keep_ = 0;
  crashed_ = false;
  triggered_ = false;
  delay_op_ = -1;
  delay_count_ = 0;
  delay_ms_ = 0;
  cancel_op_ = -1;
  cancel_source_.reset();
  durable_.clear();
  dirty_.clear();
}

int FaultInjectionEnv::op_count() const {
  MutexLock lock(mutex_);
  return op_counter_;
}

bool FaultInjectionEnv::triggered() const {
  MutexLock lock(mutex_);
  return triggered_;
}

FaultInjectionEnv::OpFate FaultInjectionEnv::NextOp(bool is_write) {
  const int op = op_counter_++;
  OpFate fate;
  // Overlay plans first: they never fail the op, only slow it down or
  // flip a cancellation flag the caller will notice later.
  if (delay_count_ > 0 && op >= delay_op_ && op < delay_op_ + delay_count_) {
    triggered_ = true;
    SleepFor(std::chrono::milliseconds(delay_ms_));
  }
  if (cancel_source_.has_value() && op == cancel_op_) {
    triggered_ = true;
    cancel_source_->Cancel();
  }
  if (crashed_) {
    fate.fail = Status::IOError("simulated crash: environment is down (op " +
                                std::to_string(op) + ")");
    return fate;
  }
  if (kind_ == FaultKind::kNone || op < fault_op_) return fate;
  switch (kind_) {
    case FaultKind::kError:
      if (op < fault_op_ + error_count_) {
        triggered_ = true;
        fate.fail = Status::IOError("injected transient I/O error at op " +
                                    std::to_string(op));
      }
      return fate;
    case FaultKind::kCrash:
      triggered_ = true;
      crashed_ = true;
      fate.fail = Status::IOError("simulated crash at op " +
                                  std::to_string(op));
      return fate;
    case FaultKind::kTornWrite:
      triggered_ = true;
      crashed_ = true;
      if (is_write) {
        fate.tear = true;  // Caller persists the prefix, then fails.
      } else {
        fate.fail = Status::IOError("simulated crash (torn-write plan hit "
                                    "non-write op " + std::to_string(op) +
                                    ")");
      }
      return fate;
    case FaultKind::kNone:
      break;
  }
  return fate;
}

void FaultInjectionEnv::MarkDirty(const std::string& path) {
  if (durable_.find(path) == durable_.end()) {
    if (base_->FileExists(path)) {
      Result<std::string> current = base_->ReadFile(path);
      durable_[path] = current.ok() ? DurableImage(std::move(*current))
                                    : DurableImage(std::nullopt);
    } else {
      durable_[path] = std::nullopt;
    }
  }
  dirty_.insert(path);
}

Result<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  return base_->ReadFile(path);
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    std::string_view content) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(true);
  if (fate.fail.has_value()) return *fate.fail;
  MarkDirty(path);
  if (fate.tear) {
    const std::string_view prefix =
        content.substr(0, std::min(torn_keep_, content.size()));
    // The torn prefix lands on disk whatever the base env says — the
    // point is the state it leaves, not the write's own success.
    // Justified discard: the env is "crashed"; the caller sees IOError.
    (void)base_->WriteFile(path, prefix);
    return Status::IOError("simulated torn write to " + path + " (" +
                           std::to_string(prefix.size()) + " of " +
                           std::to_string(content.size()) + " bytes)");
  }
  return base_->WriteFile(path, content);
}

Status FaultInjectionEnv::SyncFile(const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  XYDIFF_RETURN_IF_ERROR(base_->SyncFile(path));
  Result<std::string> current = base_->ReadFile(path);
  if (current.ok()) {
    durable_[path] = std::move(*current);
  }
  dirty_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  XYDIFF_RETURN_IF_ERROR(base_->SyncDir(path));
  // Renames/creates/removes directly inside `path` become durable.
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (ParentOf(*it) == path) {
      if (base_->FileExists(*it)) {
        Result<std::string> current = base_->ReadFile(*it);
        if (current.ok()) durable_[*it] = std::move(*current);
      } else {
        durable_[*it] = std::nullopt;
      }
      it = dirty_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  MarkDirty(from);
  MarkDirty(to);
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  MarkDirty(path);
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  // Directory creation is treated as instantly durable: the protocols
  // under test only ever create a directory before writing into it, and
  // "directory lost in crash" collapses into "all its files lost".
  return base_->CreateDirs(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  MutexLock lock(mutex_);
  if (crashed_) return false;  // A dead environment sees nothing.
  return base_->FileExists(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  MutexLock lock(mutex_);
  OpFate fate = NextOp(false);
  if (fate.fail.has_value()) return *fate.fail;
  return base_->ListDir(path);
}

}  // namespace xydiff
