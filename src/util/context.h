#ifndef XYDIFF_UTIL_CONTEXT_H_
#define XYDIFF_UTIL_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "util/status.h"

namespace xydiff {

/// A request-scoped deadline and cancellation token, threaded by const
/// pointer through the pipeline (parse -> diff -> store), `Checkout`,
/// and `SaveRepositoryBatch`. Modeled after Go's context.Context, but a
/// plain value: copying a Context copies the deadline and SHARES the
/// cancellation flag, so a child stage sees the parent's cancellation.
///
/// Everything accepts `const Context*` with nullptr meaning "no limits",
/// so existing call sites keep working unchanged.
///
/// Placement rules for cooperative check-points (DESIGN.md §3.17):
///  - long loops check via a DeadlineChecker every N iterations, never
///    per element (a steady_clock read per node would dominate BULD);
///  - storage checks BETWEEN protocol steps, and never again after the
///    group-commit journal is durable — past the commit point the batch
///    must roll forward so cancellation can not manufacture a hybrid
///    store state.
class CancellationSource;

class Context {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline, not cancellable (equivalent to passing nullptr).
  Context() = default;

  /// A context that expires at `deadline`.
  static Context WithDeadline(Clock::time_point deadline) {
    Context ctx;
    ctx.deadline_ = deadline;
    return ctx;
  }

  /// A context that expires `timeout` from now.
  static Context WithTimeout(std::chrono::milliseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  bool has_deadline() const { return deadline_.has_value(); }
  Clock::time_point deadline() const { return *deadline_; }

  bool cancelled() const {
    return cancel_flag_ && cancel_flag_->load(std::memory_order_acquire);
  }
  bool expired() const { return deadline_ && Clock::now() >= *deadline_; }

  /// Time left before the deadline, clamped at zero; nullopt when there
  /// is no deadline. Retry loops cap their backoff sleep with this.
  std::optional<std::chrono::milliseconds> remaining() const {
    if (!deadline_) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline_ - Clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds(0);
  }

  /// OK while the context is live; kCancelled once the source fired,
  /// kDeadlineExceeded once the deadline passed. Cancellation wins when
  /// both hold — it is the more specific caller intent.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("context cancelled");
    if (expired()) return Status::DeadlineExceeded("context deadline exceeded");
    return Status::OK();
  }

 private:
  friend class CancellationSource;

  std::optional<Clock::time_point> deadline_;
  std::shared_ptr<const std::atomic<bool>> cancel_flag_;
};

/// The write side of a cancellation token. The holder calls `Cancel()`;
/// every Context minted from this source observes it. Thread-safe and
/// idempotent; copying shares the flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  /// A context observing this source, with no deadline.
  Context MakeContext() const {
    Context ctx;
    ctx.cancel_flag_ = flag_;
    return ctx;
  }

  /// `base` plus this source's cancellation flag (base's own flag, if
  /// any, is replaced — sources do not chain).
  Context Attach(const Context& base) const {
    Context ctx = base;
    ctx.cancel_flag_ = flag_;
    return ctx;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Amortizes Context::Check() for tight loops: only every `stride`-th
/// call touches the clock. With the default stride of 256 the overhead
/// in the BULD match loop and the codec decode loop is one counter
/// increment plus one atomic load per iteration. Null context => always
/// OK, zero cost. Cancellation is NOT amortized — the flag is a single
/// acquire load, cheap enough to test every call, so a cancel is seen
/// at the very next check-point rather than up to a stride later.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(const Context* context, uint32_t stride = 256)
      : context_(context), stride_(stride == 0 ? 1 : stride) {}

  Status Check() {
    if (context_ == nullptr) return Status::OK();
    if (context_->cancelled()) return Status::Cancelled("context cancelled");
    if (++calls_ % stride_ != 0) return Status::OK();
    return context_->Check();
  }

  /// Unconditional check (stage boundaries, before expensive steps).
  Status CheckNow() {
    return context_ == nullptr ? Status::OK() : context_->Check();
  }

 private:
  const Context* context_;
  uint32_t stride_;
  uint32_t calls_ = 0;
};

/// True for the codes a Context check can produce; used by callers that
/// must distinguish "the work was bad" from "the caller gave up".
inline bool IsContextError(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

}  // namespace xydiff

#endif  // XYDIFF_UTIL_CONTEXT_H_
