#ifndef XYDIFF_UTIL_MUTEX_H_
#define XYDIFF_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/annotations.h"

namespace xydiff {

/// Annotated wrapper over `std::mutex`. The std type carries no
/// capability attributes, so Clang's `-Wthread-safety` cannot reason
/// about it; this wrapper (plus `MutexLock`/`CondVar`) is the project's
/// blessed locking vocabulary. It is also BasicLockable (`lock`/
/// `unlock`), so `CondVar` can wait on it directly.
///
/// Zero-cost: every method is a single forwarded call.
class XY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XY_ACQUIRE() { mutex_.lock(); }
  void unlock() XY_RELEASE() { mutex_.unlock(); }
  bool try_lock() XY_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Annotated wrapper over `std::shared_mutex` (reader/writer lock).
class XY_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() XY_ACQUIRE() { mutex_.lock(); }
  void unlock() XY_RELEASE() { mutex_.unlock(); }
  void lock_shared() XY_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() XY_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock on a `Mutex` — the annotated `std::lock_guard`.
class XY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XY_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() XY_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a `SharedMutex`.
class XY_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) XY_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() XY_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a `SharedMutex`.
class XY_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) XY_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() XY_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `Mutex`.
///
/// Deliberately predicate-free: callers write the classic
/// `while (!cond) cv.Wait(mu);` loop instead of passing a lambda. A
/// lambda predicate is analyzed as a separate function by Clang, so its
/// guarded-member reads would all need their own annotations — the
/// explicit loop keeps the condition inside the annotated caller where
/// the analysis can see the capability is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, reacquires. Spurious wakeups
  /// happen; always re-check the condition in a loop.
  void Wait(Mutex& mu) XY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Caller's scoped lock still owns the mutex.
  }

  /// Wait bounded by `timeout`; returns std::cv_status::timeout on
  /// expiry. Re-check the condition either way.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      XY_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xydiff

#endif  // XYDIFF_UTIL_MUTEX_H_
