#ifndef XYDIFF_XID_XID_MAP_H_
#define XYDIFF_XID_XID_MAP_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xid/xid.h"

namespace xydiff {

/// An XID-map: the list of persistent identifiers of a subtree's nodes in
/// postfix (postorder) traversal order (§4, after [19]).
///
/// The textual form groups consecutive runs: the subtree whose postorder
/// XIDs are 3,4,5,6,7 serializes as "(3-7)"; 1,2,9 as "(1-2;9)". Deltas
/// attach an XID-map to every inserted or deleted subtree snapshot so that
/// persistent identity survives serialization.
class XidMap {
 public:
  XidMap() = default;
  explicit XidMap(std::vector<Xid> postorder_xids)
      : xids_(std::move(postorder_xids)) {}

  /// Parses the textual form "(a-b;c;d-e)".
  static Result<XidMap> Parse(std::string_view text);

  /// Serializes to the textual form.
  std::string ToString() const;

  const std::vector<Xid>& xids() const { return xids_; }
  size_t size() const { return xids_.size(); }
  bool empty() const { return xids_.empty(); }

  /// XID of the subtree root (last postorder entry).
  Xid root_xid() const { return xids_.empty() ? kNoXid : xids_.back(); }

  bool operator==(const XidMap&) const = default;

 private:
  std::vector<Xid> xids_;
};

}  // namespace xydiff

#endif  // XYDIFF_XID_XID_MAP_H_
