#include "xid/xid_map.h"

#include <sstream>

#include "util/string_util.h"

namespace xydiff {

Result<XidMap> XidMap::Parse(std::string_view text) {
  std::string_view body = Trim(text);
  if (body.size() < 2 || body.front() != '(' || body.back() != ')') {
    return Status::ParseError("XID-map must be parenthesized: " +
                              std::string(text));
  }
  body = body.substr(1, body.size() - 2);
  std::vector<Xid> xids;
  if (!Trim(body).empty()) {
    for (std::string_view part : Split(body, ';')) {
      part = Trim(part);
      const size_t dash = part.find('-');
      uint64_t lo = 0;
      uint64_t hi = 0;
      if (dash == std::string_view::npos) {
        if (!ParseUint64(part, &lo)) {
          return Status::ParseError("bad XID-map entry: " + std::string(part));
        }
        hi = lo;
      } else {
        if (!ParseUint64(Trim(part.substr(0, dash)), &lo) ||
            !ParseUint64(Trim(part.substr(dash + 1)), &hi) || lo > hi) {
          return Status::ParseError("bad XID-map range: " + std::string(part));
        }
      }
      for (uint64_t x = lo; x <= hi; ++x) xids.push_back(x);
    }
  }
  return XidMap(std::move(xids));
}

std::string XidMap::ToString() const {
  std::ostringstream os;
  os << '(';
  size_t i = 0;
  bool first = true;
  while (i < xids_.size()) {
    size_t j = i;
    while (j + 1 < xids_.size() && xids_[j + 1] == xids_[j] + 1) ++j;
    if (!first) os << ';';
    first = false;
    if (j == i) {
      os << xids_[i];
    } else {
      os << xids_[i] << '-' << xids_[j];
    }
    i = j + 1;
  }
  os << ')';
  return os.str();
}

}  // namespace xydiff
