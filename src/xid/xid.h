#ifndef XYDIFF_XID_XID_H_
#define XYDIFF_XID_XID_H_

#include <cstdint>

namespace xydiff {

/// A persistent node identifier (XID, §3.1): assigned when a node first
/// enters a document's history and stable across versions, so deltas can
/// name nodes independently of their current position.
using Xid = uint64_t;

/// Sentinel for "no XID assigned yet".
inline constexpr Xid kNoXid = 0;

}  // namespace xydiff

#endif  // XYDIFF_XID_XID_H_
