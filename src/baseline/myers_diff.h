#ifndef XYDIFF_BASELINE_MYERS_DIFF_H_
#define XYDIFF_BASELINE_MYERS_DIFF_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace xydiff {

/// A contiguous edit hunk in line coordinates (0-based, end-exclusive):
/// lines [old_begin, old_end) of the old text are replaced by lines
/// [new_begin, new_end) of the new text.
struct LineHunk {
  size_t old_begin = 0;
  size_t old_end = 0;
  size_t new_begin = 0;
  size_t new_end = 0;
};

/// Result of a line diff.
struct LineDiffResult {
  std::vector<LineHunk> hunks;
  size_t deleted_lines = 0;
  size_t added_lines = 0;
  /// Byte size of the classic `diff` ed-style output for these hunks
  /// ("< line", "> line", "---", "NcM" headers). This is the quantity
  /// Figure 6 compares deltas against.
  size_t output_bytes = 0;
};

/// Myers' O(ND) greedy line diff — the algorithm family behind Unix
/// `diff`, which the paper uses as its yardstick on web data (§6.2).
/// Lines are compared by content; the result is a shortest edit script.
/// For pathological inputs whose edit distance exceeds `max_d` the
/// algorithm degrades gracefully to "replace everything" (GNU diff has a
/// similar speedup heuristic).
LineDiffResult MyersLineDiff(std::string_view old_text,
                             std::string_view new_text,
                             size_t max_d = 100000);

/// Renders the classic ed-style diff output (the text whose size
/// `LineDiffResult::output_bytes` reports).
std::string RenderEdScript(std::string_view old_text,
                           std::string_view new_text,
                           const LineDiffResult& result);

}  // namespace xydiff

#endif  // XYDIFF_BASELINE_MYERS_DIFF_H_
