#ifndef XYDIFF_BASELINE_SELKOW_H_
#define XYDIFF_BASELINE_SELKOW_H_

#include <cstddef>

#include "xml/node.h"

namespace xydiff {

/// Selkow-variant tree edit distance (Selkow 1977, computed in the style
/// of Lu's algorithm — §3 of the paper: "Our algorithm is in the spirit
/// of Selkow's variant, and resembles Lu's algorithm").
///
/// Operations are restricted to inserting and deleting whole *subtrees*
/// and relabelling nodes in place: a node can only be matched to a node
/// at the same depth whose ancestors are matched, which is exactly the
/// structure-preserving model appropriate for typed XML (a DTD rarely
/// lets children change level). Costs: deleting or inserting a subtree
/// costs its node count; relabelling a node costs 1 (label or text
/// differs), 0 otherwise.
///
/// Computed by dynamic programming over child sequences (string edit
/// distance where substitution recurses), memoized per node pair —
/// O(|D1|·|D2|) time in the worst case, the quadratic bound the paper
/// quotes for Lu's algorithm under Selkow's variant.
///
/// Unlike BULD this has no move operation and no cross-level matching;
/// it serves as the "what BULD descends from" baseline in the
/// optimality/scaling experiments.
size_t SelkowEditDistance(const XmlNode& a, const XmlNode& b);

}  // namespace xydiff

#endif  // XYDIFF_BASELINE_SELKOW_H_
