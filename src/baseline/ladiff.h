#ifndef XYDIFF_BASELINE_LADIFF_H_
#define XYDIFF_BASELINE_LADIFF_H_

#include "delta/options.h"
#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Counters reported by the LaDiff baseline.
struct LaDiffStats {
  size_t matched_leaves = 0;
  size_t matched_internal = 0;
  size_t lcs_cells = 0;  ///< DP work — the quadratic term.
};

/// Baseline in the spirit of LaDiff / FastMatch (Chawathe et al.,
/// SIGMOD 1996; §3 of the paper): leaves are matched by content using a
/// longest-common-subsequence pass, internal nodes bottom-up by the
/// fraction of common matched leaves (threshold 0.5, labels must agree),
/// and the edit script is derived from the matching. Cost is dominated
/// by the per-label leaf LCS — O(n·m) in the worst case, the quadratic
/// behaviour the paper contrasts BULD against.
///
/// The matching is converted into the same Delta representation the BULD
/// diff produces, so quality and size are directly comparable. XIDs are
/// assigned exactly as in XyDiff.
Result<Delta> LaDiff(XmlDocument* old_doc, XmlDocument* new_doc,
                     const DiffOptions& options = {},
                     LaDiffStats* stats = nullptr);

}  // namespace xydiff

#endif  // XYDIFF_BASELINE_LADIFF_H_
