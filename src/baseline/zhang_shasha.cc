#include "baseline/zhang_shasha.h"

#include <algorithm>
#include <string>
#include <vector>

namespace xydiff {

namespace {

/// Postorder view of a tree with the leftmost-leaf and keyroot machinery
/// of the Zhang–Shasha algorithm.
struct PostorderTree {
  std::vector<const XmlNode*> nodes;  // Postorder.
  std::vector<size_t> leftmost;       // Leftmost leaf (postorder index).
  std::vector<size_t> keyroots;

  explicit PostorderTree(const XmlNode& root) {
    Build(root);
    // Keyroots: nodes whose leftmost leaf differs from their parent's
    // (equivalently: the last node with each leftmost value).
    std::vector<char> seen(nodes.size(), 0);
    for (size_t i = nodes.size(); i-- > 0;) {
      const size_t l = leftmost[i];
      if (!seen[l]) {
        seen[l] = 1;
        keyroots.push_back(i);
      }
    }
    std::sort(keyroots.begin(), keyroots.end());
  }

  size_t size() const { return nodes.size(); }

 private:
  // Returns the postorder index of `node`; fills leftmost.
  size_t Build(const XmlNode& node) {
    size_t first_leaf = SIZE_MAX;
    for (size_t i = 0; i < node.child_count(); ++i) {
      const size_t child_index = Build(*node.child(i));
      if (first_leaf == SIZE_MAX) first_leaf = leftmost[child_index];
    }
    nodes.push_back(&node);
    const size_t index = nodes.size() - 1;
    leftmost.push_back(first_leaf == SIZE_MAX ? index : first_leaf);
    return index;
  }
};

size_t RelabelCost(const XmlNode& a, const XmlNode& b) {
  if (a.type() != b.type()) return 1;
  if (a.is_text()) return a.text() == b.text() ? 0 : 1;
  return a.label() == b.label() ? 0 : 1;
}

}  // namespace

size_t TreeEditDistance(const XmlNode& a, const XmlNode& b) {
  const PostorderTree t1(a);
  const PostorderTree t2(b);
  const size_t n = t1.size();
  const size_t m = t2.size();

  std::vector<std::vector<size_t>> tree_dist(n,
                                             std::vector<size_t>(m, 0));
  // Forest-distance scratch, sized (n+1) x (m+1).
  std::vector<std::vector<size_t>> fd(n + 1, std::vector<size_t>(m + 1, 0));

  for (size_t ki : t1.keyroots) {
    for (size_t kj : t2.keyroots) {
      const size_t li = t1.leftmost[ki];
      const size_t lj = t2.leftmost[kj];
      fd[li][lj] = 0;
      for (size_t i = li; i <= ki; ++i) {
        fd[i + 1][lj] = fd[i][lj] + 1;  // Delete.
      }
      for (size_t j = lj; j <= kj; ++j) {
        fd[li][j + 1] = fd[li][j] + 1;  // Insert.
      }
      for (size_t i = li; i <= ki; ++i) {
        for (size_t j = lj; j <= kj; ++j) {
          if (t1.leftmost[i] == li && t2.leftmost[j] == lj) {
            const size_t relabel =
                fd[i][j] + RelabelCost(*t1.nodes[i], *t2.nodes[j]);
            fd[i + 1][j + 1] =
                std::min({fd[i][j + 1] + 1, fd[i + 1][j] + 1, relabel});
            tree_dist[i][j] = fd[i + 1][j + 1];
          } else {
            const size_t subtree = fd[t1.leftmost[i]][t2.leftmost[j]] +
                                   tree_dist[i][j];
            fd[i + 1][j + 1] =
                std::min({fd[i][j + 1] + 1, fd[i + 1][j] + 1, subtree});
          }
        }
      }
    }
  }
  return tree_dist[n - 1][m - 1];
}

}  // namespace xydiff
