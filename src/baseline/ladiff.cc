#include "baseline/ladiff.h"

#include <unordered_map>
#include <vector>

#include "delta/delta_builder.h"
#include "delta/diff_tree.h"
#include "delta/lcs.h"
#include "delta/signature.h"
#include "util/hash.h"

namespace xydiff {

namespace {

/// Matches text leaves by exact content with an order-preserving LCS.
/// Classic DP (the quadratic heart of the baseline); very large inputs
/// are chunked so memory stays bounded while work remains O(n·m).
/// Returns a context error if the deadline dies mid-DP (the LCS then
/// reports an empty matching, which must not be mistaken for "nothing
/// in common").
Status MatchLeaves(DiffTree* t1, DiffTree* t2, const Context* context,
                   LaDiffStats* stats) {
  std::vector<NodeIndex> old_leaves;
  std::vector<NodeIndex> new_leaves;
  for (NodeIndex i = 0; i < t1->size(); ++i) {
    if (t1->is_text(i)) old_leaves.push_back(i);
  }
  for (NodeIndex j = 0; j < t2->size(); ++j) {
    if (t2->is_text(j)) new_leaves.push_back(j);
  }

  constexpr size_t kChunk = 4096;  // Bounds the DP table to ~64 MB.
  size_t bi = 0;
  for (size_t ai = 0; ai < old_leaves.size(); ai += kChunk) {
    const size_t a_end = std::min(ai + kChunk, old_leaves.size());
    const size_t b_end = std::min(bi + kChunk, new_leaves.size());
    std::vector<uint64_t> a_tokens;
    std::vector<uint64_t> b_tokens;
    for (size_t i = ai; i < a_end; ++i) {
      a_tokens.push_back(HashBytes(t1->dom(old_leaves[i])->text()));
    }
    for (size_t j = bi; j < b_end; ++j) {
      b_tokens.push_back(HashBytes(t2->dom(new_leaves[j])->text()));
    }
    if (stats != nullptr) stats->lcs_cells += a_tokens.size() * b_tokens.size();
    const auto lcs = LongestCommonSubsequence(a_tokens, b_tokens, context);
    if (context != nullptr) {
      XYDIFF_RETURN_IF_ERROR(context->Check());
    }
    for (const auto& [x, y] : lcs) {
      const NodeIndex l1 = old_leaves[ai + x];
      const NodeIndex l2 = new_leaves[bi + y];
      t1->set_match(l1, l2);
      t2->set_match(l2, l1);
      if (stats != nullptr) ++stats->matched_leaves;
    }
    bi = b_end;
  }
  return Status::OK();
}

/// Bottom-up internal matching: every matched leaf pair votes for its
/// ancestor pairs at equal height; an internal pair is accepted when the
/// labels agree and the votes cover at least half of the larger leaf
/// count (FastMatch's similarity threshold).
void MatchInternal(DiffTree* t1, DiffTree* t2, LaDiffStats* stats) {
  // Leaf counts per subtree.
  std::vector<size_t> leaves1(static_cast<size_t>(t1->size()), 0);
  std::vector<size_t> leaves2(static_cast<size_t>(t2->size()), 0);
  for (NodeIndex i : t1->postorder()) {
    if (t1->is_text(i)) {
      leaves1[static_cast<size_t>(i)] = 1;
    }
    const NodeIndex p = t1->parent(i);
    if (p != kInvalidNode) {
      leaves1[static_cast<size_t>(p)] += leaves1[static_cast<size_t>(i)];
    }
  }
  for (NodeIndex j : t2->postorder()) {
    if (t2->is_text(j)) {
      leaves2[static_cast<size_t>(j)] = 1;
    }
    const NodeIndex p = t2->parent(j);
    if (p != kInvalidNode) {
      leaves2[static_cast<size_t>(p)] += leaves2[static_cast<size_t>(j)];
    }
  }

  // Votes keyed by (old ancestor, new ancestor).
  std::unordered_map<uint64_t, size_t> votes;
  const auto key = [](NodeIndex a, NodeIndex b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  };
  for (NodeIndex l1 = 0; l1 < t1->size(); ++l1) {
    if (!t1->is_text(l1) || !t1->matched(l1)) continue;
    NodeIndex a1 = t1->parent(l1);
    NodeIndex a2 = t2->parent(t1->match(l1));
    while (a1 != kInvalidNode && a2 != kInvalidNode) {
      ++votes[key(a1, a2)];
      a1 = t1->parent(a1);
      a2 = t2->parent(a2);
    }
  }

  // Accept pairs bottom-up, best candidate per old node first.
  std::unordered_map<NodeIndex, std::vector<std::pair<NodeIndex, size_t>>>
      candidates;
  for (const auto& [k, count] : votes) {
    const NodeIndex a1 = static_cast<NodeIndex>(k >> 32);
    const NodeIndex a2 = static_cast<NodeIndex>(k & 0xFFFFFFFFu);
    candidates[a1].emplace_back(a2, count);
  }
  for (NodeIndex i : t1->postorder()) {
    if (!t1->is_element(i) || t1->matched(i)) continue;
    auto it = candidates.find(i);
    if (it == candidates.end()) continue;
    NodeIndex best = kInvalidNode;
    size_t best_votes = 0;
    for (const auto& [j, count] : it->second) {
      if (t2->matched(j) || t2->label(j) != t1->label(i)) continue;
      if (count > best_votes) {
        best_votes = count;
        best = j;
      }
    }
    if (best == kInvalidNode) continue;
    const size_t larger = std::max(leaves1[static_cast<size_t>(i)],
                                   leaves2[static_cast<size_t>(best)]);
    if (larger == 0 || 2 * best_votes < larger) continue;
    t1->set_match(i, best);
    t2->set_match(best, i);
    if (stats != nullptr) ++stats->matched_internal;
  }

  // LaDiff always matches the roots when labels agree.
  if (!t1->matched(0) && !t2->matched(0) && t1->label(0) == t2->label(0)) {
    t1->set_match(0, 0);
    t2->set_match(0, 0);
    if (stats != nullptr) ++stats->matched_internal;
  }
}

}  // namespace

Result<Delta> LaDiff(XmlDocument* old_doc, XmlDocument* new_doc,
                     const DiffOptions& options, LaDiffStats* stats) {
  if (old_doc->root() == nullptr || new_doc->root() == nullptr) {
    return Status::InvalidArgument("both documents must have a root element");
  }
  if (!old_doc->AllXidsAssigned()) {
    old_doc->AssignInitialXids();
  }
  LabelTable labels;
  DiffTree t1 = DiffTree::Build(old_doc, &labels);
  DiffTree t2 = DiffTree::Build(new_doc, &labels);
  ComputeSignaturesAndWeights(&t1, options);
  ComputeSignaturesAndWeights(&t2, options);

  XYDIFF_RETURN_IF_ERROR(MatchLeaves(&t1, &t2, options.context, stats));
  MatchInternal(&t1, &t2, stats);

  return BuildDeltaFromMatching(&t1, &t2, old_doc, new_doc, options,
                                DeltaBuildConfig{});
}

}  // namespace xydiff
