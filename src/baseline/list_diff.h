#ifndef XYDIFF_BASELINE_LIST_DIFF_H_
#define XYDIFF_BASELINE_LIST_DIFF_H_

#include <cstddef>
#include <string>

#include "xml/document.h"

namespace xydiff {

/// Result of a DiffMK-style list diff.
struct ListDiffResult {
  size_t total_tokens_old = 0;
  size_t total_tokens_new = 0;
  size_t deleted_tokens = 0;
  size_t inserted_tokens = 0;
  /// Approximate serialized script size (markup per changed token).
  size_t output_bytes = 0;
};

/// Sun DiffMK-style baseline (§3): the document is flattened into a
/// *list* of node events (start-element with attributes, text, end-
/// element) "thus losing the benefit of tree structure of XML", and the
/// two lists are diffed with the standard (Myers) algorithm. No moves,
/// no persistent identification; a moved subtree costs a full
/// delete + re-insert of its token range.
ListDiffResult ListDiff(const XmlDocument& old_doc,
                        const XmlDocument& new_doc);

}  // namespace xydiff

#endif  // XYDIFF_BASELINE_LIST_DIFF_H_
