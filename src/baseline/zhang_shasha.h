#ifndef XYDIFF_BASELINE_ZHANG_SHASHA_H_
#define XYDIFF_BASELINE_ZHANG_SHASHA_H_

#include <cstddef>

#include "xml/node.h"

namespace xydiff {

/// Exact ordered tree edit distance (Zhang & Shasha 1989; cited by the
/// paper via [25]) with unit costs: delete 1, insert 1, relabel 1 when
/// the node kind/label/text differ and 0 otherwise.
///
/// O(|T1|·|T2|·min(depth,leaves)²) time and O(|T1|·|T2|) space — usable
/// only on small documents, which is exactly its role here: the
/// optimality yardstick for the quality experiments (the paper trades
/// "an ounce of quality" for linear time; this measures the ounce).
size_t TreeEditDistance(const XmlNode& a, const XmlNode& b);

}  // namespace xydiff

#endif  // XYDIFF_BASELINE_ZHANG_SHASHA_H_
