#include "baseline/selkow.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace xydiff {

namespace {

size_t RelabelCost(const XmlNode& a, const XmlNode& b) {
  if (a.type() != b.type()) return 1;
  if (a.is_text()) return a.text() == b.text() ? 0 : 1;
  return a.label() == b.label() ? 0 : 1;
}

class Solver {
 public:
  size_t Distance(const XmlNode& a, const XmlNode& b) {
    const uint64_t key = Key(&a, &b);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    // Edit distance between the child sequences; substituting child i
    // for child j recurses into Distance(i, j).
    const size_t n = a.child_count();
    const size_t m = b.child_count();
    std::vector<std::vector<size_t>> dp(n + 1,
                                        std::vector<size_t>(m + 1, 0));
    for (size_t i = 1; i <= n; ++i) {
      dp[i][0] = dp[i - 1][0] + a.child(i - 1)->SubtreeSize();
    }
    for (size_t j = 1; j <= m; ++j) {
      dp[0][j] = dp[0][j - 1] + b.child(j - 1)->SubtreeSize();
    }
    for (size_t i = 1; i <= n; ++i) {
      for (size_t j = 1; j <= m; ++j) {
        const size_t del = dp[i - 1][j] + a.child(i - 1)->SubtreeSize();
        const size_t ins = dp[i][j - 1] + b.child(j - 1)->SubtreeSize();
        const size_t sub =
            dp[i - 1][j - 1] + Distance(*a.child(i - 1), *b.child(j - 1));
        dp[i][j] = std::min({del, ins, sub});
      }
    }
    const size_t result = RelabelCost(a, b) + dp[n][m];
    memo_.emplace(key, result);
    return result;
  }

 private:
  static uint64_t Key(const XmlNode* a, const XmlNode* b) {
    // Pointer-pair key; fine within one solver invocation.
    const auto ha = reinterpret_cast<uintptr_t>(a);
    const auto hb = reinterpret_cast<uintptr_t>(b);
    return (static_cast<uint64_t>(ha) * 1000003u) ^ static_cast<uint64_t>(hb);
  }

  std::unordered_map<uint64_t, size_t> memo_;
};

}  // namespace

size_t SelkowEditDistance(const XmlNode& a, const XmlNode& b) {
  Solver solver;
  return solver.Distance(a, b);
}

}  // namespace xydiff
