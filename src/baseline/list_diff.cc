#include "baseline/list_diff.h"

#include <vector>

#include "baseline/myers_diff.h"
#include "util/hash.h"

namespace xydiff {

namespace {

struct TokenStream {
  std::vector<uint64_t> tokens;
  std::vector<size_t> byte_cost;  // Serialized size share per token.
};

void Flatten(const XmlNode& node, TokenStream* out) {
  if (node.is_text()) {
    out->tokens.push_back(HashBytes(node.text(), /*seed=*/1));
    out->byte_cost.push_back(node.text().size());
    return;
  }
  Signature open = HashBytes(node.label(), /*seed=*/2);
  size_t open_bytes = node.label().size() + 2;
  for (const auto& attr : node.attributes()) {
    open ^= HashFinalize(
        HashCombine(HashBytes(attr.name, 3), HashBytes(attr.value)));
    open_bytes += attr.name.size() + attr.value.size() + 4;
  }
  out->tokens.push_back(HashFinalize(open));
  out->byte_cost.push_back(open_bytes);
  for (size_t i = 0; i < node.child_count(); ++i) {
    Flatten(*node.child(i), out);
  }
  out->tokens.push_back(HashCombine(HashBytes(node.label(), /*seed=*/4), 5));
  out->byte_cost.push_back(node.label().size() + 3);
}

}  // namespace

ListDiffResult ListDiff(const XmlDocument& old_doc,
                        const XmlDocument& new_doc) {
  TokenStream a;
  TokenStream b;
  if (old_doc.root() != nullptr) Flatten(*old_doc.root(), &a);
  if (new_doc.root() != nullptr) Flatten(*new_doc.root(), &b);

  // Reuse the Myers solver by presenting each token as one "line".
  // (Tokens are already hashes, so we hash their bytes once more —
  // cheap and keeps one code path.)
  std::string old_text;
  std::string new_text;
  old_text.reserve(a.tokens.size() * 17);
  for (uint64_t t : a.tokens) {
    old_text += std::to_string(t);
    old_text += '\n';
  }
  new_text.reserve(b.tokens.size() * 17);
  for (uint64_t t : b.tokens) {
    new_text += std::to_string(t);
    new_text += '\n';
  }
  const LineDiffResult lines = MyersLineDiff(old_text, new_text);

  ListDiffResult result;
  result.total_tokens_old = a.tokens.size();
  result.total_tokens_new = b.tokens.size();
  result.deleted_tokens = lines.deleted_lines;
  result.inserted_tokens = lines.added_lines;
  for (const LineHunk& h : lines.hunks) {
    for (size_t i = h.old_begin; i < h.old_end; ++i) {
      result.output_bytes += a.byte_cost[i] + 3;
    }
    for (size_t i = h.new_begin; i < h.new_end; ++i) {
      result.output_bytes += b.byte_cost[i] + 3;
    }
    result.output_bytes += 12;  // Hunk markup.
  }
  return result;
}

}  // namespace xydiff
