#include "baseline/myers_diff.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"
#include "util/string_util.h"

namespace xydiff {

namespace {

/// Line tokens: hashes compare fast; equal hashes are assumed equal lines
/// (64-bit, same accidental-collision argument as subtree signatures).
std::vector<uint64_t> TokenizeLines(
    const std::vector<std::string_view>& lines) {
  std::vector<uint64_t> tokens;
  tokens.reserve(lines.size());
  for (std::string_view line : lines) tokens.push_back(HashBytes(line));
  return tokens;
}

/// Linear-space Myers (the 1986 paper's divide-and-conquer refinement).
class MyersSolver {
 public:
  MyersSolver(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
              size_t work_budget)
      : a_(a), b_(b), budget_(work_budget) {
    const size_t vsize = a.size() + b.size() + 3;
    vf_.assign(2 * vsize + 1, 0);
    vb_.assign(2 * vsize + 1, 0);
    offset_ = static_cast<ptrdiff_t>(vsize);
  }

  /// Returns matched index pairs (ascending in both coordinates).
  std::vector<std::pair<size_t, size_t>> Solve() {
    Recurse(0, a_.size(), 0, b_.size());
    return std::move(matches_);
  }

 private:
  struct Snake {
    size_t x0, y0, x1, y1;
    bool found;
  };

  void Recurse(size_t a_begin, size_t a_end, size_t b_begin, size_t b_end) {
    // Trim common prefix and suffix; both become matches.
    while (a_begin < a_end && b_begin < b_end &&
           a_[a_begin] == b_[b_begin]) {
      matches_.emplace_back(a_begin++, b_begin++);
    }
    size_t suffix = 0;
    while (a_begin + suffix < a_end && b_begin + suffix < b_end &&
           a_[a_end - 1 - suffix] == b_[b_end - 1 - suffix]) {
      ++suffix;
    }
    const size_t a_mid_end = a_end - suffix;
    const size_t b_mid_end = b_end - suffix;

    if (a_begin < a_mid_end && b_begin < b_mid_end) {
      const Snake snake =
          FindMiddleSnake(a_begin, a_mid_end, b_begin, b_mid_end);
      if (snake.found) {
        Recurse(a_begin, snake.x0, b_begin, snake.y0);
        for (size_t i = 0; i < snake.x1 - snake.x0; ++i) {
          matches_.emplace_back(snake.x0 + i, snake.y0 + i);
        }
        Recurse(snake.x1, a_mid_end, snake.y1, b_mid_end);
      }
      // !found: budget exhausted — treat the whole middle as replaced.
    }

    for (size_t i = 0; i < suffix; ++i) {
      matches_.emplace_back(a_mid_end + i, b_mid_end + i);
    }
  }

  int64_t& Vf(ptrdiff_t k) { return vf_[static_cast<size_t>(k + offset_)]; }
  int64_t& Vb(ptrdiff_t k) { return vb_[static_cast<size_t>(k + offset_)]; }

  Snake FindMiddleSnake(size_t a_begin, size_t a_end, size_t b_begin,
                        size_t b_end) {
    const int64_t n = static_cast<int64_t>(a_end - a_begin);
    const int64_t m = static_cast<int64_t>(b_end - b_begin);
    const int64_t delta = n - m;
    const bool odd = (delta & 1) != 0;
    const int64_t d_max = (n + m + 1) / 2;

    Vf(1) = 0;
    Vb(1) = 0;
    for (int64_t d = 0; d <= d_max; ++d) {
      if (budget_ != 0 && work_ > budget_) {
        return Snake{0, 0, 0, 0, false};
      }
      // Forward search.
      for (int64_t k = -d; k <= d; k += 2) {
        int64_t x = (k == -d || (k != d && Vf(k - 1) < Vf(k + 1)))
                        ? Vf(k + 1)
                        : Vf(k - 1) + 1;
        int64_t y = x - k;
        const int64_t x0 = x;
        const int64_t y0 = y;
        while (x < n && y < m &&
               a_[a_begin + static_cast<size_t>(x)] ==
                   b_[b_begin + static_cast<size_t>(y)]) {
          ++x;
          ++y;
        }
        work_ += static_cast<size_t>(x - x0) + 1;
        Vf(k) = x;
        if (odd && k - delta >= -(d - 1) && k - delta <= d - 1) {
          if (x + Vb(delta - k) >= n) {
            return Snake{a_begin + static_cast<size_t>(x0),
                         b_begin + static_cast<size_t>(y0),
                         a_begin + static_cast<size_t>(x),
                         b_begin + static_cast<size_t>(y), true};
          }
        }
      }
      // Backward search (over the reversed sequences).
      for (int64_t k = -d; k <= d; k += 2) {
        int64_t x = (k == -d || (k != d && Vb(k - 1) < Vb(k + 1)))
                        ? Vb(k + 1)
                        : Vb(k - 1) + 1;
        int64_t y = x - k;
        const int64_t x0 = x;
        while (x < n && y < m &&
               a_[a_begin + static_cast<size_t>(n - 1 - x)] ==
                   b_[b_begin + static_cast<size_t>(m - 1 - y)]) {
          ++x;
          ++y;
        }
        work_ += static_cast<size_t>(x - x0) + 1;
        Vb(k) = x;
        if (!odd && delta - k >= -d && delta - k <= d) {
          if (x + Vf(delta - k) >= n) {
            const int64_t y0 = x0 - k;
            // Convert the reverse snake to forward coordinates.
            return Snake{a_begin + static_cast<size_t>(n - x),
                         b_begin + static_cast<size_t>(m - y),
                         a_begin + static_cast<size_t>(n - x0),
                         b_begin + static_cast<size_t>(m - y0), true};
          }
        }
      }
    }
    return Snake{0, 0, 0, 0, false};
  }

  const std::vector<uint64_t>& a_;
  const std::vector<uint64_t>& b_;
  std::vector<int64_t> vf_;
  std::vector<int64_t> vb_;
  ptrdiff_t offset_ = 0;
  size_t budget_;
  size_t work_ = 0;
  std::vector<std::pair<size_t, size_t>> matches_;
};

/// Ed-style header, e.g. "3,5c7" or "12d11" or "4a5,6".
std::string HunkHeader(const LineHunk& h) {
  const auto range = [](size_t begin, size_t end, bool anchor_before) {
    // diff(1) prints 1-based inclusive ranges; pure insert/delete anchors
    // print the line *before* the gap.
    if (begin == end) return std::to_string(anchor_before ? begin : begin + 1);
    std::string out = std::to_string(begin + 1);
    if (end - begin > 1) out += "," + std::to_string(end);
    return out;
  };
  const bool del = h.old_end > h.old_begin;
  const bool add = h.new_end > h.new_begin;
  const char code = del && add ? 'c' : (del ? 'd' : 'a');
  return range(h.old_begin, h.old_end, !del) + code +
         range(h.new_begin, h.new_end, !add);
}

}  // namespace

LineDiffResult MyersLineDiff(std::string_view old_text,
                             std::string_view new_text, size_t max_d) {
  const std::vector<std::string_view> old_lines = SplitLines(old_text);
  const std::vector<std::string_view> new_lines = SplitLines(new_text);
  const std::vector<uint64_t> a = TokenizeLines(old_lines);
  const std::vector<uint64_t> b = TokenizeLines(new_lines);

  // Budget scales with the allowed edit distance: work ~ (N+M)·D.
  const size_t budget = (a.size() + b.size() + 1) * (max_d == 0 ? 1 : max_d);
  MyersSolver solver(a, b, budget);
  const std::vector<std::pair<size_t, size_t>> matches = solver.Solve();

  LineDiffResult result;
  size_t ai = 0;
  size_t bi = 0;
  auto emit_hunk = [&](size_t a_to, size_t b_to) {
    if (ai == a_to && bi == b_to) return;
    LineHunk hunk{ai, a_to, bi, b_to};
    result.deleted_lines += a_to - ai;
    result.added_lines += b_to - bi;
    result.output_bytes += HunkHeader(hunk).size() + 1;
    for (size_t i = ai; i < a_to; ++i) {
      result.output_bytes += 3 + old_lines[i].size();  // "< line\n"
    }
    if (a_to > ai && b_to > bi) result.output_bytes += 4;  // "---\n"
    for (size_t i = bi; i < b_to; ++i) {
      result.output_bytes += 3 + new_lines[i].size();  // "> line\n"
    }
    result.hunks.push_back(hunk);
  };
  for (const auto& [ma, mb] : matches) {
    emit_hunk(ma, mb);
    ai = ma + 1;
    bi = mb + 1;
  }
  emit_hunk(a.size(), b.size());
  return result;
}

std::string RenderEdScript(std::string_view old_text,
                           std::string_view new_text,
                           const LineDiffResult& result) {
  const std::vector<std::string_view> old_lines = SplitLines(old_text);
  const std::vector<std::string_view> new_lines = SplitLines(new_text);
  std::string out;
  out.reserve(result.output_bytes);
  for (const LineHunk& h : result.hunks) {
    out += HunkHeader(h);
    out += '\n';
    for (size_t i = h.old_begin; i < h.old_end; ++i) {
      out += "< ";
      out += old_lines[i];
      out += '\n';
    }
    if (h.old_end > h.old_begin && h.new_end > h.new_begin) out += "---\n";
    for (size_t i = h.new_begin; i < h.new_end; ++i) {
      out += "> ";
      out += new_lines[i];
      out += '\n';
    }
  }
  return out;
}

}  // namespace xydiff
