#include "delta/invert.h"

namespace xydiff {

Delta InvertDelta(const Delta& delta) {
  Delta out;
  out.set_old_next_xid(delta.new_next_xid());
  out.set_new_next_xid(delta.old_next_xid());

  for (const DeleteOp& op : delta.deletes()) {
    out.inserts().emplace_back(op.xid, op.parent_xid, op.pos,
                               op.subtree ? op.subtree->Clone() : nullptr);
  }
  for (const InsertOp& op : delta.inserts()) {
    out.deletes().emplace_back(op.xid, op.parent_xid, op.pos,
                               op.subtree ? op.subtree->Clone() : nullptr);
  }
  for (const MoveOp& op : delta.moves()) {
    out.moves().push_back(MoveOp{op.xid, op.to_parent, op.to_pos,
                                 op.from_parent, op.from_pos});
  }
  for (const UpdateOp& op : delta.updates()) {
    // Compressed updates invert by swapping the middles; the shared
    // prefix/suffix lengths are direction-independent.
    out.updates().push_back(
        UpdateOp{op.xid, op.new_value, op.old_value, op.prefix, op.suffix});
  }
  for (const AttributeOp& op : delta.attribute_ops()) {
    AttributeOp inv;
    inv.element_xid = op.element_xid;
    inv.name = op.name;
    inv.old_value = op.new_value;
    inv.new_value = op.old_value;
    switch (op.kind) {
      case AttributeOpKind::kInsert:
        inv.kind = AttributeOpKind::kDelete;
        break;
      case AttributeOpKind::kDelete:
        inv.kind = AttributeOpKind::kInsert;
        break;
      case AttributeOpKind::kUpdate:
        inv.kind = AttributeOpKind::kUpdate;
        break;
    }
    out.attribute_ops().push_back(std::move(inv));
  }
  return out;
}

}  // namespace xydiff
