#include "delta/diff_tree.h"

#include <cassert>

namespace xydiff {

int32_t LabelTable::Intern(std::string_view label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(label);
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

int32_t LabelTable::Find(std::string_view label) const {
  auto it = ids_.find(label);
  return it == ids_.end() ? -1 : it->second;
}

DiffTree DiffTree::Build(XmlDocument* doc, LabelTable* labels) {
  assert(doc->root() != nullptr);
  DiffTree tree;
  tree.labels_ = labels;
  const size_t n = doc->node_count();

  // Parsed documents carry a per-document interner: every element label
  // was deduplicated at parse time and nodes hold dense interner ids.
  // Translating interner id -> table id once per distinct label turns the
  // per-node Intern (hash of the label bytes) into an array lookup.
  const StringInterner* interner = doc->interner();
  std::vector<int32_t> table_id_of;
  if (interner != nullptr) {
    table_id_of.assign(interner->size(), kInvalidNode);
  }
  const auto intern_label = [&](const XmlNode& node) {
    const int32_t pid = node.label_id();
    if (pid < 0 || static_cast<size_t>(pid) >= table_id_of.size()) {
      return labels->Intern(node.label());
    }
    int32_t& cached = table_id_of[static_cast<size_t>(pid)];
    if (cached == kInvalidNode) cached = labels->Intern(node.label());
    return cached;
  };
  tree.dom_.reserve(n);
  tree.parent_.reserve(n);
  tree.position_.reserve(n);
  tree.depth_.reserve(n);
  tree.label_.reserve(n);

  // Preorder numbering with an explicit stack (DOM depth may be large).
  struct Frame {
    XmlNode* node;
    NodeIndex parent;
    int32_t position;
    int32_t depth;
  };
  std::vector<Frame> stack;
  stack.push_back({doc->root(), kInvalidNode, 0, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const NodeIndex index = static_cast<NodeIndex>(tree.dom_.size());
    tree.dom_.push_back(f.node);
    tree.parent_.push_back(f.parent);
    tree.position_.push_back(f.position);
    tree.depth_.push_back(f.depth);
    tree.label_.push_back(f.node->is_element() ? intern_label(*f.node)
                                               : LabelTable::kTextLabel);
    // Push children in reverse so they pop in document order.
    for (size_t k = f.node->child_count(); k > 0; --k) {
      stack.push_back({f.node->child(k - 1), index,
                       static_cast<int32_t>(k - 1), f.depth + 1});
    }
  }

  // CSR children. Preorder guarantees parent index < child index.
  const size_t count = tree.dom_.size();
  tree.child_offset_.assign(count + 1, 0);
  for (size_t i = 1; i < count; ++i) {
    ++tree.child_offset_[static_cast<size_t>(tree.parent_[i]) + 1];
  }
  for (size_t i = 1; i <= count; ++i) {
    tree.child_offset_[i] += tree.child_offset_[i - 1];
  }
  tree.child_list_.assign(count > 0 ? count - 1 : 0, kInvalidNode);
  {
    std::vector<int32_t> cursor(tree.child_offset_.begin(),
                                tree.child_offset_.end() - 1);
    for (size_t i = 1; i < count; ++i) {
      const size_t p = static_cast<size_t>(tree.parent_[i]);
      tree.child_list_[static_cast<size_t>(cursor[p]++)] =
          static_cast<NodeIndex>(i);
    }
  }

  // Postorder: children (in order) before parents.
  tree.postorder_.reserve(count);
  {
    // Iterative postorder: (node, next child to visit).
    std::vector<std::pair<NodeIndex, int32_t>> po_stack;
    po_stack.emplace_back(0, 0);
    while (!po_stack.empty()) {
      auto& [node, next_child] = po_stack.back();
      if (next_child < tree.child_count(node)) {
        const NodeIndex c = tree.child(node, next_child);
        ++next_child;
        po_stack.emplace_back(c, 0);
      } else {
        tree.postorder_.push_back(node);
        po_stack.pop_back();
      }
    }
  }

  tree.signature_.assign(count, 0);
  tree.weight_.assign(count, 0.0);
  tree.match_.assign(count, kInvalidNode);
  tree.id_locked_.assign(count, 0);
  return tree;
}

}  // namespace xydiff
