#ifndef XYDIFF_DELTA_DELTA_H_
#define XYDIFF_DELTA_DELTA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "delta/operation.h"
#include "util/arena.h"

namespace xydiff {

/// A delta: the set of elementary operations transforming one version of
/// an XML document into the next (§4). Produced by the diff, stored as an
/// XML document (delta_xml.h), applied forwards (apply.h), invertible
/// (invert.h) and composable (compose.h).
///
/// `old_next_xid` / `new_next_xid` record the XID allocator state of the
/// two versions so that reconstruction keeps handing out fresh IDs.
class Delta {
 public:
  Delta() = default;
  Delta(Delta&&) = default;
  Delta& operator=(Delta&&) = default;
  Delta(const Delta&) = delete;
  Delta& operator=(const Delta&) = delete;

  /// Deep copy (clones subtree snapshots).
  Delta Clone() const;

  std::vector<DeleteOp>& deletes() { return deletes_; }
  const std::vector<DeleteOp>& deletes() const { return deletes_; }
  std::vector<InsertOp>& inserts() { return inserts_; }
  const std::vector<InsertOp>& inserts() const { return inserts_; }
  std::vector<MoveOp>& moves() { return moves_; }
  const std::vector<MoveOp>& moves() const { return moves_; }
  std::vector<UpdateOp>& updates() { return updates_; }
  const std::vector<UpdateOp>& updates() const { return updates_; }
  std::vector<AttributeOp>& attribute_ops() { return attribute_ops_; }
  const std::vector<AttributeOp>& attribute_ops() const {
    return attribute_ops_;
  }

  Xid old_next_xid() const { return old_next_xid_; }
  void set_old_next_xid(Xid x) { old_next_xid_ = x; }
  Xid new_next_xid() const { return new_next_xid_; }
  void set_new_next_xid(Xid x) { new_next_xid_ = x; }

  /// True when no operation is recorded (the versions are identical).
  bool empty() const {
    return deletes_.empty() && inserts_.empty() && moves_.empty() &&
           updates_.empty() && attribute_ops_.empty();
  }

  /// Number of elementary operations.
  size_t operation_count() const {
    return deletes_.size() + inserts_.size() + moves_.size() +
           updates_.size() + attribute_ops_.size();
  }

  /// Total number of nodes contained in insert and delete snapshots; a
  /// size measure independent of serialization details.
  size_t snapshot_node_count() const;

  /// Weighted edit cost: nodes inserted + nodes deleted + moves + updates
  /// + attribute ops. Used by the quality experiments to compare scripts.
  size_t edit_cost() const {
    return snapshot_node_count() + moves_.size() + updates_.size() +
           attribute_ops_.size();
  }

  /// Arena holding insert/delete snapshot subtrees, created on first use.
  /// Builders (delta_builder, delta_xml) allocate snapshots here so one
  /// delta costs one allocation region instead of one heap tree per op.
  Arena* snapshot_arena() {
    if (!snapshot_arena_) snapshot_arena_ = std::make_shared<Arena>();
    return snapshot_arena_.get();
  }
  const std::shared_ptr<Arena>& shared_snapshot_arena() const {
    return snapshot_arena_;
  }

 private:
  // Declared before the op vectors: snapshot subtrees must be destroyed
  // (trivially, via the no-op deleter) before their arena frees.
  std::shared_ptr<Arena> snapshot_arena_;
  std::vector<DeleteOp> deletes_;
  std::vector<InsertOp> inserts_;
  std::vector<MoveOp> moves_;
  std::vector<UpdateOp> updates_;
  std::vector<AttributeOp> attribute_ops_;
  Xid old_next_xid_ = 1;
  Xid new_next_xid_ = 1;
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_DELTA_H_
