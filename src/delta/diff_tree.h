#ifndef XYDIFF_DELTA_DIFF_TREE_H_
#define XYDIFF_DELTA_DIFF_TREE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/hash.h"
#include "xml/document.h"
#include "xml/node.h"

namespace xydiff {

/// Index of a node within a DiffTree; kInvalidNode means "none".
using NodeIndex = int32_t;
inline constexpr NodeIndex kInvalidNode = -1;

/// Interns element labels so that both documents of a diff share integer
/// label ids; label comparison during matching is an integer compare.
class LabelTable {
 public:
  /// Returns the id for `label`, creating one if needed.
  int32_t Intern(std::string_view label);
  /// Returns the id for `label` or -1 if never interned.
  int32_t Find(std::string_view label) const;
  const std::string& Name(int32_t id) const { return names_[static_cast<size_t>(id)]; }
  size_t size() const { return names_.size(); }

  /// Label id used for text nodes (distinct from every element label).
  static constexpr int32_t kTextLabel = -2;

 private:
  // Keys are views into `names_`; the deque keeps stored strings at
  // stable addresses as the table grows, so no per-lookup copy is made.
  std::unordered_map<std::string_view, int32_t> ids_;
  std::deque<std::string> names_;
};

/// Flat, cache-friendly view of one document used by the BULD algorithm.
///
/// Nodes are numbered in document (preorder) order; the root is node 0.
/// Children are stored contiguously (CSR layout), so traversals are index
/// loops over dense arrays instead of pointer chasing — signatures,
/// weights and match links live in parallel arrays. Each entry keeps a
/// pointer back to its DOM node for label/text/attribute access and for
/// XID read-back; the DOM must outlive the DiffTree.
class DiffTree {
 public:
  /// Builds the flat view over `doc` (which must have a root). `labels`
  /// must be shared between the two trees of one diff.
  static DiffTree Build(XmlDocument* doc, LabelTable* labels);

  NodeIndex size() const { return static_cast<NodeIndex>(dom_.size()); }

  // --- Structure -------------------------------------------------------------

  NodeIndex parent(NodeIndex i) const { return parent_[static_cast<size_t>(i)]; }
  int32_t child_count(NodeIndex i) const {
    return child_offset_[static_cast<size_t>(i) + 1] - child_offset_[static_cast<size_t>(i)];
  }
  NodeIndex child(NodeIndex i, int32_t k) const {
    return child_list_[static_cast<size_t>(child_offset_[static_cast<size_t>(i)] + k)];
  }
  /// 0-based position of `i` among its parent's children.
  int32_t position_in_parent(NodeIndex i) const {
    return position_[static_cast<size_t>(i)];
  }
  /// Depth of node (root = 0).
  int32_t depth(NodeIndex i) const { return depth_[static_cast<size_t>(i)]; }

  /// Node indices in postorder (children before parents).
  const std::vector<NodeIndex>& postorder() const { return postorder_; }

  // --- Content ---------------------------------------------------------------

  bool is_element(NodeIndex i) const {
    return label_[static_cast<size_t>(i)] != LabelTable::kTextLabel;
  }
  bool is_text(NodeIndex i) const { return !is_element(i); }
  /// Interned label id; LabelTable::kTextLabel for text nodes.
  int32_t label(NodeIndex i) const { return label_[static_cast<size_t>(i)]; }
  XmlNode* dom(NodeIndex i) const XY_ARENA_BOUND("source document") { return dom_[static_cast<size_t>(i)]; }

  /// The shared label table this tree was built against.
  const LabelTable& labels() const { return *labels_; }

  // --- Diff state (filled by the algorithm phases) -----------------------------

  Signature signature(NodeIndex i) const { return signature_[static_cast<size_t>(i)]; }
  void set_signature(NodeIndex i, Signature s) { signature_[static_cast<size_t>(i)] = s; }
  double weight(NodeIndex i) const { return weight_[static_cast<size_t>(i)]; }
  void set_weight(NodeIndex i, double w) { weight_[static_cast<size_t>(i)] = w; }

  /// Match link into the other tree (kInvalidNode if unmatched).
  NodeIndex match(NodeIndex i) const { return match_[static_cast<size_t>(i)]; }
  void set_match(NodeIndex i, NodeIndex other) { match_[static_cast<size_t>(i)] = other; }
  bool matched(NodeIndex i) const { return match_[static_cast<size_t>(i)] != kInvalidNode; }

  /// Nodes carrying an ID attribute may only be matched in Phase 1; they
  /// are locked against later matching (§5.2 Phase 1).
  bool id_locked(NodeIndex i) const { return id_locked_[static_cast<size_t>(i)] != 0; }
  void set_id_locked(NodeIndex i) { id_locked_[static_cast<size_t>(i)] = 1; }

  /// Total weight of the whole document (weight of the root).
  double total_weight() const { return weight_[0]; }

 private:
  const LabelTable* labels_ = nullptr;
  std::vector<XmlNode*> dom_;
  std::vector<NodeIndex> parent_;
  std::vector<int32_t> child_offset_;
  std::vector<NodeIndex> child_list_;
  std::vector<int32_t> position_;
  std::vector<int32_t> depth_;
  std::vector<int32_t> label_;
  std::vector<Signature> signature_;
  std::vector<double> weight_;
  std::vector<NodeIndex> match_;
  std::vector<uint8_t> id_locked_;
  std::vector<NodeIndex> postorder_;
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_DIFF_TREE_H_
