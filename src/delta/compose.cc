#include "delta/compose.h"

#include <unordered_map>

#include "delta/delta_builder.h"
#include "delta/diff_tree.h"
#include "delta/signature.h"
#include "delta/apply.h"

namespace xydiff {

Result<Delta> DeltaFromXidCorrespondence(XmlDocument* from, XmlDocument* to,
                                         const DiffOptions& options) {
  if (from->root() == nullptr || to->root() == nullptr) {
    return Status::InvalidArgument("both documents must have a root element");
  }
  if (!from->AllXidsAssigned() || !to->AllXidsAssigned()) {
    return Status::InvalidArgument(
        "XID correspondence requires fully assigned XIDs");
  }

  LabelTable labels;
  DiffTree t1 = DiffTree::Build(from, &labels);
  DiffTree t2 = DiffTree::Build(to, &labels);
  // Weights drive the move-minimizing subsequence in Phase 5.
  ComputeSignaturesAndWeights(&t1, options);
  ComputeSignaturesAndWeights(&t2, options);

  std::unordered_map<Xid, NodeIndex> by_xid;
  by_xid.reserve(static_cast<size_t>(t1.size()));
  for (NodeIndex i = 0; i < t1.size(); ++i) {
    auto [it, inserted] = by_xid.emplace(t1.dom(i)->xid(), i);
    (void)it;  // Only the insertion outcome matters here.
    if (!inserted) {
      return Status::Corruption("duplicate XID " +
                                std::to_string(t1.dom(i)->xid()) +
                                " in source document");
    }
  }
  for (NodeIndex j = 0; j < t2.size(); ++j) {
    auto it = by_xid.find(t2.dom(j)->xid());
    if (it == by_xid.end()) continue;
    const NodeIndex i = it->second;
    if (t1.matched(i)) {
      return Status::Corruption("duplicate XID " +
                                std::to_string(t2.dom(j)->xid()) +
                                " in target document");
    }
    // Kind/label must agree for a node to be "the same" across versions;
    // a relabelled node is a delete+insert.
    if (t1.label(i) != t2.label(j)) continue;
    t1.set_match(i, j);
    t2.set_match(j, i);
  }

  DeltaBuildConfig config;
  config.assign_new_xids = false;
  Delta delta =
      BuildDeltaFromMatching(&t1, &t2, from, to, options, config);
  delta.set_old_next_xid(from->next_xid());
  delta.set_new_next_xid(to->next_xid());
  return delta;
}

Result<Delta> ComposeDeltas(const XmlDocument& base, const Delta& d1,
                            const Delta& d2, const DiffOptions& options) {
  XmlDocument source = base.Clone();
  XmlDocument work = base.Clone();
  XYDIFF_RETURN_IF_ERROR(ApplyDelta(d1, &work));
  XYDIFF_RETURN_IF_ERROR(ApplyDelta(d2, &work));
  Result<Delta> composed = DeltaFromXidCorrespondence(&source, &work, options);
  if (!composed.ok()) return composed.status();
  composed->set_old_next_xid(d1.old_next_xid());
  composed->set_new_next_xid(d2.new_next_xid());
  return composed;
}

}  // namespace xydiff
