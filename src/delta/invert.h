#ifndef XYDIFF_DELTA_INVERT_H_
#define XYDIFF_DELTA_INVERT_H_

#include "delta/delta.h"

namespace xydiff {

/// Inverts a completed delta (§4, after [19]): the result transforms the
/// target version back into the source version.
///
/// Completed deltas carry both directions' information, so inversion is
/// purely syntactic: deletes become inserts and vice versa (snapshots and
/// positions are already recorded on both sides), updates and attribute
/// operations swap old/new, moves swap origin and destination, and the
/// allocator bookkeeping swaps. `InvertDelta(InvertDelta(d))` is
/// structurally identical to `d`.
Delta InvertDelta(const Delta& delta);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_INVERT_H_
