#ifndef XYDIFF_DELTA_OPTIONS_H_
#define XYDIFF_DELTA_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "util/context.h"

namespace xydiff {

/// Tuning knobs of the BULD algorithm (§5.2 "Tuning"). The defaults follow
/// the paper; the ablation benchmarks sweep them.
struct DiffOptions {
  /// Phase 1: use DTD-declared ID attributes to pre-match nodes and lock
  /// ID-carrying nodes against other matchings.
  bool use_id_attributes = true;

  /// Weight of a text node is 1 + ln(length) when true (paper's choice),
  /// plain 1 otherwise (ablation).
  bool text_log_weight = true;

  /// Multiplies the ancestor look-up / propagation depth
  /// d = 1 + factor * ln(n) * W / W0. 1.0 is the paper's rule.
  double ancestor_depth_factor = 1.0;

  /// Number of bottom-up + top-down peephole passes in Phase 4. The paper
  /// runs one; more passes trade time for a few extra matches.
  int propagation_passes = 1;

  /// Eager-down variant: in the top-down pass, additionally pair the
  /// remaining unmatched children of matched parents by equal subtree
  /// signature, in document order. The paper *rejected* eager downward
  /// propagation for its worst-case cost ("Attempting this comparison on
  /// the spot would result in a quadratic computation", §5.1) but this
  /// bounded signature-keyed form keeps each pass linear; exposed as an
  /// ablation of the lazy-down design decision.
  bool eager_sibling_matching = false;

  /// Intra-parent move minimization: 0 selects the exact O(s log s)
  /// weighted largest-order-preserving-subsequence; a positive value
  /// selects the paper's windowed heuristic with that block length
  /// (the paper uses 50).
  size_t lops_window = 0;

  /// When false, matched nodes under different parents are emitted as a
  /// delete + insert pair instead of a move (ablation: "intentionally
  /// missing move operations", §7).
  bool detect_moves = true;

  /// When false, Phase 3 accepts a candidate only with ancestor agreement,
  /// even if it is the unique subtree with that signature (ablation).
  bool accept_unique_candidate = true;

  /// Store text updates as (shared prefix length, differing middle,
  /// shared suffix length) instead of full old/new values — smaller
  /// deltas for long texts with local edits, at the cost of the
  /// completed-delta property that an update is readable in isolation
  /// (§7: "a different trade-off in quality over performance").
  bool compress_updates = false;

  /// Cap on candidates examined per signature before giving up on a node
  /// (keeps worst-case linear; the secondary parent index still finds a
  /// parent-agreeing candidate in O(1) beyond the cap).
  size_t max_candidates_scanned = 16;

  /// Optional deadline/cancellation token, checked cooperatively in the
  /// long loops (Phase 3 matching, baseline LCS). Not owned; must
  /// outlive the diff call. nullptr means no limits.
  const Context* context = nullptr;
};

/// Timings and counters reported by the diff, used by the Figure 4
/// benchmark and by tests.
struct DiffStats {
  double phase1_seconds = 0;   ///< ID-attribute matching.
  double phase2_seconds = 0;   ///< Signatures, weights, queue setup.
  double phase3_seconds = 0;   ///< BULD matching loop.
  double phase4_seconds = 0;   ///< Peephole propagation.
  double phase5_seconds = 0;   ///< Delta construction.

  size_t nodes_old = 0;
  size_t nodes_new = 0;
  size_t matched_nodes = 0;    ///< Matched pairs.
  size_t id_matched_nodes = 0; ///< Pairs matched in Phase 1.

  // Phase 3 instrumentation.
  size_t queue_pops = 0;            ///< Subtrees taken off the heap.
  size_t candidates_scanned = 0;    ///< Candidate nodes examined.
  size_t subtree_matches = 0;       ///< Accepted identical-subtree matches.
  size_t ancestor_matches = 0;      ///< Pairs matched by the upward climb.
  size_t propagation_matches = 0;   ///< Pairs matched by Phase 4 passes.

  double total_seconds() const {
    return phase1_seconds + phase2_seconds + phase3_seconds +
           phase4_seconds + phase5_seconds;
  }
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_OPTIONS_H_
