#ifndef XYDIFF_DELTA_CODEC_H_
#define XYDIFF_DELTA_CODEC_H_

#include <string>
#include <string_view>

#include "delta/delta.h"
#include "util/context.h"
#include "util/status.h"

namespace xydiff {

/// Compact binary serialization of deltas — the storage codec behind the
/// version store's delta chain (§7 discusses the space/time trade-off of
/// compressed delta storage; the XML form of delta_xml.h remains the
/// interchange format).
///
/// Layout (all integers are canonical LEB128 varints):
///
///   magic "XYDB" + format version byte
///   oldNextXid, newNextXid
///   dictionary: count, then per string (length, bytes) — element labels
///     and attribute names are interned per delta and referenced by id,
///     so a delta touching 40 <item> elements stores "item" once
///   deletes, inserts: count, then per op xid, parentXid, pos,
///     has-snapshot byte, snapshot subtree (pre-order: kind byte, then
///     for elements label id, xid, attribute count, (name id, value)*,
///     child count, children; for text leaves xid, bytes)
///   moves: count, then per op xid, fromParent, fromPos, toParent, toPos
///   updates: count, then per op xid, prefix, suffix, old bytes, new
///     bytes — the §7 compressed form (shared prefix/suffix lengths with
///     only the differing middles) carries over unchanged
///   attribute ops: count, then per op kind byte, element xid, name id,
///     and the values the XML form stores for that kind
///
/// The codec is lossless against the XML serialization: for every delta,
/// SerializeDelta(*DecodeDeltaBinary(EncodeDeltaBinary(d))) ==
/// SerializeDelta(d), byte for byte.
std::string EncodeDeltaBinary(const Delta& delta);

/// Strict decode of EncodeDeltaBinary output. Every read is bounds
/// checked and every varint must be canonical, so hostile or truncated
/// input yields Status kCorruption — never undefined behaviour. Snapshot
/// subtrees are built in the returned delta's snapshot arena.
///
/// `context` (optional, not owned) is checked cooperatively between op
/// groups and every stride of ops, so a huge (or hostile) delta under a
/// deadline returns kDeadlineExceeded/kCancelled instead of stalling a
/// Checkout; the partially decoded delta is discarded with the Result.
Result<Delta> DecodeDeltaBinary(std::string_view bytes,
                                const Context* context = nullptr);

/// True when `bytes` starts with the binary-delta magic. Distinguishes
/// codec files from legacy XML deltas (which start with '<') when the
/// store loads a mixed-format chain.
bool LooksLikeBinaryDelta(std::string_view bytes);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_CODEC_H_
