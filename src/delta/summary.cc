#include "delta/summary.h"

#include <sstream>
#include <unordered_map>

namespace xydiff {

namespace {

std::unordered_map<Xid, const XmlNode*> IndexByXid(const XmlDocument& doc) {
  std::unordered_map<Xid, const XmlNode*> index;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&](const XmlNode* n) { index.emplace(n->xid(), n); });
  }
  return index;
}

/// Truncates long text for display.
std::string Ellipsize(std::string_view text, size_t limit = 40) {
  if (text.size() <= limit) return std::string(text);
  return std::string(text.substr(0, limit - 3)) + "...";
}

/// 1-based ordinal of `node` among same-label element siblings, or 0 if
/// it is the only one.
size_t LabelOrdinal(const XmlNode& node) {
  const XmlNode* parent = node.parent();
  if (parent == nullptr || !node.is_element()) return 0;
  size_t ordinal = 0;
  size_t total = 0;
  for (size_t i = 0; i < parent->child_count(); ++i) {
    const XmlNode* sibling = parent->child(i);
    if (sibling->is_element() && sibling->label() == node.label()) {
      ++total;
      if (sibling == &node) ordinal = total;
    }
  }
  return total > 1 ? ordinal : 0;
}

class Explainer {
 public:
  Explainer(const XmlDocument& old_version, const XmlDocument& new_version)
      : old_index_(IndexByXid(old_version)),
        new_index_(IndexByXid(new_version)) {}

  Result<std::string> Run(const Delta& delta) {
    std::ostringstream os;
    for (const DeleteOp& op : delta.deletes()) {
      Result<const XmlNode*> node = Resolve(old_index_, op.xid, "delete");
      if (!node.ok()) return node.status();
      os << "deleted   " << Describe(**node) << " at " << NodePath(**node);
      if (op.subtree != nullptr && op.subtree->SubtreeSize() > 1) {
        os << " (" << op.subtree->SubtreeSize() << " nodes)";
      }
      os << "\n";
    }
    for (const InsertOp& op : delta.inserts()) {
      Result<const XmlNode*> node = Resolve(new_index_, op.xid, "insert");
      if (!node.ok()) return node.status();
      os << "inserted  " << Describe(**node) << " at " << NodePath(**node);
      if (op.subtree != nullptr && op.subtree->SubtreeSize() > 1) {
        os << " (" << op.subtree->SubtreeSize() << " nodes)";
      }
      os << "\n";
    }
    for (const MoveOp& op : delta.moves()) {
      Result<const XmlNode*> old_node = Resolve(old_index_, op.xid, "move");
      if (!old_node.ok()) return old_node.status();
      Result<const XmlNode*> new_node = Resolve(new_index_, op.xid, "move");
      if (!new_node.ok()) return new_node.status();
      os << "moved     " << Describe(**new_node) << " from "
         << NodePath(**old_node) << " to " << NodePath(**new_node) << "\n";
    }
    for (const UpdateOp& op : delta.updates()) {
      Result<const XmlNode*> old_node = Resolve(old_index_, op.xid, "update");
      if (!old_node.ok()) return old_node.status();
      os << "updated   " << NodePath(**old_node);
      if (op.is_compressed()) {
        os << ": \"..." << Ellipsize(op.old_value) << "...\" -> \"..."
           << Ellipsize(op.new_value) << "...\" (at byte " << op.prefix
           << ")";
      } else {
        os << ": \"" << Ellipsize(op.old_value) << "\" -> \""
           << Ellipsize(op.new_value) << "\"";
      }
      os << "\n";
    }
    for (const AttributeOp& op : delta.attribute_ops()) {
      Result<const XmlNode*> node =
          Resolve(new_index_, op.element_xid, "attribute op");
      if (!node.ok()) {
        node = Resolve(old_index_, op.element_xid, "attribute op");
        if (!node.ok()) return node.status();
      }
      os << "attribute " << NodePath(**node) << "/@" << op.name;
      switch (op.kind) {
        case AttributeOpKind::kInsert:
          os << " added = \"" << Ellipsize(op.new_value) << "\"";
          break;
        case AttributeOpKind::kDelete:
          os << " removed (was \"" << Ellipsize(op.old_value) << "\")";
          break;
        case AttributeOpKind::kUpdate:
          os << ": \"" << Ellipsize(op.old_value) << "\" -> \""
             << Ellipsize(op.new_value) << "\"";
          break;
      }
      os << "\n";
    }
    return os.str();
  }

 private:
  static Result<const XmlNode*> Resolve(
      const std::unordered_map<Xid, const XmlNode*>& index, Xid xid,
      const char* what) {
    auto it = index.find(xid);
    if (it == index.end()) {
      return Status::NotFound(std::string(what) +
                              " references unknown XID " +
                              std::to_string(xid));
    }
    return it->second;
  }

  static std::string Describe(const XmlNode& node) {
    if (node.is_text()) return "text \"" + Ellipsize(node.text(), 24) + "\"";
    std::string out = "<" + std::string(node.label()) + ">";
    // A short content hint: the first text descendant.
    const XmlNode* hint = nullptr;
    node.Visit([&](const XmlNode* n) {
      if (hint == nullptr && n->is_text()) hint = n;
    });
    if (hint != nullptr) out += " \"" + Ellipsize(hint->text(), 24) + "\"";
    return out;
  }

  std::unordered_map<Xid, const XmlNode*> old_index_;
  std::unordered_map<Xid, const XmlNode*> new_index_;
};

}  // namespace

std::string NodePath(const XmlNode& node) {
  if (node.is_text()) {
    return node.parent() != nullptr ? NodePath(*node.parent()) + "/text()"
                                    : "/text()";
  }
  std::string prefix =
      node.parent() != nullptr ? NodePath(*node.parent()) : "";
  std::string out = prefix + "/" + std::string(node.label());
  const size_t ordinal = LabelOrdinal(node);
  if (ordinal > 0) out += "[" + std::to_string(ordinal) + "]";
  return out;
}

Result<std::string> ExplainDelta(const Delta& delta,
                                 const XmlDocument& old_version,
                                 const XmlDocument& new_version) {
  Explainer explainer(old_version, new_version);
  return explainer.Run(delta);
}

}  // namespace xydiff
