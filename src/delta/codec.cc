#include "delta/codec.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace xydiff {

namespace {

constexpr char kMagic[4] = {'X', 'Y', 'D', 'B'};
constexpr uint8_t kFormatVersion = 1;

// Snapshot nesting accepted by the decoder; matches the XML parser's
// default max_depth, so any snapshot the system can parse round-trips.
constexpr size_t kMaxSnapshotDepth = 10000;

constexpr uint8_t kNodeElement = 0;
constexpr uint8_t kNodeText = 1;

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void AppendString(std::string* out, std::string_view s) {
  AppendVarint(out, s.size());
  out->append(s.data(), s.size());
}

/// Per-delta string interner for element labels and attribute names.
/// Ids are assigned in first-use order, which is also emission order, so
/// encode and decode agree without storing ids explicitly.
class DictBuilder {
 public:
  uint64_t Intern(std::string_view s) {
    auto [it, inserted] = ids_.try_emplace(s, strings_.size());
    if (inserted) strings_.push_back(s);
    return it->second;
  }

  const std::vector<std::string_view>& strings() const { return strings_; }

 private:
  std::unordered_map<std::string_view, uint64_t> ids_;
  std::vector<std::string_view> strings_;
};

void EncodeSnapshot(const XmlNode& node, DictBuilder* dict,
                    std::string* out) {
  if (node.is_element()) {
    out->push_back(static_cast<char>(kNodeElement));
    AppendVarint(out, dict->Intern(node.label()));
    AppendVarint(out, node.xid());
    AppendVarint(out, node.attributes().size());
    for (const XmlAttribute& attr : node.attributes()) {
      AppendVarint(out, dict->Intern(attr.name));
      AppendString(out, attr.value);
    }
    AppendVarint(out, node.child_count());
    for (size_t i = 0; i < node.child_count(); ++i) {
      EncodeSnapshot(*node.child(i), dict, out);
    }
  } else {
    out->push_back(static_cast<char>(kNodeText));
    AppendVarint(out, node.xid());
    AppendString(out, node.text());
  }
}

template <typename Op>
void EncodeSnapshotOps(const std::vector<Op>& ops, DictBuilder* dict,
                       std::string* out) {
  AppendVarint(out, ops.size());
  for (const Op& op : ops) {
    AppendVarint(out, op.xid);
    AppendVarint(out, op.parent_xid);
    AppendVarint(out, op.pos);
    out->push_back(op.subtree != nullptr ? 1 : 0);
    if (op.subtree != nullptr) EncodeSnapshot(*op.subtree, dict, out);
  }
}

/// Bounds-checked cursor over the input. Every primitive read either
/// succeeds inside the buffer or returns Corruption; nothing ever reads
/// past `data_`.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status ReadByte(uint8_t* out) {
    if (remaining() < 1) return Truncated("byte");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  /// Canonical LEB128: at most 10 bytes, no 64-bit overflow, and no
  /// padded encodings (a final zero group with more than one byte would
  /// make the wire form ambiguous — reject it as hostile input).
  Status ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      if (remaining() < 1) return Truncated("varint");
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      const uint64_t group = byte & 0x7f;
      if (shift == 63 && group > 1) {
        return Status::Corruption("binary delta: varint overflows 64 bits");
      }
      value |= group << shift;
      if ((byte & 0x80) == 0) {
        if (i > 0 && group == 0) {
          return Status::Corruption("binary delta: overlong varint");
        }
        *out = value;
        return Status::OK();
      }
      shift += 7;
    }
    return Status::Corruption("binary delta: varint longer than 10 bytes");
  }

  Status ReadString(std::string_view* out) {
    uint64_t size = 0;
    XYDIFF_RETURN_IF_ERROR(ReadVarint(&size));
    if (size > remaining()) return Truncated("string");
    *out = data_.substr(pos_, size);
    pos_ += size;
    return Status::OK();
  }

  /// An element count claimed by the input: each element costs at least
  /// one byte on the wire, so a count beyond the remaining bytes is
  /// corrupt — checked BEFORE any loop allocates.
  Status ReadCount(uint64_t* out) {
    XYDIFF_RETURN_IF_ERROR(ReadVarint(out));
    if (*out > remaining()) {
      return Status::Corruption("binary delta: count exceeds input size");
    }
    return Status::OK();
  }

  Status ReadU32(uint32_t* out, const char* what) {
    uint64_t value = 0;
    XYDIFF_RETURN_IF_ERROR(ReadVarint(&value));
    if (value > UINT32_MAX) {
      return Status::Corruption("binary delta: " + std::string(what) +
                                " out of range");
    }
    *out = static_cast<uint32_t>(value);
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption("binary delta truncated reading " +
                              std::string(what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status ReadDictId(Reader* reader, const std::vector<std::string_view>& dict,
                  std::string_view* out) {
  uint64_t id = 0;
  XYDIFF_RETURN_IF_ERROR(reader->ReadVarint(&id));
  if (id >= dict.size()) {
    return Status::Corruption("binary delta: dictionary id out of range");
  }
  *out = dict[id];
  return Status::OK();
}

// Iterative on purpose: decode depth is attacker-controlled (a few
// bytes of header per level), so recursion would let a small hostile
// buffer exhaust the stack long before the depth cap fired. The
// explicit stack holds one entry per open element instead.
Result<XmlNodePtr> DecodeSnapshot(Reader* reader,
                                  const std::vector<std::string_view>& dict,
                                  Arena* arena) {
  struct OpenElement {
    XmlNode* node;       // Element whose children are still arriving.
    uint64_t remaining;  // Children left to decode for it.
  };
  XmlNodePtr root;
  std::vector<OpenElement> open;
  for (;;) {
    uint8_t kind = 0;
    XYDIFF_RETURN_IF_ERROR(reader->ReadByte(&kind));
    XmlNodePtr node;
    uint64_t child_count = 0;
    if (kind == kNodeText) {
      uint64_t xid = 0;
      XYDIFF_RETURN_IF_ERROR(reader->ReadVarint(&xid));
      std::string_view text;
      XYDIFF_RETURN_IF_ERROR(reader->ReadString(&text));
      node = XmlNode::TextIn(arena, text);
      node->set_xid(xid);
    } else if (kind == kNodeElement) {
      std::string_view label;
      XYDIFF_RETURN_IF_ERROR(ReadDictId(reader, dict, &label));
      uint64_t xid = 0;
      XYDIFF_RETURN_IF_ERROR(reader->ReadVarint(&xid));
      node = XmlNode::ElementIn(arena, label);
      node->set_xid(xid);
      uint64_t attr_count = 0;
      XYDIFF_RETURN_IF_ERROR(reader->ReadCount(&attr_count));
      for (uint64_t i = 0; i < attr_count; ++i) {
        std::string_view name;
        XYDIFF_RETURN_IF_ERROR(ReadDictId(reader, dict, &name));
        std::string_view value;
        XYDIFF_RETURN_IF_ERROR(reader->ReadString(&value));
        node->SetAttribute(name, value);
      }
      XYDIFF_RETURN_IF_ERROR(reader->ReadCount(&child_count));
    } else {
      return Status::Corruption("binary delta: unknown snapshot node kind");
    }
    XmlNode* raw = node.get();
    if (open.empty()) {
      root = std::move(node);
    } else {
      --open.back().remaining;
      open.back().node->AppendChild(std::move(node));
    }
    if (child_count > 0) {
      if (open.size() >= kMaxSnapshotDepth) {
        return Status::Corruption("binary delta: snapshot nests too deeply");
      }
      open.push_back({raw, child_count});
      continue;
    }
    // A completed node may close any number of enclosing elements.
    while (!open.empty() && open.back().remaining == 0) open.pop_back();
    if (open.empty()) return root;
  }
}

template <typename Op>
Status DecodeSnapshotOps(Reader* reader,
                         const std::vector<std::string_view>& dict,
                         Arena* arena, DeadlineChecker* checkpoint,
                         std::vector<Op>* ops) {
  uint64_t count = 0;
  XYDIFF_RETURN_IF_ERROR(reader->ReadCount(&count));
  for (uint64_t i = 0; i < count; ++i) {
    XYDIFF_RETURN_IF_ERROR(checkpoint->Check());
    Op op;
    XYDIFF_RETURN_IF_ERROR(reader->ReadVarint(&op.xid));
    XYDIFF_RETURN_IF_ERROR(reader->ReadVarint(&op.parent_xid));
    XYDIFF_RETURN_IF_ERROR(reader->ReadU32(&op.pos, "pos"));
    uint8_t has_subtree = 0;
    XYDIFF_RETURN_IF_ERROR(reader->ReadByte(&has_subtree));
    if (has_subtree > 1) {
      return Status::Corruption("binary delta: bad snapshot flag");
    }
    if (has_subtree == 1) {
      Result<XmlNodePtr> subtree = DecodeSnapshot(reader, dict, arena);
      if (!subtree.ok()) return subtree.status();
      op.subtree = std::move(subtree.value());
    }
    ops->push_back(std::move(op));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeDeltaBinary(const Delta& delta) {
  // The dictionary must precede the ops on the wire but is discovered
  // while encoding them, so the op sections build in a separate buffer.
  DictBuilder dict;
  std::string body;
  EncodeSnapshotOps(delta.deletes(), &dict, &body);
  EncodeSnapshotOps(delta.inserts(), &dict, &body);
  AppendVarint(&body, delta.moves().size());
  for (const MoveOp& op : delta.moves()) {
    AppendVarint(&body, op.xid);
    AppendVarint(&body, op.from_parent);
    AppendVarint(&body, op.from_pos);
    AppendVarint(&body, op.to_parent);
    AppendVarint(&body, op.to_pos);
  }
  AppendVarint(&body, delta.updates().size());
  for (const UpdateOp& op : delta.updates()) {
    AppendVarint(&body, op.xid);
    AppendVarint(&body, op.prefix);
    AppendVarint(&body, op.suffix);
    AppendString(&body, op.old_value);
    AppendString(&body, op.new_value);
  }
  AppendVarint(&body, delta.attribute_ops().size());
  for (const AttributeOp& op : delta.attribute_ops()) {
    body.push_back(static_cast<char>(op.kind));
    AppendVarint(&body, op.element_xid);
    AppendVarint(&body, dict.Intern(op.name));
    // Mirror the XML form: each kind stores exactly the values
    // <xy:attr-*> carries, so decode+serialize stays byte-identical.
    switch (op.kind) {
      case AttributeOpKind::kInsert:
        AppendString(&body, op.new_value);
        break;
      case AttributeOpKind::kDelete:
        AppendString(&body, op.old_value);
        break;
      case AttributeOpKind::kUpdate:
        AppendString(&body, op.old_value);
        AppendString(&body, op.new_value);
        break;
    }
  }

  std::string out(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kFormatVersion));
  AppendVarint(&out, delta.old_next_xid());
  AppendVarint(&out, delta.new_next_xid());
  AppendVarint(&out, dict.strings().size());
  for (std::string_view s : dict.strings()) AppendString(&out, s);
  out += body;
  return out;
}

bool LooksLikeBinaryDelta(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         bytes.compare(0, sizeof(kMagic),
                       std::string_view(kMagic, sizeof(kMagic))) == 0;
}

Result<Delta> DecodeDeltaBinary(std::string_view bytes,
                                const Context* context) {
  // Snapshot subtrees make decode cost proportional to input size, not
  // op count, so the checker also runs inside the per-op loops.
  DeadlineChecker checkpoint(context);
  if (!LooksLikeBinaryDelta(bytes)) {
    return Status::Corruption("not a binary delta (bad magic)");
  }
  Reader reader(bytes.substr(sizeof(kMagic)));
  uint8_t version = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadByte(&version));
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported binary delta format version " +
                              std::to_string(version));
  }

  Delta delta;
  uint64_t old_next = 0, new_next = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&old_next));
  XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&new_next));
  delta.set_old_next_xid(old_next);
  delta.set_new_next_xid(new_next);

  uint64_t dict_count = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadCount(&dict_count));
  std::vector<std::string_view> dict;
  dict.reserve(dict_count);
  for (uint64_t i = 0; i < dict_count; ++i) {
    std::string_view s;
    XYDIFF_RETURN_IF_ERROR(reader.ReadString(&s));
    dict.push_back(s);
  }

  Arena* arena = delta.snapshot_arena();
  XYDIFF_RETURN_IF_ERROR(
      DecodeSnapshotOps(&reader, dict, arena, &checkpoint, &delta.deletes()));
  XYDIFF_RETURN_IF_ERROR(
      DecodeSnapshotOps(&reader, dict, arena, &checkpoint, &delta.inserts()));

  uint64_t move_count = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadCount(&move_count));
  for (uint64_t i = 0; i < move_count; ++i) {
    XYDIFF_RETURN_IF_ERROR(checkpoint.Check());
    MoveOp op;
    XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&op.xid));
    XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&op.from_parent));
    XYDIFF_RETURN_IF_ERROR(reader.ReadU32(&op.from_pos, "fromPos"));
    XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&op.to_parent));
    XYDIFF_RETURN_IF_ERROR(reader.ReadU32(&op.to_pos, "toPos"));
    delta.moves().push_back(op);
  }

  uint64_t update_count = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadCount(&update_count));
  for (uint64_t i = 0; i < update_count; ++i) {
    XYDIFF_RETURN_IF_ERROR(checkpoint.Check());
    UpdateOp op;
    XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&op.xid));
    XYDIFF_RETURN_IF_ERROR(reader.ReadU32(&op.prefix, "prefix"));
    XYDIFF_RETURN_IF_ERROR(reader.ReadU32(&op.suffix, "suffix"));
    std::string_view old_value, new_value;
    XYDIFF_RETURN_IF_ERROR(reader.ReadString(&old_value));
    XYDIFF_RETURN_IF_ERROR(reader.ReadString(&new_value));
    op.old_value = std::string(old_value);
    op.new_value = std::string(new_value);
    delta.updates().push_back(std::move(op));
  }

  uint64_t attr_count = 0;
  XYDIFF_RETURN_IF_ERROR(reader.ReadCount(&attr_count));
  for (uint64_t i = 0; i < attr_count; ++i) {
    AttributeOp op;
    uint8_t kind = 0;
    XYDIFF_RETURN_IF_ERROR(reader.ReadByte(&kind));
    if (kind > static_cast<uint8_t>(AttributeOpKind::kUpdate)) {
      return Status::Corruption("binary delta: bad attribute op kind");
    }
    op.kind = static_cast<AttributeOpKind>(kind);
    XYDIFF_RETURN_IF_ERROR(reader.ReadVarint(&op.element_xid));
    std::string_view name;
    XYDIFF_RETURN_IF_ERROR(ReadDictId(&reader, dict, &name));
    op.name = std::string(name);
    std::string_view old_value, new_value;
    switch (op.kind) {
      case AttributeOpKind::kInsert:
        XYDIFF_RETURN_IF_ERROR(reader.ReadString(&new_value));
        break;
      case AttributeOpKind::kDelete:
        XYDIFF_RETURN_IF_ERROR(reader.ReadString(&old_value));
        break;
      case AttributeOpKind::kUpdate:
        XYDIFF_RETURN_IF_ERROR(reader.ReadString(&old_value));
        XYDIFF_RETURN_IF_ERROR(reader.ReadString(&new_value));
        break;
    }
    op.old_value = std::string(old_value);
    op.new_value = std::string(new_value);
    delta.attribute_ops().push_back(std::move(op));
  }

  if (!reader.AtEnd()) {
    return Status::Corruption("binary delta has trailing bytes");
  }
  return delta;
}

}  // namespace xydiff
