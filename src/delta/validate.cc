#include "delta/validate.h"

#include <unordered_set>

namespace xydiff {

namespace {

Status Fail(const char* what, Xid xid) {
  return Status::Corruption(std::string(what) + " (XID " +
                            std::to_string(xid) + ")");
}

Status CheckSnapshot(const XmlNode* subtree, Xid op_xid, Xid new_next_xid,
                     bool check_allocator) {
  if (subtree == nullptr) {
    return Fail("snapshot-bearing operation without subtree", op_xid);
  }
  if (subtree->xid() != op_xid) {
    return Fail("snapshot root XID differs from operation XID", op_xid);
  }
  Status status = Status::OK();
  subtree->Visit([&](const XmlNode* n) {
    if (!status.ok()) return;
    if (n->xid() == kNoXid) {
      status = Fail("snapshot contains a node without XID", op_xid);
    } else if (check_allocator && new_next_xid != 0 &&
               n->xid() >= new_next_xid) {
      status = Fail("snapshot XID beyond the delta's new_next_xid", n->xid());
    }
  });
  return status;
}

}  // namespace

Status ValidateDelta(const Delta& delta) {
  // Targets that are detached (moves) or removed (deletes) must be
  // distinct; a node also cannot be both inserted and deleted.
  std::unordered_set<Xid> detached;
  for (const DeleteOp& op : delta.deletes()) {
    if (op.pos == 0) return Fail("delete with 0 position (1-based)", op.xid);
    XYDIFF_RETURN_IF_ERROR(
        CheckSnapshot(op.subtree.get(), op.xid, 0, /*check_allocator=*/false));
    if (!detached.insert(op.xid).second) {
      return Fail("node deleted or moved twice", op.xid);
    }
  }
  for (const MoveOp& op : delta.moves()) {
    if (op.xid == kNoXid) return Fail("move of the virtual root", op.xid);
    if (op.from_pos == 0 || op.to_pos == 0) {
      return Fail("move with 0 position (1-based)", op.xid);
    }
    if (!detached.insert(op.xid).second) {
      return Fail("node deleted or moved twice", op.xid);
    }
  }

  std::unordered_set<Xid> inserted;
  for (const InsertOp& op : delta.inserts()) {
    if (op.pos == 0) return Fail("insert with 0 position (1-based)", op.xid);
    XYDIFF_RETURN_IF_ERROR(CheckSnapshot(op.subtree.get(), op.xid,
                                         delta.new_next_xid(),
                                         /*check_allocator=*/true));
    Status status = Status::OK();
    op.subtree->Visit([&](const XmlNode* n) {
      if (!status.ok()) return;
      if (!inserted.insert(n->xid()).second) {
        status = Fail("XID inserted twice", n->xid());
      }
      if (detached.count(n->xid()) != 0) {
        status = Fail("XID both inserted and deleted/moved", n->xid());
      }
    });
    XYDIFF_RETURN_IF_ERROR(status);
  }

  std::unordered_set<Xid> updated;
  for (const UpdateOp& op : delta.updates()) {
    if (op.xid == kNoXid) return Fail("update without target", op.xid);
    if (!updated.insert(op.xid).second) {
      return Fail("node updated twice", op.xid);
    }
    if (op.old_value == op.new_value) {
      return Fail("update with identical old and new values", op.xid);
    }
  }

  std::unordered_set<uint64_t> attr_targets;
  for (const AttributeOp& op : delta.attribute_ops()) {
    if (op.element_xid == kNoXid) {
      return Fail("attribute op without target element", op.element_xid);
    }
    if (op.name.empty()) {
      return Fail("attribute op without attribute name", op.element_xid);
    }
    if (op.kind == AttributeOpKind::kUpdate && op.old_value == op.new_value) {
      return Fail("attribute update with identical values", op.element_xid);
    }
    const uint64_t key =
        op.element_xid * 1000003 + std::hash<std::string>{}(op.name);
    if (!attr_targets.insert(key).second) {
      return Fail("attribute changed twice on one element", op.element_xid);
    }
  }
  return Status::OK();
}

}  // namespace xydiff
