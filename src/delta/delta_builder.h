#ifndef XYDIFF_DELTA_DELTA_BUILDER_H_
#define XYDIFF_DELTA_DELTA_BUILDER_H_

#include "delta/diff_tree.h"
#include "delta/options.h"
#include "delta/delta.h"
#include "xml/document.h"

namespace xydiff {

/// Configuration for Phase 5 beyond the DiffOptions knobs.
struct DeltaBuildConfig {
  /// When true (the diff pipeline), matched nodes of the new document
  /// inherit the XID of their old partner and unmatched nodes receive
  /// fresh XIDs from the allocator, which is seeded past every XID of the
  /// old document. When false (delta composition), the new document's
  /// existing XIDs are respected untouched.
  bool assign_new_xids = true;
};

/// Phase 5 (§5.2): constructs the delta implied by the matching recorded
/// in the two trees.
///
/// * Unmatched old-document subtrees become `delete` operations (maximal
///   subtrees; matched descendants — which leave by `move` — are excised
///   from the snapshot, because moves are applied before deletes).
/// * Unmatched new-document subtrees become `insert` operations
///   symmetrically (moves into them are applied after the insert).
/// * Matched pairs whose parents do not correspond become `move`s; within
///   one parent, the complement of a maximum-weight order-preserving
///   subsequence of the common children becomes reordering `move`s.
/// * Matched text pairs with different content become `update`s; attribute
///   differences of matched elements become attribute operations.
///
/// Position fields are 1-based: source-document positions on deletes and
/// move origins, target-document positions on inserts and move
/// destinations. Together with the guarantee that non-moved children keep
/// their relative order, this makes the delta applicable in either
/// direction (apply.h, invert.h).
///
/// With `DiffOptions::detect_moves == false`, every would-be move is
/// first demoted to unmatched (cascading to descendants), producing a
/// delete+insert-only delta.
Delta BuildDeltaFromMatching(DiffTree* old_tree, DiffTree* new_tree,
                             XmlDocument* old_doc, XmlDocument* new_doc,
                             const DiffOptions& options,
                             const DeltaBuildConfig& config = {});

}  // namespace xydiff

#endif  // XYDIFF_DELTA_DELTA_BUILDER_H_
