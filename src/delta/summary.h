#ifndef XYDIFF_DELTA_SUMMARY_H_
#define XYDIFF_DELTA_SUMMARY_H_

#include <string>

#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Human-readable change reports (§2 "Learning about changes": the diff
/// "allows to update the old version Vi and also to explain the changes
/// to the user", in the spirit of ICE).

/// Absolute element path of a node, with 1-based sibling ordinals among
/// same-label siblings, e.g. "/Category/Product[2]/Price". Text nodes
/// render as their parent's path plus "/text()".
std::string NodePath(const XmlNode& node);

/// Renders `delta` as one English line per operation, resolving XIDs
/// against the two versions it connects. Lines are ordered: deletions,
/// insertions, moves, updates, attribute changes. Returns an error if
/// the documents do not correspond to the delta (unknown XIDs).
Result<std::string> ExplainDelta(const Delta& delta,
                                 const XmlDocument& old_version,
                                 const XmlDocument& new_version);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_SUMMARY_H_
