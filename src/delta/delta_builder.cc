#include "delta/delta_builder.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "delta/lcs.h"

namespace xydiff {

namespace {

/// True when the matched pair (i1, i2) sits under corresponding parents
/// (both roots, or parents matched to each other).
bool ParentsCorrespond(const DiffTree& t1, const DiffTree& t2, NodeIndex i1,
                       NodeIndex i2) {
  const NodeIndex p1 = t1.parent(i1);
  const NodeIndex p2 = t2.parent(i2);
  if (p1 == kInvalidNode || p2 == kInvalidNode) {
    return p1 == kInvalidNode && p2 == kInvalidNode;
  }
  return t1.match(p1) == p2;
}

/// For each matched element pair, finds the children kept in the same
/// parent, and marks the complement of the maximum-weight order-preserving
/// subsequence as reordering moves. Returns, via `moved`, a flag per
/// new-tree node. `moved` must already contain the inter-parent moves.
void MarkReorderMoves(const DiffTree& t1, const DiffTree& t2,
                      const DiffOptions& options, std::vector<char>* moved) {
  std::vector<NodeIndex> common_new;  // Reused buffers.
  std::vector<size_t> values;
  std::vector<double> weights;
  for (NodeIndex i2 = 0; i2 < t2.size(); ++i2) {
    if (!t2.matched(i2) || !t2.is_element(i2)) continue;
    const NodeIndex i1 = t2.match(i2);
    common_new.clear();
    // Children of i1 (old order) matched into the same parent i2 and not
    // already moving between parents.
    for (int32_t k = 0; k < t1.child_count(i1); ++k) {
      const NodeIndex c1 = t1.child(i1, k);
      if (!t1.matched(c1)) continue;
      const NodeIndex c2 = t1.match(c1);
      if (t2.parent(c2) != i2) continue;
      common_new.push_back(c2);
    }
    if (common_new.size() <= 1) continue;
    values.clear();
    weights.clear();
    for (NodeIndex c2 : common_new) {
      values.push_back(static_cast<size_t>(t2.position_in_parent(c2)));
      weights.push_back(std::max(t2.weight(c2), 1e-9));
    }
    const std::vector<size_t> kept =
        options.lops_window > 0
            ? WindowedLis(values, weights, options.lops_window)
            : WeightedLis(values, weights);
    std::vector<char> in_lis(common_new.size(), 0);
    for (size_t k : kept) in_lis[k] = 1;
    for (size_t k = 0; k < common_new.size(); ++k) {
      if (!in_lis[k]) (*moved)[static_cast<size_t>(common_new[k])] = 1;
    }
  }
}

/// Ablation support: removes every matching that would require a move,
/// cascading so the final matching is parent-consistent and
/// order-preserving. Matches only ever shrink, so this terminates.
void DropMoveMatchings(DiffTree* t1, DiffTree* t2,
                       const DiffOptions& options) {
  for (;;) {
    bool changed = false;
    // Parent consistency, top-down so parents settle before children.
    for (NodeIndex i2 = 0; i2 < t2->size(); ++i2) {
      if (!t2->matched(i2)) continue;
      const NodeIndex i1 = t2->match(i2);
      if (!ParentsCorrespond(*t1, *t2, i1, i2)) {
        t1->set_match(i1, kInvalidNode);
        t2->set_match(i2, kInvalidNode);
        changed = true;
      }
    }
    // Intra-parent order.
    std::vector<char> moved(static_cast<size_t>(t2->size()), 0);
    MarkReorderMoves(*t1, *t2, options, &moved);
    for (NodeIndex i2 = 0; i2 < t2->size(); ++i2) {
      if (moved[static_cast<size_t>(i2)] && t2->matched(i2)) {
        t1->set_match(t2->match(i2), kInvalidNode);
        t2->set_match(i2, kInvalidNode);
        changed = true;
      }
    }
    if (!changed) return;
  }
}

/// Clones the subtree rooted at `i1` into the delta's snapshot arena,
/// excising maximal matched subtrees (they leave by move before the
/// delete is applied / arrive by move after the insert is applied).
XmlNodePtr SnapshotUnmatched(const DiffTree& t, NodeIndex i, Arena* arena) {
  const XmlNode& dom = *t.dom(i);
  XmlNodePtr copy = dom.is_element() ? XmlNode::ElementIn(arena, dom.label())
                                     : XmlNode::TextIn(arena, dom.text());
  if (dom.is_element()) {
    for (const auto& attr : dom.attributes()) {
      copy->SetAttribute(attr.name, attr.value);
    }
  }
  copy->set_xid(dom.xid());
  for (int32_t k = 0; k < t.child_count(i); ++k) {
    const NodeIndex c = t.child(i, k);
    if (t.matched(c)) continue;  // Leaves/arrives via its own move.
    copy->AppendChild(SnapshotUnmatched(t, c, arena));
  }
  return copy;
}

/// Builds a text UpdateOp, optionally in the compressed form: shared
/// prefix/suffix bytes are trimmed (backing off to UTF-8 sequence
/// boundaries so the delta stays valid UTF-8).
UpdateOp MakeUpdateOp(Xid xid, std::string_view old_text,
                      std::string_view new_text, bool compress) {
  UpdateOp op;
  op.xid = xid;
  if (!compress) {
    op.old_value = old_text;
    op.new_value = new_text;
    return op;
  }
  const auto is_continuation = [](char c) {
    return (static_cast<unsigned char>(c) & 0xC0) == 0x80;
  };
  size_t prefix = 0;
  const size_t max_prefix = std::min(old_text.size(), new_text.size());
  while (prefix < max_prefix && old_text[prefix] == new_text[prefix]) {
    ++prefix;
  }
  while (prefix > 0 && prefix < old_text.size() &&
         is_continuation(old_text[prefix])) {
    --prefix;  // Do not split a multi-byte sequence.
  }
  size_t suffix = 0;
  const size_t max_suffix = max_prefix - prefix;
  while (suffix < max_suffix &&
         old_text[old_text.size() - 1 - suffix] ==
             new_text[new_text.size() - 1 - suffix]) {
    ++suffix;
  }
  while (suffix > 0 && is_continuation(old_text[old_text.size() - suffix])) {
    --suffix;
  }
  op.prefix = static_cast<uint32_t>(prefix);
  op.suffix = static_cast<uint32_t>(suffix);
  op.old_value = old_text.substr(prefix, old_text.size() - prefix - suffix);
  op.new_value = new_text.substr(prefix, new_text.size() - prefix - suffix);
  return op;
}

Xid ParentXid(const DiffTree& t, NodeIndex i) {
  const NodeIndex p = t.parent(i);
  return p == kInvalidNode ? kNoXid : t.dom(p)->xid();
}

/// 1-based position of node `i` among its parent's children; 1 for roots
/// (the document root is child 1 of the virtual super-root).
uint32_t Pos1(const DiffTree& t, NodeIndex i) {
  if (t.parent(i) == kInvalidNode) return 1;
  return static_cast<uint32_t>(t.position_in_parent(i)) + 1;
}

void EmitAttributeOps(const XmlNode& old_node, const XmlNode& new_node,
                      Delta* delta) {
  for (const auto& attr : old_node.attributes()) {
    const std::string_view* new_value = new_node.FindAttribute(attr.name);
    if (new_value == nullptr) {
      delta->attribute_ops().push_back(
          {AttributeOpKind::kDelete, old_node.xid(), std::string(attr.name),
           std::string(attr.value), std::string()});
    } else if (*new_value != attr.value) {
      delta->attribute_ops().push_back(
          {AttributeOpKind::kUpdate, old_node.xid(), std::string(attr.name),
           std::string(attr.value), std::string(*new_value)});
    }
  }
  for (const auto& attr : new_node.attributes()) {
    if (old_node.FindAttribute(attr.name) == nullptr) {
      delta->attribute_ops().push_back(
          {AttributeOpKind::kInsert, old_node.xid(), std::string(attr.name),
           std::string(), std::string(attr.value)});
    }
  }
}

}  // namespace

Delta BuildDeltaFromMatching(DiffTree* old_tree, DiffTree* new_tree,
                             XmlDocument* old_doc, XmlDocument* new_doc,
                             const DiffOptions& options,
                             const DeltaBuildConfig& config) {
  DiffTree& t1 = *old_tree;
  DiffTree& t2 = *new_tree;

  if (!options.detect_moves) {
    DropMoveMatchings(&t1, &t2, options);
  }

  Delta delta;
  delta.set_old_next_xid(old_doc->next_xid());

  // --- XID assignment on the new document -----------------------------------
  if (config.assign_new_xids) {
    new_doc->set_next_xid(old_doc->next_xid());
    // Matched nodes inherit; fresh XIDs go out in postorder for stability.
    for (NodeIndex i2 : t2.postorder()) {
      if (t2.matched(i2)) {
        t2.dom(i2)->set_xid(t1.dom(t2.match(i2))->xid());
      } else {
        t2.dom(i2)->set_xid(new_doc->AllocateXid());
      }
    }
  }
  delta.set_new_next_xid(new_doc->next_xid());

  // --- Moves -----------------------------------------------------------------
  std::vector<char> moved(static_cast<size_t>(t2.size()), 0);
  if (options.detect_moves) {
    for (NodeIndex i2 = 0; i2 < t2.size(); ++i2) {
      if (t2.matched(i2) && !ParentsCorrespond(t1, t2, t2.match(i2), i2)) {
        moved[static_cast<size_t>(i2)] = 1;
      }
    }
    MarkReorderMoves(t1, t2, options, &moved);
    size_t move_count = 0;
    for (char m : moved) move_count += static_cast<size_t>(m);
    delta.moves().reserve(move_count);
    for (NodeIndex i2 = 0; i2 < t2.size(); ++i2) {
      if (!moved[static_cast<size_t>(i2)]) continue;
      const NodeIndex i1 = t2.match(i2);
      delta.moves().push_back(MoveOp{t1.dom(i1)->xid(), ParentXid(t1, i1),
                                     Pos1(t1, i1), ParentXid(t2, i2),
                                     Pos1(t2, i2)});
    }
  }

  // --- Deletes (maximal unmatched old subtrees) -------------------------------
  const auto count_maximal_unmatched = [](const DiffTree& t) {
    size_t count = 0;
    for (NodeIndex i = 0; i < t.size(); ++i) {
      if (t.matched(i)) continue;
      const NodeIndex p = t.parent(i);
      if (p == kInvalidNode || t.matched(p)) ++count;
    }
    return count;
  };
  delta.deletes().reserve(count_maximal_unmatched(t1));
  for (NodeIndex i1 = 0; i1 < t1.size(); ++i1) {
    if (t1.matched(i1)) continue;
    const NodeIndex p1 = t1.parent(i1);
    if (p1 != kInvalidNode && !t1.matched(p1)) continue;  // Not maximal.
    delta.deletes().emplace_back(
        t1.dom(i1)->xid(), ParentXid(t1, i1), Pos1(t1, i1),
        SnapshotUnmatched(t1, i1, delta.snapshot_arena()));
  }

  // --- Inserts (maximal unmatched new subtrees) --------------------------------
  delta.inserts().reserve(count_maximal_unmatched(t2));
  for (NodeIndex i2 = 0; i2 < t2.size(); ++i2) {
    if (t2.matched(i2)) continue;
    const NodeIndex p2 = t2.parent(i2);
    if (p2 != kInvalidNode && !t2.matched(p2)) continue;
    delta.inserts().emplace_back(
        t2.dom(i2)->xid(), ParentXid(t2, i2), Pos1(t2, i2),
        SnapshotUnmatched(t2, i2, delta.snapshot_arena()));
  }

  // --- Updates and attribute operations ----------------------------------------
  for (NodeIndex i2 = 0; i2 < t2.size(); ++i2) {
    if (!t2.matched(i2)) continue;
    const NodeIndex i1 = t2.match(i2);
    const XmlNode& old_dom = *t1.dom(i1);
    const XmlNode& new_dom = *t2.dom(i2);
    if (t2.is_text(i2)) {
      if (old_dom.text() != new_dom.text()) {
        delta.updates().push_back(MakeUpdateOp(old_dom.xid(), old_dom.text(),
                                               new_dom.text(),
                                               options.compress_updates));
      }
    } else {
      EmitAttributeOps(old_dom, new_dom, &delta);
    }
  }

  return delta;
}

}  // namespace xydiff
