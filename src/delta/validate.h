#ifndef XYDIFF_DELTA_VALIDATE_H_
#define XYDIFF_DELTA_VALIDATE_H_

#include "delta/delta.h"
#include "util/status.h"

namespace xydiff {

/// Structural validation of a delta, independent of any document.
///
/// Catches the classes of corruption a delta can accumulate in storage or
/// transit before it is applied to real data:
///  * duplicate targets: the same XID deleted, moved or inserted twice,
///    or updated twice;
///  * missing or inconsistent snapshots: delete/insert ops without a
///    subtree, or whose subtree root XID differs from the op's `xid`;
///  * unassigned XIDs (kNoXid) anywhere inside a snapshot;
///  * positions that are not 1-based;
///  * attribute operations without a name, or with old == new values on
///    an update;
///  * allocator bookkeeping that contradicts the operations (an inserted
///    node's XID at or beyond `new_next_xid`).
///
/// Application (apply.h) additionally verifies the delta against the
/// concrete document; ValidateDelta is the cheap document-free gate.
Status ValidateDelta(const Delta& delta);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_VALIDATE_H_
