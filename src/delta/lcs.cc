#include "delta/lcs.h"

#include <algorithm>
#include <cassert>

#include "util/fenwick.h"

namespace xydiff {

std::vector<size_t> WeightedLis(const std::vector<size_t>& values,
                                const std::vector<double>& weights) {
  assert(values.size() == weights.size());
  const size_t n = values.size();
  if (n == 0) return {};

  // Compress values to a dense range (callers usually pass positions that
  // are already dense, but composition with windowing may not).
  std::vector<size_t> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  auto rank = [&](size_t v) {
    return static_cast<size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
  };

  // Fenwick over (best chain weight, element index), keyed by value rank.
  using Entry = std::pair<double, int64_t>;
  FenwickMax<Entry> best(n, Entry{0.0, -1});
  std::vector<double> chain(n);
  std::vector<int64_t> prev(n, -1);
  double best_total = 0.0;
  int64_t best_end = -1;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = rank(values[i]);
    const Entry e = best.MaxPrefix(r);  // Strictly smaller values only.
    chain[i] = weights[i] + (e.second >= 0 ? e.first : 0.0);
    prev[i] = e.second;
    best.Update(r, Entry{chain[i], static_cast<int64_t>(i)});
    if (chain[i] > best_total) {
      best_total = chain[i];
      best_end = static_cast<int64_t>(i);
    }
  }

  std::vector<size_t> out;
  for (int64_t i = best_end; i >= 0; i = prev[static_cast<size_t>(i)]) {
    out.push_back(static_cast<size_t>(i));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<size_t> WindowedLis(const std::vector<size_t>& values,
                                const std::vector<double>& weights,
                                size_t window) {
  assert(window > 0);
  const size_t n = values.size();
  std::vector<size_t> out;
  size_t last_value = 0;
  bool have_last = false;
  for (size_t start = 0; start < n; start += window) {
    const size_t end = std::min(start + window, n);
    std::vector<size_t> block_values(values.begin() + static_cast<ptrdiff_t>(start),
                                     values.begin() + static_cast<ptrdiff_t>(end));
    std::vector<double> block_weights(weights.begin() + static_cast<ptrdiff_t>(start),
                                      weights.begin() + static_cast<ptrdiff_t>(end));
    const std::vector<size_t> kept = WeightedLis(block_values, block_weights);
    // Merge: keep only elements that continue the global increase.
    for (size_t k : kept) {
      const size_t index = start + k;
      if (!have_last || values[index] > last_value) {
        out.push_back(index);
        last_value = values[index];
        have_last = true;
      }
    }
  }
  return out;
}

std::vector<std::pair<size_t, size_t>> LongestCommonSubsequence(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
    const Context* context) {
  const size_t n = a.size();
  const size_t m = b.size();
  // Classic DP table; fine for the baseline's child lists.
  std::vector<std::vector<uint32_t>> dp(n + 1,
                                        std::vector<uint32_t>(m + 1, 0));
  // One check per DP row: a row is m cells of trivial work, so the
  // deadline is seen within ~m token comparisons without the clock
  // showing up in the profile.
  DeadlineChecker checkpoint(context, /*stride=*/1);
  for (size_t i = n; i-- > 0;) {
    if (!checkpoint.Check().ok()) return {};
    for (size_t j = m; j-- > 0;) {
      dp[i][j] = (a[i] == b[j]) ? dp[i + 1][j + 1] + 1
                                : std::max(dp[i + 1][j], dp[i][j + 1]);
    }
  }
  std::vector<std::pair<size_t, size_t>> out;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      out.emplace_back(i, j);
      ++i;
      ++j;
    } else if (dp[i + 1][j] >= dp[i][j + 1]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

}  // namespace xydiff
