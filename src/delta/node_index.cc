#include "delta/node_index.h"

#include <algorithm>

namespace xydiff {

namespace {

/// Sorts, dedups, and pairs the wanted XIDs with null nodes.
void Prepare(std::vector<Xid>* xids,
             std::vector<std::pair<Xid, const XmlNode*>>* entries) {
  std::sort(xids->begin(), xids->end());
  xids->erase(std::unique(xids->begin(), xids->end()), xids->end());
  entries->reserve(xids->size());
  for (Xid xid : *xids) entries->emplace_back(xid, nullptr);
}

/// One walk filling every wanted entry (binary search per node — the
/// wanted set is tiny next to the document).
void Fill(const XmlDocument& doc,
          std::vector<std::pair<Xid, const XmlNode*>>* entries) {
  if (entries->empty() || doc.root() == nullptr) return;
  doc.root()->Visit([entries](const XmlNode* n) {
    auto it = std::lower_bound(
        entries->begin(), entries->end(), n->xid(),
        [](const auto& entry, Xid xid) { return entry.first < xid; });
    if (it != entries->end() && it->first == n->xid()) it->second = n;
  });
}

}  // namespace

DeltaNodeIndex DeltaNodeIndex::Build(const Delta& delta,
                                     const XmlDocument& old_version,
                                     const XmlDocument& new_version) {
  DeltaNodeIndex index;
  std::vector<Xid> old_xids;
  std::vector<Xid> new_xids;
  for (const DeleteOp& op : delta.deletes()) old_xids.push_back(op.xid);
  for (const UpdateOp& op : delta.updates()) {
    old_xids.push_back(op.xid);
    new_xids.push_back(op.xid);
  }
  for (const InsertOp& op : delta.inserts()) new_xids.push_back(op.xid);
  for (const MoveOp& op : delta.moves()) new_xids.push_back(op.xid);
  for (const AttributeOp& op : delta.attribute_ops()) {
    new_xids.push_back(op.element_xid);
  }
  Prepare(&old_xids, &index.old_nodes_);
  Prepare(&new_xids, &index.new_nodes_);
  Fill(old_version, &index.old_nodes_);
  Fill(new_version, &index.new_nodes_);
  return index;
}

const XmlNode* DeltaNodeIndex::Find(const Entries& entries, Xid xid) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), xid,
      [](const auto& entry, Xid want) { return entry.first < want; });
  return it != entries.end() && it->first == xid ? it->second : nullptr;
}

}  // namespace xydiff
