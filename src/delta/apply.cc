#include "delta/apply.h"

#include <algorithm>
#include <unordered_map>

#include "delta/invert.h"
#include "xid/xid_map.h"
#include "xml/xid_map_tree.h"

namespace xydiff {

namespace {

/// One pending attachment: an insert snapshot or a detached moved subtree.
struct Attachment {
  Xid parent_xid = kNoXid;
  uint32_t pos = 0;  // 1-based target position.
  XmlNodePtr subtree;
  uint64_t seq = 0;  // Stable tiebreak for diagnostics.
};

class Applier {
 public:
  Applier(const Delta& delta, XmlDocument* doc, const ApplyOptions& options)
      : delta_(delta), doc_(doc), options_(options) {}

  Status Run() {
    if (doc_->root() == nullptr) {
      return Status::InvalidArgument("cannot apply a delta to an empty document");
    }
    // Virtual super-root (XID 0) so root replacement needs no special case.
    // It is created in the document's own memory domain: a heap super-root
    // over an arena-backed tree would force AppendChild to adoption-clone
    // the entire document.
    doc_domain_ = doc_->arena();
    super_root_ = doc_domain_ != nullptr
                      ? XmlNode::ElementIn(doc_domain_, "#document")
                      : XmlNode::Element("#document");
    super_root_->AppendChild(doc_->take_root());
    BuildIndex();

    Status status = RunPhases();
    if (!status.ok()) {
      // Best-effort restore: the tree may be partially modified (that is
      // documented), but the document must not be left empty.
      if (super_root_->child_count() > 0) {
        doc_->set_root(super_root_->RemoveChild(0));
      }
      return status;
    }

    if (super_root_->child_count() != 1) {
      const size_t roots = super_root_->child_count();
      if (roots > 0) doc_->set_root(super_root_->RemoveChild(0));
      return Status::Corruption("delta left the document with " +
                                std::to_string(roots) + " roots");
    }
    doc_->set_root(super_root_->RemoveChild(0));
    doc_->ReserveXidsThrough(
        delta_.new_next_xid() > 0 ? delta_.new_next_xid() - 1 : 0);
    return Status::OK();
  }

 private:
  Status RunPhases() {
    XYDIFF_RETURN_IF_ERROR(ApplyUpdates());
    XYDIFF_RETURN_IF_ERROR(ApplyAttributeOps());
    XYDIFF_RETURN_IF_ERROR(DetachMoves());
    XYDIFF_RETURN_IF_ERROR(ApplyDeletes());
    return Attach();
  }

 private:
  void BuildIndex() {
    index_.clear();
    super_root_->Visit([&](XmlNode* n) {
      if (n != super_root_.get()) index_.emplace(n->xid(), n);
    });
  }

  Result<XmlNode*> Lookup(Xid xid, const char* what) {
    if (xid == kNoXid) return static_cast<XmlNode*>(super_root_.get());
    auto it = index_.find(xid);
    if (it == index_.end()) {
      return Status::NotFound(std::string(what) + ": no node with XID " +
                              std::to_string(xid));
    }
    return it->second;
  }

  Status ApplyUpdates() {
    for (const UpdateOp& op : delta_.updates()) {
      Result<XmlNode*> node = Lookup(op.xid, "update");
      if (!node.ok()) return node.status();
      if (!(*node)->is_text()) {
        return Status::Conflict("update target XID " + std::to_string(op.xid) +
                                " is not a text node");
      }
      const std::string_view current = (*node)->text();
      if (!op.is_compressed()) {
        if (options_.verify && current != op.old_value) {
          return Status::Conflict("update of XID " + std::to_string(op.xid) +
                                  ": old value mismatch");
        }
        (*node)->set_text(op.new_value);
        continue;
      }
      // Compressed form: splice the new middle between the shared prefix
      // and suffix taken from the current text.
      const size_t kept = static_cast<size_t>(op.prefix) + op.suffix;
      if (current.size() != kept + op.old_value.size() ||
          (options_.verify &&
           current.compare(op.prefix, op.old_value.size(), op.old_value) !=
               0)) {
        return Status::Conflict("compressed update of XID " +
                                std::to_string(op.xid) +
                                ": old value mismatch");
      }
      std::string next;
      next.reserve(kept + op.new_value.size());
      next.append(current, 0, op.prefix);
      next.append(op.new_value);
      next.append(current, current.size() - op.suffix, op.suffix);
      (*node)->set_text(std::move(next));
    }
    return Status::OK();
  }

  Status ApplyAttributeOps() {
    for (const AttributeOp& op : delta_.attribute_ops()) {
      Result<XmlNode*> node = Lookup(op.element_xid, "attribute op");
      if (!node.ok()) return node.status();
      XmlNode* element = *node;
      if (!element->is_element()) {
        return Status::Conflict("attribute op target XID " +
                                std::to_string(op.element_xid) +
                                " is not an element");
      }
      const std::string_view* current = element->FindAttribute(op.name);
      switch (op.kind) {
        case AttributeOpKind::kInsert:
          if (options_.verify && current != nullptr) {
            return Status::Conflict("attribute insert: '" + op.name +
                                    "' already present on XID " +
                                    std::to_string(op.element_xid));
          }
          element->SetAttribute(op.name, op.new_value);
          break;
        case AttributeOpKind::kDelete:
          if (options_.verify &&
              (current == nullptr || *current != op.old_value)) {
            return Status::Conflict("attribute delete: '" + op.name +
                                    "' state mismatch on XID " +
                                    std::to_string(op.element_xid));
          }
          element->RemoveAttribute(op.name);
          break;
        case AttributeOpKind::kUpdate:
          if (options_.verify &&
              (current == nullptr || *current != op.old_value)) {
            return Status::Conflict("attribute update: '" + op.name +
                                    "' old value mismatch on XID " +
                                    std::to_string(op.element_xid));
          }
          element->SetAttribute(op.name, op.new_value);
          break;
      }
    }
    return Status::OK();
  }

  /// Detaches a node from wherever it currently lives (main tree or
  /// inside an already-detached subtree).
  static XmlNodePtr Detach(XmlNode* node) {
    XmlNode* parent = node->parent();
    return parent->RemoveChild(node->IndexInParent());
  }

  Status DetachMoves() {
    for (const MoveOp& op : delta_.moves()) {
      Result<XmlNode*> node = Lookup(op.xid, "move");
      if (!node.ok()) return node.status();
      if ((*node)->parent() == nullptr) {
        return Status::Conflict("move source XID " + std::to_string(op.xid) +
                                " detached twice");
      }
      attachments_.push_back(Attachment{op.to_parent, op.to_pos,
                                        Detach(*node), seq_++});
    }
    return Status::OK();
  }

  Status ApplyDeletes() {
    for (const DeleteOp& op : delta_.deletes()) {
      Result<XmlNode*> node = Lookup(op.xid, "delete");
      if (!node.ok()) return node.status();
      if ((*node)->parent() == nullptr) {
        return Status::Conflict("delete target XID " + std::to_string(op.xid) +
                                " already detached");
      }
      XmlNodePtr removed = Detach(*node);
      if (options_.verify && op.subtree != nullptr) {
        if (!removed->DeepEquals(*op.subtree) ||
            XidMapFromSubtree(*removed) != XidMapFromSubtree(*op.subtree)) {
          return Status::Conflict("delete of XID " + std::to_string(op.xid) +
                                  ": subtree does not match snapshot");
        }
      }
      removed->Visit([&](const XmlNode* n) { index_.erase(n->xid()); });
    }
    return Status::OK();
  }

  Status Attach() {
    for (const InsertOp& op : delta_.inserts()) {
      if (op.subtree == nullptr) {
        return Status::InvalidArgument("insert op without subtree snapshot");
      }
      // Clone straight into the document's domain: InsertChild must not
      // adoption-clone later, or the pointers registered in index_ below
      // would dangle.
      XmlNodePtr subtree = op.subtree->Clone(doc_domain_);
      // Register the new nodes so that nested attachments can target them.
      Status conflict = Status::OK();
      subtree->Visit([&](XmlNode* n) {
        auto [it, inserted] = index_.emplace(n->xid(), n);
        (void)it;  // Only the insertion outcome matters here.
        if (!inserted && conflict.ok() && options_.verify) {
          conflict = Status::Conflict("insert introduces duplicate XID " +
                                      std::to_string(n->xid()));
        }
      });
      XYDIFF_RETURN_IF_ERROR(conflict);
      attachments_.push_back(
          Attachment{op.parent_xid, op.pos, std::move(subtree), seq_++});
    }

    // Ascending target position within each parent reproduces the target
    // child order (non-moved siblings keep their relative order).
    std::sort(attachments_.begin(), attachments_.end(),
              [](const Attachment& a, const Attachment& b) {
                if (a.parent_xid != b.parent_xid) {
                  return a.parent_xid < b.parent_xid;
                }
                if (a.pos != b.pos) return a.pos < b.pos;
                return a.seq < b.seq;
              });
    for (auto& attachment : attachments_) {
      Result<XmlNode*> parent = Lookup(attachment.parent_xid, "attach");
      if (!parent.ok()) return parent.status();
      if (!(*parent)->is_element()) {
        return Status::Conflict("attach parent XID " +
                                std::to_string(attachment.parent_xid) +
                                " is not an element");
      }
      if (attachment.pos == 0 ||
          static_cast<size_t>(attachment.pos) >
              (*parent)->child_count() + 1) {
        if (options_.verify && !options_.clamp_positions) {
          return Status::Conflict(
              "attach position " + std::to_string(attachment.pos) +
              " out of range under XID " +
              std::to_string(attachment.parent_xid));
        }
      }
      const size_t index =
          attachment.pos == 0
              ? 0
              : std::min<size_t>(attachment.pos - 1, (*parent)->child_count());
      (*parent)->InsertChild(index, std::move(attachment.subtree));
    }
    return Status::OK();
  }

  const Delta& delta_;
  XmlDocument* doc_;
  ApplyOptions options_;
  XmlNodePtr super_root_;
  Arena* doc_domain_ = nullptr;
  std::unordered_map<Xid, XmlNode*> index_;
  std::vector<Attachment> attachments_;
  uint64_t seq_ = 0;
};

}  // namespace

Status ApplyDelta(const Delta& delta, XmlDocument* doc,
                  const ApplyOptions& options) {
  Applier applier(delta, doc, options);
  return applier.Run();
}

Status ApplyDeltaInverse(const Delta& delta, XmlDocument* doc,
                         const ApplyOptions& options) {
  return ApplyDelta(InvertDelta(delta), doc, options);
}

Status DeltaPathApplicator::Push(const Delta& delta, bool inverse) {
  ApplyOptions options;
  options.verify = false;
  ++applications_;
  return inverse ? ApplyDeltaInverse(delta, &doc_, options)
                 : ApplyDelta(delta, &doc_, options);
}

}  // namespace xydiff
