#ifndef XYDIFF_DELTA_COMPOSE_H_
#define XYDIFF_DELTA_COMPOSE_H_

#include "delta/options.h"
#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Builds the delta from `*from` to `*to` implied by persistent
/// identification: nodes bearing the same XID in both documents are
/// matched (provided they have the same kind and label). Both documents
/// must already carry XIDs; no fresh XIDs are assigned.
///
/// This is the aggregation primitive of the change model ([19], §4): the
/// changes between any two versions of a document follow directly from
/// their XIDs, without re-running the matching heuristics.
Result<Delta> DeltaFromXidCorrespondence(XmlDocument* from, XmlDocument* to,
                                         const DiffOptions& options = {});

/// Composes two consecutive deltas: given `base` (the version `d1`
/// applies to), returns a single delta equivalent to applying `d1` then
/// `d2` — `apply(result, base) == apply(d2, apply(d1, base))`, including
/// persistent identifiers. Cancellation falls out naturally: composing a
/// delta with its inverse yields an empty delta.
Result<Delta> ComposeDeltas(const XmlDocument& base, const Delta& d1,
                            const Delta& d2, const DiffOptions& options = {});

}  // namespace xydiff

#endif  // XYDIFF_DELTA_COMPOSE_H_
