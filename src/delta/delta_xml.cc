#include "delta/delta_xml.h"

#include "util/string_util.h"
#include "xid/xid_map.h"
#include "xml/xid_map_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

constexpr std::string_view kDeltaLabel = "xy:delta";
constexpr std::string_view kDeleteLabel = "xy:delete";
constexpr std::string_view kInsertLabel = "xy:insert";
constexpr std::string_view kMoveLabel = "xy:move";
constexpr std::string_view kUpdateLabel = "xy:update";
constexpr std::string_view kOldLabel = "xy:old";
constexpr std::string_view kNewLabel = "xy:new";
constexpr std::string_view kAttrInsertLabel = "xy:attr-insert";
constexpr std::string_view kAttrDeleteLabel = "xy:attr-delete";
constexpr std::string_view kAttrUpdateLabel = "xy:attr-update";

void SetXidAttr(XmlNode* node, std::string_view name, Xid xid) {
  node->SetAttribute(name, std::to_string(xid));
}

Result<Xid> GetXidAttr(const XmlNode& node, std::string_view name) {
  const std::string_view* value = node.FindAttribute(name);
  if (value == nullptr) {
    return Status::ParseError("delta op <" + std::string(node.label()) +
                              "> missing attribute '" + std::string(name) +
                              "'");
  }
  uint64_t xid = 0;
  if (!ParseUint64(*value, &xid)) {
    return Status::ParseError("delta op <" + std::string(node.label()) +
                              ">: bad '" + std::string(name) + "' value '" +
                              std::string(*value) + "'");
  }
  return xid;
}

Result<uint32_t> GetPosAttr(const XmlNode& node, std::string_view name) {
  Result<Xid> value = GetXidAttr(node, name);
  if (!value.ok()) return value.status();
  if (*value > UINT32_MAX) {
    return Status::ParseError("delta op <" + std::string(node.label()) +
                              ">: '" + std::string(name) + "' out of range");
  }
  return static_cast<uint32_t>(*value);
}

/// Emits a delete/insert op element with its snapshot and XID-map.
XmlNodePtr SnapshotOpToXml(std::string_view label, Xid xid, Xid parent_xid,
                           uint32_t pos, const XmlNode* subtree) {
  auto op = XmlNode::Element(label);
  SetXidAttr(op.get(), "xid", xid);
  SetXidAttr(op.get(), "parentXid", parent_xid);
  op->SetAttribute("pos", std::to_string(pos));
  if (subtree != nullptr) {
    op->SetAttribute("xidMap", XidMapFromSubtree(*subtree).ToString());
    op->AppendChild(subtree->Clone());
  }
  return op;
}

/// Text payload of a wrapper like <xy:old>: the concatenated text of its
/// children ("" when empty).
std::string TextPayload(const XmlNode& wrapper) {
  std::string out;
  for (size_t i = 0; i < wrapper.child_count(); ++i) {
    if (wrapper.child(i)->is_text()) out += wrapper.child(i)->text();
  }
  return out;
}

/// Finds the single snapshot child of a delete/insert op element,
/// tolerating surrounding whitespace-only text from pretty printing.
Result<const XmlNode*> SnapshotChild(const XmlNode& op) {
  const XmlNode* snapshot = nullptr;
  for (size_t i = 0; i < op.child_count(); ++i) {
    const XmlNode* c = op.child(i);
    if (c->is_text() && op.child_count() > 1 &&
        IsAllXmlWhitespace(c->text())) {
      continue;
    }
    if (snapshot != nullptr) {
      return Status::ParseError("delta op <" + std::string(op.label()) +
                                "> has more than one snapshot child");
    }
    snapshot = c;
  }
  if (snapshot == nullptr) {
    return Status::ParseError("delta op <" + std::string(op.label()) +
                              "> is missing its snapshot");
  }
  return snapshot;
}

Result<XmlNodePtr> ParseSnapshot(const XmlNode& op) {
  Result<const XmlNode*> child = SnapshotChild(op);
  if (!child.ok()) return child.status();
  XmlNodePtr subtree = (*child)->Clone();
  const std::string_view* map_text = op.FindAttribute("xidMap");
  if (map_text != nullptr) {
    Result<XidMap> map = XidMap::Parse(*map_text);
    if (!map.ok()) return map.status();
    XYDIFF_RETURN_IF_ERROR(ApplyXidMapToSubtree(*map, subtree.get()));
  }
  return subtree;
}

Result<AttributeOp> ParseAttrOp(const XmlNode& node, AttributeOpKind kind) {
  AttributeOp op;
  op.kind = kind;
  Result<Xid> xid = GetXidAttr(node, "xid");
  if (!xid.ok()) return xid.status();
  op.element_xid = *xid;
  const std::string_view* name = node.FindAttribute("name");
  if (name == nullptr) {
    return Status::ParseError("attribute op missing 'name'");
  }
  op.name = *name;
  auto read = [&](std::string_view attr, std::string* out) {
    const std::string_view* v = node.FindAttribute(attr);
    if (v != nullptr) *out = *v;
  };
  switch (kind) {
    case AttributeOpKind::kInsert:
      read("value", &op.new_value);
      break;
    case AttributeOpKind::kDelete:
      read("value", &op.old_value);
      break;
    case AttributeOpKind::kUpdate:
      read("old", &op.old_value);
      read("new", &op.new_value);
      break;
  }
  return op;
}

}  // namespace

XmlDocument DeltaToXml(const Delta& delta) {
  auto root = XmlNode::Element(kDeltaLabel);
  SetXidAttr(root.get(), "oldNextXid", delta.old_next_xid());
  SetXidAttr(root.get(), "newNextXid", delta.new_next_xid());

  for (const DeleteOp& op : delta.deletes()) {
    root->AppendChild(SnapshotOpToXml(kDeleteLabel, op.xid, op.parent_xid,
                                      op.pos, op.subtree.get()));
  }
  for (const InsertOp& op : delta.inserts()) {
    root->AppendChild(SnapshotOpToXml(kInsertLabel, op.xid, op.parent_xid,
                                      op.pos, op.subtree.get()));
  }
  for (const MoveOp& op : delta.moves()) {
    auto move = XmlNode::Element(kMoveLabel);
    SetXidAttr(move.get(), "xid", op.xid);
    SetXidAttr(move.get(), "fromParent", op.from_parent);
    move->SetAttribute("fromPos", std::to_string(op.from_pos));
    SetXidAttr(move.get(), "toParent", op.to_parent);
    move->SetAttribute("toPos", std::to_string(op.to_pos));
    root->AppendChild(std::move(move));
  }
  for (const UpdateOp& op : delta.updates()) {
    auto update = XmlNode::Element(kUpdateLabel);
    SetXidAttr(update.get(), "xid", op.xid);
    if (op.prefix != 0) {
      update->SetAttribute("prefix", std::to_string(op.prefix));
    }
    if (op.suffix != 0) {
      update->SetAttribute("suffix", std::to_string(op.suffix));
    }
    auto old_node = XmlNode::Element(kOldLabel);
    if (!op.old_value.empty()) {
      old_node->AppendChild(XmlNode::Text(op.old_value));
    }
    auto new_node = XmlNode::Element(kNewLabel);
    if (!op.new_value.empty()) {
      new_node->AppendChild(XmlNode::Text(op.new_value));
    }
    update->AppendChild(std::move(old_node));
    update->AppendChild(std::move(new_node));
    root->AppendChild(std::move(update));
  }
  for (const AttributeOp& op : delta.attribute_ops()) {
    std::string_view label;
    switch (op.kind) {
      case AttributeOpKind::kInsert: label = kAttrInsertLabel; break;
      case AttributeOpKind::kDelete: label = kAttrDeleteLabel; break;
      case AttributeOpKind::kUpdate: label = kAttrUpdateLabel; break;
    }
    auto attr = XmlNode::Element(label);
    SetXidAttr(attr.get(), "xid", op.element_xid);
    attr->SetAttribute("name", op.name);
    switch (op.kind) {
      case AttributeOpKind::kInsert:
        attr->SetAttribute("value", op.new_value);
        break;
      case AttributeOpKind::kDelete:
        attr->SetAttribute("value", op.old_value);
        break;
      case AttributeOpKind::kUpdate:
        attr->SetAttribute("old", op.old_value);
        attr->SetAttribute("new", op.new_value);
        break;
    }
    root->AppendChild(std::move(attr));
  }
  return XmlDocument(std::move(root));
}

std::string SerializeDelta(const Delta& delta, bool pretty) {
  const XmlDocument doc = DeltaToXml(delta);
  if (!pretty) return SerializeDocument(doc);
  // Pretty form: one compact operation per line. Snapshots must stay
  // byte-exact (indentation inside them would change the character data),
  // so only the op list is laid out, never op contents.
  const XmlNode& root = *doc.root();
  std::string out = "<";
  out += root.label();
  for (const auto& attr : root.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    out += EscapeAttribute(attr.value);
    out += '"';
  }
  if (root.child_count() == 0) {
    out += "/>\n";
    return out;
  }
  out += ">\n";
  for (size_t i = 0; i < root.child_count(); ++i) {
    out += "  ";
    out += SerializeNode(*root.child(i));
    out += '\n';
  }
  out += "</";
  out += root.label();
  out += ">\n";
  return out;
}

Result<Delta> DeltaFromXml(const XmlDocument& doc) {
  const XmlNode* root = doc.root();
  if (root == nullptr || root->label() != kDeltaLabel) {
    return Status::ParseError("not a delta document (expected <xy:delta>)");
  }
  Delta delta;
  {
    Result<Xid> old_next = GetXidAttr(*root, "oldNextXid");
    if (!old_next.ok()) return old_next.status();
    delta.set_old_next_xid(*old_next);
    Result<Xid> new_next = GetXidAttr(*root, "newNextXid");
    if (!new_next.ok()) return new_next.status();
    delta.set_new_next_xid(*new_next);
  }

  for (size_t i = 0; i < root->child_count(); ++i) {
    const XmlNode& op = *root->child(i);
    if (op.is_text()) {
      if (IsAllXmlWhitespace(op.text())) continue;
      return Status::ParseError("unexpected text inside <xy:delta>");
    }
    const std::string_view label = op.label();
    if (label == kDeleteLabel || label == kInsertLabel) {
      Result<Xid> xid = GetXidAttr(op, "xid");
      if (!xid.ok()) return xid.status();
      Result<Xid> parent = GetXidAttr(op, "parentXid");
      if (!parent.ok()) return parent.status();
      Result<uint32_t> pos = GetPosAttr(op, "pos");
      if (!pos.ok()) return pos.status();
      Result<XmlNodePtr> subtree = ParseSnapshot(op);
      if (!subtree.ok()) return subtree.status();
      if (label == kDeleteLabel) {
        delta.deletes().emplace_back(*xid, *parent, *pos,
                                     std::move(subtree.value()));
      } else {
        delta.inserts().emplace_back(*xid, *parent, *pos,
                                     std::move(subtree.value()));
      }
    } else if (label == kMoveLabel) {
      MoveOp move;
      Result<Xid> xid = GetXidAttr(op, "xid");
      if (!xid.ok()) return xid.status();
      move.xid = *xid;
      Result<Xid> from_parent = GetXidAttr(op, "fromParent");
      if (!from_parent.ok()) return from_parent.status();
      move.from_parent = *from_parent;
      Result<uint32_t> from_pos = GetPosAttr(op, "fromPos");
      if (!from_pos.ok()) return from_pos.status();
      move.from_pos = *from_pos;
      Result<Xid> to_parent = GetXidAttr(op, "toParent");
      if (!to_parent.ok()) return to_parent.status();
      move.to_parent = *to_parent;
      Result<uint32_t> to_pos = GetPosAttr(op, "toPos");
      if (!to_pos.ok()) return to_pos.status();
      move.to_pos = *to_pos;
      delta.moves().push_back(move);
    } else if (label == kUpdateLabel) {
      UpdateOp update;
      Result<Xid> xid = GetXidAttr(op, "xid");
      if (!xid.ok()) return xid.status();
      update.xid = *xid;
      if (op.FindAttribute("prefix") != nullptr) {
        Result<uint32_t> prefix = GetPosAttr(op, "prefix");
        if (!prefix.ok()) return prefix.status();
        update.prefix = *prefix;
      }
      if (op.FindAttribute("suffix") != nullptr) {
        Result<uint32_t> suffix = GetPosAttr(op, "suffix");
        if (!suffix.ok()) return suffix.status();
        update.suffix = *suffix;
      }
      bool saw_old = false;
      bool saw_new = false;
      for (size_t k = 0; k < op.child_count(); ++k) {
        const XmlNode& c = *op.child(k);
        if (c.is_text()) continue;
        if (c.label() == kOldLabel) {
          update.old_value = TextPayload(c);
          saw_old = true;
        } else if (c.label() == kNewLabel) {
          update.new_value = TextPayload(c);
          saw_new = true;
        }
      }
      if (!saw_old || !saw_new) {
        return Status::ParseError("<xy:update> missing <xy:old>/<xy:new>");
      }
      delta.updates().push_back(std::move(update));
    } else if (label == kAttrInsertLabel) {
      Result<AttributeOp> attr = ParseAttrOp(op, AttributeOpKind::kInsert);
      if (!attr.ok()) return attr.status();
      delta.attribute_ops().push_back(std::move(*attr));
    } else if (label == kAttrDeleteLabel) {
      Result<AttributeOp> attr = ParseAttrOp(op, AttributeOpKind::kDelete);
      if (!attr.ok()) return attr.status();
      delta.attribute_ops().push_back(std::move(*attr));
    } else if (label == kAttrUpdateLabel) {
      Result<AttributeOp> attr = ParseAttrOp(op, AttributeOpKind::kUpdate);
      if (!attr.ok()) return attr.status();
      delta.attribute_ops().push_back(std::move(*attr));
    } else {
      return Status::ParseError("unknown delta operation <" +
                                std::string(label) + ">");
    }
  }
  return delta;
}

Result<Delta> ParseDelta(std::string_view text) {
  ParseOptions options;
  options.keep_whitespace_text = true;
  Result<XmlDocument> doc = ParseXml(text, options);
  if (!doc.ok()) return doc.status();
  return DeltaFromXml(*doc);
}

}  // namespace xydiff
