#ifndef XYDIFF_DELTA_MERGE_H_
#define XYDIFF_DELTA_MERGE_H_

#include <string>
#include <vector>

#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Three-way merge of concurrent deltas — §2 "Learning about changes":
/// "different users may modify the same XML document off-line, and later
/// want to synchronize their respective versions. The diff algorithm
/// could be used to detect and describe the modifications in order to
/// detect conflicts and solve some of them" (the CVS analogy, [26]).
///
/// Given a base version and two deltas that each apply to it, the merge
/// keeps `ours` in full, takes every `theirs` operation that does not
/// collide with `ours`, reports the collisions as conflicts, and
/// deduplicates operations both sides performed identically.

/// Why a `theirs` operation was rejected.
enum class MergeConflictKind {
  kUpdateUpdate,    ///< Both sides rewrote the same text differently.
  kAttrAttr,        ///< Both sides changed the same attribute differently.
  kMoveMove,        ///< Both sides moved the same node to different places.
  kDeleteTouched,   ///< Theirs deletes a subtree ours modified inside.
  kTouchedDeleted,  ///< Theirs modifies a node ours deleted.
};

const char* MergeConflictKindName(MergeConflictKind kind);

struct MergeConflict {
  MergeConflictKind kind = MergeConflictKind::kUpdateUpdate;
  Xid xid = kNoXid;         ///< The contested node.
  std::string description;  ///< Human-readable explanation.
};

struct MergeResult {
  XmlDocument merged;  ///< base + ours + the accepted part of theirs.
  std::vector<MergeConflict> conflicts;
  size_t theirs_applied = 0;  ///< `theirs` ops merged in.
  size_t theirs_dropped_duplicates = 0;  ///< Identical on both sides.

  bool clean() const { return conflicts.empty(); }
};

/// Merges `theirs` into `ours` over `base`. Both deltas must apply to
/// `base` (same XIDs). Sibling positions of accepted `theirs` insertions
/// and moves are taken from `theirs`' target document and clamped into
/// the merged child lists: when both sides add children under one parent
/// the interleaving is deterministic but arbitrary — position is not
/// considered a conflict, matching the paper's observation that deltas
/// for a given matching differ only in sibling ordering choices.
Result<MergeResult> ThreeWayMerge(const XmlDocument& base, const Delta& ours,
                                  const Delta& theirs);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_MERGE_H_
