#ifndef XYDIFF_DELTA_NODE_INDEX_H_
#define XYDIFF_DELTA_NODE_INDEX_H_

#include <utility>
#include <vector>

#include "delta/delta.h"
#include "util/annotations.h"
#include "xml/document.h"

namespace xydiff {

/// Resolves the nodes a delta's operations name, once, for every
/// delta consumer.
///
/// The warehouse ingest path feeds one (delta, old version, new
/// version) triple to three consumers — incremental full-text index,
/// alerter, change statistics — and each used to build its own full
/// XID→node hash map over both documents: up to six O(n) walks with a
/// hash insert per node, for deltas that usually touch a handful of
/// nodes. This index instead collects exactly the XIDs the delta's
/// operations reference, then fills them with ONE walk per document
/// into a small sorted vector; a delta without operations on a side
/// skips that side's walk entirely.
///
/// The index is a snapshot over borrowed documents: it must not outlive
/// them, and mutating either tree invalidates it.
class DeltaNodeIndex {
 public:
  DeltaNodeIndex() = default;

  /// Builds the index for `delta` between the two versions it connects.
  /// Old-side XIDs: delete roots and update targets. New-side XIDs:
  /// insert roots, update targets, move targets, attribute owners.
  static DeltaNodeIndex Build(const Delta& delta,
                              const XmlDocument& old_version,
                              const XmlDocument& new_version);

  /// The old-version node with `xid`, or nullptr if the delta never
  /// referenced it on that side (or the document does not contain it).
  const XmlNode* old_node(Xid xid) const
      XY_ARENA_BOUND("old document") { return Find(old_nodes_, xid); }
  /// Likewise for the new version.
  const XmlNode* new_node(Xid xid) const
      XY_ARENA_BOUND("new document") { return Find(new_nodes_, xid); }

 private:
  using Entries = std::vector<std::pair<Xid, const XmlNode*>>;

  static const XmlNode* Find(const Entries& entries, Xid xid)
      XY_ARENA_BOUND("indexed document");

  Entries old_nodes_;  // Sorted by XID.
  Entries new_nodes_;  // Sorted by XID.
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_NODE_INDEX_H_
