#ifndef XYDIFF_DELTA_DELTA_XML_H_
#define XYDIFF_DELTA_DELTA_XML_H_

#include <string>
#include <string_view>

#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Deltas are themselves XML documents (§2: "Since the diff output is
/// stored as an XML document, namely a delta, such queries are regular
/// queries over documents"). The format follows the paper's examples:
///
///   <xy:delta oldNextXid="16" newNextXid="21">
///     <xy:delete xid="7" parentXid="8" pos="1" xidMap="(3-7)">
///       <Product><Name>tx123</Name><Price>$499</Price></Product>
///     </xy:delete>
///     <xy:insert xid="20" parentXid="14" pos="1" xidMap="(16-20)">...</xy:insert>
///     <xy:move xid="13" fromParent="14" fromPos="1" toParent="8" toPos="1"/>
///     <xy:update xid="11"><xy:old>$799</xy:old><xy:new>$699</xy:new></xy:update>
///     <xy:attr-update xid="5" name="status" old="a" new="b"/>
///   </xy:delta>
///
/// Subtree snapshots carry their XID-maps (postorder XID lists) so that
/// persistent identification survives storage.

/// Converts the delta into its XML document form.
XmlDocument DeltaToXml(const Delta& delta);

/// Serializes the delta to XML text. The compact (non-pretty) form
/// round-trips exactly through ParseDelta.
std::string SerializeDelta(const Delta& delta, bool pretty = false);

/// Reconstructs a delta from its XML document form.
Result<Delta> DeltaFromXml(const XmlDocument& doc);

/// Parses a delta from XML text.
Result<Delta> ParseDelta(std::string_view text);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_DELTA_XML_H_
