#include "delta/signature.h"

#include <cmath>
#include <vector>

namespace xydiff {

namespace {

// Type tags keep a text node "abc" from colliding with an element <abc/>.
constexpr Signature kTextSeed = 0x74657874;     // "text"
constexpr Signature kElementSeed = 0x656C656D;  // "elem"

Signature AttributeSetHash(const XmlNode& node) {
  // XOR of per-attribute hashes: commutative, because attribute order is
  // irrelevant in XML (§5.2 "Other XML features").
  Signature acc = 0;
  for (const auto& attr : node.attributes()) {
    Signature a = HashBytes(attr.name, /*seed=*/0x61747472);  // "attr"
    a = HashCombine(a, HashBytes(attr.value));
    acc ^= HashFinalize(a);
  }
  return acc;
}

Signature TextSignature(const XmlNode& node) {
  return HashFinalize(HashBytes(node.text(), kTextSeed));
}

Signature ElementSignatureFromParts(const XmlNode& node,
                                    Signature children_acc) {
  Signature acc = HashBytes(node.label(), kElementSeed);
  acc = HashCombine(acc, AttributeSetHash(node));
  acc = HashCombine(acc, children_acc);
  return HashFinalize(acc);
}

}  // namespace

void ComputeSignaturesAndWeights(DiffTree* tree, const DiffOptions& options) {
  // Labels repeat heavily (a handful of element names per document), so
  // the label part of every element hash is computed once per distinct
  // label id instead of once per node. The resulting signature values are
  // identical to hashing the label bytes in place.
  std::vector<Signature> label_hash(tree->labels().size(), 0);
  std::vector<char> label_hash_ready(label_hash.size(), 0);
  for (NodeIndex i : tree->postorder()) {
    const XmlNode& dom = *tree->dom(i);
    if (tree->is_text(i)) {
      tree->set_signature(i, TextSignature(dom));
      const double len = static_cast<double>(dom.text().size());
      tree->set_weight(i, options.text_log_weight ? 1.0 + std::log(1.0 + len)
                                                  : 1.0);
    } else {
      Signature children_acc = 0;
      double weight = 1.0;
      for (int32_t k = 0; k < tree->child_count(i); ++k) {
        const NodeIndex c = tree->child(i, k);
        children_acc = HashCombine(children_acc, tree->signature(c));
        weight += tree->weight(c);
      }
      Signature acc;
      const size_t id = static_cast<size_t>(tree->label(i));
      if (id < label_hash.size()) {
        if (!label_hash_ready[id]) {
          label_hash[id] = HashBytes(dom.label(), kElementSeed);
          label_hash_ready[id] = 1;
        }
        acc = label_hash[id];
      } else {
        acc = HashBytes(dom.label(), kElementSeed);
      }
      acc = HashCombine(acc, AttributeSetHash(dom));
      acc = HashCombine(acc, children_acc);
      tree->set_signature(i, HashFinalize(acc));
      tree->set_weight(i, weight);
    }
  }
}

Signature SubtreeSignature(const XmlNode& node) {
  if (node.is_text()) return TextSignature(node);
  Signature children_acc = 0;
  for (size_t k = 0; k < node.child_count(); ++k) {
    children_acc = HashCombine(children_acc, SubtreeSignature(*node.child(k)));
  }
  return ElementSignatureFromParts(node, children_acc);
}

}  // namespace xydiff
