#ifndef XYDIFF_DELTA_OPERATION_H_
#define XYDIFF_DELTA_OPERATION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/node.h"

namespace xydiff {

/// Elementary operations of the change model (§4, after [19]). A delta is
/// a *set* of these; positions always refer to positions in the source
/// document (deletes, move sources) or in the target document (inserts,
/// move destinations), 1-based as in the paper's examples. The operations
/// are "completed": they carry enough redundancy (snapshots, old values)
/// that a delta can be applied in either direction.

/// Update of a text node's character data. The element-attribute analogue
/// is AttributeOp.
///
/// Two storage forms:
///  * full (prefix == suffix == 0): `old_value`/`new_value` are the
///    complete texts — the paper's completed-delta representation;
///  * compressed (`DiffOptions::compress_updates`): the texts share
///    `prefix` leading and `suffix` trailing bytes which are *not*
///    stored; `old_value`/`new_value` hold only the differing middles,
///    spliced against the document at application time. Both directions
///    remain recoverable, so inversion stays syntactic.
struct UpdateOp {
  Xid xid = kNoXid;        ///< The text node.
  std::string old_value;   ///< Source content (or its differing middle).
  std::string new_value;   ///< Target content (or its differing middle).
  uint32_t prefix = 0;     ///< Shared leading bytes not stored.
  uint32_t suffix = 0;     ///< Shared trailing bytes not stored.

  bool is_compressed() const { return prefix != 0 || suffix != 0; }

  bool operator==(const UpdateOp&) const = default;
};

/// Attribute change on a matched element. Attributes have no XIDs of
/// their own (§5.2 "Other XML features"): they are addressed by owning
/// element and name.
enum class AttributeOpKind { kInsert, kDelete, kUpdate };

struct AttributeOp {
  AttributeOpKind kind = AttributeOpKind::kUpdate;
  Xid element_xid = kNoXid;
  std::string name;
  std::string old_value;  ///< Empty for kInsert.
  std::string new_value;  ///< Empty for kDelete.

  bool operator==(const AttributeOp&) const = default;
};

/// Deletion of a whole subtree. The snapshot is the subtree *after* every
/// moved-away descendant has been detached (moves are applied before
/// deletes), and carries the nodes' XIDs so the inverse insert restores
/// persistent identity.
struct DeleteOp {
  Xid xid = kNoXid;         ///< Root of the deleted subtree.
  Xid parent_xid = kNoXid;  ///< Its parent in the source document.
  uint32_t pos = 0;         ///< 1-based child position in the source document.
  XmlNodePtr subtree;  ///< Snapshot with XIDs.

  DeleteOp() = default;
  DeleteOp(Xid xid_in, Xid parent, uint32_t pos_in,
           XmlNodePtr tree)
      : xid(xid_in), parent_xid(parent), pos(pos_in), subtree(std::move(tree)) {}
  DeleteOp(DeleteOp&&) = default;
  DeleteOp& operator=(DeleteOp&&) = default;

  DeleteOp Clone() const {
    return DeleteOp(xid, parent_xid, pos, subtree ? subtree->Clone() : nullptr);
  }
};

/// Insertion of a whole subtree; mirror image of DeleteOp. The snapshot
/// excludes moved-in descendants (moves are applied after inserts).
struct InsertOp {
  Xid xid = kNoXid;         ///< Root of the inserted subtree.
  Xid parent_xid = kNoXid;  ///< Its parent in the target document.
  uint32_t pos = 0;         ///< 1-based child position in the target document.
  XmlNodePtr subtree;  ///< Snapshot with XIDs.

  InsertOp() = default;
  InsertOp(Xid xid_in, Xid parent, uint32_t pos_in,
           XmlNodePtr tree)
      : xid(xid_in), parent_xid(parent), pos(pos_in), subtree(std::move(tree)) {}
  InsertOp(InsertOp&&) = default;
  InsertOp& operator=(InsertOp&&) = default;

  InsertOp Clone() const {
    return InsertOp(xid, parent_xid, pos, subtree ? subtree->Clone() : nullptr);
  }
};

/// Move of a node (with whatever subtree it carries at application time):
/// `move(m, n, o, p, q)` of the paper — node `o` moves from being the
/// n-th child of m to being the q-th child of p. Also used for pure
/// reorderings within one parent (then from_parent == to_parent).
struct MoveOp {
  Xid xid = kNoXid;
  Xid from_parent = kNoXid;
  uint32_t from_pos = 0;  ///< 1-based position in the source document.
  Xid to_parent = kNoXid;
  uint32_t to_pos = 0;    ///< 1-based position in the target document.

  bool operator==(const MoveOp&) const = default;
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_OPERATION_H_
