#include "delta/delta.h"

namespace xydiff {

Delta Delta::Clone() const {
  Delta copy;
  copy.deletes_.reserve(deletes_.size());
  for (const auto& op : deletes_) copy.deletes_.push_back(op.Clone());
  copy.inserts_.reserve(inserts_.size());
  for (const auto& op : inserts_) copy.inserts_.push_back(op.Clone());
  copy.moves_ = moves_;
  copy.updates_ = updates_;
  copy.attribute_ops_ = attribute_ops_;
  copy.old_next_xid_ = old_next_xid_;
  copy.new_next_xid_ = new_next_xid_;
  return copy;
}

size_t Delta::snapshot_node_count() const {
  size_t n = 0;
  for (const auto& op : deletes_) {
    if (op.subtree) n += op.subtree->SubtreeSize();
  }
  for (const auto& op : inserts_) {
    if (op.subtree) n += op.subtree->SubtreeSize();
  }
  return n;
}

}  // namespace xydiff
