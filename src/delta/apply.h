#ifndef XYDIFF_DELTA_APPLY_H_
#define XYDIFF_DELTA_APPLY_H_

#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Application configuration.
struct ApplyOptions {
  /// Verify that deleted subtrees match their snapshots, that updates see
  /// the recorded old value, and that attribute operations see the
  /// recorded old state. Catches deltas applied to the wrong version.
  bool verify = true;

  /// Accept attach positions beyond the current child count by clamping
  /// to the end instead of failing. Used by the three-way merge, where a
  /// concurrent delta may have shrunk a child list the positions were
  /// computed against.
  bool clamp_positions = false;
};

/// Applies `delta` to `*doc`, transforming it from the delta's source
/// version into its target version (§4).
///
/// A delta is a *set* of operations; application imposes the canonical
/// order that makes the set semantics well-defined:
///   1. text updates and attribute operations (addressed by XID);
///   2. detach every moved subtree (by XID, wherever it currently lives —
///      including inside other detached subtrees);
///   3. detach every deleted subtree and check it against its snapshot
///      (moved-away descendants are already gone, matching the snapshot);
///   4. attach inserted snapshots and moved subtrees at their recorded
///      (parent XID, target position), in ascending position order per
///      parent — non-moved siblings keep their relative order, so
///      ascending attachment reproduces the target child sequence exactly.
/// The document root is handled through a virtual super-root (XID 0,
/// position 1), so even a full root replacement is just ops.
///
/// On success the document's XID allocator advances to the delta's
/// new-version state. On failure the document may be partially modified;
/// apply to a clone when that matters.
Status ApplyDelta(const Delta& delta, XmlDocument* doc,
                  const ApplyOptions& options = {});

/// Applies the inverse of `delta` (target version -> source version).
/// Equivalent to `ApplyDelta(InvertDelta(delta), doc)` without
/// materializing the inverse.
Status ApplyDeltaInverse(const Delta& delta, XmlDocument* doc,
                         const ApplyOptions& options = {});

/// Piecewise application of a path of consecutive deltas, after the
/// piecewise applicator of monotone's xdelta: one working document is
/// threaded through the whole path instead of materializing every
/// intermediate version as its own tree. Used by the version store's
/// reconstruction (version/repository.h), whose checkpoint + skip-delta
/// plan is exactly such a path.
///
/// Per-step verification is off: the store proves chain integrity when
/// it loads (CRC-64 per file plus a chain replay on any degradation),
/// and re-checking every snapshot at every hop would cost more than the
/// application itself. Apply the path to a throwaway clone when a step
/// may legitimately fail.
class DeltaPathApplicator {
 public:
  /// Starts from `base` — the version at the beginning of the path.
  explicit DeltaPathApplicator(XmlDocument base) : doc_(std::move(base)) {}

  DeltaPathApplicator(const DeltaPathApplicator&) = delete;
  DeltaPathApplicator& operator=(const DeltaPathApplicator&) = delete;

  /// Applies one more delta of the path (inverted when `inverse`).
  Status Push(const Delta& delta, bool inverse = false);

  /// Number of delta applications performed so far.
  size_t applications() const { return applications_; }

  /// Hands back the document at the end of the path.
  XmlDocument Finish() && { return std::move(doc_); }

 private:
  XmlDocument doc_;
  size_t applications_ = 0;
};

}  // namespace xydiff

#endif  // XYDIFF_DELTA_APPLY_H_
