#ifndef XYDIFF_DELTA_LCS_H_
#define XYDIFF_DELTA_LCS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/context.h"

namespace xydiff {

/// Weighted largest order-preserving subsequence (§5.2 Phase 5, "Local
/// moves"): given children matched across two versions of the same parent,
/// find the maximum-weight subset that keeps its relative order, so that
/// only the complement needs `move` operations ("an optimal set of moves").
///
/// `values[i]` is the position of element i in the *other* ordering (all
/// distinct); `weights[i]` > 0 is the cost of moving element i. Elements
/// are given in this-ordering. Returns the indices (ascending) of a
/// maximum-weight subsequence whose values are strictly increasing.
/// Exact, O(s log s) time via a Fenwick tree over values.
std::vector<size_t> WeightedLis(const std::vector<size_t>& values,
                                const std::vector<double>& weights);

/// The paper's heuristic for very long child lists: cut the sequence into
/// blocks of `window` (the paper uses 50), solve each block exactly, and
/// merge the per-block answers, dropping elements that break global
/// monotonicity. O(s log window) time, O(window) extra space. The result
/// is a valid order-preserving subsequence but may be sub-optimal
/// (the paper's v4/w4 example).
std::vector<size_t> WindowedLis(const std::vector<size_t>& values,
                                const std::vector<double>& weights,
                                size_t window);

/// Classic O(n·m) longest common subsequence over token sequences; returns
/// pairs (index_a, index_b) of the matched tokens in order. Used by the
/// LaDiff and DiffMK-style baselines, not by BULD itself.
///
/// `context` (optional, not owned) is checked once per DP row; when it
/// dies mid-computation the function returns an EMPTY matching — the
/// caller must re-check the context to distinguish "nothing in common"
/// from "gave up" (LaDiff does, and surfaces the context error).
std::vector<std::pair<size_t, size_t>> LongestCommonSubsequence(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
    const Context* context = nullptr);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_LCS_H_
