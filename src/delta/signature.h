#ifndef XYDIFF_DELTA_SIGNATURE_H_
#define XYDIFF_DELTA_SIGNATURE_H_

#include "delta/diff_tree.h"
#include "delta/options.h"

namespace xydiff {

/// Phase 2 (§5.2): computes, bottom-up, the signature and weight of every
/// subtree of `tree`.
///
/// The signature is a 64-bit hash uniquely representing the content of the
/// subtree: for text nodes the character data; for elements the label, the
/// attribute set (order-insensitive) and the ordered child signatures.
/// The weight is 1 + ln(length) for text nodes (or 1 under
/// `DiffOptions::text_log_weight == false`) and 1 + Σ children for
/// elements, satisfying the two requirements of §5.2: no less than the sum
/// of the children and O(n) growth.
void ComputeSignaturesAndWeights(DiffTree* tree, const DiffOptions& options);

/// Signature of a standalone DOM subtree, consistent with the signatures
/// computed over DiffTrees (used by tests and by snapshot verification).
Signature SubtreeSignature(const XmlNode& node);

}  // namespace xydiff

#endif  // XYDIFF_DELTA_SIGNATURE_H_
