#include "delta/merge.h"

#include <unordered_map>
#include <unordered_set>

#include "delta/apply.h"

namespace xydiff {

namespace {

/// Everything `ours` changes, indexed for collision tests.
struct OursFootprint {
  std::unordered_set<Xid> deleted;          // All nodes inside deletions.
  std::unordered_map<Xid, const UpdateOp*> updated;
  std::unordered_map<uint64_t, const AttributeOp*> attrs;  // (xid,name).
  std::unordered_map<Xid, const MoveOp*> moved;
  std::unordered_set<Xid> touched;  // Updated/moved/attr'd/insert parents.

  static uint64_t AttrKey(Xid xid, const std::string& name) {
    return xid * 1000003 ^ std::hash<std::string>{}(name);
  }
};

OursFootprint BuildFootprint(const Delta& ours) {
  OursFootprint fp;
  for (const DeleteOp& op : ours.deletes()) {
    if (op.subtree != nullptr) {
      op.subtree->Visit(
          [&](const XmlNode* n) { fp.deleted.insert(n->xid()); });
    } else {
      fp.deleted.insert(op.xid);
    }
    fp.touched.insert(op.parent_xid);
  }
  for (const UpdateOp& op : ours.updates()) {
    fp.updated.emplace(op.xid, &op);
    fp.touched.insert(op.xid);
  }
  for (const AttributeOp& op : ours.attribute_ops()) {
    fp.attrs.emplace(OursFootprint::AttrKey(op.element_xid, op.name), &op);
    fp.touched.insert(op.element_xid);
  }
  for (const MoveOp& op : ours.moves()) {
    fp.moved.emplace(op.xid, &op);
    fp.touched.insert(op.xid);
    fp.touched.insert(op.from_parent);
    fp.touched.insert(op.to_parent);
  }
  for (const InsertOp& op : ours.inserts()) {
    fp.touched.insert(op.parent_xid);
  }
  return fp;
}

void AddConflict(MergeResult* result, MergeConflictKind kind, Xid xid,
                 std::string description) {
  result->conflicts.push_back(
      MergeConflict{kind, xid, std::move(description)});
}

}  // namespace

const char* MergeConflictKindName(MergeConflictKind kind) {
  switch (kind) {
    case MergeConflictKind::kUpdateUpdate: return "update/update";
    case MergeConflictKind::kAttrAttr: return "attribute/attribute";
    case MergeConflictKind::kMoveMove: return "move/move";
    case MergeConflictKind::kDeleteTouched: return "delete/touched";
    case MergeConflictKind::kTouchedDeleted: return "touched/deleted";
  }
  return "unknown";
}

Result<MergeResult> ThreeWayMerge(const XmlDocument& base, const Delta& ours,
                                  const Delta& theirs) {
  if (base.root() == nullptr) {
    return Status::InvalidArgument("merge base must have a root element");
  }
  const OursFootprint fp = BuildFootprint(ours);
  MergeResult result;

  // XIDs both sides allocated for their insertions overlap (each delta
  // starts allocating at the base's next_xid); accepted `theirs`
  // insertions are renumbered past both ranges.
  Xid next_fresh = std::max(ours.new_next_xid(), theirs.new_next_xid());
  std::unordered_map<Xid, Xid> remap;
  const Xid theirs_fresh_floor = theirs.old_next_xid();
  const auto remapped = [&](Xid xid) {
    auto it = remap.find(xid);
    return it == remap.end() ? xid : it->second;
  };

  Delta accepted;
  accepted.set_old_next_xid(ours.new_next_xid());

  // --- Updates ---------------------------------------------------------------
  for (const UpdateOp& op : theirs.updates()) {
    if (fp.deleted.count(op.xid) != 0) {
      AddConflict(&result, MergeConflictKind::kTouchedDeleted, op.xid,
                  "theirs updates text XID " + std::to_string(op.xid) +
                      " which ours deleted");
      continue;
    }
    auto it = fp.updated.find(op.xid);
    if (it != fp.updated.end()) {
      if (*it->second == op) {
        ++result.theirs_dropped_duplicates;
      } else {
        AddConflict(&result, MergeConflictKind::kUpdateUpdate, op.xid,
                    "both sides rewrote text XID " + std::to_string(op.xid) +
                        " (ours: '" + it->second->new_value + "', theirs: '" +
                        op.new_value + "')");
      }
      continue;
    }
    accepted.updates().push_back(op);
  }

  // --- Attribute operations -----------------------------------------------------
  for (const AttributeOp& op : theirs.attribute_ops()) {
    if (fp.deleted.count(op.element_xid) != 0) {
      AddConflict(&result, MergeConflictKind::kTouchedDeleted, op.element_xid,
                  "theirs changes attribute '" + op.name + "' of XID " +
                      std::to_string(op.element_xid) + " which ours deleted");
      continue;
    }
    auto it = fp.attrs.find(OursFootprint::AttrKey(op.element_xid, op.name));
    if (it != fp.attrs.end()) {
      if (*it->second == op) {
        ++result.theirs_dropped_duplicates;
      } else {
        AddConflict(&result, MergeConflictKind::kAttrAttr, op.element_xid,
                    "both sides changed attribute '" + op.name + "' of XID " +
                        std::to_string(op.element_xid));
      }
      continue;
    }
    accepted.attribute_ops().push_back(op);
  }

  // --- Moves -----------------------------------------------------------------
  for (const MoveOp& op : theirs.moves()) {
    if (fp.deleted.count(op.xid) != 0 ||
        fp.deleted.count(op.to_parent) != 0) {
      AddConflict(&result, MergeConflictKind::kTouchedDeleted, op.xid,
                  "theirs moves XID " + std::to_string(op.xid) +
                      " into/out of a region ours deleted");
      continue;
    }
    auto it = fp.moved.find(op.xid);
    if (it != fp.moved.end()) {
      if (it->second->to_parent == op.to_parent &&
          it->second->to_pos == op.to_pos) {
        ++result.theirs_dropped_duplicates;
      } else {
        AddConflict(&result, MergeConflictKind::kMoveMove, op.xid,
                    "both sides moved XID " + std::to_string(op.xid) +
                        " to different places");
      }
      continue;
    }
    accepted.moves().push_back(op);
  }

  // --- Inserts ---------------------------------------------------------------
  for (const InsertOp& op : theirs.inserts()) {
    if (fp.deleted.count(op.parent_xid) != 0) {
      AddConflict(&result, MergeConflictKind::kTouchedDeleted, op.parent_xid,
                  "theirs inserts under XID " + std::to_string(op.parent_xid) +
                      " which ours deleted");
      continue;
    }
    InsertOp copy = op.Clone();
    // Renumber theirs' fresh XIDs.
    copy.subtree->Visit([&](XmlNode* n) {
      if (n->xid() >= theirs_fresh_floor) {
        auto [it, inserted] = remap.emplace(n->xid(), next_fresh);
        if (inserted) ++next_fresh;
        n->set_xid(it->second);
      }
    });
    copy.xid = remapped(copy.xid);
    copy.parent_xid = remapped(copy.parent_xid);
    accepted.inserts().push_back(std::move(copy));
  }
  // Move destinations may point into renumbered insertions.
  for (MoveOp& op : accepted.moves()) {
    op.to_parent = remapped(op.to_parent);
  }

  // --- Deletes ---------------------------------------------------------------
  for (const DeleteOp& op : theirs.deletes()) {
    if (fp.deleted.count(op.xid) != 0) {
      ++result.theirs_dropped_duplicates;  // Already gone via ours.
      continue;
    }
    bool collides = false;
    Xid witness = kNoXid;
    if (op.subtree != nullptr) {
      op.subtree->Visit([&](const XmlNode* n) {
        if (collides) return;
        if (fp.touched.count(n->xid()) != 0 ||
            fp.deleted.count(n->xid()) != 0) {
          collides = true;
          witness = n->xid();
        }
      });
    }
    if (collides) {
      AddConflict(&result, MergeConflictKind::kDeleteTouched, op.xid,
                  "theirs deletes a subtree ours modified inside (XID " +
                      std::to_string(witness) + ")");
      continue;
    }
    accepted.deletes().push_back(op.Clone());
  }

  accepted.set_new_next_xid(next_fresh);
  result.theirs_applied = accepted.operation_count();

  // --- Materialize ------------------------------------------------------------
  result.merged = base.Clone();
  XYDIFF_RETURN_IF_ERROR(ApplyDelta(ours, &result.merged));
  ApplyOptions lenient;
  lenient.clamp_positions = true;  // Ours may have reshaped child lists.
  XYDIFF_RETURN_IF_ERROR(ApplyDelta(accepted, &result.merged, lenient));
  result.merged.ReserveXidsThrough(next_fresh > 0 ? next_fresh - 1 : 0);
  return result;
}

}  // namespace xydiff
