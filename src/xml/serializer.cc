#include "xml/serializer.h"

#include <sstream>

namespace xydiff {

namespace {

void AppendEscapedText(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&': out->append("&amp;"); break;
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      default: out->push_back(c);
    }
  }
}

void AppendEscapedAttribute(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '&': out->append("&amp;"); break;
      case '<': out->append("&lt;"); break;
      case '>': out->append("&gt;"); break;
      case '"': out->append("&quot;"); break;
      default: out->push_back(c);
    }
  }
}

void SerializeRec(const XmlNode& node, const SerializeOptions& options,
                  int depth, std::string* out) {
  if (node.is_text()) {
    if (options.pretty) {
      out->append(static_cast<size_t>(depth) * 2, ' ');
    }
    AppendEscapedText(node.text(), out);
    if (options.pretty) out->push_back('\n');
    return;
  }
  if (options.pretty) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(node.label());
  for (const auto& attr : node.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    AppendEscapedAttribute(attr.value, out);
    out->push_back('"');
  }
  if (options.emit_xids && node.xid() != kNoXid) {
    out->append(" xy:xid=\"");
    out->append(std::to_string(node.xid()));
    out->push_back('"');
  }
  if (node.child_count() == 0) {
    out->append("/>");
    if (options.pretty) out->push_back('\n');
    return;
  }
  // Pretty mode keeps text-only content inline so that whitespace is not
  // injected into character data.
  bool text_only = true;
  for (size_t i = 0; i < node.child_count(); ++i) {
    if (!node.child(i)->is_text()) {
      text_only = false;
      break;
    }
  }
  const bool multiline = options.pretty && !text_only;
  out->push_back('>');
  if (multiline) out->push_back('\n');
  for (size_t i = 0; i < node.child_count(); ++i) {
    if (options.pretty && !multiline) {
      AppendEscapedText(node.child(i)->text(), out);
    } else {
      SerializeRec(*node.child(i), options, depth + 1, out);
    }
  }
  if (multiline) out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</");
  out->append(node.label());
  out->push_back('>');
  if (options.pretty) out->push_back('\n');
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapedText(text, &out);
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscapedAttribute(text, &out);
  return out;
}

std::string SerializeNode(const XmlNode& node,
                          const SerializeOptions& options) {
  std::string out;
  out.reserve(node.SubtreeSize() * 24);  // Rough tag + content estimate.
  SerializeRec(node, options, 0, &out);
  return out;
}

std::string SerializeDocument(const XmlDocument& doc,
                              const SerializeOptions& options) {
  std::string out;
  out.reserve(64 + doc.node_count() * 24);
  if (options.xml_declaration) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    out.push_back('\n');
  }
  if (options.doctype && doc.root() != nullptr &&
      doc.dtd().has_id_attributes()) {
    out.append("<!DOCTYPE ");
    out.append(doc.dtd().doctype_name().empty()
                   ? doc.root()->label()
                   : std::string_view(doc.dtd().doctype_name()));
    out.append(" [\n");
    // Re-emit ID attribute declarations. Iteration order of the registry
    // is unspecified; collect per-label lines deterministically by walking
    // the document labels is overkill — emit from the registry directly.
    // (Used for persistence, where order does not matter.)
    doc.root()->Visit([&](const XmlNode* n) {
      if (!n->is_element()) return;
      const std::string* attr = doc.dtd().IdAttributeFor(n->label());
      if (attr == nullptr) return;
      std::string line = "<!ATTLIST ";
      line.append(n->label());
      line.append(" ").append(*attr).append(" ID #IMPLIED>\n");
      if (out.find(line) == std::string::npos) out.append(line);
    });
    out.append("]>\n");
  }
  if (doc.root() != nullptr) {
    SerializeRec(*doc.root(), options, 0, &out);
  }
  return out;
}

}  // namespace xydiff
