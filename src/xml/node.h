#ifndef XYDIFF_XML_NODE_H_
#define XYDIFF_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/arena.h"
#include "xid/xid.h"

namespace xydiff {

/// Kind of a tree node. The change model (§4 of the paper) works on ordered
/// trees whose nodes are either elements (labelled, with attributes and
/// children) or text leaves (character data).
enum class XmlNodeType { kElement, kText };

/// A single name="value" attribute. Order is preserved for serialization
/// but is semantically irrelevant (§5.2 "Other XML features").
///
/// The views point into the memory domain of the owning node (document
/// arena or the node's private arena) and share its lifetime.
struct XmlAttribute {
  std::string_view name;
  std::string_view value;

  bool operator==(const XmlAttribute&) const = default;
};

class XmlNode;

/// Deleter for XmlNodePtr: frees standalone heap nodes, no-ops for nodes
/// living in a document arena (their memory dies with the arena).
struct XmlNodeDeleter {
  void operator()(XmlNode* node) const;
};

/// Owning handle to a node. For arena-resident nodes ownership is purely
/// logical (destruction is a no-op; the arena reclaims the bytes); for
/// standalone nodes it behaves like std::unique_ptr<XmlNode>.
using XmlNodePtr = std::unique_ptr<XmlNode, XmlNodeDeleter>;

/// An ordered-tree XML node: either an element or a text leaf.
///
/// Memory model (see DESIGN.md "Memory layout and arenas"): every node
/// lives in exactly one *domain* — either a document arena shared by the
/// whole tree (the parser's fast path: one allocation region per
/// document, teardown = one arena free) or the heap, where each
/// standalone node carries a small private arena for its strings and
/// vectors. A tree is always domain-homogeneous: attaching a child from
/// a different domain deep-clones it into the parent's domain first.
///
/// Label/text accessors return string_views into the node's domain; they
/// remain valid for the domain's lifetime, not just the call.
///
/// Every node can carry a persistent identifier (XID, §4) that survives
/// across document versions; the diff algorithm assigns XIDs of matched
/// nodes from the previous version.
class XmlNode {
 public:
  /// Factory for a standalone (heap-domain) element node.
  static XmlNodePtr Element(std::string_view label);
  /// Factory for a standalone (heap-domain) text leaf.
  static XmlNodePtr Text(std::string_view text);

  /// Factories for arena-resident nodes. The value is copied into `arena`;
  /// the returned handle's deleter is a no-op (the arena owns the bytes).
  static XmlNodePtr ElementIn(Arena* arena, std::string_view label);
  static XmlNodePtr TextIn(Arena* arena, std::string_view text);

  /// Parser fast path: `stored_label` must already point into `arena`
  /// (e.g. interned); no copy is made. `label_id` is the interner id,
  /// kept on the node so DiffTree can map labels without hashing.
  static XmlNodePtr ElementInterned(Arena* arena, std::string_view stored_label,
                                    int32_t label_id);
  /// Parser fast path: `stored_text` must already point into `arena`.
  static XmlNodePtr TextStored(Arena* arena, std::string_view stored_text);

  XmlNode(const XmlNode&) = delete;
  XmlNode& operator=(const XmlNode&) = delete;
  ~XmlNode() = default;

  XmlNodeType type() const { return type_; }
  bool is_element() const { return type_ == XmlNodeType::kElement; }
  bool is_text() const { return type_ == XmlNodeType::kText; }

  /// Element label. Precondition: is_element().
  std::string_view label() const XY_ARENA_BOUND("node's domain") {
    return value_;
  }
  /// Text content. Precondition: is_text().
  std::string_view text() const XY_ARENA_BOUND("node's domain") {
    return value_;
  }
  /// Replaces the text content. Precondition: is_text().
  void set_text(std::string_view text);

  /// Interner id of the label for parser-built documents, -1 otherwise.
  int32_t label_id() const { return label_id_; }

  /// Persistent identifier; kNoXid until assigned.
  Xid xid() const { return xid_; }
  void set_xid(Xid xid) { xid_ = xid; }

  /// True for standalone heap nodes, false for arena residents.
  bool heap_allocated() const { return own_arena_ != nullptr; }
  /// The document arena this node lives in, or nullptr for the heap
  /// domain. Two nodes may be spliced without cloning iff their domains
  /// are equal.
  Arena* domain() const { return own_arena_ ? nullptr : arena_; }

  // --- Attributes (elements only) -----------------------------------------

  using AttributeList = std::vector<XmlAttribute, ArenaAllocator<XmlAttribute>>;

  const AttributeList& attributes() const XY_ARENA_BOUND("node's domain") {
    return attributes_;
  }
  /// Returns the attribute value or nullptr if absent.
  const std::string_view* FindAttribute(std::string_view name) const
      XY_ARENA_BOUND("node's domain");
  /// Inserts or overwrites an attribute (values are copied into the
  /// node's domain).
  void SetAttribute(std::string_view name, std::string_view value);
  /// Parser fast path: appends without a duplicate check; both views must
  /// already point into this node's domain.
  void AddAttributeStored(std::string_view stored_name,
                          std::string_view stored_value);
  /// Removes an attribute; returns false if it was absent.
  bool RemoveAttribute(std::string_view name);

  // --- Children ------------------------------------------------------------

  size_t child_count() const { return children_.size(); }
  XmlNode* child(size_t i) XY_ARENA_BOUND("node's domain") {
    return children_[i].get();
  }
  const XmlNode* child(size_t i) const XY_ARENA_BOUND("node's domain") {
    return children_[i].get();
  }
  XmlNode* parent() XY_ARENA_BOUND("node's domain") { return parent_; }
  const XmlNode* parent() const XY_ARENA_BOUND("node's domain") {
    return parent_;
  }

  /// Appends `node` as the last child and returns a raw pointer to it.
  /// If `node` is from another domain it is deep-cloned into this node's
  /// domain first (the returned pointer is the attached copy).
  XmlNode* AppendChild(XmlNodePtr node) XY_ARENA_BOUND("node's domain");
  /// Inserts `node` so that it becomes child number `index` (0-based,
  /// clamped to [0, child_count()]); returns a raw pointer to it. Same
  /// cross-domain cloning rule as AppendChild.
  XmlNode* InsertChild(size_t index, XmlNodePtr node)
      XY_ARENA_BOUND("node's domain");
  /// Detaches and returns child number `index`. For arena residents the
  /// handle keeps the node usable (reattachable) but its bytes are only
  /// reclaimed when the arena dies.
  XmlNodePtr RemoveChild(size_t index);
  /// 0-based position of this node among its parent's children.
  /// Precondition: parent() != nullptr.
  size_t IndexInParent() const;

  // --- Whole-subtree operations ---------------------------------------------

  /// Deep copy, including attributes and XIDs. With the default null
  /// target the copy is a standalone heap tree; otherwise it is built
  /// into `target` (which must outlive it).
  XmlNodePtr Clone(Arena* target = nullptr) const;
  /// Structural equality of the whole subtree: type, label/text,
  /// attributes (order-insensitive) and children (order-sensitive).
  /// XIDs are ignored.
  bool DeepEquals(const XmlNode& other) const;
  /// Number of nodes in this subtree, including this one.
  size_t SubtreeSize() const;

  /// Depth-first (document order) visit; `fn` is called on every node of
  /// the subtree including this one.
  template <typename Fn>
  void Visit(Fn&& fn) {
    fn(this);
    for (auto& c : children_) c->Visit(fn);
  }
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(this);
    for (const auto& c : children_) c->Visit(fn);
  }

 private:
  friend class Arena;  // Arena::New needs the private constructor.
  friend struct XmlNodeDeleter;

  using ChildList = std::vector<XmlNodePtr, ArenaAllocator<XmlNodePtr>>;

  XmlNode(XmlNodeType type, std::string_view stored_value, Arena* arena,
          std::unique_ptr<Arena> own_arena)
      : type_(type),
        value_(stored_value),
        arena_(arena),
        own_arena_(std::move(own_arena)),
        attributes_(ArenaAllocator<XmlAttribute>(arena_)),
        children_(ArenaAllocator<XmlNodePtr>(arena_)) {}

  static XmlNodePtr MakeStandalone(XmlNodeType type, std::string_view value);

  /// Copies `s` into this node's domain.
  std::string_view StoreString(std::string_view s)
      XY_ARENA_BOUND("node's domain") {
    return arena_->CopyString(s);
  }

  XmlNodeType type_;
  int32_t label_id_ = -1;
  std::string_view value_;  // Label for elements, character data for text.
  Arena* arena_;            // Domain arena, or own_arena_.get().
  std::unique_ptr<Arena> own_arena_;  // Non-null only for standalone nodes.
  // Containers are declared after own_arena_ so they are destroyed before
  // the private arena that backs them.
  AttributeList attributes_;
  ChildList children_;
  XmlNode* parent_ = nullptr;
  Xid xid_ = kNoXid;
};

inline void XmlNodeDeleter::operator()(XmlNode* node) const {
  // The smart-pointer deleter is where heap nodes legitimately die;
  // arena nodes are skipped and freed with their arena.
  if (node != nullptr && node->heap_allocated()) delete node;  // xylint: allow(new-delete): the XmlNodePtr deleter is the one sanctioned free site
}

}  // namespace xydiff

#endif  // XYDIFF_XML_NODE_H_
