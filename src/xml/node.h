#ifndef XYDIFF_XML_NODE_H_
#define XYDIFF_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xydiff {

/// Kind of a tree node. The change model (§4 of the paper) works on ordered
/// trees whose nodes are either elements (labelled, with attributes and
/// children) or text leaves (character data).
enum class XmlNodeType { kElement, kText };

/// A single name="value" attribute. Order is preserved for serialization
/// but is semantically irrelevant (§5.2 "Other XML features").
struct XmlAttribute {
  std::string name;
  std::string value;

  bool operator==(const XmlAttribute&) const = default;
};

/// Persistent node identifier (XID). 0 means "not yet assigned".
using Xid = uint64_t;
inline constexpr Xid kNoXid = 0;

/// An ordered-tree XML node: either an element or a text leaf.
///
/// Nodes own their children (`std::unique_ptr`) and know their parent.
/// Every node can carry a persistent identifier (XID, §4) that survives
/// across document versions; the diff algorithm assigns XIDs of matched
/// nodes from the previous version.
class XmlNode {
 public:
  /// Factory for an element node with the given label.
  static std::unique_ptr<XmlNode> Element(std::string label);
  /// Factory for a text leaf with the given character data.
  static std::unique_ptr<XmlNode> Text(std::string text);

  XmlNode(const XmlNode&) = delete;
  XmlNode& operator=(const XmlNode&) = delete;

  XmlNodeType type() const { return type_; }
  bool is_element() const { return type_ == XmlNodeType::kElement; }
  bool is_text() const { return type_ == XmlNodeType::kText; }

  /// Element label. Precondition: is_element().
  const std::string& label() const { return value_; }
  /// Text content. Precondition: is_text().
  const std::string& text() const { return value_; }
  /// Replaces the text content. Precondition: is_text().
  void set_text(std::string text);

  /// Persistent identifier; kNoXid until assigned.
  Xid xid() const { return xid_; }
  void set_xid(Xid xid) { xid_ = xid; }

  // --- Attributes (elements only) -----------------------------------------

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }
  /// Returns the attribute value or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const;
  /// Inserts or overwrites an attribute.
  void SetAttribute(std::string_view name, std::string_view value);
  /// Removes an attribute; returns false if it was absent.
  bool RemoveAttribute(std::string_view name);

  // --- Children ------------------------------------------------------------

  size_t child_count() const { return children_.size(); }
  XmlNode* child(size_t i) { return children_[i].get(); }
  const XmlNode* child(size_t i) const { return children_[i].get(); }
  XmlNode* parent() { return parent_; }
  const XmlNode* parent() const { return parent_; }

  /// Appends `node` as the last child and returns a raw pointer to it.
  XmlNode* AppendChild(std::unique_ptr<XmlNode> node);
  /// Inserts `node` so that it becomes child number `index` (0-based,
  /// clamped to [0, child_count()]); returns a raw pointer to it.
  XmlNode* InsertChild(size_t index, std::unique_ptr<XmlNode> node);
  /// Detaches and returns child number `index`.
  std::unique_ptr<XmlNode> RemoveChild(size_t index);
  /// 0-based position of this node among its parent's children.
  /// Precondition: parent() != nullptr.
  size_t IndexInParent() const;

  // --- Whole-subtree operations ---------------------------------------------

  /// Deep copy, including attributes and XIDs.
  std::unique_ptr<XmlNode> Clone() const;
  /// Structural equality of the whole subtree: type, label/text,
  /// attributes (order-insensitive) and children (order-sensitive).
  /// XIDs are ignored.
  bool DeepEquals(const XmlNode& other) const;
  /// Number of nodes in this subtree, including this one.
  size_t SubtreeSize() const;

  /// Depth-first (document order) visit; `fn` is called on every node of
  /// the subtree including this one.
  template <typename Fn>
  void Visit(Fn&& fn) {
    fn(this);
    for (auto& c : children_) c->Visit(fn);
  }
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(this);
    for (const auto& c : children_) c->Visit(fn);
  }

 private:
  XmlNode(XmlNodeType type, std::string value)
      : type_(type), value_(std::move(value)) {}

  XmlNodeType type_;
  std::string value_;  // Label for elements, character data for text.
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  XmlNode* parent_ = nullptr;
  Xid xid_ = kNoXid;
};

}  // namespace xydiff

#endif  // XYDIFF_XML_NODE_H_
