#include "xml/xid_map_tree.h"

#include <string>
#include <vector>

namespace xydiff {

namespace {

void CollectPostorder(const XmlNode& node, std::vector<Xid>* out) {
  for (size_t i = 0; i < node.child_count(); ++i) {
    CollectPostorder(*node.child(i), out);
  }
  out->push_back(node.xid());
}

void AssignPostorder(XmlNode* node, const std::vector<Xid>& xids,
                     size_t* next) {
  for (size_t i = 0; i < node->child_count(); ++i) {
    AssignPostorder(node->child(i), xids, next);
  }
  node->set_xid(xids[(*next)++]);
}

}  // namespace

XidMap XidMapFromSubtree(const XmlNode& node) {
  std::vector<Xid> xids;
  CollectPostorder(node, &xids);
  return XidMap(std::move(xids));
}

Status ApplyXidMapToSubtree(const XidMap& map, XmlNode* node) {
  if (node->SubtreeSize() != map.size()) {
    return Status::Corruption("XID-map size " + std::to_string(map.size()) +
                              " does not match subtree size " +
                              std::to_string(node->SubtreeSize()));
  }
  size_t next = 0;
  AssignPostorder(node, map.xids(), &next);
  return Status::OK();
}

}  // namespace xydiff
