#ifndef XYDIFF_XML_PARSER_H_
#define XYDIFF_XML_PARSER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Parser configuration.
struct ParseOptions {
  /// Keep text nodes that consist only of whitespace. The diff treats
  /// inter-element whitespace as noise by default, matching the behaviour
  /// of the original XyDiff.
  bool keep_whitespace_text = false;

  /// Maximum element nesting depth before the parser refuses the input
  /// (guards against stack exhaustion on adversarial documents).
  int max_depth = 10000;

  /// When set, the document is built into this arena instead of a fresh
  /// one — the ArenaPool recycling hook for the warehouse pipeline. The
  /// arena must hold no live objects (acquire it from an ArenaPool, or
  /// pass a freshly constructed one).
  std::shared_ptr<Arena> arena;
};

// Note on persistent identifiers: XIDs are not stored inside the XML text
// (text nodes cannot carry attributes). Persisted documents travel with
// their XID-map — the compact postorder XID list of §4 — written by
// version/storage.h or the command-line tools as a sidecar.

/// Parses an XML document from text.
///
/// Supported: elements, attributes, character data, CDATA sections,
/// comments, processing instructions, the XML declaration, predefined and
/// numeric character references, and the internal DTD subset (scanned for
/// `<!ATTLIST ... ID ...>` declarations feeding Phase 1 of the diff).
/// Unsupported (rejected or skipped as noted in the implementation):
/// external DTDs, custom general entities, namespaces-aware processing
/// (prefixes are kept verbatim as part of labels).
///
/// On success the returned document's nodes carry no XIDs; call
/// `XmlDocument::AssignInitialXids()` for a first version.
Result<XmlDocument> ParseXml(std::string_view text,
                             const ParseOptions& options = {});

/// Convenience wrapper: reads the file and parses it.
Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const ParseOptions& options = {});

}  // namespace xydiff

#endif  // XYDIFF_XML_PARSER_H_
