#ifndef XYDIFF_XML_PARSER_H_
#define XYDIFF_XML_PARSER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Parser configuration.
struct ParseOptions {
  /// Keep text nodes that consist only of whitespace. The diff treats
  /// inter-element whitespace as noise by default, matching the behaviour
  /// of the original XyDiff.
  bool keep_whitespace_text = false;

  /// Maximum element nesting depth before the parser refuses the input
  /// (guards against stack exhaustion on adversarial documents).
  int max_depth = 10000;

  /// Cumulative bound on bytes produced by expanding custom general
  /// entities, across the whole document. Entity values may reference
  /// other entities, so k declarations can expand to fanout^k bytes
  /// ("billion laughs"); one counter over all expansions caps the
  /// amplification an input can buy regardless of how it is nested or
  /// how many references the body makes. 0 disables custom-entity
  /// expansion outright: any reference to a declared entity is rejected.
  /// Predefined (&amp; ...) and character references are never charged —
  /// they cannot amplify.
  size_t max_entity_expansion_bytes = 1 << 20;

  /// Maximum nesting depth of entity-in-entity expansion. Catches
  /// reference cycles (which are infinite depth) with a clear error
  /// before the byte budget does.
  int max_entity_depth = 16;

  /// When set, the document is built into this arena instead of a fresh
  /// one — the ArenaPool recycling hook for the warehouse pipeline. The
  /// arena must hold no live objects (acquire it from an ArenaPool, or
  /// pass a freshly constructed one).
  std::shared_ptr<Arena> arena;
};

// Note on persistent identifiers: XIDs are not stored inside the XML text
// (text nodes cannot carry attributes). Persisted documents travel with
// their XID-map — the compact postorder XID list of §4 — written by
// version/storage.h or the command-line tools as a sidecar.

/// Parses an XML document from text.
///
/// Supported: elements, attributes, character data, CDATA sections,
/// comments, processing instructions, the XML declaration, predefined and
/// numeric character references, internal general entities (bounded by
/// `max_entity_expansion_bytes` / `max_entity_depth` — hostile inputs
/// get a clean ParseError, never an expansion blow-up), and the internal
/// DTD subset (scanned for `<!ATTLIST ... ID ...>` declarations feeding
/// Phase 1 of the diff). Unsupported (rejected or skipped as noted in
/// the implementation): external DTDs, external and parameter entities
/// (a reference to a declared external entity is rejected by name),
/// namespaces-aware processing (prefixes are kept verbatim as part of
/// labels).
///
/// On success the returned document's nodes carry no XIDs; call
/// `XmlDocument::AssignInitialXids()` for a first version.
Result<XmlDocument> ParseXml(std::string_view text,
                             const ParseOptions& options = {});

/// Convenience wrapper: reads the file and parses it.
Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const ParseOptions& options = {});

}  // namespace xydiff

#endif  // XYDIFF_XML_PARSER_H_
