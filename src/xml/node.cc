#include "xml/node.h"

#include <algorithm>
#include <cassert>

namespace xydiff {

std::unique_ptr<XmlNode> XmlNode::Element(std::string label) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(XmlNodeType::kElement, std::move(label)));
}

std::unique_ptr<XmlNode> XmlNode::Text(std::string text) {
  return std::unique_ptr<XmlNode>(
      new XmlNode(XmlNodeType::kText, std::move(text)));
}

void XmlNode::set_text(std::string text) {
  assert(is_text());
  value_ = std::move(text);
}

const std::string* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

void XmlNode::SetAttribute(std::string_view name, std::string_view value) {
  assert(is_element());
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value.assign(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

bool XmlNode::RemoveAttribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

XmlNode* XmlNode::AppendChild(std::unique_ptr<XmlNode> node) {
  return InsertChild(children_.size(), std::move(node));
}

XmlNode* XmlNode::InsertChild(size_t index, std::unique_ptr<XmlNode> node) {
  assert(is_element());
  assert(node != nullptr);
  assert(node->parent_ == nullptr);
  index = std::min(index, children_.size());
  node->parent_ = this;
  XmlNode* raw = node.get();
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(node));
  return raw;
}

std::unique_ptr<XmlNode> XmlNode::RemoveChild(size_t index) {
  assert(index < children_.size());
  std::unique_ptr<XmlNode> out =
      std::move(children_[static_cast<size_t>(index)]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  out->parent_ = nullptr;
  return out;
}

size_t XmlNode::IndexInParent() const {
  assert(parent_ != nullptr);
  const auto& siblings = parent_->children_;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == this) return i;
  }
  assert(false && "node not found among parent's children");
  return 0;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  std::unique_ptr<XmlNode> copy(new XmlNode(type_, value_));
  copy->attributes_ = attributes_;
  copy->xid_ = xid_;
  for (const auto& c : children_) {
    copy->AppendChild(c->Clone());
  }
  return copy;
}

bool XmlNode::DeepEquals(const XmlNode& other) const {
  if (type_ != other.type_ || value_ != other.value_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (const auto& attr : attributes_) {
    const std::string* v = other.FindAttribute(attr.name);
    if (v == nullptr || *v != attr.value) return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->DeepEquals(*other.children_[i])) return false;
  }
  return true;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace xydiff
