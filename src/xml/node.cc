#include "xml/node.h"

#include <algorithm>
#include <cassert>

namespace xydiff {

XmlNodePtr XmlNode::MakeStandalone(XmlNodeType type, std::string_view value) {
  // Standalone nodes carry a private arena for their strings and vector
  // storage; size the first block for the value plus a little slack so a
  // typical leaf needs exactly one block.
  auto arena = std::make_unique<Arena>(value.size() + 48);
  Arena* raw_arena = arena.get();
  const std::string_view stored = raw_arena->CopyString(value);
  // Ownership machinery itself: the node is wrapped in XmlNodePtr on the
  // same line, whose deleter frees it.
  return XmlNodePtr(new XmlNode(  // xylint: allow(new-delete): wrapped in XmlNodePtr on this line; its deleter frees it
      type, stored, raw_arena, std::move(arena)));
}

XmlNodePtr XmlNode::Element(std::string_view label) {
  return MakeStandalone(XmlNodeType::kElement, label);
}

XmlNodePtr XmlNode::Text(std::string_view text) {
  return MakeStandalone(XmlNodeType::kText, text);
}

XmlNodePtr XmlNode::ElementIn(Arena* arena, std::string_view label) {
  assert(arena != nullptr);
  return XmlNodePtr(arena->New<XmlNode>(XmlNodeType::kElement,
                                        arena->CopyString(label), arena,
                                        nullptr));
}

XmlNodePtr XmlNode::TextIn(Arena* arena, std::string_view text) {
  assert(arena != nullptr);
  return XmlNodePtr(arena->New<XmlNode>(XmlNodeType::kText,
                                        arena->CopyString(text), arena,
                                        nullptr));
}

XmlNodePtr XmlNode::ElementInterned(Arena* arena, std::string_view stored_label,
                                    int32_t label_id) {
  assert(arena != nullptr);
  XmlNodePtr node(arena->New<XmlNode>(XmlNodeType::kElement, stored_label,
                                      arena, nullptr));
  node->label_id_ = label_id;
  return node;
}

XmlNodePtr XmlNode::TextStored(Arena* arena, std::string_view stored_text) {
  assert(arena != nullptr);
  return XmlNodePtr(
      arena->New<XmlNode>(XmlNodeType::kText, stored_text, arena, nullptr));
}

void XmlNode::set_text(std::string_view text) {
  assert(is_text());
  // The previous bytes stay in the domain arena until it dies; text
  // updates are rare outside freshly-built nodes, so this is the right
  // trade against per-node heap strings.
  value_ = StoreString(text);
}

const std::string_view* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

void XmlNode::SetAttribute(std::string_view name, std::string_view value) {
  assert(is_element());
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = StoreString(value);
      return;
    }
  }
  attributes_.push_back({StoreString(name), StoreString(value)});
}

void XmlNode::AddAttributeStored(std::string_view stored_name,
                                 std::string_view stored_value) {
  attributes_.push_back({stored_name, stored_value});
}

bool XmlNode::RemoveAttribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

XmlNode* XmlNode::AppendChild(XmlNodePtr node) {
  return InsertChild(children_.size(), std::move(node));
}

XmlNode* XmlNode::InsertChild(size_t index, XmlNodePtr node) {
  assert(is_element());
  assert(node != nullptr);
  assert(node->parent_ == nullptr);
  if (node->domain() != domain()) {
    // Keep trees domain-homogeneous: adopt cross-domain children by deep
    // copy so an arena tree never points at heap nodes and vice versa.
    node = node->Clone(domain());
  }
  index = std::min(index, children_.size());
  node->parent_ = this;
  XmlNode* raw = node.get();
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(node));
  return raw;
}

XmlNodePtr XmlNode::RemoveChild(size_t index) {
  assert(index < children_.size());
  XmlNodePtr out = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  out->parent_ = nullptr;
  return out;
}

size_t XmlNode::IndexInParent() const {
  assert(parent_ != nullptr);
  const auto& siblings = parent_->children_;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i].get() == this) return i;
  }
  assert(false && "node not found among parent's children");
  return 0;
}

XmlNodePtr XmlNode::Clone(Arena* target) const {
  // Cloning within one arena can share the immutable string bytes (the
  // arena outlives both trees), which keeps interned-label pointer
  // equality intact across copies.
  const bool share_bytes =
      target != nullptr && !heap_allocated() && arena_ == target;
  XmlNodePtr copy;
  if (target != nullptr) {
    const std::string_view stored =
        share_bytes ? value_ : target->CopyString(value_);
    copy = XmlNodePtr(target->New<XmlNode>(type_, stored, target, nullptr));
    if (share_bytes) copy->label_id_ = label_id_;
  } else {
    copy = MakeStandalone(type_, value_);
  }
  copy->xid_ = xid_;
  copy->attributes_.reserve(attributes_.size());
  for (const auto& attr : attributes_) {
    if (share_bytes) {
      copy->attributes_.push_back(attr);
    } else {
      copy->AddAttributeStored(copy->StoreString(attr.name),
                               copy->StoreString(attr.value));
    }
  }
  copy->children_.reserve(children_.size());
  for (const auto& c : children_) {
    XmlNodePtr child = c->Clone(target);
    child->parent_ = copy.get();
    copy->children_.push_back(std::move(child));
  }
  return copy;
}

bool XmlNode::DeepEquals(const XmlNode& other) const {
  if (type_ != other.type_ || value_ != other.value_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (const auto& attr : attributes_) {
    const std::string_view* v = other.FindAttribute(attr.name);
    if (v == nullptr || *v != attr.value) return false;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->DeepEquals(*other.children_[i])) return false;
  }
  return true;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace xydiff
