#include "xml/dtd.h"

namespace xydiff {

void Dtd::DeclareIdAttribute(std::string_view label,
                             std::string_view attribute) {
  id_attributes_[std::string(label)] = std::string(attribute);
}

const std::string* Dtd::IdAttributeFor(std::string_view label) const {
  auto it = id_attributes_.find(std::string(label));
  if (it == id_attributes_.end()) return nullptr;
  return &it->second;
}

}  // namespace xydiff
