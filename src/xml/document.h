#ifndef XYDIFF_XML_DOCUMENT_H_
#define XYDIFF_XML_DOCUMENT_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>

#include "util/annotations.h"
#include "util/arena.h"
#include "util/interner.h"
#include "xml/dtd.h"
#include "xml/node.h"

namespace xydiff {

/// An XML document: a single element root plus the DTD information and the
/// XID-allocation state needed by the versioning machinery (§4).
///
/// A document may own an arena + label interner (parser-built documents
/// do; see ArenaBacked()). The whole tree then lives in that arena and
/// teardown is one arena free instead of a recursive unique_ptr cascade.
/// The arena is held by shared_ptr so long-lived consumers (Repository
/// version chains, Delta snapshots) can keep the bytes alive after the
/// document object itself is gone.
///
/// The XID allocator is part of the document so that identifiers stay
/// unique across the whole version history: the diff hands out fresh XIDs
/// for inserted nodes from the *new* document's allocator, which is seeded
/// past every XID ever used by the previous versions.
class XmlDocument {
 public:
  XmlDocument() = default;
  /// Takes ownership of the root element.
  explicit XmlDocument(XmlNodePtr root) : root_(std::move(root)) {}

  /// Creates an empty document with its own arena and label interner.
  /// Attach roots built with XmlNode::ElementIn(doc.arena(), ...) to stay
  /// on the fast path (cross-domain roots are adoption-cloned on attach).
  static XmlDocument ArenaBacked(size_t first_block_hint =
                                     Arena::kDefaultFirstBlock);

  /// Same, but building into a caller-supplied (possibly recycled)
  /// arena — the ArenaPool hook. The arena must hold no live objects;
  /// a fresh interner is created per document because interner keys are
  /// views into arena memory.
  static XmlDocument ArenaBacked(std::shared_ptr<Arena> arena);

  // Not defaulted: the atomic allocator is not movable, and members
  // assign in declaration order, which would free the old arena (arena_
  // is declared first) while the old root_ still points into it. Drop
  // the nodes before their arena. Moves require external exclusion (a
  // document being moved is not concurrently allocating XIDs).
  XmlDocument(XmlDocument&& other) noexcept
      : arena_(std::move(other.arena_)),
        interner_(std::move(other.interner_)),
        root_(std::move(other.root_)),
        dtd_(std::move(other.dtd_)),
        next_xid_(other.next_xid_.load(std::memory_order_relaxed)) {}
  XmlDocument& operator=(XmlDocument&& other) noexcept {
    if (this != &other) {
      root_.reset();
      interner_.reset();
      root_ = std::move(other.root_);
      interner_ = std::move(other.interner_);
      arena_ = std::move(other.arena_);
      dtd_ = std::move(other.dtd_);
      next_xid_.store(other.next_xid_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }
  XmlDocument(const XmlDocument&) = delete;
  XmlDocument& operator=(const XmlDocument&) = delete;

  XmlNode* root() XY_ARENA_BOUND("document") { return root_.get(); }
  const XmlNode* root() const XY_ARENA_BOUND("document") {
    return root_.get();
  }
  void set_root(XmlNodePtr root) { root_ = std::move(root); }
  /// Releases ownership of the root (the document becomes empty). For
  /// arena-backed documents the arena must stay alive as long as the
  /// detached tree; take shared_arena() alongside if needed.
  XmlNodePtr take_root() { return std::move(root_); }

  /// The document arena, or nullptr for heap-domain documents.
  Arena* arena() { return arena_.get(); }
  const Arena* arena() const { return arena_.get(); }
  const std::shared_ptr<Arena>& shared_arena() const { return arena_; }
  /// The label/attribute-name interner, or nullptr.
  StringInterner* interner() { return interner_.get(); }
  const StringInterner* interner() const { return interner_.get(); }

  Dtd& dtd() { return dtd_; }
  const Dtd& dtd() const { return dtd_; }

  /// Assigns postfix-order XIDs 1..n to every node (§4 "for example its
  /// postfix position") and advances the allocator past them. Existing
  /// XIDs are overwritten; call this only on the first version.
  void AssignInitialXids();

  /// True if every node carries a non-zero XID.
  bool AllXidsAssigned() const;

  /// Hands out a fresh, never-used XID. Thread-safe: the allocator is a
  /// single atomic counter, so concurrent pipeline stages reading one
  /// document can mint identifiers without a document-wide lock.
  Xid AllocateXid() {
    return next_xid_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Ensures the allocator will never hand out `xid` or anything below it.
  /// Lock-free CAS by design — this sits on the delta-apply and diff hot
  /// paths, so it must never take a capability the pipeline workers
  /// would contend on (DESIGN.md §3.11 keeps it that way on purpose).
  void ReserveXidsThrough(Xid xid) {
    Xid current = next_xid_.load(std::memory_order_relaxed);
    while (xid >= current &&
           !next_xid_.compare_exchange_weak(current, xid + 1,
                                            std::memory_order_relaxed)) {
    }
  }

  Xid next_xid() const { return next_xid_.load(std::memory_order_relaxed); }
  void set_next_xid(Xid next) {
    next_xid_.store(next, std::memory_order_relaxed);
  }

  /// Builds an index from XID to node over the current tree. The index is
  /// a snapshot: mutating the tree invalidates it.
  std::unordered_map<Xid, XmlNode*> BuildXidIndex()
      XY_ARENA_BOUND("document");

  /// Deep copy of the document including DTD info, XIDs and allocator
  /// state. The copy is heap-domain (clones are for mutation-heavy
  /// callers like the change simulator, not the parse→diff hot path).
  XmlDocument Clone() const;

  /// Total node count (0 for an empty document).
  size_t node_count() const { return root_ ? root_->SubtreeSize() : 0; }

 private:
  // Declaration order is load-bearing: root_ (and interner_) must be
  // destroyed before arena_ releases the memory they point into.
  std::shared_ptr<Arena> arena_;
  std::unique_ptr<StringInterner> interner_;
  XmlNodePtr root_;
  Dtd dtd_;
  std::atomic<Xid> next_xid_{1};
};

}  // namespace xydiff

#endif  // XYDIFF_XML_DOCUMENT_H_
