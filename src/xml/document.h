#ifndef XYDIFF_XML_DOCUMENT_H_
#define XYDIFF_XML_DOCUMENT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "xml/dtd.h"
#include "xml/node.h"

namespace xydiff {

/// An XML document: a single element root plus the DTD information and the
/// XID-allocation state needed by the versioning machinery (§4).
///
/// The XID allocator is part of the document so that identifiers stay
/// unique across the whole version history: the diff hands out fresh XIDs
/// for inserted nodes from the *new* document's allocator, which is seeded
/// past every XID ever used by the previous versions.
class XmlDocument {
 public:
  XmlDocument() = default;
  /// Takes ownership of the root element.
  explicit XmlDocument(std::unique_ptr<XmlNode> root)
      : root_(std::move(root)) {}

  XmlDocument(XmlDocument&&) = default;
  XmlDocument& operator=(XmlDocument&&) = default;
  XmlDocument(const XmlDocument&) = delete;
  XmlDocument& operator=(const XmlDocument&) = delete;

  XmlNode* root() { return root_.get(); }
  const XmlNode* root() const { return root_.get(); }
  void set_root(std::unique_ptr<XmlNode> root) { root_ = std::move(root); }
  /// Releases ownership of the root (the document becomes empty).
  std::unique_ptr<XmlNode> take_root() { return std::move(root_); }

  Dtd& dtd() { return dtd_; }
  const Dtd& dtd() const { return dtd_; }

  /// Assigns postfix-order XIDs 1..n to every node (§4 "for example its
  /// postfix position") and advances the allocator past them. Existing
  /// XIDs are overwritten; call this only on the first version.
  void AssignInitialXids();

  /// True if every node carries a non-zero XID.
  bool AllXidsAssigned() const;

  /// Hands out a fresh, never-used XID.
  Xid AllocateXid() { return next_xid_++; }

  /// Ensures the allocator will never hand out `xid` or anything below it.
  void ReserveXidsThrough(Xid xid) {
    if (xid >= next_xid_) next_xid_ = xid + 1;
  }

  Xid next_xid() const { return next_xid_; }
  void set_next_xid(Xid next) { next_xid_ = next; }

  /// Builds an index from XID to node over the current tree. The index is
  /// a snapshot: mutating the tree invalidates it.
  std::unordered_map<Xid, XmlNode*> BuildXidIndex();

  /// Deep copy of the document including DTD info, XIDs and allocator state.
  XmlDocument Clone() const;

  /// Total node count (0 for an empty document).
  size_t node_count() const { return root_ ? root_->SubtreeSize() : 0; }

 private:
  std::unique_ptr<XmlNode> root_;
  Dtd dtd_;
  Xid next_xid_ = 1;
};

}  // namespace xydiff

#endif  // XYDIFF_XML_DOCUMENT_H_
