#include "xml/parser.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/env.h"
#include "util/string_util.h"

namespace xydiff {

namespace {

/// True for characters that may start an XML name. We accept the ASCII
/// subset plus any byte >= 0x80 (UTF-8 continuation/lead bytes), which is
/// permissive but never mis-parses well-formed input.
constexpr bool IsNameStartByte(unsigned c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || c >= 0x80;
}

constexpr bool IsNameByte(unsigned c) {
  return IsNameStartByte(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

/// XML 1.0 forbids control characters other than tab, LF and CR.
constexpr bool IsForbiddenControlByte(unsigned c) {
  return c < 0x20 && c != '\t' && c != '\n' && c != '\r';
}

bool IsNameStartChar(char c) { return IsNameStartByte(static_cast<unsigned char>(c)); }
bool IsForbiddenControlChar(char c) {
  return IsForbiddenControlByte(static_cast<unsigned char>(c));
}

/// 256-entry stop tables drive the bulk scanning loops: a text run is
/// "memchr-style" scanned until a byte that needs per-character handling.
struct ByteTable {
  bool stop[256];
};

constexpr ByteTable MakeNameTable() {
  ByteTable t{};
  for (unsigned c = 0; c < 256; ++c) t.stop[c] = IsNameByte(c);
  return t;
}

constexpr ByteTable MakeContentStopTable() {
  ByteTable t{};
  for (unsigned c = 0; c < 256; ++c) {
    t.stop[c] = c == '<' || c == '&' || IsForbiddenControlByte(c);
  }
  return t;
}

constexpr ByteTable MakeAttrStopTable(char quote) {
  ByteTable t{};
  for (unsigned c = 0; c < 256; ++c) {
    t.stop[c] = c == static_cast<unsigned char>(quote) || c == '&' ||
                c == '<' || IsForbiddenControlByte(c);
  }
  return t;
}

constexpr ByteTable kNameChar = MakeNameTable();
constexpr ByteTable kContentStop = MakeContentStopTable();
constexpr ByteTable kAttrStopDq = MakeAttrStopTable('"');
constexpr ByteTable kAttrStopSq = MakeAttrStopTable('\'');

size_t FirstBlockHint(size_t input_size) {
  return std::min(std::max(input_size, Arena::kDefaultFirstBlock),
                  Arena::kMaxBlock);
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<XmlDocument> Parse() {
    // The whole tree is built into the document's arena: node records,
    // labels (deduplicated by the interner), attribute values and
    // character data all land in one allocation region.
    XmlDocument doc =
        options_.arena != nullptr
            ? XmlDocument::ArenaBacked(options_.arena)
            : XmlDocument::ArenaBacked(FirstBlockHint(text_.size()));
    arena_ = doc.arena();
    interner_ = doc.interner();
    SkipProlog(&doc);
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XmlNodePtr root;
    Status s = ParseElement(&root, /*depth=*/0);
    if (!s.ok()) return s;
    doc.set_root(std::move(root));
    SkipMisc();
    if (!AtEnd()) {
      return Error("trailing content after root element");
    }
    return doc;
  }

 private:
  // --- Low-level cursor ----------------------------------------------------
  //
  // The cursor is a bare offset; line/column are only needed for error
  // messages, so Error() recovers them by scanning the consumed prefix
  // instead of every Advance() paying the bookkeeping.

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void Advance() { ++pos_; }
  void AdvanceBy(size_t n) { pos_ = std::min(pos_ + n, text_.size()); }
  bool LookingAt(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  bool Consume(std::string_view s) {
    if (!LookingAt(s)) return false;
    pos_ += s.size();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) ++pos_;
  }

  Status Error(std::string_view what) const {
    size_t line = 1;
    size_t line_start = 0;
    const size_t limit = std::min(pos_, text_.size());
    for (size_t i = 0; i < limit; ++i) {
      if (text_[i] == '\n') {
        ++line;
        line_start = i + 1;
      }
    }
    std::ostringstream os;
    os << "line " << line << ", column " << (limit - line_start + 1) << ": "
       << what;
    return Status::ParseError(os.str());
  }

  // --- Prolog / misc ---------------------------------------------------------

  void SkipProlog(XmlDocument* doc) {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
      } else if (LookingAt("<!--")) {
        SkipComment();
      } else if (LookingAt("<!DOCTYPE")) {
        ParseDoctype(doc);
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
      } else if (LookingAt("<!--")) {
        SkipComment();
      } else {
        return;
      }
    }
  }

  void SkipProcessingInstruction() {
    // Consume "<?" ... "?>"; unterminated PIs run to end of input.
    const size_t end = text_.find("?>", pos_ + 2);
    pos_ = end == std::string_view::npos ? text_.size() : end + 2;
  }

  void SkipComment() {
    const size_t end = text_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? text_.size() : end + 3;
  }

  // --- DOCTYPE / internal subset --------------------------------------------

  void ParseDoctype(XmlDocument* doc) {
    AdvanceBy(9);  // "<!DOCTYPE"
    SkipWhitespace();
    std::string_view name = ParseName();
    doc->dtd().set_doctype_name(std::string(name));
    // Skip external ID (SYSTEM/PUBLIC ...) up to '[' or '>'.
    while (!AtEnd() && Peek() != '[' && Peek() != '>') {
      if (Peek() == '"' || Peek() == '\'') SkipQuoted();
      else Advance();
    }
    if (!AtEnd() && Peek() == '[') {
      Advance();
      ParseInternalSubset(doc);
      // ParseInternalSubset stops after ']'.
      SkipWhitespace();
    }
    // Consume the closing '>'.
    while (!AtEnd() && Peek() != '>') Advance();
    if (!AtEnd()) Advance();
  }

  void SkipQuoted() {
    const char quote = Peek();
    Advance();
    while (!AtEnd() && Peek() != quote) Advance();
    if (!AtEnd()) Advance();
  }

  /// Scans markup declarations inside `[ ... ]`. Only ATTLIST ID
  /// declarations are interpreted; everything else is skipped.
  void ParseInternalSubset(XmlDocument* doc) {
    while (!AtEnd()) {
      SkipWhitespace();
      if (AtEnd()) return;
      if (Peek() == ']') {
        Advance();
        return;
      }
      if (LookingAt("<!--")) {
        SkipComment();
      } else if (LookingAt("<!ATTLIST")) {
        ParseAttlist(doc);
      } else if (LookingAt("<!ENTITY")) {
        ParseEntityDecl();
      } else if (Peek() == '<') {
        // <!ELEMENT ...>, <!ENTITY ...>, <!NOTATION ...>, <?pi?>
        while (!AtEnd() && Peek() != '>') {
          if (Peek() == '"' || Peek() == '\'') SkipQuoted();
          else Advance();
        }
        if (!AtEnd()) Advance();
      } else {
        Advance();  // Parameter entity reference or stray character.
      }
    }
  }

  /// <!ATTLIST element (attr type default)*>
  /// Registers attributes whose declared type is exactly `ID`.
  void ParseAttlist(XmlDocument* doc) {
    AdvanceBy(9);  // "<!ATTLIST"
    SkipWhitespace();
    std::string_view element = ParseName();
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() == '>') break;
      std::string_view attr = ParseName();
      if (attr.empty()) {
        // Not a name: skip one token to guarantee progress.
        Advance();
        continue;
      }
      SkipWhitespace();
      // Attribute type: a name (CDATA, ID, IDREF, NMTOKEN, ...) or an
      // enumeration "(a|b|c)" or NOTATION (...).
      std::string_view type = ParseName();
      if (type == "NOTATION") {
        SkipWhitespace();
      }
      if (!AtEnd() && Peek() == '(') {
        while (!AtEnd() && Peek() != ')') Advance();
        if (!AtEnd()) Advance();
      }
      if (type == "ID" && !element.empty()) {
        doc->dtd().DeclareIdAttribute(element, attr);
      }
      SkipWhitespace();
      // Default declaration: #REQUIRED, #IMPLIED, [#FIXED] "value".
      if (Consume("#REQUIRED") || Consume("#IMPLIED")) {
        continue;
      }
      Consume("#FIXED");
      SkipWhitespace();
      if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) SkipQuoted();
    }
    if (!AtEnd()) Advance();  // '>'
  }

  /// <!ENTITY name "replacement"> — internal general entities. Parameter
  /// entities (%name;) and external entities (SYSTEM/PUBLIC) are skipped.
  /// Replacement text is stored raw and decoded at expansion time.
  void ParseEntityDecl() {
    AdvanceBy(8);  // "<!ENTITY"
    SkipWhitespace();
    if (!AtEnd() && Peek() == '%') {
      // Parameter entity: not supported, skip the declaration.
      while (!AtEnd() && Peek() != '>') {
        if (Peek() == '"' || Peek() == '\'') SkipQuoted();
        else Advance();
      }
      if (!AtEnd()) Advance();
      return;
    }
    std::string_view name = ParseName();
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      // External entity (SYSTEM/PUBLIC ...): never fetched. The name is
      // remembered so a reference to it is rejected with a diagnostic
      // naming the real problem instead of "unknown entity".
      if (!name.empty()) external_entities_.insert(std::string(name));
      while (!AtEnd() && Peek() != '>') {
        if (Peek() == '"' || Peek() == '\'') SkipQuoted();
        else Advance();
      }
      if (!AtEnd()) Advance();
      return;
    }
    const char quote = Peek();
    Advance();
    const size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    std::string value(text_.substr(start, pos_ - start));
    if (!AtEnd()) Advance();
    while (!AtEnd() && Peek() != '>') Advance();
    if (!AtEnd()) Advance();
    if (!name.empty()) entities_.emplace(std::string(name), std::move(value));
  }

  /// Every byte a custom entity expands to is charged against one
  /// document-wide budget: chained declarations amplify input
  /// exponentially ("billion laughs"), so no per-reference or per-entity
  /// bound is safe — only the cumulative output is.
  Status ChargeEntityExpansion(size_t bytes) {
    entity_expansion_bytes_ += bytes;
    if (entity_expansion_bytes_ > options_.max_entity_expansion_bytes) {
      return Error(
          "entity expansion exceeds " +
          std::to_string(options_.max_entity_expansion_bytes) +
          " bytes (entity-expansion attack?)");
    }
    return Status::OK();
  }

  /// Decodes an entity replacement string (character references,
  /// predefined entities, nested custom entities), bounded in depth and
  /// in cumulative output bytes.
  Status ExpandEntityValue(std::string_view value, int depth,
                           std::string* out) {
    if (depth > options_.max_entity_depth) {
      return Error("entity expansion too deep (reference cycle?)");
    }
    size_t i = 0;
    while (i < value.size()) {
      const char c = value[i];
      if (c == '<') {
        return Error("entities containing markup are not supported");
      }
      if (c != '&') {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += c;
        ++i;
        continue;
      }
      const size_t semi = value.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated reference in entity value");
      }
      const std::string_view name = value.substr(i + 1, semi - i - 1);
      i = semi + 1;
      if (name.empty()) return Error("empty reference in entity value");
      if (name[0] == '#') {
        uint32_t code = 0;
        bool hex = name.size() > 1 && (name[1] == 'x' || name[1] == 'X');
        for (size_t k = hex ? 2 : 1; k < name.size(); ++k) {
          const char d = name[k];
          uint32_t digit;
          if (d >= '0' && d <= '9') digit = static_cast<uint32_t>(d - '0');
          else if (hex && d >= 'a' && d <= 'f') digit = 10u + static_cast<uint32_t>(d - 'a');
          else if (hex && d >= 'A' && d <= 'F') digit = 10u + static_cast<uint32_t>(d - 'A');
          else return Error("bad character reference in entity value");
          code = code * (hex ? 16 : 10) + digit;
          if (code > 0x10FFFF) return Error("character reference out of range");
        }
        // Chains bottom out in character/predefined references, so these
        // appends carry the amplified bytes and must be charged too.
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(Utf8Length(code)));
        AppendUtf8(code, out);
      } else if (name == "amp") {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += '&';
      } else if (name == "lt") {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += '<';
      } else if (name == "gt") {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += '>';
      } else if (name == "quot") {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += '"';
      } else if (name == "apos") {
        XYDIFF_RETURN_IF_ERROR(ChargeEntityExpansion(1));
        *out += '\'';
      } else {
        XYDIFF_RETURN_IF_ERROR(CheckCustomEntityAllowed(name));
        auto it = entities_.find(std::string(name));
        if (it == entities_.end()) {
          if (external_entities_.count(std::string(name)) != 0) {
            return Error("reference to external entity '&" +
                         std::string(name) + ";' is not supported "
                         "(external entities are never fetched)");
          }
          return Error("unknown entity '&" + std::string(name) + ";'");
        }
        XYDIFF_RETURN_IF_ERROR(
            ExpandEntityValue(it->second, depth + 1, out));
      }
    }
    return Status::OK();
  }

  // --- Names, references, attribute values -----------------------------------

  /// Returns a view into the input (empty if no name starts here).
  std::string_view ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return {};
    const size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size() &&
           kNameChar.stop[static_cast<unsigned char>(text_[pos_])]) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  /// Decodes one reference after '&'. Appends the decoded bytes to `out`;
  /// returns an error for unknown entity names.
  Status ParseReference(std::string* out) {
    Advance();  // '&'
    if (!AtEnd() && Peek() == '#') {
      Advance();
      uint32_t code = 0;
      bool hex = false;
      if (!AtEnd() && (Peek() == 'x' || Peek() == 'X')) {
        hex = true;
        Advance();
      }
      bool any = false;
      while (!AtEnd() && Peek() != ';') {
        const char c = Peek();
        uint32_t digit;
        if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
        else if (hex && c >= 'a' && c <= 'f') digit = 10u + static_cast<uint32_t>(c - 'a');
        else if (hex && c >= 'A' && c <= 'F') digit = 10u + static_cast<uint32_t>(c - 'A');
        else return Error("bad character reference");
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) return Error("character reference out of range");
        any = true;
        Advance();
      }
      if (!any || AtEnd()) return Error("unterminated character reference");
      Advance();  // ';'
      AppendUtf8(code, out);
      return Status::OK();
    }
    std::string_view name = ParseName();
    if (AtEnd() || Peek() != ';') return Error("unterminated entity reference");
    Advance();  // ';'
    if (name == "amp") *out += '&';
    else if (name == "lt") *out += '<';
    else if (name == "gt") *out += '>';
    else if (name == "quot") *out += '"';
    else if (name == "apos") *out += '\'';
    else if (auto it = entities_.find(std::string(name)); it != entities_.end()) {
      XYDIFF_RETURN_IF_ERROR(CheckCustomEntityAllowed(name));
      XYDIFF_RETURN_IF_ERROR(ExpandEntityValue(it->second, 0, out));
    } else if (external_entities_.count(std::string(name)) != 0) {
      return Error("reference to external entity '&" + std::string(name) +
                   ";' is not supported (external entities are never "
                   "fetched)");
    } else {
      return Error("unknown entity '&" + std::string(name) + ";'");
    }
    return Status::OK();
  }

  /// The max_entity_expansion_bytes = 0 switch: custom entities may be
  /// *declared* (the internal subset is still scanned for ATTLIST), but
  /// any reference to one is refused.
  Status CheckCustomEntityAllowed(std::string_view name) {
    if (options_.max_entity_expansion_bytes == 0) {
      return Error("expansion of custom entity '&" + std::string(name) +
                   ";' is disabled (max_entity_expansion_bytes = 0)");
    }
    return Status::OK();
  }

  static size_t Utf8Length(uint32_t code) {
    if (code < 0x80) return 1;
    if (code < 0x800) return 2;
    if (code < 0x10000) return 3;
    return 4;
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  /// Parses a quoted attribute value; `*stored` receives arena-resident
  /// bytes. Values without references are copied straight from the input
  /// in one shot; the decode buffer is only touched on the slow path.
  Status ParseAttributeValue(std::string_view* stored) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    const ByteTable& table = quote == '"' ? kAttrStopDq : kAttrStopSq;
    Advance();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           !table.stop[static_cast<unsigned char>(text_[pos_])]) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == quote) {
      *stored = arena_->CopyString(text_.substr(start, pos_ - start));
      ++pos_;
      return Status::OK();
    }
    // Slow path: a reference, an error character, or end of input.
    abuf_.assign(text_.data() + start, pos_ - start);
    for (;;) {
      if (AtEnd()) return Error("unterminated attribute value");
      const char c = Peek();
      if (c == quote) {
        ++pos_;
        break;
      }
      if (c == '&') {
        XYDIFF_RETURN_IF_ERROR(ParseReference(&abuf_));
      } else if (c == '<') {
        return Error("'<' in attribute value");
      } else if (IsForbiddenControlChar(c)) {
        return Error("control character in attribute value");
      }
      const size_t run = pos_;
      while (pos_ < text_.size() &&
             !table.stop[static_cast<unsigned char>(text_[pos_])]) {
        ++pos_;
      }
      abuf_.append(text_.data() + run, pos_ - run);
    }
    *stored = arena_->CopyString(abuf_);
    return Status::OK();
  }

  // --- Elements and content ---------------------------------------------------

  Status ParseElement(XmlNodePtr* out, int depth) {
    if (depth > options_.max_depth) return Error("maximum depth exceeded");
    Advance();  // '<'
    std::string_view label = ParseName();
    if (label.empty()) return Error("expected element name");
    const int32_t label_id = interner_->Intern(label);
    XmlNodePtr element =
        XmlNode::ElementInterned(arena_, interner_->View(label_id), label_id);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      std::string_view name = ParseName();
      if (name.empty()) return Error("expected attribute name");
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
      Advance();
      SkipWhitespace();
      std::string_view value;
      XYDIFF_RETURN_IF_ERROR(ParseAttributeValue(&value));
      if (element->FindAttribute(name) != nullptr) {
        return Error("duplicate attribute '" + std::string(name) + "'");
      }
      element->AddAttributeStored(interner_->InternView(name), value);
    }

    if (Consume("/>")) {
      *out = std::move(element);
      return Status::OK();
    }
    Advance();  // '>'

    XYDIFF_RETURN_IF_ERROR(ParseContent(element.get(), depth));

    // ParseContent stops at "</".
    AdvanceBy(2);
    std::string_view close = ParseName();
    if (close != element->label()) {
      return Error("mismatched end tag '</" + std::string(close) + ">' for '<" +
                   std::string(element->label()) + ">'");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
    Advance();
    *out = std::move(element);
    return Status::OK();
  }

  // Pending character data for the content section being parsed. The
  // common case — one contiguous run with no references, comments or
  // CDATA — stays a view into the input and is copied exactly once, into
  // the arena. Anything else promotes into tbuf_, a single buffer
  // retained across all text nodes of the parse.
  void AppendTextRun(std::string_view run) {
    if (run.empty()) return;
    if (tbuf_active_) {
      tbuf_.append(run.data(), run.size());
    } else if (trun_.empty()) {
      trun_ = run;
    } else {
      PromoteTextToBuffer();
      tbuf_.append(run.data(), run.size());
    }
  }

  void PromoteTextToBuffer() {
    if (tbuf_active_) return;
    if (tbuf_.capacity() < trun_.size() + 64) tbuf_.reserve(trun_.size() + 64);
    tbuf_.assign(trun_.data(), trun_.size());
    trun_ = {};
    tbuf_active_ = true;
  }

  void FlushText(XmlNode* parent) {
    const std::string_view content =
        tbuf_active_ ? std::string_view(tbuf_) : trun_;
    if (!content.empty() &&
        (options_.keep_whitespace_text || !IsAllXmlWhitespace(content))) {
      parent->AppendChild(XmlNode::TextIn(arena_, content));
    }
    trun_ = {};
    tbuf_active_ = false;
    tbuf_.clear();  // Keeps capacity: one retained buffer per parse.
  }

  /// Parses element content up to (but not consuming) the closing "</".
  Status ParseContent(XmlNode* element, int depth) {
    for (;;) {
      // Bulk-scan a character-data run up to markup, a reference, or a
      // forbidden control character.
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             !kContentStop.stop[static_cast<unsigned char>(text_[pos_])]) {
        ++pos_;
      }
      AppendTextRun(text_.substr(start, pos_ - start));
      if (AtEnd()) {
        return Error("unterminated element '" + std::string(element->label()) +
                     "'");
      }
      const char c = Peek();
      if (c == '&') {
        PromoteTextToBuffer();
        XYDIFF_RETURN_IF_ERROR(ParseReference(&tbuf_));
        continue;
      }
      if (c != '<') {
        return Error("control character in character data");
      }
      if (LookingAt("</")) {
        FlushText(element);
        return Status::OK();
      }
      if (LookingAt("<!--")) {
        SkipComment();
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        AdvanceBy(9);
        const size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          pos_ = text_.size();
          return Error("unterminated CDATA section");
        }
        AppendTextRun(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
        continue;
      }
      FlushText(element);
      XmlNodePtr child;
      XYDIFF_RETURN_IF_ERROR(ParseElement(&child, depth + 1));
      element->AppendChild(std::move(child));
    }
  }

  std::string_view text_;
  ParseOptions options_;
  Arena* arena_ = nullptr;
  StringInterner* interner_ = nullptr;
  size_t pos_ = 0;
  std::string_view trun_;     // Pending single-run character data.
  bool tbuf_active_ = false;  // True once trun_ spilled into tbuf_.
  std::string tbuf_;          // Retained character-data decode buffer.
  std::string abuf_;          // Retained attribute-value decode buffer.
  std::unordered_map<std::string, std::string> entities_;
  /// Names declared `<!ENTITY name SYSTEM/PUBLIC ...>` — kept only to
  /// reject references to them by name.
  std::unordered_set<std::string> external_entities_;
  /// Cumulative custom-entity expansion output, document-wide.
  size_t entity_expansion_bytes_ = 0;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view text,
                             const ParseOptions& options) {
  Parser parser(text, options);
  return parser.Parse();
}

Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const ParseOptions& options) {
  Result<std::string> content = Env::Default()->ReadFile(path);
  if (!content.ok()) return content.status();
  return ParseXml(*content, options);
}

}  // namespace xydiff
