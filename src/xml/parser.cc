#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace xydiff {

namespace {

/// True for characters that may start an XML name. We accept the ASCII
/// subset plus any byte >= 0x80 (UTF-8 continuation/lead bytes), which is
/// permissive but never mis-parses well-formed input.
bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// XML 1.0 forbids control characters other than tab, LF and CR.
bool IsForbiddenControlChar(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return u < 0x20 && c != '\t' && c != '\n' && c != '\r';
}

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  Result<XmlDocument> Parse() {
    XmlDocument doc;
    SkipProlog(&doc);
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    std::unique_ptr<XmlNode> root;
    Status s = ParseElement(&root, /*depth=*/0);
    if (!s.ok()) return s;
    doc.set_root(std::move(root));
    SkipMisc();
    if (!AtEnd()) {
      return Error("trailing content after root element");
    }
    return doc;
  }

 private:
  // --- Low-level cursor ----------------------------------------------------

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }
  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }
  bool LookingAt(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  bool Consume(std::string_view s) {
    if (!LookingAt(s)) return false;
    AdvanceBy(s.size());
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) Advance();
  }

  Status Error(std::string_view what) const {
    std::ostringstream os;
    os << "line " << line_ << ", column " << column_ << ": " << what;
    return Status::ParseError(os.str());
  }

  // --- Prolog / misc ---------------------------------------------------------

  void SkipProlog(XmlDocument* doc) {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
      } else if (LookingAt("<!--")) {
        SkipComment();
      } else if (LookingAt("<!DOCTYPE")) {
        ParseDoctype(doc);
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
      } else if (LookingAt("<!--")) {
        SkipComment();
      } else {
        return;
      }
    }
  }

  void SkipProcessingInstruction() {
    // Consume "<?" ... "?>"; unterminated PIs run to end of input.
    AdvanceBy(2);
    while (!AtEnd() && !LookingAt("?>")) Advance();
    Consume("?>");
  }

  void SkipComment() {
    AdvanceBy(4);  // "<!--"
    while (!AtEnd() && !LookingAt("-->")) Advance();
    Consume("-->");
  }

  // --- DOCTYPE / internal subset --------------------------------------------

  void ParseDoctype(XmlDocument* doc) {
    AdvanceBy(9);  // "<!DOCTYPE"
    SkipWhitespace();
    std::string name = ParseName();
    doc->dtd().set_doctype_name(name);
    // Skip external ID (SYSTEM/PUBLIC ...) up to '[' or '>'.
    while (!AtEnd() && Peek() != '[' && Peek() != '>') {
      if (Peek() == '"' || Peek() == '\'') SkipQuoted();
      else Advance();
    }
    if (!AtEnd() && Peek() == '[') {
      Advance();
      ParseInternalSubset(doc);
      // ParseInternalSubset stops after ']'.
      SkipWhitespace();
    }
    // Consume the closing '>'.
    while (!AtEnd() && Peek() != '>') Advance();
    if (!AtEnd()) Advance();
  }

  void SkipQuoted() {
    const char quote = Peek();
    Advance();
    while (!AtEnd() && Peek() != quote) Advance();
    if (!AtEnd()) Advance();
  }

  /// Scans markup declarations inside `[ ... ]`. Only ATTLIST ID
  /// declarations are interpreted; everything else is skipped.
  void ParseInternalSubset(XmlDocument* doc) {
    while (!AtEnd()) {
      SkipWhitespace();
      if (AtEnd()) return;
      if (Peek() == ']') {
        Advance();
        return;
      }
      if (LookingAt("<!--")) {
        SkipComment();
      } else if (LookingAt("<!ATTLIST")) {
        ParseAttlist(doc);
      } else if (LookingAt("<!ENTITY")) {
        ParseEntityDecl();
      } else if (Peek() == '<') {
        // <!ELEMENT ...>, <!ENTITY ...>, <!NOTATION ...>, <?pi?>
        while (!AtEnd() && Peek() != '>') {
          if (Peek() == '"' || Peek() == '\'') SkipQuoted();
          else Advance();
        }
        if (!AtEnd()) Advance();
      } else {
        Advance();  // Parameter entity reference or stray character.
      }
    }
  }

  /// <!ATTLIST element (attr type default)*>
  /// Registers attributes whose declared type is exactly `ID`.
  void ParseAttlist(XmlDocument* doc) {
    AdvanceBy(9);  // "<!ATTLIST"
    SkipWhitespace();
    std::string element = ParseName();
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() == '>') break;
      std::string attr = ParseName();
      if (attr.empty()) {
        // Not a name: skip one token to guarantee progress.
        Advance();
        continue;
      }
      SkipWhitespace();
      // Attribute type: a name (CDATA, ID, IDREF, NMTOKEN, ...) or an
      // enumeration "(a|b|c)" or NOTATION (...).
      std::string type = ParseName();
      if (type == "NOTATION") {
        SkipWhitespace();
      }
      if (!AtEnd() && Peek() == '(') {
        while (!AtEnd() && Peek() != ')') Advance();
        if (!AtEnd()) Advance();
      }
      if (type == "ID" && !element.empty()) {
        doc->dtd().DeclareIdAttribute(element, attr);
      }
      SkipWhitespace();
      // Default declaration: #REQUIRED, #IMPLIED, [#FIXED] "value".
      if (Consume("#REQUIRED") || Consume("#IMPLIED")) {
        continue;
      }
      Consume("#FIXED");
      SkipWhitespace();
      if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) SkipQuoted();
    }
    if (!AtEnd()) Advance();  // '>'
  }

  /// <!ENTITY name "replacement"> — internal general entities. Parameter
  /// entities (%name;) and external entities (SYSTEM/PUBLIC) are skipped.
  /// Replacement text is stored raw and decoded at expansion time.
  void ParseEntityDecl() {
    AdvanceBy(8);  // "<!ENTITY"
    SkipWhitespace();
    if (!AtEnd() && Peek() == '%') {
      // Parameter entity: not supported, skip the declaration.
      while (!AtEnd() && Peek() != '>') {
        if (Peek() == '"' || Peek() == '\'') SkipQuoted();
        else Advance();
      }
      if (!AtEnd()) Advance();
      return;
    }
    std::string name = ParseName();
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      // External entity (SYSTEM/PUBLIC ...): skip.
      while (!AtEnd() && Peek() != '>') {
        if (Peek() == '"' || Peek() == '\'') SkipQuoted();
        else Advance();
      }
      if (!AtEnd()) Advance();
      return;
    }
    const char quote = Peek();
    Advance();
    const size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    std::string value(text_.substr(start, pos_ - start));
    if (!AtEnd()) Advance();
    while (!AtEnd() && Peek() != '>') Advance();
    if (!AtEnd()) Advance();
    if (!name.empty()) entities_.emplace(std::move(name), std::move(value));
  }

  /// Decodes an entity replacement string (character references,
  /// predefined entities, nested custom entities up to a depth limit).
  Status ExpandEntityValue(std::string_view value, int depth,
                           std::string* out) {
    if (depth > 16) return Error("entity expansion too deep (cycle?)");
    size_t i = 0;
    while (i < value.size()) {
      const char c = value[i];
      if (c == '<') {
        return Error("entities containing markup are not supported");
      }
      if (c != '&') {
        *out += c;
        ++i;
        continue;
      }
      const size_t semi = value.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated reference in entity value");
      }
      const std::string_view name = value.substr(i + 1, semi - i - 1);
      i = semi + 1;
      if (name.empty()) return Error("empty reference in entity value");
      if (name[0] == '#') {
        uint32_t code = 0;
        bool hex = name.size() > 1 && (name[1] == 'x' || name[1] == 'X');
        for (size_t k = hex ? 2 : 1; k < name.size(); ++k) {
          const char d = name[k];
          uint32_t digit;
          if (d >= '0' && d <= '9') digit = static_cast<uint32_t>(d - '0');
          else if (hex && d >= 'a' && d <= 'f') digit = 10u + static_cast<uint32_t>(d - 'a');
          else if (hex && d >= 'A' && d <= 'F') digit = 10u + static_cast<uint32_t>(d - 'A');
          else return Error("bad character reference in entity value");
          code = code * (hex ? 16 : 10) + digit;
          if (code > 0x10FFFF) return Error("character reference out of range");
        }
        AppendUtf8(code, out);
      } else if (name == "amp") {
        *out += '&';
      } else if (name == "lt") {
        *out += '<';
      } else if (name == "gt") {
        *out += '>';
      } else if (name == "quot") {
        *out += '"';
      } else if (name == "apos") {
        *out += '\'';
      } else {
        auto it = entities_.find(std::string(name));
        if (it == entities_.end()) {
          return Error("unknown entity '&" + std::string(name) + ";'");
        }
        XYDIFF_RETURN_IF_ERROR(
            ExpandEntityValue(it->second, depth + 1, out));
      }
    }
    return Status::OK();
  }

  // --- Names, references, attribute values -----------------------------------

  std::string ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return {};
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Decodes one reference after '&'. Appends the decoded bytes to `out`;
  /// returns an error for unknown entity names.
  Status ParseReference(std::string* out) {
    Advance();  // '&'
    if (!AtEnd() && Peek() == '#') {
      Advance();
      uint32_t code = 0;
      bool hex = false;
      if (!AtEnd() && (Peek() == 'x' || Peek() == 'X')) {
        hex = true;
        Advance();
      }
      bool any = false;
      while (!AtEnd() && Peek() != ';') {
        const char c = Peek();
        uint32_t digit;
        if (c >= '0' && c <= '9') digit = static_cast<uint32_t>(c - '0');
        else if (hex && c >= 'a' && c <= 'f') digit = 10u + static_cast<uint32_t>(c - 'a');
        else if (hex && c >= 'A' && c <= 'F') digit = 10u + static_cast<uint32_t>(c - 'A');
        else return Error("bad character reference");
        code = code * (hex ? 16 : 10) + digit;
        if (code > 0x10FFFF) return Error("character reference out of range");
        any = true;
        Advance();
      }
      if (!any || AtEnd()) return Error("unterminated character reference");
      Advance();  // ';'
      AppendUtf8(code, out);
      return Status::OK();
    }
    std::string name = ParseName();
    if (AtEnd() || Peek() != ';') return Error("unterminated entity reference");
    Advance();  // ';'
    if (name == "amp") *out += '&';
    else if (name == "lt") *out += '<';
    else if (name == "gt") *out += '>';
    else if (name == "quot") *out += '"';
    else if (name == "apos") *out += '\'';
    else if (auto it = entities_.find(name); it != entities_.end()) {
      XYDIFF_RETURN_IF_ERROR(ExpandEntityValue(it->second, 0, out));
    } else {
      return Error("unknown entity '&" + name + ";'");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseAttributeValue(std::string* out) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    Advance();
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        XYDIFF_RETURN_IF_ERROR(ParseReference(out));
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else if (IsForbiddenControlChar(Peek())) {
        return Error("control character in attribute value");
      } else {
        *out += Peek();
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return Status::OK();
  }

  // --- Elements and content ---------------------------------------------------

  Status ParseElement(std::unique_ptr<XmlNode>* out, int depth) {
    if (depth > options_.max_depth) return Error("maximum depth exceeded");
    Advance();  // '<'
    std::string label = ParseName();
    if (label.empty()) return Error("expected element name");
    auto element = XmlNode::Element(std::move(label));

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      std::string name = ParseName();
      if (name.empty()) return Error("expected attribute name");
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' after attribute name");
      Advance();
      SkipWhitespace();
      std::string value;
      XYDIFF_RETURN_IF_ERROR(ParseAttributeValue(&value));
      if (element->FindAttribute(name) != nullptr) {
        return Error("duplicate attribute '" + name + "'");
      }
      element->SetAttribute(name, value);
    }

    if (Consume("/>")) {
      *out = std::move(element);
      return Status::OK();
    }
    Advance();  // '>'

    XYDIFF_RETURN_IF_ERROR(ParseContent(element.get(), depth));

    // ParseContent stops at "</".
    AdvanceBy(2);
    std::string close = ParseName();
    if (close != element->label()) {
      return Error("mismatched end tag '</" + close + ">' for '<" +
                   element->label() + ">'");
    }
    SkipWhitespace();
    if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
    Advance();
    *out = std::move(element);
    return Status::OK();
  }

  /// Parses element content up to (but not consuming) the closing "</".
  Status ParseContent(XmlNode* element, int depth) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (options_.keep_whitespace_text || !IsAllXmlWhitespace(text)) {
        element->AppendChild(XmlNode::Text(std::move(text)));
      }
      text.clear();
    };

    for (;;) {
      if (AtEnd()) return Error("unterminated element '" + element->label() + "'");
      if (LookingAt("</")) {
        flush_text();
        return Status::OK();
      }
      if (LookingAt("<!--")) {
        SkipComment();
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        AdvanceBy(9);
        while (!AtEnd() && !LookingAt("]]>")) {
          text += Peek();
          Advance();
        }
        if (AtEnd()) return Error("unterminated CDATA section");
        AdvanceBy(3);
        continue;
      }
      if (LookingAt("<?")) {
        SkipProcessingInstruction();
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        std::unique_ptr<XmlNode> child;
        XYDIFF_RETURN_IF_ERROR(ParseElement(&child, depth + 1));
        element->AppendChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        XYDIFF_RETURN_IF_ERROR(ParseReference(&text));
        continue;
      }
      if (IsForbiddenControlChar(Peek())) {
        return Error("control character in character data");
      }
      text += Peek();
      Advance();
    }
  }

  std::string_view text_;
  ParseOptions options_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::unordered_map<std::string, std::string> entities_;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view text,
                             const ParseOptions& options) {
  Parser parser(text, options);
  return parser.Parse();
}

Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseXml(buffer.str(), options);
}

}  // namespace xydiff
