#ifndef XYDIFF_XML_PATH_H_
#define XYDIFF_XML_PATH_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"
#include "xml/node.h"

namespace xydiff {

/// A minimal XPath-like element path used by the subscription system
/// (§2 "Monitoring changes").
///
/// Grammar:
///   path      := ("/" | "//") step ( ("/" | "//") step )*
///   step      := (name | "*") predicate?
///   predicate := "[@" name "='" value "']"
///              | "[text()='" value "']"
///
/// "/" selects children, "//" selects descendants at any depth. A step
/// matches element nodes only; the text() predicate compares the
/// concatenation of the element's direct text children. Examples:
///   /Category/NewProducts/Product
///   //Product[@status='new']
///   //Name[text()='zy456']
///   /site//page/*
class XmlPath {
 public:
  /// Parses a path expression.
  static Result<XmlPath> Parse(std::string_view expression);

  /// True if `node` (an element) is selected by this path, where the root
  /// of `node`'s tree anchors the leading "/".
  bool Matches(const XmlNode& node) const;

  /// All elements in the subtree rooted at `root` selected by this path.
  std::vector<const XmlNode*> FindAll(const XmlNode& root) const
      XY_ARENA_BOUND("root's document");

  /// The original expression.
  const std::string& expression() const { return expression_; }

 private:
  /// Owning attribute predicate (XmlAttribute itself is a pair of views
  /// into a document arena; a parsed path must own its bytes).
  struct AttrPredicate {
    std::string name;
    std::string value;
  };

  struct Step {
    bool descendant = false;  ///< Reached via "//" rather than "/".
    std::string label;        ///< "*" for a wildcard.
    std::optional<AttrPredicate> attr_predicate;
    std::optional<std::string> text_predicate;
  };

  bool StepMatches(const Step& step, const XmlNode& node) const;
  bool MatchesUpTo(const XmlNode& node, size_t step_index) const;

  std::string expression_;
  std::vector<Step> steps_;
};

}  // namespace xydiff

#endif  // XYDIFF_XML_PATH_H_
