#ifndef XYDIFF_XML_SERIALIZER_H_
#define XYDIFF_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"
#include "xml/node.h"

namespace xydiff {

/// Serializer configuration.
struct SerializeOptions {
  /// Emit `<?xml version="1.0"?>` first.
  bool xml_declaration = false;
  /// Emit a DOCTYPE with the document's ID-attribute declarations so that
  /// a round trip preserves Phase-1 information.
  bool doctype = false;
  /// Pretty-print: each element on its own line, two-space indentation.
  /// Text nodes are emitted inline (pretty output re-parses to the same
  /// tree only under the default whitespace-dropping ParseOptions).
  bool pretty = false;
  /// Emit every node's XID as a `xy:xid` attribute (debugging aid).
  bool emit_xids = false;
};

/// Serializes a subtree to XML text.
std::string SerializeNode(const XmlNode& node,
                          const SerializeOptions& options = {});

/// Serializes a whole document.
std::string SerializeDocument(const XmlDocument& doc,
                              const SerializeOptions& options = {});

/// Escapes character data: & < > (and nothing else).
std::string EscapeText(std::string_view text);

/// Escapes an attribute value for double-quoted output: & < > ".
std::string EscapeAttribute(std::string_view text);

}  // namespace xydiff

#endif  // XYDIFF_XML_SERIALIZER_H_
