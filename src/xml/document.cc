#include "xml/document.h"

namespace xydiff {

namespace {

void AssignPostfix(XmlNode* node, Xid* counter) {
  for (size_t i = 0; i < node->child_count(); ++i) {
    AssignPostfix(node->child(i), counter);
  }
  node->set_xid((*counter)++);
}

}  // namespace

XmlDocument XmlDocument::ArenaBacked(size_t first_block_hint) {
  return ArenaBacked(std::make_shared<Arena>(first_block_hint));
}

XmlDocument XmlDocument::ArenaBacked(std::shared_ptr<Arena> arena) {
  XmlDocument doc;
  doc.arena_ = std::move(arena);
  doc.interner_ = std::make_unique<StringInterner>(doc.arena_.get());
  return doc;
}

void XmlDocument::AssignInitialXids() {
  if (!root_) return;
  Xid counter = 1;
  AssignPostfix(root_.get(), &counter);
  next_xid_ = counter;
}

bool XmlDocument::AllXidsAssigned() const {
  if (!root_) return true;
  bool all = true;
  root_->Visit([&](const XmlNode* n) {
    if (n->xid() == kNoXid) all = false;
  });
  return all;
}

std::unordered_map<Xid, XmlNode*> XmlDocument::BuildXidIndex() {
  std::unordered_map<Xid, XmlNode*> index;
  if (root_) {
    index.reserve(root_->SubtreeSize());
    root_->Visit([&](XmlNode* n) {
      if (n->xid() != kNoXid) index.emplace(n->xid(), n);
    });
  }
  return index;
}

XmlDocument XmlDocument::Clone() const {
  XmlDocument copy;
  if (root_) copy.root_ = root_->Clone();
  copy.dtd_ = dtd_;
  copy.next_xid_.store(next_xid_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  return copy;
}

}  // namespace xydiff
