#ifndef XYDIFF_XML_DTD_H_
#define XYDIFF_XML_DTD_H_

#include <string>
#include <string_view>
#include <unordered_map>

namespace xydiff {

/// The slice of DTD information the diff cares about: which attribute of
/// which element type is declared `ID` (§5.2 Phase 1).
///
/// The parser fills this from the internal DTD subset
/// (`<!ATTLIST product ref ID #REQUIRED>`); callers may also declare ID
/// attributes programmatically when the document has no DTD.
class Dtd {
 public:
  /// Declares `attribute` as the ID attribute of elements labelled `label`.
  /// A later declaration for the same label overrides an earlier one (XML
  /// allows at most one ID attribute per element type).
  void DeclareIdAttribute(std::string_view label, std::string_view attribute);

  /// Returns the ID attribute name for `label`, or nullptr if none.
  const std::string* IdAttributeFor(std::string_view label) const;

  /// True if any ID attribute is declared.
  bool has_id_attributes() const { return !id_attributes_.empty(); }

  size_t id_attribute_count() const { return id_attributes_.size(); }

  /// Document type name from `<!DOCTYPE name ...>`, empty if absent.
  const std::string& doctype_name() const { return doctype_name_; }
  void set_doctype_name(std::string name) { doctype_name_ = std::move(name); }

 private:
  std::string doctype_name_;
  std::unordered_map<std::string, std::string> id_attributes_;
};

}  // namespace xydiff

#endif  // XYDIFF_XML_DTD_H_
