#ifndef XYDIFF_XML_XID_MAP_TREE_H_
#define XYDIFF_XML_XID_MAP_TREE_H_

/// The tree-facing half of the XID-map (§4): collecting a subtree's map
/// and stamping a map back onto a subtree. Lives in the xml layer — the
/// xid layer defines the map's value semantics and textual form without
/// knowing what a tree node is.

#include "util/status.h"
#include "xid/xid_map.h"
#include "xml/node.h"

namespace xydiff {

/// Collects the XID-map of the subtree rooted at `node` (postorder).
XidMap XidMapFromSubtree(const XmlNode& node);

/// Assigns `map`'s XIDs onto the subtree rooted at `node` in postorder.
/// Fails with kCorruption if the node counts disagree.
Status ApplyXidMapToSubtree(const XidMap& map, XmlNode* node);

}  // namespace xydiff

#endif  // XYDIFF_XML_XID_MAP_TREE_H_
