#ifndef XYDIFF_XML_BUILDER_H_
#define XYDIFF_XML_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "xml/document.h"
#include "xml/node.h"

namespace xydiff {

/// Fluent construction of XML trees — the programmatic alternative to
/// parsing string literals, used heavily by tests and callers that
/// assemble documents:
///
///   XmlDocument doc = ElementBuilder("Category")
///       .Child(ElementBuilder("Title").Text("Digital Cameras"))
///       .Child(ElementBuilder("Product")
///                  .Attr("status", "new")
///                  .Child(ElementBuilder("Price").Text("$799")))
///       .BuildDocument();
///
/// Builders are single-use: Build()/BuildDocument() consumes the builder.
class ElementBuilder {
 public:
  explicit ElementBuilder(std::string_view label)
      : node_(XmlNode::Element(label)) {}

  ElementBuilder(ElementBuilder&&) = default;
  ElementBuilder& operator=(ElementBuilder&&) = default;

  /// Sets an attribute; last setting of a name wins.
  ElementBuilder&& Attr(std::string_view name, std::string_view value) && {
    node_->SetAttribute(name, value);
    return std::move(*this);
  }
  ElementBuilder& Attr(std::string_view name, std::string_view value) & {
    node_->SetAttribute(name, value);
    return *this;
  }

  /// Appends a text child.
  ElementBuilder&& Text(std::string_view text) && {
    node_->AppendChild(XmlNode::Text(text));
    return std::move(*this);
  }
  ElementBuilder& Text(std::string_view text) & {
    node_->AppendChild(XmlNode::Text(text));
    return *this;
  }

  /// Appends a child element built by another builder.
  ElementBuilder&& Child(ElementBuilder child) && {
    node_->AppendChild(std::move(child).Build());
    return std::move(*this);
  }
  ElementBuilder& Child(ElementBuilder child) & {
    node_->AppendChild(std::move(child).Build());
    return *this;
  }

  /// Appends an already-built node.
  ElementBuilder&& Child(XmlNodePtr child) && {
    node_->AppendChild(std::move(child));
    return std::move(*this);
  }

  /// Releases the built subtree.
  XmlNodePtr Build() && { return std::move(node_); }

  /// Wraps the built subtree as a document (no XIDs assigned).
  XmlDocument BuildDocument() && {
    return XmlDocument(std::move(node_));
  }

 private:
  XmlNodePtr node_;
};

}  // namespace xydiff

#endif  // XYDIFF_XML_BUILDER_H_
