#include "xml/path.h"

namespace xydiff {

namespace {

bool IsStepNameChar(char c) {
  return c != '/' && c != '[' && c != ']' && c != '\0';
}

}  // namespace

Result<XmlPath> XmlPath::Parse(std::string_view expression) {
  XmlPath path;
  path.expression_ = std::string(expression);
  size_t pos = 0;
  const auto at_end = [&] { return pos >= expression.size(); };

  if (at_end() || expression[0] != '/') {
    return Status::InvalidArgument("path must start with '/': " +
                                   path.expression_);
  }
  while (!at_end()) {
    Step step;
    ++pos;  // First '/'.
    if (!at_end() && expression[pos] == '/') {
      step.descendant = true;
      ++pos;
    }
    const size_t start = pos;
    while (!at_end() && IsStepNameChar(expression[pos])) ++pos;
    step.label = std::string(expression.substr(start, pos - start));
    if (step.label.empty()) {
      return Status::InvalidArgument("empty step in path: " +
                                     path.expression_);
    }
    if (!at_end() && expression[pos] == '[') {
      // "[@name='value']" or "[text()='value']"
      ++pos;
      if (!at_end() && expression.substr(pos).rfind("text()=", 0) == 0) {
        pos += 7;
        if (at_end() || expression[pos] != '\'') {
          return Status::InvalidArgument(
              "expected quoted text() predicate value: " + path.expression_);
        }
        ++pos;
        const size_t value_start = pos;
        while (!at_end() && expression[pos] != '\'') ++pos;
        if (at_end()) {
          return Status::InvalidArgument("unterminated predicate value: " +
                                         path.expression_);
        }
        step.text_predicate =
            std::string(expression.substr(value_start, pos - value_start));
        ++pos;  // '\''
        if (at_end() || expression[pos] != ']') {
          return Status::InvalidArgument("expected ']' in predicate: " +
                                         path.expression_);
        }
        ++pos;
        if (!at_end() && expression[pos] != '/') {
          return Status::InvalidArgument("unexpected character in path: " +
                                         path.expression_);
        }
        path.steps_.push_back(std::move(step));
        continue;
      }
      if (at_end() || expression[pos] != '@') {
        return Status::InvalidArgument("expected '@' in predicate: " +
                                       path.expression_);
      }
      ++pos;
      const size_t name_start = pos;
      while (!at_end() && expression[pos] != '=') ++pos;
      if (at_end()) {
        return Status::InvalidArgument("unterminated predicate: " +
                                       path.expression_);
      }
      AttrPredicate pred;
      pred.name = std::string(expression.substr(name_start, pos - name_start));
      ++pos;  // '='
      if (at_end() || expression[pos] != '\'') {
        return Status::InvalidArgument("expected quoted predicate value: " +
                                       path.expression_);
      }
      ++pos;
      const size_t value_start = pos;
      while (!at_end() && expression[pos] != '\'') ++pos;
      if (at_end()) {
        return Status::InvalidArgument("unterminated predicate value: " +
                                       path.expression_);
      }
      pred.value = std::string(expression.substr(value_start, pos - value_start));
      ++pos;  // '\''
      if (at_end() || expression[pos] != ']') {
        return Status::InvalidArgument("expected ']' in predicate: " +
                                       path.expression_);
      }
      ++pos;
      step.attr_predicate = std::move(pred);
    }
    if (!at_end() && expression[pos] != '/') {
      return Status::InvalidArgument("unexpected character in path: " +
                                     path.expression_);
    }
    path.steps_.push_back(std::move(step));
  }
  if (path.steps_.empty()) {
    return Status::InvalidArgument("empty path");
  }
  return path;
}

bool XmlPath::StepMatches(const Step& step, const XmlNode& node) const {
  if (!node.is_element()) return false;
  if (step.label != "*" && step.label != node.label()) return false;
  if (step.attr_predicate.has_value()) {
    const std::string_view* value = node.FindAttribute(step.attr_predicate->name);
    if (value == nullptr || *value != step.attr_predicate->value) return false;
  }
  if (step.text_predicate.has_value()) {
    std::string text;
    for (size_t i = 0; i < node.child_count(); ++i) {
      if (node.child(i)->is_text()) text += node.child(i)->text();
    }
    if (text != *step.text_predicate) return false;
  }
  return true;
}

bool XmlPath::MatchesUpTo(const XmlNode& node, size_t step_index) const {
  const Step& step = steps_[step_index];
  if (!StepMatches(step, node)) return false;
  if (step_index == 0) {
    // The first step anchors at the root: "/" requires node to be the
    // root; "//" allows any depth.
    if (step.descendant) return true;
    return node.parent() == nullptr;
  }
  const XmlNode* parent = node.parent();
  if (step.descendant) {
    for (const XmlNode* anc = parent; anc != nullptr; anc = anc->parent()) {
      if (MatchesUpTo(*anc, step_index - 1)) return true;
    }
    return false;
  }
  return parent != nullptr && MatchesUpTo(*parent, step_index - 1);
}

bool XmlPath::Matches(const XmlNode& node) const {
  return MatchesUpTo(node, steps_.size() - 1);
}

std::vector<const XmlNode*> XmlPath::FindAll(const XmlNode& root) const {
  std::vector<const XmlNode*> out;
  root.Visit([&](const XmlNode* n) {
    if (n->is_element() && Matches(*n)) out.push_back(n);
  });
  return out;
}

}  // namespace xydiff
