#include "core/propagate.h"

#include <unordered_map>

namespace xydiff {

namespace {

size_t BottomUpPass(DiffTree* old_tree, DiffTree* new_tree) {
  size_t matched = 0;
  // Accumulator: candidate old-tree parent -> total weight of supporting
  // children. Reused across nodes to avoid per-node allocation.
  std::unordered_map<NodeIndex, double> support;
  for (NodeIndex i2 : new_tree->postorder()) {
    if (new_tree->matched(i2) || new_tree->id_locked(i2) ||
        !new_tree->is_element(i2)) {
      continue;
    }
    support.clear();
    for (int32_t k = 0; k < new_tree->child_count(i2); ++k) {
      const NodeIndex c2 = new_tree->child(i2, k);
      if (!new_tree->matched(c2)) continue;
      const NodeIndex p1 = old_tree->parent(new_tree->match(c2));
      if (p1 == kInvalidNode) continue;
      support[p1] += new_tree->weight(c2);
    }
    NodeIndex best = kInvalidNode;
    double best_weight = 0.0;
    for (const auto& [p1, w] : support) {
      if (w > best_weight) {
        best_weight = w;
        best = p1;
      }
    }
    if (best == kInvalidNode || old_tree->matched(best) ||
        old_tree->id_locked(best) ||
        old_tree->label(best) != new_tree->label(i2)) {
      continue;
    }
    old_tree->set_match(best, i2);
    new_tree->set_match(i2, best);
    ++matched;
  }
  return matched;
}

/// Eager-down extension: pair leftover unmatched children of a matched
/// parent pair by identical subtree signature, first-to-first in document
/// order. Linear per parent (hash map over signatures).
size_t MatchSiblingsBySignature(DiffTree* old_tree, DiffTree* new_tree,
                                NodeIndex i1, NodeIndex i2) {
  size_t matched = 0;
  std::unordered_map<Signature, std::vector<NodeIndex>> old_by_sig;
  for (int32_t k = 0; k < old_tree->child_count(i1); ++k) {
    const NodeIndex c1 = old_tree->child(i1, k);
    if (old_tree->matched(c1) || old_tree->id_locked(c1)) continue;
    old_by_sig[old_tree->signature(c1)].push_back(c1);
  }
  if (old_by_sig.empty()) return 0;
  for (int32_t k = 0; k < new_tree->child_count(i2); ++k) {
    const NodeIndex c2 = new_tree->child(i2, k);
    if (new_tree->matched(c2) || new_tree->id_locked(c2)) continue;
    auto it = old_by_sig.find(new_tree->signature(c2));
    if (it == old_by_sig.end() || it->second.empty()) continue;
    const NodeIndex c1 = it->second.front();
    it->second.erase(it->second.begin());
    old_tree->set_match(c1, c2);
    new_tree->set_match(c2, c1);
    ++matched;
  }
  return matched;
}

size_t TopDownPass(DiffTree* old_tree, DiffTree* new_tree,
                   bool eager_siblings) {
  size_t matched = 0;
  // Per-label bookkeeping of unmatched children; value is the unique such
  // child or kInvalidNode once the label is ambiguous.
  std::unordered_map<int32_t, NodeIndex> unique_old;
  for (NodeIndex i2 = 0; i2 < new_tree->size(); ++i2) {
    if (!new_tree->matched(i2) || !new_tree->is_element(i2)) continue;
    const NodeIndex i1 = new_tree->match(i2);
    if (old_tree->child_count(i1) == 0 || new_tree->child_count(i2) == 0) {
      continue;
    }
    unique_old.clear();
    for (int32_t k = 0; k < old_tree->child_count(i1); ++k) {
      const NodeIndex c1 = old_tree->child(i1, k);
      if (old_tree->matched(c1) || old_tree->id_locked(c1)) continue;
      auto [it, inserted] = unique_old.emplace(old_tree->label(c1), c1);
      if (!inserted) it->second = kInvalidNode;
    }
    if (unique_old.empty()) continue;
    // First scan the new side for label ambiguity.
    std::unordered_map<int32_t, NodeIndex> unique_new;
    for (int32_t k = 0; k < new_tree->child_count(i2); ++k) {
      const NodeIndex c2 = new_tree->child(i2, k);
      if (new_tree->matched(c2) || new_tree->id_locked(c2)) continue;
      auto [it, inserted] = unique_new.emplace(new_tree->label(c2), c2);
      if (!inserted) it->second = kInvalidNode;
    }
    for (const auto& [label, c2] : unique_new) {
      if (c2 == kInvalidNode) continue;
      auto it = unique_old.find(label);
      if (it == unique_old.end() || it->second == kInvalidNode) continue;
      const NodeIndex c1 = it->second;
      old_tree->set_match(c1, c2);
      new_tree->set_match(c2, c1);
      ++matched;
    }
    if (eager_siblings) {
      matched += MatchSiblingsBySignature(old_tree, new_tree, i1, i2);
    }
  }
  return matched;
}

}  // namespace

size_t PropagateMatchings(DiffTree* old_tree, DiffTree* new_tree,
                          const DiffOptions& options) {
  size_t total = 0;
  const int passes = options.propagation_passes < 1
                         ? 1
                         : options.propagation_passes;
  for (int pass = 0; pass < passes; ++pass) {
    const size_t before = total;
    total += BottomUpPass(old_tree, new_tree);
    total += TopDownPass(old_tree, new_tree, options.eager_sibling_matching);
    if (total == before) break;  // Fixpoint reached early.
  }
  return total;
}

}  // namespace xydiff
