#ifndef XYDIFF_CORE_CANDIDATES_H_
#define XYDIFF_CORE_CANDIDATES_H_

#include <unordered_map>
#include <vector>

#include "delta/diff_tree.h"

namespace xydiff {

/// Phase 3 candidate lookup (§5.2/§5.3): for a subtree of the new document
/// we need all old-document subtrees with the same signature (primary
/// index), and — to keep the per-node cost bounded when a short text
/// occurs thousands of times — the candidate under a *given* parent in
/// O(1) (secondary index "by their parent's identifier", §5.3).
class CandidateIndex {
 public:
  /// Indexes every subtree of `old_tree`. O(n) time and space.
  explicit CandidateIndex(const DiffTree* old_tree);

  /// All old-tree subtrees with signature `sig` (matched ones included;
  /// callers filter). Returns nullptr when none exist.
  const std::vector<NodeIndex>* Find(Signature sig) const;

  /// An *unmatched* old-tree subtree with signature `sig` whose parent is
  /// `parent`, or kInvalidNode. Among several such siblings, one at child
  /// position `preferred_position` wins ("the position among siblings
  /// plays an important role too", §5.1); otherwise the first in document
  /// order. Constant expected time (sibling candidate lists are scanned,
  /// but identical siblings under one parent are rare and capped upstream).
  NodeIndex FindUnmatchedWithParent(Signature sig, NodeIndex parent,
                                    int32_t preferred_position = -1) const;

 private:
  static uint64_t ParentKey(Signature sig, NodeIndex parent);

  const DiffTree* tree_;
  std::unordered_map<Signature, std::vector<NodeIndex>> primary_;
  std::unordered_map<uint64_t, std::vector<NodeIndex>> by_parent_;
};

}  // namespace xydiff

#endif  // XYDIFF_CORE_CANDIDATES_H_
