#ifndef XYDIFF_CORE_MATCH_IDS_H_
#define XYDIFF_CORE_MATCH_IDS_H_

#include "delta/diff_tree.h"
#include "delta/options.h"
#include "xml/dtd.h"

namespace xydiff {

/// Phase 1 (§5.2): matches elements across the two trees by their
/// DTD-declared ID attributes.
///
/// An element whose label has a declared ID attribute *and* which carries
/// that attribute can only ever be matched to the element with the same
/// (label, ID value) in the other document; every such node is locked
/// against matching in later phases ("Other nodes with ID attributes can
/// not be matched, even during the next phases"). Duplicate ID values
/// (ill-formed input) are ignored for matching but still lock their nodes.
///
/// `dtd_old`/`dtd_new` are consulted as a union, since versions of one
/// document normally share a DTD. Returns the number of pairs matched.
size_t MatchByIdAttributes(DiffTree* old_tree, DiffTree* new_tree,
                           const Dtd& dtd_old, const Dtd& dtd_new);

}  // namespace xydiff

#endif  // XYDIFF_CORE_MATCH_IDS_H_
