#include "core/candidates.h"

namespace xydiff {

CandidateIndex::CandidateIndex(const DiffTree* old_tree) : tree_(old_tree) {
  const NodeIndex n = old_tree->size();
  primary_.reserve(static_cast<size_t>(n));
  by_parent_.reserve(static_cast<size_t>(n));
  for (NodeIndex i = 0; i < n; ++i) {
    primary_[old_tree->signature(i)].push_back(i);
    const NodeIndex p = old_tree->parent(i);
    if (p != kInvalidNode) {
      by_parent_[ParentKey(old_tree->signature(i), p)].push_back(i);
    }
  }
}

const std::vector<NodeIndex>* CandidateIndex::Find(Signature sig) const {
  auto it = primary_.find(sig);
  return it == primary_.end() ? nullptr : &it->second;
}

NodeIndex CandidateIndex::FindUnmatchedWithParent(
    Signature sig, NodeIndex parent, int32_t preferred_position) const {
  auto it = by_parent_.find(ParentKey(sig, parent));
  if (it == by_parent_.end()) return kInvalidNode;
  NodeIndex first = kInvalidNode;
  for (NodeIndex c : it->second) {
    // Guard against (unlikely) 64-bit key collisions and skip matched or
    // locked candidates.
    if (tree_->signature(c) != sig || tree_->parent(c) != parent ||
        tree_->matched(c) || tree_->id_locked(c)) {
      continue;
    }
    if (preferred_position < 0 ||
        tree_->position_in_parent(c) == preferred_position) {
      return c;
    }
    if (first == kInvalidNode) first = c;
  }
  return first;
}

uint64_t CandidateIndex::ParentKey(Signature sig, NodeIndex parent) {
  return HashFinalize(
      HashCombine(sig, static_cast<Signature>(parent) + 0x9E3779B9u));
}

}  // namespace xydiff
