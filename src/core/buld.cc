#include "core/buld.h"

#include <chrono>
#include <cmath>

#include "core/candidates.h"
#include "delta/delta_builder.h"
#include "delta/diff_tree.h"
#include "core/match_ids.h"
#include "core/node_queue.h"
#include "core/propagate.h"
#include "delta/signature.h"
#include "xml/parser.h"

namespace xydiff {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Bounded ancestor depth d = 1 + factor · ln(n) · W / W0 (§5.2 "Tuning",
/// §5.3). Grows with the relative weight of the subtree being matched:
/// a heavy subtree may force matches far up the hierarchy, a light one
/// barely beyond its parent.
int AncestorDepth(double weight, double total_weight, double n,
                  const DiffOptions& options) {
  const double d = 1.0 + options.ancestor_depth_factor * std::log(n + 1.0) *
                             (weight / std::max(total_weight, 1.0));
  return static_cast<int>(std::min(d, 64.0));
}

class Buld {
 public:
  Buld(XmlDocument* old_doc, XmlDocument* new_doc, const DiffOptions& options)
      : old_doc_(old_doc), new_doc_(new_doc), options_(options) {}

  Result<Delta> Run(DiffStats* stats) {
    // --- Phase 2 (build flat trees, signatures, weights) ---------------
    const auto t_start = Clock::now();
    t1_ = DiffTree::Build(old_doc_, &labels_);
    t2_ = DiffTree::Build(new_doc_, &labels_);
    ComputeSignaturesAndWeights(&t1_, options_);
    ComputeSignaturesAndWeights(&t2_, options_);
    const auto t_phase2 = Clock::now();

    // --- Phase 1 (ID attributes) ----------------------------------------
    size_t id_matched = 0;
    if (options_.use_id_attributes) {
      id_matched = MatchByIdAttributes(&t1_, &t2_, old_doc_->dtd(),
                                       new_doc_->dtd());
      if (id_matched > 0) {
        PropagateMatchings(&t1_, &t2_, options_);
      }
    }
    const auto t_phase1 = Clock::now();

    // --- Phase 3 (heaviest-first matching) --------------------------------
    // Cooperative check-point: this is the diff's dominant loop, so a
    // deadline or cancellation is observed here within a stride of pops
    // (DESIGN.md §3.17). Abandoning mid-match is safe — the trees are
    // scratch state and the caller discards the documents on error.
    DeadlineChecker checkpoint(options_.context);
    CandidateIndex index(&t1_);
    index_ = &index;
    NodeQueue queue(&t2_);
    queue.Push(0);
    while (!queue.empty()) {
      XYDIFF_RETURN_IF_ERROR(checkpoint.Check());
      const NodeIndex v2 = queue.Pop();
      ++counters_.queue_pops;
      if (t2_.matched(v2) || t2_.id_locked(v2)) {
        PushChildren(v2, &queue);
        continue;
      }
      const NodeIndex v1 = FindBestCandidate(v2);
      if (v1 == kInvalidNode) {
        if (t2_.is_element(v2)) PushChildren(v2, &queue);
        continue;
      }
      ++counters_.subtree_matches;
      MatchSubtrees(v1, v2, &queue);
      MatchAncestors(v1, v2);
    }
    // The roots always correspond when nothing contradicts it (two
    // versions of one document share a root element); without this
    // anchor, top-down propagation could never start on documents whose
    // content changed everywhere.
    if (!t1_.matched(0) && !t2_.matched(0) && !t1_.id_locked(0) &&
        !t2_.id_locked(0) && t1_.label(0) == t2_.label(0)) {
      t1_.set_match(0, 0);
      t2_.set_match(0, 0);
    }
    const auto t_phase3 = Clock::now();

    // --- Phase 4 (peephole optimization) -----------------------------------
    XYDIFF_RETURN_IF_ERROR(checkpoint.CheckNow());
    counters_.propagation_matches = PropagateMatchings(&t1_, &t2_, options_);
    const auto t_phase4 = Clock::now();

    // --- Phase 5 (delta construction) ---------------------------------------
    // Last check before construction: Phase 5 assigns XIDs to the new
    // document, so bailing after it would leave visible partial state.
    XYDIFF_RETURN_IF_ERROR(checkpoint.CheckNow());
    Delta delta = BuildDeltaFromMatching(&t1_, &t2_, old_doc_, new_doc_,
                                         options_, DeltaBuildConfig{});
    const auto t_phase5 = Clock::now();

    if (stats != nullptr) {
      stats->phase2_seconds = Seconds(t_start, t_phase2);
      stats->phase1_seconds = Seconds(t_phase2, t_phase1);
      stats->phase3_seconds = Seconds(t_phase1, t_phase3);
      stats->phase4_seconds = Seconds(t_phase3, t_phase4);
      stats->phase5_seconds = Seconds(t_phase4, t_phase5);
      stats->nodes_old = static_cast<size_t>(t1_.size());
      stats->nodes_new = static_cast<size_t>(t2_.size());
      stats->id_matched_nodes = id_matched;
      size_t matched = 0;
      for (NodeIndex i = 0; i < t2_.size(); ++i) {
        if (t2_.matched(i)) ++matched;
      }
      stats->matched_nodes = matched;
      stats->queue_pops = counters_.queue_pops;
      stats->candidates_scanned = counters_.candidates_scanned;
      stats->subtree_matches = counters_.subtree_matches;
      stats->ancestor_matches = counters_.ancestor_matches;
      stats->propagation_matches = counters_.propagation_matches;
    }
    return delta;
  }

 private:
  void PushChildren(NodeIndex v2, NodeQueue* queue) {
    for (int32_t k = 0; k < t2_.child_count(v2); ++k) {
      queue->Push(t2_.child(v2, k));
    }
  }

  /// Phase 3 candidate selection (§5.2): prefer a candidate whose
  /// ancestor at some level <= d corresponds to the reference node's
  /// matched ancestor at the same level; failing that, accept a unique
  /// candidate outright.
  NodeIndex FindBestCandidate(NodeIndex v2) {
    const Signature sig = t2_.signature(v2);
    const std::vector<NodeIndex>* candidates = index_->Find(sig);
    if (candidates == nullptr) return kInvalidNode;

    const double n =
        static_cast<double>(t1_.size()) + static_cast<double>(t2_.size());
    const int depth =
        AncestorDepth(t2_.weight(v2), t2_.total_weight(), n, options_);

    NodeIndex a2 = v2;
    for (int level = 1; level <= depth; ++level) {
      a2 = t2_.parent(a2);
      if (a2 == kInvalidNode) break;
      if (!t2_.matched(a2)) continue;
      const NodeIndex target = t2_.match(a2);
      if (level == 1) {
        // O(1) via the secondary (signature, parent) index (§5.3),
        // preferring the candidate at the same sibling position (§5.1).
        const NodeIndex c = index_->FindUnmatchedWithParent(
            sig, target, t2_.position_in_parent(v2));
        if (c != kInvalidNode) return c;
      } else {
        size_t scanned = 0;
        for (NodeIndex c : *candidates) {
          if (++scanned > options_.max_candidates_scanned) break;
          ++counters_.candidates_scanned;
          if (t1_.matched(c) || t1_.id_locked(c)) continue;
          if (AncestorAt(t1_, c, level) == target) return c;
        }
      }
    }

    if (options_.accept_unique_candidate) {
      NodeIndex unique = kInvalidNode;
      size_t scanned = 0;
      for (NodeIndex c : *candidates) {
        if (++scanned > options_.max_candidates_scanned + 1) {
          return kInvalidNode;  // Too ambiguous; give up on this node.
        }
        ++counters_.candidates_scanned;
        if (t1_.matched(c) || t1_.id_locked(c)) continue;
        if (unique != kInvalidNode) return kInvalidNode;  // Ambiguous.
        unique = c;
      }
      return unique;
    }
    return kInvalidNode;
  }

  static NodeIndex AncestorAt(const DiffTree& t, NodeIndex i, int level) {
    for (int k = 0; k < level && i != kInvalidNode; ++k) i = t.parent(i);
    return i;
  }

  /// Matches the two identical subtrees node by node. Pairs blocked by an
  /// earlier conflicting match (possible: a descendant of v1 may already
  /// be matched to a heavier subtree elsewhere) are skipped, and the
  /// corresponding new-document nodes re-enter the queue.
  void MatchSubtrees(NodeIndex v1, NodeIndex v2, NodeQueue* queue) {
    if (t1_.matched(v1) || t2_.matched(v2) || t1_.id_locked(v1) ||
        t2_.id_locked(v2)) {
      if (!t2_.matched(v2)) queue->Push(v2);
    } else {
      t1_.set_match(v1, v2);
      t2_.set_match(v2, v1);
    }
    const int32_t n1 = t1_.child_count(v1);
    const int32_t n2 = t2_.child_count(v2);
    if (n1 != n2) return;  // Possible only on a signature collision.
    for (int32_t k = 0; k < n1; ++k) {
      MatchSubtrees(t1_.child(v1, k), t2_.child(v2, k), queue);
    }
  }

  /// Climbs from a freshly matched pair, matching ancestors as long as
  /// they are free and share a label; the climb length is weight-bounded.
  void MatchAncestors(NodeIndex v1, NodeIndex v2) {
    const double n =
        static_cast<double>(t1_.size()) + static_cast<double>(t2_.size());
    const int max_up =
        AncestorDepth(t2_.weight(v2), t2_.total_weight(), n, options_);
    NodeIndex a1 = t1_.parent(v1);
    NodeIndex a2 = t2_.parent(v2);
    for (int step = 0; step < max_up; ++step) {
      if (a1 == kInvalidNode || a2 == kInvalidNode) return;
      if (t1_.matched(a1) || t2_.matched(a2) || t1_.id_locked(a1) ||
          t2_.id_locked(a2)) {
        return;
      }
      if (t1_.label(a1) != t2_.label(a2)) return;
      t1_.set_match(a1, a2);
      t2_.set_match(a2, a1);
      ++counters_.ancestor_matches;
      a1 = t1_.parent(a1);
      a2 = t2_.parent(a2);
    }
  }

  /// Phase-3/4 instrumentation mirrored into DiffStats.
  struct Counters {
    size_t queue_pops = 0;
    size_t candidates_scanned = 0;
    size_t subtree_matches = 0;
    size_t ancestor_matches = 0;
    size_t propagation_matches = 0;
  };

  XmlDocument* old_doc_;
  XmlDocument* new_doc_;
  DiffOptions options_;
  LabelTable labels_;
  DiffTree t1_;
  DiffTree t2_;
  const CandidateIndex* index_ = nullptr;
  Counters counters_;
};

}  // namespace

Result<Delta> XyDiff(XmlDocument* old_doc, XmlDocument* new_doc,
                     const DiffOptions& options, DiffStats* stats) {
  if (old_doc->root() == nullptr || new_doc->root() == nullptr) {
    return Status::InvalidArgument("both documents must have a root element");
  }
  if (options.context != nullptr) {
    XYDIFF_RETURN_IF_ERROR(options.context->Check());
  }
  if (!old_doc->AllXidsAssigned()) {
    // First-version semantics when the document carries no XIDs at all.
    bool any = false;
    old_doc->root()->Visit([&](const XmlNode* n) {
      if (n->xid() != kNoXid) any = true;
    });
    if (any) {
      return Status::InvalidArgument(
          "old document has partially assigned XIDs");
    }
    old_doc->AssignInitialXids();
  }
  Buld buld(old_doc, new_doc, options);
  return buld.Run(stats);
}

Result<Delta> XyDiffText(std::string_view old_xml, std::string_view new_xml,
                         const DiffOptions& options, DiffStats* stats) {
  Result<XmlDocument> old_doc = ParseXml(old_xml);
  if (!old_doc.ok()) return old_doc.status();
  Result<XmlDocument> new_doc = ParseXml(new_xml);
  if (!new_doc.ok()) return new_doc.status();
  old_doc->AssignInitialXids();
  return XyDiff(&old_doc.value(), &new_doc.value(), options, stats);
}

}  // namespace xydiff
