#ifndef XYDIFF_CORE_PROPAGATE_H_
#define XYDIFF_CORE_PROPAGATE_H_

#include <cstddef>

#include "delta/diff_tree.h"
#include "delta/options.h"

namespace xydiff {

/// The "simple bottom-up and top-down pass" used after Phase 1 and as
/// Phase 4 (§5.2, §5.3). Both passes cost O(n) per invocation.
///
/// Bottom-up ("propagate to parent"): an unmatched element of the new
/// document whose children are matched is matched to the parent, in the
/// old document, of the heaviest set of those children's partners —
/// provided that parent is unmatched, unlocked and has the same label.
///
/// Top-down ("propagate to children"): for every matched pair, children
/// with a label that occurs exactly once among the unmatched children on
/// both sides are matched to each other (text nodes count as one shared
/// pseudo-label, which is how slightly-changed text under matched parents
/// becomes an *update* rather than a delete+insert).
///
/// Returns the number of pairs matched by this call.
size_t PropagateMatchings(DiffTree* old_tree, DiffTree* new_tree,
                          const DiffOptions& options);

}  // namespace xydiff

#endif  // XYDIFF_CORE_PROPAGATE_H_
