#include "core/match_ids.h"

#include <string>
#include <unordered_map>

#include "util/hash.h"

namespace xydiff {

namespace {

/// Returns the ID value of node `i` if its label has a declared ID
/// attribute that the node carries, or nullptr.
const std::string_view* IdValue(const DiffTree& tree, NodeIndex i,
                                const Dtd& dtd_old, const Dtd& dtd_new) {
  if (!tree.is_element(i)) return nullptr;
  const XmlNode& dom = *tree.dom(i);
  const std::string* attr = dtd_old.IdAttributeFor(dom.label());
  if (attr == nullptr) attr = dtd_new.IdAttributeFor(dom.label());
  if (attr == nullptr) return nullptr;
  return dom.FindAttribute(*attr);
}

uint64_t IdKey(int32_t label, std::string_view value) {
  return HashFinalize(
      HashCombine(HashBytes(value), static_cast<uint64_t>(label) + 1));
}

}  // namespace

size_t MatchByIdAttributes(DiffTree* old_tree, DiffTree* new_tree,
                           const Dtd& dtd_old, const Dtd& dtd_new) {
  if (!dtd_old.has_id_attributes() && !dtd_new.has_id_attributes()) return 0;

  // (label, id value) -> node in the old tree; kInvalidNode marks
  // duplicates, which are unusable for matching.
  std::unordered_map<uint64_t, NodeIndex> by_id;
  for (NodeIndex i = 0; i < old_tree->size(); ++i) {
    const std::string_view* value = IdValue(*old_tree, i, dtd_old, dtd_new);
    if (value == nullptr) continue;
    old_tree->set_id_locked(i);
    auto [it, inserted] = by_id.emplace(IdKey(old_tree->label(i), *value), i);
    if (!inserted) it->second = kInvalidNode;
  }

  size_t matched = 0;
  std::unordered_map<uint64_t, bool> used_new_keys;
  for (NodeIndex j = 0; j < new_tree->size(); ++j) {
    const std::string_view* value = IdValue(*new_tree, j, dtd_old, dtd_new);
    if (value == nullptr) continue;
    new_tree->set_id_locked(j);
    const uint64_t key = IdKey(new_tree->label(j), *value);
    // A duplicated ID value in the new document is equally ambiguous.
    auto [uit, first_use] = used_new_keys.emplace(key, true);
    if (!first_use) {
      const NodeIndex prev = [&] {
        auto it = by_id.find(key);
        return it == by_id.end() ? kInvalidNode : it->second;
      }();
      if (prev != kInvalidNode && old_tree->matched(prev)) {
        // Undo the ambiguous earlier match.
        new_tree->set_match(old_tree->match(prev), kInvalidNode);
        old_tree->set_match(prev, kInvalidNode);
        --matched;
      }
      continue;
    }
    auto it = by_id.find(key);
    if (it == by_id.end() || it->second == kInvalidNode) continue;
    const NodeIndex i = it->second;
    old_tree->set_match(i, j);
    new_tree->set_match(j, i);
    ++matched;
  }
  return matched;
}

}  // namespace xydiff
