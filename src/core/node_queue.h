#ifndef XYDIFF_CORE_NODE_QUEUE_H_
#define XYDIFF_CORE_NODE_QUEUE_H_

#include <queue>
#include <vector>

#include "delta/diff_tree.h"

namespace xydiff {

/// Phase 2/3 priority queue of new-document subtrees, ordered by weight,
/// heaviest first; among equal weights the first-inserted subtree wins
/// (§5.2 Phase 2). Backed by a binary heap: O(log n) per operation, which
/// gives the n·log n worst-case term of §5.3.
class NodeQueue {
 public:
  explicit NodeQueue(const DiffTree* tree) : tree_(tree) {}

  void Push(NodeIndex node) {
    heap_.push(Entry{tree_->weight(node), seq_++, node});
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Removes and returns the heaviest subtree root.
  NodeIndex Pop() {
    const NodeIndex node = heap_.top().node;
    heap_.pop();
    return node;
  }

 private:
  struct Entry {
    double weight;
    uint64_t seq;
    NodeIndex node;
  };
  struct Compare {
    // std::priority_queue is a max-heap on this "less-than": an entry is
    // *worse* if lighter, or at equal weight if inserted later.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.weight != b.weight) return a.weight < b.weight;
      return a.seq > b.seq;
    }
  };

  const DiffTree* tree_;
  uint64_t seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Compare> heap_;
};

}  // namespace xydiff

#endif  // XYDIFF_CORE_NODE_QUEUE_H_
