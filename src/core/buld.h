#ifndef XYDIFF_CORE_BULD_H_
#define XYDIFF_CORE_BULD_H_

#include "delta/options.h"
#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// The BULD diff (§5): computes a delta transforming `*old_doc` into
/// `*new_doc`.
///
/// Matching is propagated Bottom-Up and (most of the time only) Lazily
/// Down: identical subtrees are matched heaviest-first via signatures,
/// matches climb to ancestors with equal labels (bounded by subtree
/// weight), and a peephole pass fills structural gaps. Expected cost is
/// O(n log n) in the total input size (§5.3).
///
/// Side effects:
/// * If `old_doc` carries no XIDs at all, initial postfix XIDs are
///   assigned to it (first-version semantics). Partially assigned XIDs
///   are an error.
/// * `new_doc` receives its persistent identification: matched nodes
///   inherit their partner's XID, new nodes get fresh XIDs, and the
///   allocator advances accordingly.
///
/// The returned delta is "correct" in the paper's sense — applying it to
/// the old version yields exactly the new version (see apply.h) — and
/// close to minimal, trading a little quality for speed.
Result<Delta> XyDiff(XmlDocument* old_doc, XmlDocument* new_doc,
                     const DiffOptions& options = {},
                     DiffStats* stats = nullptr);

/// Convenience overload for callers that start from XML text: parses both
/// documents, assigns initial XIDs to the old one, diffs, and returns the
/// delta.
Result<Delta> XyDiffText(std::string_view old_xml, std::string_view new_xml,
                         const DiffOptions& options = {},
                         DiffStats* stats = nullptr);

}  // namespace xydiff

#endif  // XYDIFF_CORE_BULD_H_
