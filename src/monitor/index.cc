#include "monitor/index.h"

#include <cctype>
#include <unordered_map>

namespace xydiff {

namespace {

/// Lazy XID index over one document: built on the first lookup, so
/// deltas without updates never pay the O(n) walk.
class LazyXidIndex {
 public:
  explicit LazyXidIndex(const XmlDocument& doc) : doc_(doc) {}

  const XmlNode* Find(Xid xid) {
    if (!built_) {
      if (doc_.root() != nullptr) {
        doc_.root()->Visit(
            [&](const XmlNode* n) { index_.emplace(n->xid(), n); });
      }
      built_ = true;
    }
    auto it = index_.find(xid);
    return it == index_.end() ? nullptr : it->second;
  }

 private:
  const XmlDocument& doc_;
  bool built_ = false;
  std::unordered_map<Xid, const XmlNode*> index_;
};

}  // namespace

std::vector<std::string> FullTextIndex::Tokenize(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

void FullTextIndex::AddText(Xid xid, std::string_view text) {
  for (const std::string& word : Tokenize(text)) {
    postings_[word].insert(xid);
  }
}

void FullTextIndex::RemoveText(Xid xid, std::string_view text) {
  for (const std::string& word : Tokenize(text)) {
    auto it = postings_.find(word);
    if (it == postings_.end()) continue;
    it->second.erase(xid);
    if (it->second.empty()) postings_.erase(it);
  }
}

FullTextIndex FullTextIndex::Build(const XmlDocument& doc) {
  FullTextIndex index;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&](const XmlNode* n) {
      if (n->is_text()) index.AddText(n->xid(), n->text());
    });
  }
  return index;
}

Status FullTextIndex::Apply(const Delta& delta,
                            const XmlDocument& old_version,
                            const XmlDocument& new_version) {
  // Deletions remove their snapshot's words (the snapshot excludes
  // moved-away nodes, whose postings must survive — they still exist).
  for (const DeleteOp& op : delta.deletes()) {
    if (op.subtree == nullptr) {
      return Status::InvalidArgument("delete op without snapshot");
    }
    op.subtree->Visit([&](const XmlNode* n) {
      if (n->is_text()) RemoveText(n->xid(), n->text());
    });
  }
  for (const InsertOp& op : delta.inserts()) {
    if (op.subtree == nullptr) {
      return Status::InvalidArgument("insert op without snapshot");
    }
    op.subtree->Visit([&](const XmlNode* n) {
      if (n->is_text()) AddText(n->xid(), n->text());
    });
  }
  LazyXidIndex old_index(old_version);
  LazyXidIndex new_index(new_version);
  for (const UpdateOp& op : delta.updates()) {
    // Resolve full texts against the two versions so compressed updates
    // need no splicing logic here.
    const XmlNode* old_node = old_index.Find(op.xid);
    const XmlNode* new_node = new_index.Find(op.xid);
    if (old_node == nullptr || !old_node->is_text() || new_node == nullptr ||
        !new_node->is_text()) {
      return Status::NotFound("update references unknown text XID " +
                              std::to_string(op.xid));
    }
    RemoveText(op.xid, old_node->text());
    AddText(op.xid, new_node->text());
  }
  // Moves and attribute operations do not touch text postings.
  return Status::OK();
}

std::vector<Xid> FullTextIndex::Lookup(std::string_view word) const {
  std::string key;
  for (char c : word) {
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto it = postings_.find(key);
  if (it == postings_.end()) return {};
  return std::vector<Xid>(it->second.begin(), it->second.end());
}

size_t FullTextIndex::posting_count() const {
  size_t total = 0;
  for (const auto& [word, xids] : postings_) total += xids.size();
  return total;
}

}  // namespace xydiff
