#include "monitor/index.h"

#include <cctype>

namespace xydiff {

namespace {

/// Streams the lowercase alphanumeric words of `text` into `fn` without
/// allocating per word: `scratch` is reused across words (and calls).
/// This is THE hot loop of both index construction and incremental
/// maintenance — a posting update per word, millions of words per crawl.
template <typename Fn>
void ForEachToken(std::string_view text, std::string* scratch, Fn&& fn) {
  scratch->clear();
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      *scratch += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!scratch->empty()) {
      fn(std::string_view(*scratch));
      scratch->clear();
    }
  }
  if (!scratch->empty()) fn(std::string_view(*scratch));
}

}  // namespace

std::vector<std::string> FullTextIndex::Tokenize(std::string_view text) {
  std::vector<std::string> words;
  std::string scratch;
  ForEachToken(text, &scratch,
               [&](std::string_view word) { words.emplace_back(word); });
  return words;
}

void FullTextIndex::AddText(Xid xid, std::string_view text) {
  std::string scratch;
  ForEachToken(text, &scratch, [&](std::string_view word) {
    auto it = postings_.find(word);
    if (it == postings_.end()) {
      it = postings_.emplace(std::string(word), std::set<Xid>()).first;
    }
    it->second.insert(xid);
  });
}

void FullTextIndex::RemoveText(Xid xid, std::string_view text) {
  std::string scratch;
  ForEachToken(text, &scratch, [&](std::string_view word) {
    auto it = postings_.find(word);
    if (it == postings_.end()) return;
    it->second.erase(xid);
    if (it->second.empty()) postings_.erase(it);
  });
}

FullTextIndex FullTextIndex::Build(const XmlDocument& doc) {
  FullTextIndex index;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&](const XmlNode* n) {
      if (n->is_text()) index.AddText(n->xid(), n->text());
    });
  }
  return index;
}

Status FullTextIndex::Apply(const Delta& delta,
                            const XmlDocument& old_version,
                            const XmlDocument& new_version) {
  return Apply(delta, DeltaNodeIndex::Build(delta, old_version, new_version));
}

Status FullTextIndex::Apply(const Delta& delta, const DeltaNodeIndex& nodes) {
  // Deletions remove their snapshot's words (the snapshot excludes
  // moved-away nodes, whose postings must survive — they still exist).
  for (const DeleteOp& op : delta.deletes()) {
    if (op.subtree == nullptr) {
      return Status::InvalidArgument("delete op without snapshot");
    }
    op.subtree->Visit([&](const XmlNode* n) {
      if (n->is_text()) RemoveText(n->xid(), n->text());
    });
  }
  for (const InsertOp& op : delta.inserts()) {
    if (op.subtree == nullptr) {
      return Status::InvalidArgument("insert op without snapshot");
    }
    op.subtree->Visit([&](const XmlNode* n) {
      if (n->is_text()) AddText(n->xid(), n->text());
    });
  }
  for (const UpdateOp& op : delta.updates()) {
    // Resolve full texts against the two versions so compressed updates
    // need no splicing logic here.
    const XmlNode* old_node = nodes.old_node(op.xid);
    const XmlNode* new_node = nodes.new_node(op.xid);
    if (old_node == nullptr || !old_node->is_text() || new_node == nullptr ||
        !new_node->is_text()) {
      return Status::NotFound("update references unknown text XID " +
                              std::to_string(op.xid));
    }
    RemoveText(op.xid, old_node->text());
    AddText(op.xid, new_node->text());
  }
  // Moves and attribute operations do not touch text postings.
  return Status::OK();
}

std::vector<Xid> FullTextIndex::Lookup(std::string_view word) const {
  std::string key;
  for (char c : word) {
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto it = postings_.find(key);
  if (it == postings_.end()) return {};
  return std::vector<Xid>(it->second.begin(), it->second.end());
}

size_t FullTextIndex::posting_count() const {
  size_t total = 0;
  for (const auto& [word, xids] : postings_) total += xids.size();
  return total;
}

}  // namespace xydiff
