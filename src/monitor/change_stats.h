#ifndef XYDIFF_MONITOR_CHANGE_STATS_H_
#define XYDIFF_MONITOR_CHANGE_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "delta/delta.h"
#include "delta/node_index.h"
#include "xml/document.h"

namespace xydiff {

/// Per-element-label change counters accumulated across deltas.
///
/// §5.2: "the DTD ... is an excellent structure to record statistical
/// information. It is therefore a useful tool to introduce learning
/// features in the algorithm, e.g. learn that a price node is more likely
/// to change than a description node." §7 likewise calls for gathering
/// "statistics on change frequency, patterns of changes in a document".
///
/// This module is that statistics collector: feed it every (delta,
/// old version, new version) triple a document produces, and it maintains
/// how often each element label was inserted, deleted, moved, had its
/// text updated, or had attributes changed — plus how often it occurred
/// at all, so rates are comparable across labels.
class ChangeStatistics {
 public:
  /// Counters for one element label.
  struct LabelStats {
    size_t occurrences = 0;  ///< Element instances seen across versions.
    size_t inserted = 0;
    size_t deleted = 0;
    size_t moved = 0;
    size_t text_updated = 0;  ///< A text child of this element changed.
    size_t attr_changed = 0;

    size_t total_changes() const {
      return inserted + deleted + moved + text_updated + attr_changed;
    }
    /// Changes per occurrence; 0 when the label was never seen.
    double change_rate() const {
      return occurrences == 0
                 ? 0.0
                 : static_cast<double>(total_changes()) /
                       static_cast<double>(occurrences);
    }
  };

  /// Accumulates one version transition. `old_version`/`new_version` are
  /// the documents the delta connects (needed to resolve XIDs to labels
  /// and to count occurrences).
  void Accumulate(const Delta& delta, const XmlDocument& old_version,
                  const XmlDocument& new_version);

  /// Same, against a prebuilt DeltaNodeIndex (which must have been built
  /// for this delta between the same two versions); the warehouse ingest
  /// path shares one node resolution across all delta consumers.
  void Accumulate(const Delta& delta, const XmlDocument& new_version,
                  const DeltaNodeIndex& nodes);

  /// Folds another collector into this one (used to merge per-thread
  /// collectors cheaply: O(labels), not O(document)).
  void Merge(const ChangeStatistics& other);

  /// Statistics for one label (zeros if never seen).
  LabelStats ForLabel(const std::string& label) const;

  /// Labels ranked by change rate, most volatile first; at most `limit`
  /// entries, labels with fewer than `min_occurrences` sightings skipped.
  std::vector<std::pair<std::string, LabelStats>> MostVolatile(
      size_t limit, size_t min_occurrences = 4) const;

  /// Number of transitions accumulated.
  size_t delta_count() const { return delta_count_; }

  /// Human-readable summary table.
  std::string Report(size_t limit = 10) const;

 private:
  // Transparent comparator: hot paths look labels up by string_view
  // without materialising a std::string per node.
  std::map<std::string, LabelStats, std::less<>> by_label_;
  size_t delta_count_ = 0;
};

}  // namespace xydiff

#endif  // XYDIFF_MONITOR_CHANGE_STATS_H_
