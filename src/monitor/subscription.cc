#include "monitor/subscription.h"

namespace xydiff {

namespace {

/// Nearest element at or above `node` (text updates are reported against
/// their containing element).
const XmlNode* OwningElement(const XmlNode* node) {
  while (node != nullptr && !node->is_element()) node = node->parent();
  return node;
}

/// Short description of an element including its first text descendant,
/// so content filters have something to match ("inserted <Product>
/// 'zy456'").
std::string DescribeElement(const XmlNode& node) {
  std::string out = "<" + std::string(node.label()) + ">";
  const XmlNode* hint = nullptr;
  node.Visit([&](const XmlNode* n) {
    if (hint == nullptr && n->is_text()) hint = n;
  });
  if (hint != nullptr) {
    out += " '";
    out += hint->text().substr(0, 48);
    out += "'";
  }
  return out;
}

}  // namespace

const char* ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert: return "insert";
    case ChangeKind::kDelete: return "delete";
    case ChangeKind::kUpdate: return "update";
    case ChangeKind::kMove: return "move";
    case ChangeKind::kAttribute: return "attribute";
  }
  return "unknown";
}

Status Alerter::Subscribe(std::string id, std::string_view path_expression,
                          std::optional<ChangeKind> kind,
                          std::string detail_contains) {
  for (const Subscription& sub : subscriptions_) {
    if (sub.id == id) {
      return Status::InvalidArgument("duplicate subscription id: " + id);
    }
  }
  Result<XmlPath> path = XmlPath::Parse(path_expression);
  if (!path.ok()) return path.status();
  subscriptions_.push_back(Subscription{std::move(id), std::move(*path), kind,
                                        std::move(detail_contains)});
  return Status::OK();
}

bool Alerter::Unsubscribe(std::string_view id) {
  for (auto it = subscriptions_.begin(); it != subscriptions_.end(); ++it) {
    if (it->id == id) {
      subscriptions_.erase(it);
      return true;
    }
  }
  return false;
}

void Alerter::Fire(const Subscription& sub, ChangeKind kind,
                   const XmlNode& node, std::string detail,
                   std::vector<Alert>* alerts) const {
  if (sub.kind.has_value() && *sub.kind != kind) return;
  if (!sub.path.Matches(node)) return;
  if (!sub.detail_contains.empty() &&
      detail.find(sub.detail_contains) == std::string::npos) {
    return;
  }
  alerts->push_back(Alert{sub.id, kind, node.xid(), std::move(detail)});
}

std::vector<Alert> Alerter::Evaluate(const Delta& delta,
                                     const XmlDocument& old_version,
                                     const XmlDocument& new_version) const {
  if (subscriptions_.empty() || delta.empty()) return {};
  return Evaluate(delta,
                  DeltaNodeIndex::Build(delta, old_version, new_version));
}

std::vector<Alert> Alerter::Evaluate(const Delta& delta,
                                     const DeltaNodeIndex& nodes) const {
  std::vector<Alert> alerts;
  if (subscriptions_.empty() || delta.empty()) return alerts;

  for (const InsertOp& op : delta.inserts()) {
    const XmlNode* root = nodes.new_node(op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (!n->is_element()) return;
      for (const Subscription& sub : subscriptions_) {
        Fire(sub, ChangeKind::kInsert, *n, "inserted " + DescribeElement(*n),
             &alerts);
      }
    });
  }
  for (const DeleteOp& op : delta.deletes()) {
    const XmlNode* root = nodes.old_node(op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (!n->is_element()) return;
      for (const Subscription& sub : subscriptions_) {
        Fire(sub, ChangeKind::kDelete, *n, "deleted " + DescribeElement(*n),
             &alerts);
      }
    });
  }
  for (const UpdateOp& op : delta.updates()) {
    const XmlNode* element = OwningElement(nodes.new_node(op.xid));
    if (element == nullptr) continue;
    for (const Subscription& sub : subscriptions_) {
      Fire(sub, ChangeKind::kUpdate, *element,
           "text of <" + std::string(element->label()) +
               "> changed from '" +
               op.old_value + "' to '" + op.new_value + "'",
           &alerts);
    }
  }
  for (const MoveOp& op : delta.moves()) {
    const XmlNode* node = nodes.new_node(op.xid);
    if (node == nullptr) continue;
    const XmlNode* element = OwningElement(node);
    if (element == nullptr) continue;
    for (const Subscription& sub : subscriptions_) {
      Fire(sub, ChangeKind::kMove, *element,
           element->is_element()
               ? "moved <" + std::string(element->label()) + ">"
                                 : "moved node",
           &alerts);
    }
  }
  for (const AttributeOp& op : delta.attribute_ops()) {
    const XmlNode* element = nodes.new_node(op.element_xid);
    if (element == nullptr || !element->is_element()) continue;
    for (const Subscription& sub : subscriptions_) {
      Fire(sub, ChangeKind::kAttribute, *element,
           "attribute '" + op.name + "' of <" +
               std::string(element->label()) +
               "> changed",
           &alerts);
    }
  }
  return alerts;
}

}  // namespace xydiff
