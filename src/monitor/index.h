#ifndef XYDIFF_MONITOR_INDEX_H_
#define XYDIFF_MONITOR_INDEX_H_

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "delta/delta.h"
#include "delta/node_index.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Incremental full-text index maintenance — §2 "Indexing": "In Xyleme,
/// we maintain a full-text index over a large volume of XML documents ...
/// We are considering the possibility to use the diff to maintain such
/// indexes."
///
/// The index maps lowercase words to the persistent identifiers (XIDs) of
/// the text nodes containing them. Because XIDs survive across versions,
/// a delta pinpoints exactly which postings change: deleted subtrees
/// remove their words, inserted subtrees add theirs, updates swap the
/// words of one node, and moves cost nothing at all — the headline win
/// over rebuild-from-scratch.
class FullTextIndex {
 public:
  FullTextIndex() = default;

  /// Builds the index over a full document (the non-incremental path).
  static FullTextIndex Build(const XmlDocument& doc);

  /// Incrementally maintains the index across one version transition.
  /// `old_version`/`new_version` are the documents the delta connects
  /// (needed to resolve compressed updates and verify postings).
  Status Apply(const Delta& delta, const XmlDocument& old_version,
               const XmlDocument& new_version);

  /// Same, against a prebuilt DeltaNodeIndex — the warehouse ingest path
  /// shares one node resolution across index, alerter, and statistics
  /// instead of each rebuilding an O(n) XID map.
  Status Apply(const Delta& delta, const DeltaNodeIndex& nodes);

  /// XIDs of text nodes containing `word` (case-insensitive), ascending.
  std::vector<Xid> Lookup(std::string_view word) const;

  /// Number of distinct words.
  size_t word_count() const { return postings_.size(); }
  /// Total number of (word, node) postings.
  size_t posting_count() const;

  bool operator==(const FullTextIndex&) const = default;

  /// Splits text into lowercase alphanumeric words (the tokenizer the
  /// index uses; exposed for tests and query code).
  static std::vector<std::string> Tokenize(std::string_view text);

 private:
  void AddText(Xid xid, std::string_view text);
  void RemoveText(Xid xid, std::string_view text);

  // Heterogeneous hash: the hot posting update path (ingest) probes by
  // string_view and only materialises a key string for words never seen
  // before. A hash table beats an ordered map here — one probe instead
  // of a log(vocabulary) descent per word — and nothing observable
  // depends on word order (posting lists themselves stay sorted sets).
  struct WordHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::set<Xid>, WordHash, std::equal_to<>>
      postings_;
};

}  // namespace xydiff

#endif  // XYDIFF_MONITOR_INDEX_H_
