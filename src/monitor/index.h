#ifndef XYDIFF_MONITOR_INDEX_H_
#define XYDIFF_MONITOR_INDEX_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "delta/delta.h"
#include "util/status.h"
#include "xml/document.h"

namespace xydiff {

/// Incremental full-text index maintenance — §2 "Indexing": "In Xyleme,
/// we maintain a full-text index over a large volume of XML documents ...
/// We are considering the possibility to use the diff to maintain such
/// indexes."
///
/// The index maps lowercase words to the persistent identifiers (XIDs) of
/// the text nodes containing them. Because XIDs survive across versions,
/// a delta pinpoints exactly which postings change: deleted subtrees
/// remove their words, inserted subtrees add theirs, updates swap the
/// words of one node, and moves cost nothing at all — the headline win
/// over rebuild-from-scratch.
class FullTextIndex {
 public:
  FullTextIndex() = default;

  /// Builds the index over a full document (the non-incremental path).
  static FullTextIndex Build(const XmlDocument& doc);

  /// Incrementally maintains the index across one version transition.
  /// `old_version`/`new_version` are the documents the delta connects
  /// (needed to resolve compressed updates and verify postings).
  Status Apply(const Delta& delta, const XmlDocument& old_version,
               const XmlDocument& new_version);

  /// XIDs of text nodes containing `word` (case-insensitive), ascending.
  std::vector<Xid> Lookup(std::string_view word) const;

  /// Number of distinct words.
  size_t word_count() const { return postings_.size(); }
  /// Total number of (word, node) postings.
  size_t posting_count() const;

  bool operator==(const FullTextIndex&) const = default;

  /// Splits text into lowercase alphanumeric words (the tokenizer the
  /// index uses; exposed for tests and query code).
  static std::vector<std::string> Tokenize(std::string_view text);

 private:
  void AddText(Xid xid, std::string_view text);
  void RemoveText(Xid xid, std::string_view text);

  std::map<std::string, std::set<Xid>> postings_;
};

}  // namespace xydiff

#endif  // XYDIFF_MONITOR_INDEX_H_
