#include "monitor/change_stats.h"

#include <algorithm>
#include <sstream>
#include <string_view>
#include <unordered_map>

namespace xydiff {

namespace {

/// Nearest element at or above the node, or nullptr.
const XmlNode* OwningElement(const XmlNode* node) {
  while (node != nullptr && !node->is_element()) node = node->parent();
  return node;
}

}  // namespace

void ChangeStatistics::Accumulate(const Delta& delta,
                                  const XmlDocument& old_version,
                                  const XmlDocument& new_version) {
  Accumulate(delta, new_version,
             DeltaNodeIndex::Build(delta, old_version, new_version));
}

void ChangeStatistics::Accumulate(const Delta& delta,
                                  const XmlDocument& new_version,
                                  const DeltaNodeIndex& nodes) {
  ++delta_count_;

  // Transparent-comparator lookup: increment by string_view, allocating a
  // key only the first time a label is ever seen.
  const auto stats_for = [this](std::string_view label) -> LabelStats& {
    auto it = by_label_.find(label);
    if (it == by_label_.end()) {
      it = by_label_.emplace(std::string(label), LabelStats{}).first;
    }
    return it->second;
  };

  // Occurrences: count element instances in the *new* version plus the
  // deleted elements of the old one, so every changed element is also
  // counted as occurring. Interned labels repeat heavily, so fold a local
  // histogram into the map once per distinct label instead of paying a
  // map lookup per node.
  if (new_version.root() != nullptr) {
    std::unordered_map<std::string_view, size_t> histogram;
    new_version.root()->Visit([&](const XmlNode* n) {
      if (n->is_element()) ++histogram[n->label()];
    });
    for (const auto& [label, count] : histogram) {
      stats_for(label).occurrences += count;
    }
  }

  for (const InsertOp& op : delta.inserts()) {
    const XmlNode* root = nodes.new_node(op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (n->is_element()) ++stats_for(n->label()).inserted;
    });
  }
  for (const DeleteOp& op : delta.deletes()) {
    const XmlNode* root = nodes.old_node(op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (!n->is_element()) return;
      LabelStats& stats = stats_for(n->label());
      ++stats.deleted;
      ++stats.occurrences;  // Deleted elements are not in the new version.
    });
  }
  for (const MoveOp& op : delta.moves()) {
    const XmlNode* owner = OwningElement(nodes.new_node(op.xid));
    if (owner != nullptr) ++stats_for(owner->label()).moved;
  }
  for (const UpdateOp& op : delta.updates()) {
    const XmlNode* owner = OwningElement(nodes.new_node(op.xid));
    if (owner != nullptr) ++stats_for(owner->label()).text_updated;
  }
  for (const AttributeOp& op : delta.attribute_ops()) {
    const XmlNode* element = nodes.new_node(op.element_xid);
    if (element != nullptr && element->is_element()) {
      ++stats_for(element->label()).attr_changed;
    }
  }
}

void ChangeStatistics::Merge(const ChangeStatistics& other) {
  delta_count_ += other.delta_count_;
  for (const auto& [label, stats] : other.by_label_) {
    LabelStats& mine = by_label_[label];
    mine.occurrences += stats.occurrences;
    mine.inserted += stats.inserted;
    mine.deleted += stats.deleted;
    mine.moved += stats.moved;
    mine.text_updated += stats.text_updated;
    mine.attr_changed += stats.attr_changed;
  }
}

ChangeStatistics::LabelStats ChangeStatistics::ForLabel(
    const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? LabelStats{} : it->second;
}

std::vector<std::pair<std::string, ChangeStatistics::LabelStats>>
ChangeStatistics::MostVolatile(size_t limit, size_t min_occurrences) const {
  std::vector<std::pair<std::string, LabelStats>> out;
  for (const auto& [label, stats] : by_label_) {
    if (stats.occurrences >= min_occurrences && stats.total_changes() > 0) {
      out.emplace_back(label, stats);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.change_rate() != b.second.change_rate()) {
      return a.second.change_rate() > b.second.change_rate();
    }
    return a.first < b.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::string ChangeStatistics::Report(size_t limit) const {
  std::ostringstream os;
  os << "change statistics over " << delta_count_ << " delta(s)\n";
  os << "label                 occur   ins   del   mov   upd  attr   rate\n";
  for (const auto& [label, stats] : MostVolatile(limit)) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-20s %6zu %5zu %5zu %5zu %5zu %5zu %6.2f\n",
                  label.c_str(), stats.occurrences, stats.inserted,
                  stats.deleted, stats.moved, stats.text_updated,
                  stats.attr_changed, stats.change_rate());
    os << line;
  }
  return os.str();
}

}  // namespace xydiff
