#include "monitor/change_stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace xydiff {

namespace {

std::unordered_map<Xid, const XmlNode*> IndexByXid(const XmlDocument& doc) {
  std::unordered_map<Xid, const XmlNode*> index;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&](const XmlNode* n) { index.emplace(n->xid(), n); });
  }
  return index;
}

/// Nearest element at or above the node, or nullptr.
const XmlNode* OwningElement(const XmlNode* node) {
  while (node != nullptr && !node->is_element()) node = node->parent();
  return node;
}

}  // namespace

void ChangeStatistics::Accumulate(const Delta& delta,
                                  const XmlDocument& old_version,
                                  const XmlDocument& new_version) {
  ++delta_count_;

  // Occurrences: count element instances in the *new* version plus the
  // deleted elements of the old one, so every changed element is also
  // counted as occurring.
  if (new_version.root() != nullptr) {
    new_version.root()->Visit([&](const XmlNode* n) {
      if (n->is_element()) ++by_label_[std::string(n->label())].occurrences;
    });
  }

  const auto old_index = IndexByXid(old_version);
  const auto new_index = IndexByXid(new_version);
  const auto find = [](const std::unordered_map<Xid, const XmlNode*>& index,
                       Xid xid) -> const XmlNode* {
    auto it = index.find(xid);
    return it == index.end() ? nullptr : it->second;
  };

  for (const InsertOp& op : delta.inserts()) {
    const XmlNode* root = find(new_index, op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (n->is_element()) ++by_label_[std::string(n->label())].inserted;
    });
  }
  for (const DeleteOp& op : delta.deletes()) {
    const XmlNode* root = find(old_index, op.xid);
    if (root == nullptr) continue;
    root->Visit([&](const XmlNode* n) {
      if (!n->is_element()) return;
      LabelStats& stats = by_label_[std::string(n->label())];
      ++stats.deleted;
      ++stats.occurrences;  // Deleted elements are not in the new version.
    });
  }
  for (const MoveOp& op : delta.moves()) {
    const XmlNode* owner = OwningElement(find(new_index, op.xid));
    if (owner != nullptr) ++by_label_[std::string(owner->label())].moved;
  }
  for (const UpdateOp& op : delta.updates()) {
    const XmlNode* owner = OwningElement(find(new_index, op.xid));
    if (owner != nullptr) {
      ++by_label_[std::string(owner->label())].text_updated;
    }
  }
  for (const AttributeOp& op : delta.attribute_ops()) {
    const XmlNode* element = find(new_index, op.element_xid);
    if (element != nullptr && element->is_element()) {
      ++by_label_[std::string(element->label())].attr_changed;
    }
  }
}

void ChangeStatistics::Merge(const ChangeStatistics& other) {
  delta_count_ += other.delta_count_;
  for (const auto& [label, stats] : other.by_label_) {
    LabelStats& mine = by_label_[label];
    mine.occurrences += stats.occurrences;
    mine.inserted += stats.inserted;
    mine.deleted += stats.deleted;
    mine.moved += stats.moved;
    mine.text_updated += stats.text_updated;
    mine.attr_changed += stats.attr_changed;
  }
}

ChangeStatistics::LabelStats ChangeStatistics::ForLabel(
    const std::string& label) const {
  auto it = by_label_.find(label);
  return it == by_label_.end() ? LabelStats{} : it->second;
}

std::vector<std::pair<std::string, ChangeStatistics::LabelStats>>
ChangeStatistics::MostVolatile(size_t limit, size_t min_occurrences) const {
  std::vector<std::pair<std::string, LabelStats>> out;
  for (const auto& [label, stats] : by_label_) {
    if (stats.occurrences >= min_occurrences && stats.total_changes() > 0) {
      out.emplace_back(label, stats);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second.change_rate() != b.second.change_rate()) {
      return a.second.change_rate() > b.second.change_rate();
    }
    return a.first < b.first;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::string ChangeStatistics::Report(size_t limit) const {
  std::ostringstream os;
  os << "change statistics over " << delta_count_ << " delta(s)\n";
  os << "label                 occur   ins   del   mov   upd  attr   rate\n";
  for (const auto& [label, stats] : MostVolatile(limit)) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-20s %6zu %5zu %5zu %5zu %5zu %5zu %6.2f\n",
                  label.c_str(), stats.occurrences, stats.inserted,
                  stats.deleted, stats.moved, stats.text_updated,
                  stats.attr_changed, stats.change_rate());
    os << line;
  }
  return os.str();
}

}  // namespace xydiff
