#ifndef XYDIFF_MONITOR_SUBSCRIPTION_H_
#define XYDIFF_MONITOR_SUBSCRIPTION_H_

#include <optional>
#include <string>
#include <vector>

#include "delta/delta.h"
#include "delta/node_index.h"
#include "util/status.h"
#include "xml/document.h"
#include "xml/path.h"

namespace xydiff {

/// What kind of change a subscription is interested in.
enum class ChangeKind { kInsert, kDelete, kUpdate, kMove, kAttribute };

const char* ChangeKindName(ChangeKind kind);

/// One fired notification.
struct Alert {
  std::string subscription_id;
  ChangeKind kind = ChangeKind::kUpdate;
  Xid xid = kNoXid;      ///< The affected node.
  std::string detail;    ///< Human-readable description.
};

/// The subscription system / Alerter of Figure 1 (§2 "Monitoring
/// changes"): "detect changes of interest in XML documents, e.g. that a
/// new product has been added to a catalog. ... at the time we obtain a
/// new version of some data, we diff it and verify if some of the changes
/// that have been detected are relevant to subscriptions."
///
/// A subscription pairs an element path (xml/path.h) with an optional
/// change kind. Evaluation runs over a delta plus the two document
/// versions (needed to resolve paths for nodes named by XID):
///  * insert  — fires when any element inside an inserted subtree matches;
///  * delete  — likewise, against the old version;
///  * update  — fires when the updated text's parent element matches;
///  * move    — fires when the moved element (new position) matches;
///  * attribute — fires when the owning element (new version) matches.
class Alerter {
 public:
  /// Registers a subscription. Fails on an invalid path expression or a
  /// duplicate id. `detail_contains`, when non-empty, further restricts
  /// the subscription to changes whose description contains the given
  /// substring (e.g. a product name within an inserted subtree's label,
  /// or a value within an update's old/new text).
  Status Subscribe(std::string id, std::string_view path_expression,
                   std::optional<ChangeKind> kind = std::nullopt,
                   std::string detail_contains = {});

  /// Removes a subscription; false if the id is unknown.
  bool Unsubscribe(std::string_view id);

  size_t subscription_count() const { return subscriptions_.size(); }

  /// Evaluates `delta` against the subscriptions. `old_version` and
  /// `new_version` are the two versions the delta connects.
  std::vector<Alert> Evaluate(const Delta& delta,
                              const XmlDocument& old_version,
                              const XmlDocument& new_version) const;

  /// Same, against a prebuilt DeltaNodeIndex so the warehouse ingest
  /// path resolves delta-referenced nodes once for all consumers.
  std::vector<Alert> Evaluate(const Delta& delta,
                              const DeltaNodeIndex& nodes) const;

 private:
  struct Subscription {
    std::string id;
    XmlPath path;
    std::optional<ChangeKind> kind;
    std::string detail_contains;  ///< Empty = no content filter.
  };

  void Fire(const Subscription& sub, ChangeKind kind, const XmlNode& node,
            std::string detail, std::vector<Alert>* alerts) const;

  std::vector<Subscription> subscriptions_;
};

}  // namespace xydiff

#endif  // XYDIFF_MONITOR_SUBSCRIPTION_H_
