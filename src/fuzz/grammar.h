#ifndef XYDIFF_FUZZ_GRAMMAR_H_
#define XYDIFF_FUZZ_GRAMMAR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/document.h"

namespace xydiff {

/// Adversarial input grammars for the differential fuzzer, layered over
/// the §6.1 simulator. Each profile is a named grammar with a
/// deterministic contract: `GenerateTrial(profile, seed, size)` always
/// produces byte-identical inputs for the same triple, so every logged
/// failure reproduces from its `(seed, profile, size)` line alone.
///
/// Two kinds of grammar:
///  * tree profiles shape DocGenOptions/ChangeSimOptions to stress a
///    specific matching pathology (deep recursion, huge child lists,
///    signature collisions, move storms);
///  * raw-byte profiles emit hostile *text* — entity/DTD bombs and
///    byte-level mutations of well-formed documents — whose first oracle
///    is the parser itself (clean Status or clean parse, never a crash).
enum class FuzzProfileKind {
  kTreePair,  ///< Generator + simulator: version chain v1 -> v2 -> v3.
  kRawBytes,  ///< Hostile text; versions exist only if the parser accepts.
};

/// One named grammar.
struct FuzzProfile {
  std::string name;
  FuzzProfileKind kind = FuzzProfileKind::kTreePair;
  std::string description;
  DocGenOptions doc;     ///< Document shape (tree profiles; also the
                         ///< pre-mutation base of `byte-mutation`).
  ChangeSimOptions sim;  ///< Change mix applied to derive v2 and v3.
};

/// The grammar catalog (stable order; names are the CLI/ctest contract).
const std::vector<FuzzProfile>& FuzzProfiles();

/// Looks up a profile by name; nullptr when unknown.
const FuzzProfile* FindFuzzProfile(std::string_view name);

/// One generated trial. `document_xml` is always the exact bytes fed to
/// the parser; the version chain is present when parsing (and then
/// simulation) succeeded. Raw-byte profiles are *expected* to produce
/// rejected inputs — a rejection is recorded, not an error; only a crash
/// or a dirty Status is a finding.
struct FuzzTrial {
  std::string profile;
  uint64_t seed = 0;
  size_t size = 0;

  std::string document_xml;          ///< Bytes fed to ParseXml.
  std::optional<XmlDocument> v1;     ///< Parsed base, XIDs assigned.
  std::optional<XmlDocument> v2;     ///< SimulateChanges(v1).
  std::optional<XmlDocument> v3;     ///< SimulateChanges(v2).
  std::string rejection;             ///< Parser message when v1 is absent.

  bool has_versions() const { return v1 && v2 && v3; }
  /// The `(seed, profile, size)` line a failure is reproduced from.
  std::string ReproLine() const;
};

/// Deterministically generates one trial. `scale` in (0, 1] multiplies
/// every change probability — the shrinker's change-mix axis; 1.0 is the
/// grammar as catalogued.
FuzzTrial GenerateTrial(const FuzzProfile& profile, uint64_t seed,
                        size_t size, double scale = 1.0);

/// Same, with the profile's change mix replaced wholesale — the
/// shrinker's simulator-profile axis (fuzz/shrink.h zeroes one
/// operation-kind probability at a time through this overload).
FuzzTrial GenerateTrial(const FuzzProfile& profile, uint64_t seed,
                        size_t size, const ChangeSimOptions& sim);

/// Raw-byte grammar internals, exposed for targeted tests.
///
/// Hostile entity/DTD documents: internal subsets with chained,
/// self-referential, oversized, external and parameter entities, plus
/// bodies referencing them. About half the outputs must be rejected by a
/// hardened parser; none may hang or crash it.
std::string GenerateHostileEntityXml(Rng* rng, size_t size);

/// Byte-level mutation: flips, splices, truncations and duplications of
/// a well-formed serialized document.
std::string MutateXmlBytes(Rng* rng, std::string xml, size_t mutations);

}  // namespace xydiff

#endif  // XYDIFF_FUZZ_GRAMMAR_H_
