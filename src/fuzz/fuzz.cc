#include "fuzz/fuzz.h"

#include <chrono>
#include <optional>
#include <utility>

#include "util/context.h"

#include "fuzz/grammar.h"
#include "fuzz/shrink.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/fault_env.h"
#include "util/random.h"
#include "version/storage.h"
#include "version/warehouse.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

constexpr size_t kCrashSlots = 3;

/// Byte-exact identity of a repository: every version serialized with
/// XIDs. Epoch counters and file layout are free to differ between two
/// stores with equal signatures — consumers cannot tell them apart.
Result<std::vector<std::string>> RepoSignature(const VersionRepository& repo) {
  std::vector<std::string> out;
  SerializeOptions options;
  options.emit_xids = true;
  for (int v = 1; v <= repo.version_count(); ++v) {
    Result<XmlDocument> doc = repo.Checkout(v);
    if (!doc.ok()) return doc.status();
    out.push_back(SerializeDocument(*doc, options));
  }
  return out;
}

/// Small deterministic repository for the crash trials (512-byte
/// documents keep a single probe fast enough to sweep many seeds).
VersionRepository MakeCrashRepo(uint64_t seed, int extra_versions) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = 512;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    if (!change.ok()) break;
    Result<int> committed = repo.Commit(std::move(change->new_version));
    if (!committed.ok()) break;
  }
  return repo;
}

/// Arms one seed-chosen fault at an operation index inside (or just
/// past) the protocol under test: a hard crash, a torn write, or a
/// cancellation that fires mid-protocol. For the cancel plan the
/// returned Context must be threaded into the protocol (the op itself
/// proceeds; the victim notices at its next check-point) — the other
/// plans return nullopt.
std::optional<Context> ArmFault(Rng* rng, FaultInjectionEnv* env,
                                int op_range) {
  const int op = static_cast<int>(rng->NextBelow(op_range));
  switch (rng->NextBelow(3)) {
    case 0:
      env->CrashAt(op);
      return std::nullopt;
    case 1:
      env->TearWriteAt(op, rng->NextBelow(600));
      return std::nullopt;
    default: {
      CancellationSource source;
      env->CancelAt(op, source);
      return source.MakeContext();
    }
  }
}

/// Persists a failing trial's exact input bytes and repro line.
void PersistFailure(Env* env, const FuzzOptions& options,
                    const FuzzTrial& trial, FuzzFailure* failure) {
  if (options.corpus_directory.empty()) return;
  const std::string stem = options.corpus_directory + "/" + trial.profile +
                           "-" + std::to_string(trial.seed);
  Status s = env->CreateDirs(options.corpus_directory);
  if (s.ok()) s = env->WriteFileAtomic(stem + ".xml", trial.document_xml);
  if (s.ok()) {
    s = env->WriteFileAtomic(stem + ".repro",
                             failure->repro + "\n" + failure->detail + "\n");
  }
  if (s.ok()) {
    failure->detail += " [corpus: " + stem + ".xml]";
  } else {
    failure->detail += " (corpus write failed: " + s.ToString() + ")";
  }
}

}  // namespace

std::string FuzzSummary::ToString() const {
  std::string out =
      "fuzz: " + std::to_string(trials) + " trial(s) across " +
      std::to_string(profiles_run.size()) + " profile(s), " +
      std::to_string(oracle_checks) + " oracle check(s), " +
      std::to_string(accepted) + " accepted / " + std::to_string(rejected) +
      " rejected input(s), " + std::to_string(crash_trials) +
      " crash trial(s)";
  if (time_exhausted) out += " [time budget exhausted]";
  out += "\n";
  if (failures.empty()) {
    out += "no divergences, no hybrid states\n";
  }
  for (const FuzzFailure& failure : failures) {
    out += "FAIL [" + failure.kind + "] " +
           (failure.repro.empty() ? failure.profile : failure.repro) +
           "\n  " + failure.detail + "\n";
  }
  return out;
}

OracleReport ReproduceTrial(std::string_view profile_name, uint64_t seed,
                            size_t size, const OracleOptions& oracles) {
  const FuzzProfile* profile = FindFuzzProfile(profile_name);
  if (profile == nullptr) {
    OracleReport report;
    report.failures.push_back(
        {"config", "unknown profile '" + std::string(profile_name) + "'"});
    return report;
  }
  return CheckTrialOracles(GenerateTrial(*profile, seed, size), oracles);
}

Status RunCrashBatchSaveTrial(uint64_t seed, const std::string& directory,
                              Env* base_env) {
  // Build the 3-slot pre/post corpus: `after` replays `before`'s
  // deterministic construction, then commits one more change.
  std::vector<VersionRepository> before, after;
  std::vector<std::vector<std::string>> sig_before, sig_after;
  for (size_t i = 0; i < kCrashSlots; ++i) {
    const uint64_t slot_seed = seed * 1000003 + i;
    before.push_back(MakeCrashRepo(slot_seed, 1));
    VersionRepository post = MakeCrashRepo(slot_seed, 1);
    Rng change_rng(slot_seed + 77);
    Result<SimulatedChange> change =
        SimulateChanges(post.current(), ChangeSimOptions{}, &change_rng);
    if (change.ok()) {
      Result<int> committed = post.Commit(std::move(change->new_version));
      if (!committed.ok()) return committed.status();
    }
    after.push_back(std::move(post));
    Result<std::vector<std::string>> sb = RepoSignature(before.back());
    Result<std::vector<std::string>> sa = RepoSignature(after.back());
    if (!sb.ok()) return sb.status();
    if (!sa.ok()) return sa.status();
    sig_before.push_back(std::move(*sb));
    sig_after.push_back(std::move(*sa));
  }

  FaultInjectionEnv env(base_env);
  // A stale journal from an interrupted earlier run would skew the
  // probe; recovery clears it (no journal present is a no-op).
  if (Status s = RecoverRepositoryBatch(directory, &env); !s.ok()) return s;
  std::vector<RepositorySaveSlot> slots;
  for (size_t i = 0; i < kCrashSlots; ++i) {
    slots.push_back({&before[i], "slot" + std::to_string(i)});
  }
  if (Status s = SaveRepositoryBatch(slots, directory, &env); !s.ok()) {
    return s;
  }
  env.Reset();  // Disk state stands; forget counters and durable images.

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const std::optional<Context> cancel_context = ArmFault(&rng, &env, 192);
  slots.clear();
  for (size_t i = 0; i < kCrashSlots; ++i) {
    slots.push_back({&after[i], "slot" + std::to_string(i)});
  }
  const Status saved =
      SaveRepositoryBatch(slots, directory, &env,
                          cancel_context ? &*cancel_context : nullptr);
  if (Status s = env.DropUnsyncedData(); !s.ok()) return s;
  if (Status s = RecoverRepositoryBatch(directory, base_env); !s.ok()) {
    return s;
  }

  size_t pre = 0, post = 0;
  for (size_t i = 0; i < kCrashSlots; ++i) {
    RecoveryReport report;
    Result<VersionRepository> reopened = LoadRepository(
        directory + "/slot" + std::to_string(i), base_env, &report);
    if (!reopened.ok()) {
      return Status::Corruption("slot " + std::to_string(i) +
                                " failed to reopen after the crash: " +
                                reopened.status().ToString());
    }
    Result<std::vector<std::string>> sig = RepoSignature(*reopened);
    if (!sig.ok()) return sig.status();
    if (*sig == sig_before[i]) {
      ++pre;
    } else if (*sig == sig_after[i]) {
      ++post;
    } else {
      return Status::Corruption("slot " + std::to_string(i) +
                                " reopened as neither pre- nor post-batch "
                                "(hybrid state)");
    }
  }
  if (pre != kCrashSlots && post != kCrashSlots) {
    return Status::Corruption(
        "torn group commit: " + std::to_string(pre) + " slot(s) pre-batch, " +
        std::to_string(post) + " post-batch");
  }
  if (saved.ok() && post != kCrashSlots) {
    return Status::Corruption(
        "batched save reported success but slots reopened pre-batch");
  }
  return Status::OK();
}

Status RunCrashDiffBatchTrial(uint64_t seed, const std::string& directory,
                              Env* base_env) {
  // Three URLs, each with a three-version trajectory of raw crawler
  // input. Three rounds because the store stage skips first-sight slots
  // ("no delta to store for version 1"): round 1 seeds the warehouse
  // in-memory, round 2 is the first round that persists (the pre state),
  // and the fault lands in round 3 (the post state).
  std::vector<std::string> urls, v1_xml, v2_xml, v3_xml;
  for (size_t i = 0; i < kCrashSlots; ++i) {
    urls.push_back("doc" + std::to_string(i));
    Rng doc_rng(seed * 1000003 + 31 * i + 7);
    DocGenOptions gen;
    gen.target_bytes = 512;
    XmlDocument v1 = GenerateDocument(&doc_rng, gen);
    v1.AssignInitialXids();
    v1_xml.push_back(SerializeDocument(v1));
    Result<SimulatedChange> c2 =
        SimulateChanges(v1, ChangeSimOptions{}, &doc_rng);
    if (!c2.ok()) return c2.status();
    v2_xml.push_back(SerializeDocument(c2->new_version));
    Result<SimulatedChange> c3 =
        SimulateChanges(c2->new_version, ChangeSimOptions{}, &doc_rng);
    if (!c3.ok()) return c3.status();
    v3_xml.push_back(SerializeDocument(c3->new_version));
  }

  const auto make_pipeline = [](const std::string& dir, Env* env) {
    Warehouse::PipelineOptions pipeline;
    pipeline.threads = 1;  // Deterministic slot order and XIDs.
    pipeline.save_directory = dir;
    pipeline.env = env;
    pipeline.retry_backoff_ms = 1;
    return pipeline;
  };
  const auto jobs_for = [&urls](const std::vector<std::string>& xml) {
    std::vector<Warehouse::DiffJob> jobs;
    for (size_t i = 0; i < xml.size(); ++i) jobs.push_back({urls[i], xml[i]});
    return jobs;
  };
  const auto slot_signature =
      [&urls](const std::string& dir, size_t i,
              Env* env) -> Result<std::vector<std::string>> {
    Result<VersionRepository> repo = LoadRepository(dir + "/" + urls[i], env);
    if (!repo.ok()) return repo.status();
    return RepoSignature(*repo);
  };

  // The expected pre (round 1) and post (round 2) states come from a
  // fault-free twin run: the staged pipeline is deterministic, XIDs
  // included, at threads = 1.
  const std::string expect_dir = directory + "/expect";
  const std::string live_dir = directory + "/live";
  std::vector<std::vector<std::string>> sig_pre, sig_post;
  {
    Warehouse expected;
    for (const std::vector<std::string>* round : {&v1_xml, &v2_xml}) {
      for (const auto& result : expected.DiffBatch(
               jobs_for(*round), make_pipeline(expect_dir, base_env))) {
        if (!result.ok()) return result.status();
      }
    }
    for (size_t i = 0; i < kCrashSlots; ++i) {
      Result<std::vector<std::string>> sig =
          slot_signature(expect_dir, i, base_env);
      if (!sig.ok()) return sig.status();
      sig_pre.push_back(std::move(*sig));
    }
    for (const auto& result : expected.DiffBatch(
             jobs_for(v3_xml), make_pipeline(expect_dir, base_env))) {
      if (!result.ok()) return result.status();
    }
    for (size_t i = 0; i < kCrashSlots; ++i) {
      Result<std::vector<std::string>> sig =
          slot_signature(expect_dir, i, base_env);
      if (!sig.ok()) return sig.status();
      sig_post.push_back(std::move(*sig));
    }
  }

  // The live run: two fault-free rounds, then a seed-chosen fault lands
  // somewhere in round 3's store stage.
  FaultInjectionEnv env(base_env);
  Warehouse live;
  for (const std::vector<std::string>* round : {&v1_xml, &v2_xml}) {
    for (const auto& result :
         live.DiffBatch(jobs_for(*round), make_pipeline(live_dir, &env))) {
      if (!result.ok()) return result.status();
    }
  }
  env.Reset();  // Disk state stands; forget counters and durable images.
  Rng rng(seed * 0x100000001b3ULL + 17);
  const std::optional<Context> cancel_context = ArmFault(&rng, &env, 256);
  // Per-slot statuses are irrelevant here — under an armed fault slots
  // legitimately degrade, fail, or report kCancelled; the contract under
  // test is the disk.
  Warehouse::PipelineOptions faulted = make_pipeline(live_dir, &env);
  if (cancel_context) faulted.context = &*cancel_context;
  live.DiffBatch(jobs_for(v3_xml), faulted);
  if (Status s = env.DropUnsyncedData(); !s.ok()) return s;
  if (Status s = RecoverRepositoryBatch(live_dir, base_env); !s.ok()) {
    return s;
  }

  for (size_t i = 0; i < kCrashSlots; ++i) {
    Result<std::vector<std::string>> sig =
        slot_signature(live_dir, i, base_env);
    if (!sig.ok()) {
      return Status::Corruption("slot " + urls[i] +
                                " failed to reopen after the crash: " +
                                sig.status().ToString());
    }
    if (*sig != sig_pre[i] && *sig != sig_post[i]) {
      return Status::Corruption("slot " + urls[i] +
                                " reopened as neither its round-1 nor its "
                                "round-2 state (hybrid state)");
    }
  }
  return Status::OK();
}

FuzzSummary RunFuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  Env* env = options.env != nullptr ? options.env : Env::Default();
  const auto started = std::chrono::steady_clock::now();
  const auto out_of_time = [&]() {
    if (options.time_budget_ms <= 0) return false;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();
    return elapsed >= options.time_budget_ms;
  };

  std::vector<const FuzzProfile*> profiles;
  if (options.profiles.empty()) {
    for (const FuzzProfile& profile : FuzzProfiles()) {
      profiles.push_back(&profile);
    }
  } else {
    for (const std::string& name : options.profiles) {
      const FuzzProfile* profile = FindFuzzProfile(name);
      if (profile == nullptr) {
        summary.failures.push_back(
            {"config", name, 0, 0, "unknown profile '" + name + "'", ""});
      } else {
        profiles.push_back(profile);
      }
    }
  }

  for (const FuzzProfile* profile : profiles) {
    summary.profiles_run.push_back(profile->name);
    for (size_t t = 0; t < options.trials_per_profile; ++t) {
      if (out_of_time()) {
        summary.time_exhausted = true;
        break;
      }
      const uint64_t seed = options.seed_start + t;
      FuzzTrial trial = GenerateTrial(*profile, seed, options.size);
      ++summary.trials;
      if (trial.v1.has_value()) {
        ++summary.accepted;
      } else {
        ++summary.rejected;
      }
      OracleReport report = CheckTrialOracles(trial, options.oracles);
      summary.oracle_checks += report.checks;
      if (report.ok()) continue;

      FuzzFailure failure;
      failure.kind = "oracle";
      failure.profile = profile->name;
      failure.seed = seed;
      failure.size = options.size;
      failure.detail = report.ToString();
      failure.repro = trial.ReproLine();
      if (options.shrink) {
        // Minimize while the SAME oracle keeps failing; a candidate that
        // fails differently is a different bug, not a smaller repro.
        const std::string first_oracle = report.failures.front().oracle;
        ShrinkSpec spec;
        spec.size = options.size;
        spec.sim = profile->sim;
        spec = MinimizeFailure(spec, [&](const ShrinkSpec& candidate) {
          FuzzTrial retry =
              GenerateTrial(*profile, seed, candidate.size, candidate.sim);
          OracleReport judged = CheckTrialOracles(retry, options.oracles);
          return !judged.ok() &&
                 judged.failures.front().oracle == first_oracle;
        });
        failure.repro += "  shrunk: " + spec.ToString();
      }
      PersistFailure(env, options, trial, &failure);
      summary.failures.push_back(std::move(failure));
    }
    if (summary.time_exhausted) break;
  }

  if (options.crash_interleaving && !options.scratch_directory.empty()) {
    struct CrashMode {
      const char* name;
      Status (*run)(uint64_t, const std::string&, Env*);
    };
    const CrashMode modes[] = {
        {"crash-batch-save", &RunCrashBatchSaveTrial},
        {"crash-diff-batch", &RunCrashDiffBatchTrial},
    };
    for (const CrashMode& mode : modes) {
      for (size_t t = 0; t < options.crash_trials; ++t) {
        if (out_of_time()) {
          summary.time_exhausted = true;
          break;
        }
        const uint64_t seed = options.seed_start + t;
        const std::string dir = options.scratch_directory + "/" + mode.name +
                                "-" + std::to_string(seed);
        ++summary.trials;
        ++summary.crash_trials;
        Status s = env->CreateDirs(dir);
        if (s.ok()) s = mode.run(seed, dir, options.env);
        if (!s.ok()) {
          summary.failures.push_back({mode.name, mode.name, seed, 0,
                                      s.ToString(),
                                      "seed=" + std::to_string(seed) +
                                          " mode=" + mode.name});
        }
      }
      if (summary.time_exhausted) break;
    }
  }
  return summary;
}

}  // namespace xydiff
