#ifndef XYDIFF_FUZZ_FUZZ_H_
#define XYDIFF_FUZZ_FUZZ_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/oracles.h"
#include "util/env.h"
#include "util/status.h"

namespace xydiff {

/// One fuzzing campaign: which grammars, how many trials each, and
/// where failing inputs are persisted. Everything is deterministic in
/// `seed_start` — two runs with the same options visit byte-identical
/// trials in the same order.
struct FuzzOptions {
  /// Profile names to run; empty means the whole catalog.
  std::vector<std::string> profiles;
  size_t trials_per_profile = 30;
  /// Document byte target per trial.
  size_t size = 1024;
  /// Trial t of every profile uses seed `seed_start + t`.
  uint64_t seed_start = 1;

  /// Run the crash-interleaving modes (needs `scratch_directory`).
  bool crash_interleaving = true;
  /// Trials per crash mode (batched save, DiffBatch pipeline).
  size_t crash_trials = 12;
  /// Parent directory for crash-trial stores. Each trial writes under
  /// its own `<mode>-<seed>` subdirectory; the caller owns cleanup (Env
  /// has no recursive remove by design).
  std::string scratch_directory;

  /// When non-empty, every failing trial's input bytes and repro line
  /// are persisted here (created on demand).
  std::string corpus_directory;

  /// Env for corpus/scratch I/O and as the base the crash trials wrap
  /// with fault injection. nullptr = Env::Default().
  Env* env = nullptr;

  /// Soft wall-clock bound: no NEW trial starts after this many
  /// milliseconds (0 = unbounded). The summary says when a run was cut
  /// short. Trials themselves stay deterministic — the budget only
  /// decides how many of them run.
  int64_t time_budget_ms = 0;

  /// Minimize every failure with fuzz/shrink.h before reporting.
  bool shrink = true;

  OracleOptions oracles;
};

/// One finding. `repro` is everything needed to replay it:
/// the (seed, profile, size) triple, plus the shrunk spec when the
/// shrinker ran.
struct FuzzFailure {
  std::string kind;  ///< "oracle", "crash-batch-save", "crash-diff-batch",
                     ///< or "config".
  std::string profile;
  uint64_t seed = 0;
  size_t size = 0;
  std::string detail;
  std::string repro;
};

struct FuzzSummary {
  size_t trials = 0;         ///< Oracle + crash trials actually run.
  size_t oracle_checks = 0;  ///< Invariants evaluated across all trials.
  size_t accepted = 0;       ///< Trials whose input parsed into versions.
  size_t rejected = 0;       ///< Trials the parser (cleanly) rejected.
  size_t crash_trials = 0;
  bool time_exhausted = false;
  std::vector<std::string> profiles_run;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  /// Multi-line human-readable report (the fuzz_driver's output).
  std::string ToString() const;
};

/// Runs the campaign. Never throws; every divergence, hybrid state, or
/// setup problem is a FuzzFailure in the summary.
FuzzSummary RunFuzz(const FuzzOptions& options = {});

/// Replays one trial from its repro triple and re-judges it with the
/// oracles — the other half of the determinism contract.
OracleReport ReproduceTrial(std::string_view profile_name, uint64_t seed,
                            size_t size, const OracleOptions& oracles = {});

/// One crash-interleaving trial against SaveRepositoryBatch: builds a
/// 3-slot corpus from `seed`, commits the pre state durably, then runs
/// the post save with a fuzzer-chosen fault (crash or torn write at a
/// seed-chosen operation index), "reboots" (drops un-synced data), runs
/// recovery, and reloads every slot. OK iff every slot reads back
/// bit-exactly pre- or post-batch with no torn group (and post when the
/// save reported success). `directory` must be private to this trial.
Status RunCrashBatchSaveTrial(uint64_t seed, const std::string& directory,
                              Env* base_env = nullptr);

/// Same contract driven through the full Warehouse::DiffBatch pipeline:
/// round 1 ingests three documents fault-free, a seed-chosen fault is
/// armed, round 2 ingests changed versions through the staged pipeline's
/// group-committing store stage, then reboot + recovery. OK iff every
/// slot reloads as bit-exactly its round-1 or round-2 state — zero
/// hybrids. Expected round-2 bytes come from an identical fault-free
/// run in a sibling directory (the pipeline is deterministic).
Status RunCrashDiffBatchTrial(uint64_t seed, const std::string& directory,
                              Env* base_env = nullptr);

}  // namespace xydiff

#endif  // XYDIFF_FUZZ_FUZZ_H_
