#ifndef XYDIFF_FUZZ_SHRINK_H_
#define XYDIFF_FUZZ_SHRINK_H_

#include <cstddef>
#include <string>

#include "simulator/change_simulator.h"

namespace xydiff {

/// The coordinates a failing trial is minimized over. A failure found at
/// some (seed, profile, size) is re-run at smaller specs — same seed,
/// same grammar — until no axis can shrink further. The seed never
/// changes: determinism is what makes candidate evaluation a pure
/// function of the spec.
struct ShrinkSpec {
  size_t size = 0;       ///< Document byte target.
  ChangeSimOptions sim;  ///< Change mix (the simulator-profile axis).

  /// The spec rendered for a repro log line.
  std::string ToString() const {
    return "size=" + std::to_string(size) +
           " del=" + std::to_string(sim.delete_probability) +
           " upd=" + std::to_string(sim.update_probability) +
           " ins=" + std::to_string(sim.insert_probability) +
           " mov=" + std::to_string(sim.move_probability);
  }
};

/// Greedy failure minimization, shared by differential_test and the fuzz
/// driver. `still_fails(candidate)` re-runs the failing check at a
/// candidate spec and returns true when the original failure still
/// reproduces; any candidate it accepts becomes the new spec.
///
/// Three passes, in order:
///  1. halve `size` while the failure persists (floor `min_size`);
///  2. uniformly halve every change probability (up to three times) —
///     fewer simulated operations, same mix;
///  3. zero each of the four probabilities individually — the
///     simulator-profile axis: a failure that survives with, say, only
///     moves enabled names its culprit operation in the repro line.
///
/// Monotone and bounded: at most ~log2(size) + 3 + 4 candidate runs.
template <typename Predicate>
ShrinkSpec MinimizeFailure(ShrinkSpec spec, Predicate&& still_fails,
                           size_t min_size = 64) {
  // Pass 1: the size axis.
  while (spec.size / 2 >= min_size) {
    ShrinkSpec candidate = spec;
    candidate.size = spec.size / 2;
    if (!still_fails(candidate)) break;
    spec = candidate;
  }

  // Pass 2: thin the whole change mix.
  for (int step = 0; step < 3; ++step) {
    ShrinkSpec candidate = spec;
    candidate.sim.delete_probability *= 0.5;
    candidate.sim.update_probability *= 0.5;
    candidate.sim.insert_probability *= 0.5;
    candidate.sim.move_probability *= 0.5;
    if (!still_fails(candidate)) break;
    spec = candidate;
  }

  // Pass 3: knock out one operation kind at a time.
  for (double ChangeSimOptions::*axis :
       {&ChangeSimOptions::delete_probability,
        &ChangeSimOptions::update_probability,
        &ChangeSimOptions::insert_probability,
        &ChangeSimOptions::move_probability}) {
    if (spec.sim.*axis == 0.0) continue;
    ShrinkSpec candidate = spec;
    candidate.sim.*axis = 0.0;
    if (still_fails(candidate)) spec = candidate;
  }
  return spec;
}

}  // namespace xydiff

#endif  // XYDIFF_FUZZ_SHRINK_H_
