#ifndef XYDIFF_FUZZ_ORACLES_H_
#define XYDIFF_FUZZ_ORACLES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fuzz/grammar.h"
#include "xml/document.h"

namespace xydiff {

/// The fuzzer's oracle library. Every trial is judged by independent
/// implementations and algebraic invariants rather than golden outputs
/// (after Li & Rigger's XPath differential-testing recipe): for the same
/// inputs, BULD and the five baselines must agree, and the delta algebra
/// must close — apply, invert, compose and the binary codec are all
/// cross-checked against each other.
struct OracleOptions {
  bool check_differential = true;  ///< BULD vs LaDiff patched byte-identity
                                   ///< + Myers/ListDiff cross-checks.
  bool check_distance = true;      ///< Zhang-Shasha/Selkow metric axioms
                                   ///< (small trees only; quadratic+).
  bool check_roundtrip = true;     ///< parse -> serialize fixpoint.
  bool check_invert = true;        ///< Invert(d) ∘ d = identity.
  bool check_compose = true;       ///< ComposeDeltas vs pairwise apply,
                                   ///< and associativity over the chain.
  bool check_codec = true;         ///< Binary codec round-trip identity.
  bool check_checkout = true;      ///< Indexed vs replay Checkout.
  size_t distance_node_limit = 96; ///< Skip distance oracles above this.
};

/// One failed invariant.
struct OracleFailure {
  std::string oracle;  ///< Which invariant ("differential", "invert", ...).
  std::string detail;
};

struct OracleReport {
  size_t checks = 0;  ///< Invariants actually evaluated.
  std::vector<OracleFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string ToString() const;
};

/// Judges one generated trial with every applicable oracle:
///  * rejected raw inputs: the rejection must be a clean ParseError (the
///    hardened parser's contract) — reaching here at all already proves
///    no crash/hang;
///  * version-bearing trials: all of OracleOptions over the v1->v2->v3
///    chain.
OracleReport CheckTrialOracles(const FuzzTrial& trial,
                               const OracleOptions& options = {});

/// The pair-level core, shared with `differential_test`: runs the
/// differential, distance, roundtrip, invert and codec oracles over one
/// (base, changed) pair. Compose and checkout need a third version and
/// only run through CheckTrialOracles.
OracleReport CheckPairOracles(const XmlDocument& base,
                              const XmlDocument& changed,
                              const OracleOptions& options = {});

}  // namespace xydiff

#endif  // XYDIFF_FUZZ_ORACLES_H_
