#include "fuzz/grammar.h"

#include <algorithm>
#include <utility>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

std::vector<FuzzProfile> MakeCatalog() {
  std::vector<FuzzProfile> catalog;

  {
    // The paper's own workload: catalog-shaped documents, 10% change
    // probability per operation. The fuzzer's control group.
    FuzzProfile p;
    p.name = "paper-default";
    p.description = "catalog-shaped documents, paper's 10% change mix";
    catalog.push_back(std::move(p));
  }
  {
    // Long thin spines: every matching phase that recurses or walks
    // ancestor chains sees maximum depth per node.
    FuzzProfile p;
    p.name = "deep-nesting";
    p.description = "40-deep single-lane spines, changes along the spine";
    p.doc.section_depth = 40;
    p.doc.min_fanout = 1;
    p.doc.max_fanout = 2;
    p.doc.min_text_words = 1;
    p.doc.max_text_words = 2;
    p.sim = {0.05, 0.1, 0.1, 0.1};
    catalog.push_back(std::move(p));
  }
  {
    // One enormous child list: LCS over siblings, position bookkeeping
    // and per-parent attachment ordering all get quadratic pressure.
    FuzzProfile p;
    p.name = "wide-fanout";
    p.description = "flat documents with one huge child list";
    p.doc.section_depth = 1;
    p.doc.min_fanout = 24;
    p.doc.max_fanout = 64;
    p.doc.min_text_words = 1;
    p.doc.max_text_words = 3;
    p.sim = {0.1, 0.1, 0.15, 0.1};
    catalog.push_back(std::move(p));
  }
  {
    // Signature collisions on purpose: cloned sibling runs (identical
    // subtree hashes) with a tiny label vocabulary, so candidate
    // matching cannot lean on content uniqueness.
    FuzzProfile p;
    p.name = "near-duplicate-siblings";
    p.description = "cloned sibling runs and a 4-label vocabulary";
    p.doc.label_vocabulary = 4;
    p.doc.min_text_words = 1;
    p.doc.max_text_words = 2;
    p.doc.duplicate_sibling_probability = 0.35;
    p.doc.max_duplicate_run = 4;
    p.sim = {0.1, 0.1, 0.1, 0.15};
    catalog.push_back(std::move(p));
  }
  {
    // Moves dominate: the operation every text-diff misses and the
    // hardest one for match propagation to get right.
    FuzzProfile p;
    p.name = "move-storm";
    p.description = "move-dominated change mix over dense documents";
    p.doc.min_fanout = 3;
    p.doc.max_fanout = 8;
    p.sim = {0.15, 0.05, 0.05, 0.55};
    catalog.push_back(std::move(p));
  }
  {
    // Heavy churn: most of both documents is change, so the "common
    // subtree first" heuristics run out of anchors.
    FuzzProfile p;
    p.name = "heavy-churn";
    p.description = "40% per-node change probability on every operation";
    p.sim = {0.4, 0.4, 0.4, 0.3};
    catalog.push_back(std::move(p));
  }
  {
    // Entity/DTD bombs: billion-laughs chains, reference cycles,
    // oversized replacements, external and parameter entities.
    FuzzProfile p;
    p.name = "hostile-entity";
    p.kind = FuzzProfileKind::kRawBytes;
    p.description = "internal-subset entity bombs, cycles, external refs";
    catalog.push_back(std::move(p));
  }
  {
    // Byte-level mutation of well-formed output: the parser's error
    // paths, and the diff stack on whatever still parses.
    FuzzProfile p;
    p.name = "byte-mutation";
    p.kind = FuzzProfileKind::kRawBytes;
    p.description = "bit flips, splices and truncations of valid XML";
    p.doc.target_bytes = 1024;
    catalog.push_back(std::move(p));
  }
  return catalog;
}

ChangeSimOptions Scaled(const ChangeSimOptions& sim, double scale) {
  ChangeSimOptions out = sim;
  out.delete_probability *= scale;
  out.update_probability *= scale;
  out.insert_probability *= scale;
  out.move_probability *= scale;
  return out;
}

/// Derives v2 and v3 from a parsed, XID-bearing v1. Failures leave the
/// trial version-less with the simulator's message as the rejection —
/// the oracles then treat it like a rejected raw input.
void SimulateChain(FuzzTrial* trial, const ChangeSimOptions& sim, Rng* rng) {
  Result<SimulatedChange> c2 = SimulateChanges(*trial->v1, sim, rng);
  if (!c2.ok()) {
    trial->rejection = "simulate v2: " + c2.status().ToString();
    trial->v1.reset();
    return;
  }
  trial->v2 = std::move(c2->new_version);
  Result<SimulatedChange> c3 = SimulateChanges(*trial->v2, sim, rng);
  if (!c3.ok()) {
    trial->rejection = "simulate v3: " + c3.status().ToString();
    trial->v1.reset();
    trial->v2.reset();
    return;
  }
  trial->v3 = std::move(c3->new_version);
}

}  // namespace

const std::vector<FuzzProfile>& FuzzProfiles() {
  static const std::vector<FuzzProfile> kCatalog = MakeCatalog();
  return kCatalog;
}

const FuzzProfile* FindFuzzProfile(std::string_view name) {
  for (const FuzzProfile& profile : FuzzProfiles()) {
    if (profile.name == name) return &profile;
  }
  return nullptr;
}

std::string FuzzTrial::ReproLine() const {
  return "seed=" + std::to_string(seed) + " profile=" + profile +
         " size=" + std::to_string(size);
}

std::string GenerateHostileEntityXml(Rng* rng, size_t size) {
  // A chain of entities e0..eK where each level references the previous
  // one several times: expansion is fanout^K bytes from O(K * fanout)
  // input — the classic billion-laughs shape, dialed from harmless to
  // hostile by the seed.
  const int levels = static_cast<int>(rng->NextInRange(2, 9));
  const int fanout = static_cast<int>(rng->NextInRange(2, 10));
  const bool cycle = rng->NextBool(0.15);          // e0 references eK.
  const bool external = rng->NextBool(0.2);        // SYSTEM entity + ref.
  const bool parameter = rng->NextBool(0.2);       // % entity in subset.
  const bool undeclared = rng->NextBool(0.15);     // Reference no decl.
  const size_t atom = 1 + rng->NextBelow(std::max<size_t>(size / 8, 8));

  std::string xml = "<!DOCTYPE bomb [\n";
  std::string atom_text(atom, 'x');
  if (cycle) {
    xml += "<!ENTITY e0 \"&e" + std::to_string(levels) + ";\">\n";
  } else {
    xml += "<!ENTITY e0 \"" + atom_text + "\">\n";
  }
  for (int l = 1; l <= levels; ++l) {
    std::string value;
    for (int i = 0; i < fanout; ++i) {
      value += "&e" + std::to_string(l - 1) + ";";
    }
    xml += "<!ENTITY e" + std::to_string(l) + " \"" + value + "\">\n";
  }
  if (external) {
    xml += "<!ENTITY ext SYSTEM \"file:///etc/passwd\">\n";
  }
  if (parameter) {
    xml += "<!ENTITY % pe \"<!ELEMENT ignored ANY>\">\n%pe;\n";
  }
  xml += "]>\n<bomb>";
  const int refs = static_cast<int>(rng->NextInRange(1, 6));
  for (int i = 0; i < refs; ++i) {
    xml += "<payload>&e" +
           std::to_string(rng->NextInRange(0, levels)) + ";</payload>";
  }
  if (external) xml += "<leak>&ext;</leak>";
  if (undeclared) xml += "<ghost>&nosuch;</ghost>";
  xml += "</bomb>\n";
  return xml;
}

std::string MutateXmlBytes(Rng* rng, std::string xml, size_t mutations) {
  for (size_t m = 0; m < mutations && !xml.empty(); ++m) {
    const size_t pos = rng->NextIndex(xml.size());
    switch (rng->NextBelow(5)) {
      case 0:  // Flip one byte to a random printable-or-not value.
        xml[pos] = static_cast<char>(rng->NextBelow(256));
        break;
      case 1:  // Delete a short run.
        xml.erase(pos, 1 + rng->NextBelow(4));
        break;
      case 2:  // Duplicate a short run in place (tag soup generator).
        xml.insert(pos, xml.substr(pos, 1 + rng->NextBelow(8)));
        break;
      case 3:  // Insert a markup-significant character.
        xml.insert(pos, 1, "<>&\"'/"[rng->NextBelow(6)]);
        break;
      default:  // Truncate the tail.
        xml.resize(pos);
        break;
    }
  }
  return xml;
}

FuzzTrial GenerateTrial(const FuzzProfile& profile, uint64_t seed,
                        size_t size, const ChangeSimOptions& sim) {
  FuzzProfile adjusted = profile;
  adjusted.sim = sim;
  return GenerateTrial(adjusted, seed, size, 1.0);
}

FuzzTrial GenerateTrial(const FuzzProfile& profile, uint64_t seed,
                        size_t size, double scale) {
  FuzzTrial trial;
  trial.profile = profile.name;
  trial.seed = seed;
  trial.size = size;
  Rng rng(seed);

  if (profile.kind == FuzzProfileKind::kTreePair) {
    DocGenOptions gen = profile.doc;
    gen.target_bytes = size;
    XmlDocument doc = GenerateDocument(&rng, gen);
    doc.AssignInitialXids();
    trial.document_xml = SerializeDocument(doc);
    trial.v1 = std::move(doc);
    SimulateChain(&trial, Scaled(profile.sim, scale), &rng);
    return trial;
  }

  // Raw-byte grammars: build the hostile text, then see what the parser
  // makes of it. Whatever parses cleanly becomes a version chain so the
  // diff stack is fuzzed with the parser's own acceptances.
  if (profile.name == "hostile-entity") {
    trial.document_xml = GenerateHostileEntityXml(&rng, size);
  } else {
    DocGenOptions gen = profile.doc;
    gen.target_bytes = std::max<size_t>(size, 128);
    XmlDocument doc = GenerateDocument(&rng, gen);
    const size_t mutations = 1 + rng.NextBelow(6);
    trial.document_xml =
        MutateXmlBytes(&rng, SerializeDocument(doc), mutations);
  }

  Result<XmlDocument> parsed = ParseXml(trial.document_xml);
  if (!parsed.ok()) {
    trial.rejection = parsed.status().ToString();
    return trial;
  }
  parsed->AssignInitialXids();
  trial.v1 = std::move(parsed.value());
  SimulateChain(&trial, Scaled(profile.sim, scale), &rng);
  return trial;
}

}  // namespace xydiff
