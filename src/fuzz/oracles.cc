#include "fuzz/oracles.h"

#include <utility>

#include "baseline/ladiff.h"
#include "baseline/list_diff.h"
#include "baseline/myers_diff.h"
#include "baseline/selkow.h"
#include "baseline/zhang_shasha.h"
#include "core/buld.h"
#include "delta/apply.h"
#include "delta/codec.h"
#include "delta/compose.h"
#include "delta/delta_xml.h"
#include "delta/invert.h"
#include "delta/validate.h"
#include "version/repository.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {

namespace {

/// Canonical bytes for structural comparison: default serializer options,
/// no XIDs — implementations must agree on structure and content; XID
/// assignment is each one's own business.
std::string Canonical(const XmlDocument& doc) {
  return SerializeDocument(doc);
}

/// Identity bytes: structure + content + persistent identifiers. Used
/// where XIDs are part of the contract (invert, compose, checkout).
std::string CanonicalWithXids(const XmlDocument& doc) {
  SerializeOptions options;
  options.emit_xids = true;
  return SerializeDocument(doc, options);
}

size_t NodeCount(const XmlDocument& doc) {
  size_t n = 0;
  if (doc.root() != nullptr) {
    doc.root()->Visit([&n](const XmlNode*) { ++n; });
  }
  return n;
}

/// Collects failures; one instance per report.
class Judge {
 public:
  void Ran() { ++report_.checks; }
  void Fail(std::string oracle, std::string detail) {
    report_.failures.push_back({std::move(oracle), std::move(detail)});
  }
  OracleReport Take() { return std::move(report_); }

 private:
  OracleReport report_;
};

/// Diff `base` -> `changed` with `diff_fn`, apply to a fresh clone,
/// canonically serialize. False (with message) on any Status failure.
template <typename DiffFn>
bool DiffAndPatch(const XmlDocument& base, const XmlDocument& changed,
                  DiffFn diff_fn, std::string* patched_bytes,
                  std::string* error) {
  XmlDocument old_doc = base.Clone();
  XmlDocument new_doc = changed.Clone();
  Result<Delta> delta = diff_fn(&old_doc, &new_doc);
  if (!delta.ok()) {
    *error = "diff failed: " + delta.status().ToString();
    return false;
  }
  XmlDocument patched = base.Clone();
  if (Status s = ApplyDelta(*delta, &patched); !s.ok()) {
    *error = "apply failed: " + s.ToString();
    return false;
  }
  *patched_bytes = Canonical(patched);
  return true;
}

/// BULD vs LaDiff patched byte-identity, plus the text baselines as
/// zero/non-zero cross-checks.
void DifferentialOracle(const XmlDocument& base, const XmlDocument& changed,
                        Judge* judge) {
  judge->Ran();
  const std::string expected = Canonical(changed);
  const auto buld = [](XmlDocument* a, XmlDocument* b) {
    return XyDiff(a, b, DiffOptions{});
  };
  const auto ladiff = [](XmlDocument* a, XmlDocument* b) {
    return LaDiff(a, b, DiffOptions{});
  };

  std::string buld_bytes, ladiff_bytes, error;
  if (!DiffAndPatch(base, changed, buld, &buld_bytes, &error)) {
    judge->Fail("differential", "BULD: " + error);
    return;
  }
  if (buld_bytes != expected) {
    judge->Fail("differential",
                "BULD patched bytes differ from the new version");
    return;
  }
  if (!DiffAndPatch(base, changed, ladiff, &ladiff_bytes, &error)) {
    judge->Fail("differential", "LaDiff: " + error);
    return;
  }
  if (ladiff_bytes != expected) {
    judge->Fail("differential",
                "LaDiff patched bytes differ from the new version");
    return;
  }

  const std::string old_bytes = Canonical(base);
  LineDiffResult line = MyersLineDiff(old_bytes, expected);
  if (old_bytes == expected &&
      (line.deleted_lines != 0 || line.added_lines != 0)) {
    judge->Fail("differential", "Myers reports changes on identical documents");
    return;
  }
  if (old_bytes != expected && line.hunks.empty()) {
    judge->Fail("differential",
                "Myers reports no changes on differing documents");
    return;
  }
  ListDiffResult list = ListDiff(base, changed);
  if (old_bytes == expected &&
      (list.deleted_tokens != 0 || list.inserted_tokens != 0)) {
    judge->Fail("differential",
                "ListDiff reports changes on identical documents");
  }
}

/// Zhang-Shasha / Selkow metric axioms (exact algorithms, small trees).
void DistanceOracle(const XmlDocument& base, const XmlDocument& changed,
                    Judge* judge) {
  judge->Ran();
  const size_t zs_same = TreeEditDistance(*base.root(), *base.root());
  const size_t selkow_same = SelkowEditDistance(*base.root(), *base.root());
  if (zs_same != 0 || selkow_same != 0) {
    judge->Fail("distance", "non-zero self distance (zs=" +
                                std::to_string(zs_same) + ", selkow=" +
                                std::to_string(selkow_same) + ")");
    return;
  }
  const size_t zs = TreeEditDistance(*base.root(), *changed.root());
  const size_t selkow = SelkowEditDistance(*base.root(), *changed.root());
  const bool equal = Canonical(base) == Canonical(changed);
  if (equal && zs != 0) {
    judge->Fail("distance", "Zhang-Shasha non-zero on equal documents");
    return;
  }
  if (!equal && zs == 0) {
    judge->Fail("distance", "Zhang-Shasha zero on differing documents");
    return;
  }
  // Selkow's restricted operations can never beat the exact distance.
  if (selkow < zs) {
    judge->Fail("distance", "Selkow distance " + std::to_string(selkow) +
                                " below exact distance " + std::to_string(zs));
  }
}

/// parse(serialize(doc)) -> serialize must be a fixpoint.
void RoundtripOracle(const XmlDocument& doc, const char* which, Judge* judge) {
  judge->Ran();
  const std::string bytes = Canonical(doc);
  Result<XmlDocument> reparsed = ParseXml(bytes);
  if (!reparsed.ok()) {
    judge->Fail("roundtrip", std::string(which) + ": serialized document "
                                                  "does not re-parse: " +
                                 reparsed.status().ToString());
    return;
  }
  const std::string again = Canonical(*reparsed);
  if (again != bytes) {
    judge->Fail("roundtrip",
                std::string(which) + ": serialize -> parse -> serialize is "
                                     "not a fixpoint");
  }
}

/// Diffs base -> changed, then checks the completed-delta laws: apply
/// reaches the target, inverse-apply returns to the source (XIDs
/// included), double inversion is structurally identical, and the
/// binary codec round-trips the delta byte-exactly.
void InvertAndCodecOracles(const XmlDocument& base, const XmlDocument& changed,
                           const OracleOptions& options, Judge* judge) {
  XmlDocument old_doc = base.Clone();
  XmlDocument new_doc = changed.Clone();
  Result<Delta> delta = XyDiff(&old_doc, &new_doc, DiffOptions{});
  if (!delta.ok()) {
    // The differential oracle already reported diff failures.
    return;
  }

  if (options.check_invert) {
    judge->Ran();
    if (Status s = ValidateDelta(*delta); !s.ok()) {
      judge->Fail("invert", "BULD delta fails validation: " + s.ToString());
      return;
    }
    XmlDocument working = base.Clone();
    if (Status s = ApplyDelta(*delta, &working); !s.ok()) {
      judge->Fail("invert", "forward apply failed: " + s.ToString());
      return;
    }
    const Delta inverse = InvertDelta(*delta);
    if (Status s = ApplyDelta(inverse, &working); !s.ok()) {
      judge->Fail("invert", "inverse apply failed: " + s.ToString());
      return;
    }
    if (CanonicalWithXids(working) != CanonicalWithXids(base)) {
      judge->Fail("invert",
                  "Invert(d) ∘ d is not the identity (source not restored)");
      return;
    }
    if (SerializeDelta(InvertDelta(inverse)) != SerializeDelta(*delta)) {
      judge->Fail("invert", "Invert(Invert(d)) differs from d");
      return;
    }
  }

  if (options.check_codec) {
    judge->Ran();
    const std::string xml_form = SerializeDelta(*delta);
    const std::string encoded = EncodeDeltaBinary(*delta);
    Result<Delta> decoded = DecodeDeltaBinary(encoded);
    if (!decoded.ok()) {
      judge->Fail("codec",
                  "encoded delta does not decode: " + decoded.status().ToString());
      return;
    }
    if (SerializeDelta(*decoded) != xml_form) {
      judge->Fail("codec", "decode(encode(d)) changes the delta");
      return;
    }
    if (EncodeDeltaBinary(*decoded) != encoded) {
      judge->Fail("codec", "re-encoding the decoded delta changes the bytes");
      return;
    }
    XmlDocument patched = base.Clone();
    if (Status s = ApplyDelta(*decoded, &patched); !s.ok()) {
      judge->Fail("codec", "decoded delta does not apply: " + s.ToString());
      return;
    }
    if (Canonical(patched) != Canonical(changed)) {
      judge->Fail("codec", "decoded delta patches to different bytes");
    }
  }
}

/// ComposeDeltas against pairwise application, associativity over the
/// three-version chain, and cancellation against the inverse.
void ComposeOracle(const XmlDocument& v1, const XmlDocument& v2,
                   const XmlDocument& v3, Judge* judge) {
  judge->Ran();
  // Thread one document chain through both diffs so XIDs stay
  // consistent: b carries the XIDs d1 assigned when d2 is computed.
  XmlDocument a = v1.Clone();
  XmlDocument b = v2.Clone();
  Result<Delta> d1 = XyDiff(&a, &b, DiffOptions{});
  if (!d1.ok()) return;  // Differential oracle's finding, not compose's.
  XmlDocument c = v3.Clone();
  Result<Delta> d2 = XyDiff(&b, &c, DiffOptions{});
  if (!d2.ok()) return;

  const std::string target = CanonicalWithXids(c);
  XmlDocument pairwise = a.Clone();
  if (Status s = ApplyDelta(*d1, &pairwise); !s.ok()) return;
  if (Status s = ApplyDelta(*d2, &pairwise); !s.ok()) return;
  if (CanonicalWithXids(pairwise) != target) {
    judge->Fail("compose", "pairwise application misses v3 (apply bug)");
    return;
  }

  Result<Delta> composed = ComposeDeltas(a, *d1, *d2);
  if (!composed.ok()) {
    judge->Fail("compose",
                "ComposeDeltas failed: " + composed.status().ToString());
    return;
  }
  XmlDocument direct = a.Clone();
  if (Status s = ApplyDelta(*composed, &direct); !s.ok()) {
    judge->Fail("compose", "composed delta does not apply: " + s.ToString());
    return;
  }
  if (CanonicalWithXids(direct) != target) {
    judge->Fail("compose",
                "apply(d1∘d2) differs from apply(d2, apply(d1, v1))");
    return;
  }

  // Associativity without a fourth version: d3 = Invert(d2) is a valid
  // delta v3 -> v2, so ((d1∘d2)∘d3) and (d1∘(d2∘d3)) must both take v1
  // to v2.
  const Delta d3 = InvertDelta(*d2);
  Result<Delta> left = ComposeDeltas(a, *composed, d3);
  Result<Delta> d23 = ComposeDeltas(b, *d2, d3);
  if (!left.ok() || !d23.ok()) {
    judge->Fail("compose", "associativity composition failed: " +
                               (left.ok() ? d23.status() : left.status())
                                   .ToString());
    return;
  }
  Result<Delta> right = ComposeDeltas(a, *d1, *d23);
  if (!right.ok()) {
    judge->Fail("compose",
                "associativity composition failed: " + right.status().ToString());
    return;
  }
  const std::string v2_bytes = CanonicalWithXids(b);
  for (const auto& [delta, which] :
       {std::pair<const Delta*, const char*>{&*left, "(d1∘d2)∘d3"},
        std::pair<const Delta*, const char*>{&*right, "d1∘(d2∘d3)"}}) {
    XmlDocument doc = a.Clone();
    if (Status s = ApplyDelta(*delta, &doc); !s.ok()) {
      judge->Fail("compose", std::string(which) + " does not apply: " +
                                 s.ToString());
      return;
    }
    if (CanonicalWithXids(doc) != v2_bytes) {
      judge->Fail("compose", std::string(which) + " does not reach v2 — "
                                                  "composition is not "
                                                  "associative");
      return;
    }
  }

  // Cancellation: composing a delta with its inverse yields no ops.
  Result<Delta> cancelled = ComposeDeltas(a, *d1, InvertDelta(*d1));
  if (!cancelled.ok() || !cancelled->empty()) {
    judge->Fail("compose", "d ∘ Invert(d) is not the empty delta");
  }
}

/// Indexed (checkpoint + skip-delta) and replay Checkout must agree on
/// every version, byte-exactly with XIDs.
void CheckoutOracle(const XmlDocument& v1, const XmlDocument& v2,
                    const XmlDocument& v3, Judge* judge) {
  judge->Ran();
  VersionRepository replay(v1.Clone());
  VersionRepository indexed(v1.Clone());
  for (const XmlDocument* version : {&v2, &v3}) {
    Result<int> r = replay.Commit(version->Clone());
    Result<int> i = indexed.Commit(version->Clone());
    if (!r.ok() || !i.ok()) {
      judge->Fail("checkout", "commit failed: " +
                                  (r.ok() ? i.status() : r.status()).ToString());
      return;
    }
  }
  if (Status s = indexed.EnsureReconstructionIndex(); !s.ok()) {
    judge->Fail("checkout",
                "EnsureReconstructionIndex failed: " + s.ToString());
    return;
  }
  for (int version = 1; version <= replay.version_count(); ++version) {
    CheckoutStats replay_stats, indexed_stats;
    Result<XmlDocument> via_replay = replay.Checkout(version, &replay_stats);
    Result<XmlDocument> via_index = indexed.Checkout(version, &indexed_stats);
    if (!via_replay.ok() || !via_index.ok()) {
      judge->Fail("checkout",
                  "checkout of version " + std::to_string(version) +
                      " failed: " +
                      (via_replay.ok() ? via_index.status()
                                       : via_replay.status())
                          .ToString());
      return;
    }
    if (CanonicalWithXids(*via_replay) != CanonicalWithXids(*via_index)) {
      judge->Fail("checkout", "indexed and replay checkout disagree on "
                              "version " +
                                  std::to_string(version));
      return;
    }
  }
}

}  // namespace

std::string OracleReport::ToString() const {
  if (ok()) return "ok (" + std::to_string(checks) + " oracle checks)";
  std::string out;
  for (const OracleFailure& failure : failures) {
    if (!out.empty()) out += "; ";
    out += "[" + failure.oracle + "] " + failure.detail;
  }
  return out;
}

OracleReport CheckPairOracles(const XmlDocument& base,
                              const XmlDocument& changed,
                              const OracleOptions& options) {
  Judge judge;
  if (base.root() == nullptr || changed.root() == nullptr) {
    judge.Fail("input", "document without a root handed to the oracles");
    return judge.Take();
  }
  if (options.check_differential) DifferentialOracle(base, changed, &judge);
  if (options.check_distance &&
      NodeCount(base) <= options.distance_node_limit &&
      NodeCount(changed) <= options.distance_node_limit) {
    DistanceOracle(base, changed, &judge);
  }
  if (options.check_roundtrip) {
    RoundtripOracle(base, "base", &judge);
    RoundtripOracle(changed, "changed", &judge);
  }
  if (options.check_invert || options.check_codec) {
    InvertAndCodecOracles(base, changed, options, &judge);
  }
  return judge.Take();
}

OracleReport CheckTrialOracles(const FuzzTrial& trial,
                               const OracleOptions& options) {
  if (!trial.v1.has_value()) {
    // A rejected raw input. Reaching this point already proves the parser
    // neither crashed nor hung; the remaining contract is a clean,
    // descriptive Status.
    Judge judge;
    judge.Ran();
    if (trial.rejection.empty()) {
      judge.Fail("parser", "input rejected without a diagnostic");
    }
    return judge.Take();
  }

  OracleReport report = CheckPairOracles(*trial.v1, *trial.v2, options);
  Judge judge;
  if (trial.has_versions()) {
    if (options.check_compose) {
      ComposeOracle(*trial.v1, *trial.v2, *trial.v3, &judge);
    }
    if (options.check_checkout) {
      CheckoutOracle(*trial.v1, *trial.v2, *trial.v3, &judge);
    }
  }
  OracleReport chain = judge.Take();
  report.checks += chain.checks;
  for (OracleFailure& failure : chain.failures) {
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace xydiff
