// Overload resilience experiment — shedding, deadlines, and tail latency.
//
// The warehouse's admission control exists so that a crawler surge
// degrades a batch gracefully instead of building unbounded backlog:
// with `max_batch_bytes` set, a DiffBatch offered 2x its byte budget
// must shed the excess with kResourceExhausted at the front door and
// finish the admitted half with bounded latency. A batch handed a dead
// or dying Context must fail its remaining slots promptly with
// kDeadlineExceeded — never half-persist a slot.
//
// Three measurements, one simulated crawl:
//   1. Sustained 2x overload: every wave offers twice the byte budget;
//      per-wave wall latency (p50/p99) and the shed rate are recorded.
//   2. Expired deadline: a batch under Context::WithTimeout(0) must fail
//      every slot as kDeadlineExceeded and return almost immediately
//      (the deadline-hit accuracy gate — no slot may dodge the verdict).
//   3. Mid-flight deadline: a batch under a deadline shorter than its
//      expected runtime; the overshoot past the deadline bounds how long
//      in-flight slots keep running after the verdict.
//
// Results land in BENCH_overload.json for machine comparison.
//
// `--smoke` runs a small corpus as a ctest gate: nonzero shed rate,
// some admitted slots still succeeding, every expired-deadline slot
// reporting kDeadlineExceeded, and bounded p99 / deadline overshoot,
// else exit 1.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/context.h"
#include "util/random.h"
#include "util/status.h"
#include "version/warehouse.h"
#include "xml/serializer.h"

namespace {

using namespace xydiff;
using bench::Timer;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct WaveOutcome {
  double seconds = 0;
  size_t offered_bytes = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t other_failed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const size_t documents = smoke ? 48 : 160;
  const int waves = smoke ? 6 : 24;

  bench::Banner("Overload resilience: admission shedding and deadlines",
                "ICDE 2002 paper, Figure 1 warehouse under crawler surge");

  // A web-like corpus that keeps changing week over week. The size tail
  // is capped so one log-normal outlier cannot dwarf the whole byte
  // budget and turn the shed rate into a coin flip.
  Rng rng(86400);
  WebCorpusOptions corpus_options;
  corpus_options.document_count = documents;
  corpus_options.median_bytes = smoke ? 2 * 1024 : 4 * 1024;
  corpus_options.max_bytes = 64 * 1024;
  std::vector<XmlDocument> corpus = GenerateWebCorpus(&rng, corpus_options);
  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  for (XmlDocument& doc : corpus) doc.AssignInitialXids();

  // Evolves every document one week and returns the crawl hand-off.
  auto next_wave = [&]() -> std::vector<Warehouse::DiffJob> {
    std::vector<Warehouse::DiffJob> jobs;
    jobs.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      Result<SimulatedChange> change =
          SimulateChanges(corpus[i], weekly, &rng);
      if (change.ok()) corpus[i] = std::move(change->new_version);
      jobs.push_back({"doc" + std::to_string(i), SerializeDocument(corpus[i])});
    }
    return jobs;
  };

  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;

  // Wave 0 seeds every URL at version 1, untimed and unbudgeted.
  {
    std::vector<Warehouse::DiffJob> seed;
    seed.reserve(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      seed.push_back({"doc" + std::to_string(i), SerializeDocument(corpus[i])});
    }
    for (auto& r : warehouse.DiffBatch(std::move(seed), pipeline)) {
      if (!r.ok()) {
        std::fprintf(stderr, "seed wave failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
  }

  // --- Measurement 1: sustained 2x overload. -----------------------------
  // Each wave's byte budget is half of what the crawl offers, so the
  // admission gate must shed roughly half the bytes every single wave.
  std::vector<WaveOutcome> outcomes;
  std::vector<double> wave_ms;
  size_t total_slots = 0, total_ok = 0, total_shed = 0, total_other = 0;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<Warehouse::DiffJob> jobs = next_wave();
    WaveOutcome outcome;
    for (const auto& job : jobs) outcome.offered_bytes += job.xml.size();
    Warehouse::PipelineOptions overloaded = pipeline;
    overloaded.max_batch_bytes = outcome.offered_bytes / 2;
    PipelineStats stats;
    Timer timer;
    std::vector<Result<Warehouse::IngestReport>> results =
        warehouse.DiffBatch(std::move(jobs), overloaded, &stats);
    outcome.seconds = timer.Seconds();
    for (const auto& r : results) {
      if (r.ok()) {
        ++outcome.ok;
      } else if (r.status().code() == StatusCode::kResourceExhausted) {
        ++outcome.shed;
      } else {
        ++outcome.other_failed;
      }
    }
    if (outcome.shed != stats.shed_slots) {
      std::fprintf(stderr,
                   "GATE FAILED: wave %d shed accounting mismatch (%zu slots "
                   "vs %zu in stats)\n",
                   wave, outcome.shed, stats.shed_slots);
      return 1;
    }
    total_slots += results.size();
    total_ok += outcome.ok;
    total_shed += outcome.shed;
    total_other += outcome.other_failed;
    wave_ms.push_back(1e3 * outcome.seconds);
    outcomes.push_back(outcome);
  }
  const double shed_rate =
      static_cast<double>(total_shed) / static_cast<double>(total_slots);
  const double p50_ms = Percentile(wave_ms, 0.50);
  const double p99_ms = Percentile(wave_ms, 0.99);

  // --- Measurement 2: expired deadline (deadline-hit accuracy). ----------
  // Every slot must come back kDeadlineExceeded — a slot failing with
  // anything else means a check-point misreported the verdict.
  size_t expired_deadline_slots = 0, expired_misreported = 0;
  double expired_wall_ms = 0;
  {
    std::vector<Warehouse::DiffJob> jobs = next_wave();
    const size_t slot_count = jobs.size();
    const Context dead = Context::WithTimeout(std::chrono::milliseconds(0));
    Warehouse::PipelineOptions deadlined = pipeline;
    deadlined.context = &dead;
    Timer timer;
    std::vector<Result<Warehouse::IngestReport>> results =
        warehouse.DiffBatch(std::move(jobs), deadlined);
    expired_wall_ms = 1e3 * timer.Seconds();
    for (const auto& r : results) {
      if (!r.ok() && r.status().code() == StatusCode::kDeadlineExceeded) {
        ++expired_deadline_slots;
      } else {
        ++expired_misreported;
      }
    }
    if (results.size() != slot_count) {
      std::fprintf(stderr, "GATE FAILED: expired-deadline batch lost slots\n");
      return 1;
    }
  }

  // --- Measurement 3: mid-flight deadline overshoot. ---------------------
  // The deadline fires while the batch is running; the overshoot is how
  // long in-flight slots keep the batch alive past the verdict. Reported
  // always, gated only loosely (slow CI machines stretch single-slot
  // work, not the check-point placement under test).
  const double mid_deadline_ms = std::max(1.0, p50_ms / 3.0);
  size_t mid_deadline_slots = 0, mid_ok_slots = 0;
  double mid_overshoot_ms = 0;
  {
    std::vector<Warehouse::DiffJob> jobs = next_wave();
    const Context mid = Context::WithTimeout(std::chrono::milliseconds(
        static_cast<int64_t>(mid_deadline_ms)));
    Warehouse::PipelineOptions deadlined = pipeline;
    deadlined.context = &mid;
    PipelineStats stats;
    Timer timer;
    std::vector<Result<Warehouse::IngestReport>> results =
        warehouse.DiffBatch(std::move(jobs), deadlined, &stats);
    const double wall_ms = 1e3 * timer.Seconds();
    mid_overshoot_ms = std::max(0.0, wall_ms - mid_deadline_ms);
    for (const auto& r : results) {
      if (r.ok()) {
        ++mid_ok_slots;
      } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
        ++mid_deadline_slots;
      }
    }
  }

  std::printf("corpus: %zu documents, %d overload waves at 2x the byte "
              "budget\n\n",
              documents, waves);
  std::printf("%-26s %10s %10s %10s %10s\n", "wave latency (ms)", "p50",
              "p99", "shed", "ok");
  bench::Rule();
  std::printf("%-26s %10.1f %10.1f %9.0f%% %10zu\n", "2x overload", p50_ms,
              p99_ms, 100.0 * shed_rate, total_ok);
  std::printf("\nexpired deadline : %zu/%zu slots kDeadlineExceeded in "
              "%.1fms (%zu misreported)\n",
              expired_deadline_slots,
              expired_deadline_slots + expired_misreported, expired_wall_ms,
              expired_misreported);
  std::printf("mid deadline     : %.1fms budget, overshoot %.1fms (%zu "
              "deadline, %zu ok)\n",
              mid_deadline_ms, mid_overshoot_ms, mid_deadline_slots,
              mid_ok_slots);

  bench::JsonReport report;
  report.AddString("mode", smoke ? "smoke" : "full");
  report.AddNumber("documents", static_cast<double>(documents));
  report.AddNumber("waves", static_cast<double>(waves));
  report.AddNumber("total_slots", static_cast<double>(total_slots));
  report.AddNumber("ok_slots", static_cast<double>(total_ok));
  report.AddNumber("shed_slots", static_cast<double>(total_shed));
  report.AddNumber("other_failed_slots", static_cast<double>(total_other));
  report.AddNumber("shed_rate", shed_rate);
  report.AddNumber("wave_ms_p50", p50_ms);
  report.AddNumber("wave_ms_p99", p99_ms);
  report.AddNumber("expired_deadline_slots",
                   static_cast<double>(expired_deadline_slots));
  report.AddNumber("expired_misreported_slots",
                   static_cast<double>(expired_misreported));
  report.AddNumber("expired_deadline_wall_ms", expired_wall_ms);
  report.AddNumber("mid_deadline_budget_ms", mid_deadline_ms);
  report.AddNumber("mid_deadline_overshoot_ms", mid_overshoot_ms);
  report.AddNumber("mid_deadline_slots",
                   static_cast<double>(mid_deadline_slots));
  report.AddNumber("mid_deadline_ok_slots", static_cast<double>(mid_ok_slots));
  report.AddNumber("peak_rss_bytes", static_cast<double>(bench::PeakRssBytes()));
  if (!report.WriteFile("BENCH_overload.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_overload.json\n");
  } else {
    std::printf("\njson report    : BENCH_overload.json\n");
  }

  // --- Gates (smoke = ctest; the full run enforces them too). ------------
  bool ok = true;
  if (total_shed == 0) {
    std::fprintf(stderr, "GATE FAILED: 2x overload shed nothing — admission "
                 "control is not engaging\n");
    ok = false;
  }
  if (total_ok == 0) {
    std::fprintf(stderr, "GATE FAILED: overload waves admitted nothing — "
                 "shedding must degrade, not deny, service\n");
    ok = false;
  }
  if (total_other != 0) {
    std::fprintf(stderr, "GATE FAILED: %zu slots failed with neither success "
                 "nor kResourceExhausted under pure overload\n",
                 total_other);
    ok = false;
  }
  if (expired_misreported != 0) {
    std::fprintf(stderr, "GATE FAILED: %zu expired-deadline slots reported "
                 "something other than kDeadlineExceeded\n",
                 expired_misreported);
    ok = false;
  }
  // Loose absolute bounds: the real signal is the json trend, but a
  // runaway (a slot ignoring its deadline, a wave stuck in backlog)
  // must still fail CI outright.
  if (expired_wall_ms > 5000.0) {
    std::fprintf(stderr, "GATE FAILED: expired-deadline batch took %.0fms — "
                 "slots are not failing fast\n", expired_wall_ms);
    ok = false;
  }
  if (mid_overshoot_ms > 10000.0) {
    std::fprintf(stderr, "GATE FAILED: mid-flight deadline overshot by "
                 "%.0fms\n", mid_overshoot_ms);
    ok = false;
  }
  if (p99_ms > 60000.0) {
    std::fprintf(stderr, "GATE FAILED: p99 wave latency %.0fms under 2x "
                 "overload\n", p99_ms);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("gates          : shed>0, ok>0, deadline accuracy 100%%, "
              "bounded tails — all held\n");
  return 0;
}
