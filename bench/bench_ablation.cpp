// Ablations over the design choices called out in §5.2 "Tuning" and §7.
//
//   * weight formula for text nodes: 1 + ln(length) vs flat 1;
//   * ancestor look-up / propagation depth factor in
//     d = 1 + factor * ln(n) * W/W0;
//   * intra-parent move minimization: exact weighted LOPS vs the paper's
//     windowed-50 heuristic vs a narrow window;
//   * number of Phase-4 propagation passes;
//   * accepting unique candidates without ancestor context;
//   * move detection on/off ("intentionally missing move operations").
//
// Each variant reports diff time and delta size on one fixed workload, so
// quality/time trade-offs are visible side by side.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"

int main() {
  using namespace xydiff;
  using bench::Timer;

  bench::Banner("Ablations over BULD tuning knobs",
                "ICDE 2002 paper, Section 5.2 'Tuning' and Section 7");

  // Fixed workload: a 256 KB catalog with a churn mix heavy enough to
  // exercise every phase, including sibling reorders.
  Rng rng(4242);
  DocGenOptions gen;
  gen.target_bytes = 256 * 1024;
  gen.min_fanout = 4;
  gen.max_fanout = 12;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  ChangeSimOptions sim;
  sim.delete_probability = 0.08;
  sim.update_probability = 0.1;
  sim.insert_probability = 0.08;
  sim.move_probability = 0.15;
  Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
  if (!change.ok()) {
    std::fprintf(stderr, "%s\n", change.status().ToString().c_str());
    return 1;
  }

  std::printf("workload: %zu nodes, perfect delta %zu ops\n\n",
              base.node_count(), change->perfect_delta.operation_count());
  std::printf("%-34s %10s %12s %8s %8s\n", "variant", "time_ms",
              "delta_bytes", "ops", "moves");
  bench::Rule();

  const auto run = [&](const char* name, const DiffOptions& options) {
    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Timer timer;
    Result<Delta> delta = XyDiff(&a, &b, options);
    const double ms = timer.Seconds() * 1e3;
    if (!delta.ok()) {
      std::printf("%-34s FAILED: %s\n", name,
                  delta.status().ToString().c_str());
      return;
    }
    std::printf("%-34s %10.2f %12zu %8zu %8zu\n", name, ms,
                SerializeDelta(*delta).size(), delta->operation_count(),
                delta->moves().size());
  };

  run("baseline (paper defaults)", DiffOptions{});

  {
    DiffOptions o;
    o.text_log_weight = false;
    run("flat text weight", o);
  }
  for (double f : {0.25, 2.0, 8.0}) {
    DiffOptions o;
    o.ancestor_depth_factor = f;
    char name[64];
    std::snprintf(name, sizeof(name), "ancestor depth factor %.2f", f);
    run(name, o);
  }
  {
    DiffOptions o;
    o.lops_window = 50;
    run("windowed LOPS (paper, w=50)", o);
  }
  {
    DiffOptions o;
    o.lops_window = 8;
    run("windowed LOPS (w=8)", o);
  }
  for (int passes : {2, 4}) {
    DiffOptions o;
    o.propagation_passes = passes;
    char name[64];
    std::snprintf(name, sizeof(name), "%d propagation passes", passes);
    run(name, o);
  }
  {
    DiffOptions o;
    o.accept_unique_candidate = false;
    run("no unique-candidate acceptance", o);
  }
  {
    DiffOptions o;
    o.detect_moves = false;
    run("moves disabled (del+ins only)", o);
  }
  {
    DiffOptions o;
    o.max_candidates_scanned = 2;
    run("candidate scan cap 2", o);
  }
  {
    DiffOptions o;
    o.max_candidates_scanned = 256;
    run("candidate scan cap 256", o);
  }
  {
    DiffOptions o;
    o.compress_updates = true;
    run("compressed text updates", o);
  }
  {
    DiffOptions o;
    o.eager_sibling_matching = true;
    run("eager sibling matching", o);
  }

  std::printf(
      "\nReading guide: the paper's defaults should sit on the quality/time\n"
      "frontier — disabling moves inflates delta size, narrow windows or\n"
      "caps trade a little quality for speed, extra passes buy little.\n");
  return 0;
}
