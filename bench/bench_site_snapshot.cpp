// §6.2 in-text experiment — the INRIA site snapshot.
//
// "Using the site www.inria.fr that is about fourteen thousands pages,
// the XML document is about five million bytes. Given the two XML
// snapshots of the site, the diff computes the delta in about thirty
// seconds. Note that the core of our algorithm is running for less than
// two seconds whereas the rest of the time is used to read and write the
// XML data. The delta's we obtain for this particular site are typically
// of size one million bytes."
//
// Absolute numbers reflect 2001 hardware; the *shape* to reproduce is
// (a) a ~14k-page / ~5 MB snapshot is handled comfortably, (b) the core
// matching phases are a small fraction of total time, which is dominated
// by reading/writing XML, and (c) the delta is a fraction of the
// document (~1 MB / 5 MB under the site's weekly churn).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;
  using bench::Timer;

  bench::Banner("Site snapshot diff (www.inria.fr scale)",
                "ICDE 2002 paper, Section 6.2 in-text experiment");

  Rng rng(14000);
  const size_t pages = 14000;

  Timer generate_timer;
  XmlDocument snapshot1 = GenerateSiteSnapshot(&rng, pages);
  snapshot1.AssignInitialXids();

  // The paper's site churn: ~1 MB of delta out of 5 MB, i.e. a fairly
  // active site week. Tune the profile to that activity level.
  ChangeSimOptions site_week;
  site_week.delete_probability = 0.01;
  site_week.update_probability = 0.05;
  site_week.insert_probability = 0.015;
  site_week.move_probability = 0.004;
  Result<SimulatedChange> week = SimulateChanges(snapshot1, site_week, &rng);
  if (!week.ok()) {
    std::fprintf(stderr, "%s\n", week.status().ToString().c_str());
    return 1;
  }
  std::printf("setup: generated %zu pages in %.1fs\n", pages,
              generate_timer.Seconds());

  const std::string old_xml = SerializeDocument(snapshot1);
  const std::string new_xml = SerializeDocument(week->new_version);
  std::printf("snapshot sizes: %s and %s\n",
              bench::Bytes(static_cast<double>(old_xml.size())).c_str(),
              bench::Bytes(static_cast<double>(new_xml.size())).c_str());

  // Full pipeline, timed like the paper: read XML -> diff -> write delta.
  Timer read_timer;
  Result<XmlDocument> old_doc = ParseXml(old_xml);
  Result<XmlDocument> new_doc = ParseXml(new_xml);
  const double read_s = read_timer.Seconds();
  if (!old_doc.ok() || !new_doc.ok()) {
    std::fprintf(stderr, "parse failed\n");
    return 1;
  }
  old_doc->AssignInitialXids();

  DiffStats stats;
  Timer diff_timer;
  Result<Delta> delta =
      XyDiff(&old_doc.value(), &new_doc.value(), DiffOptions{}, &stats);
  const double diff_s = diff_timer.Seconds();
  if (!delta.ok()) {
    std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
    return 1;
  }

  Timer write_timer;
  const std::string delta_xml = SerializeDelta(*delta);
  const double write_s = write_timer.Seconds();

  bench::Rule();
  std::printf("read XML          : %7.3f s\n", read_s);
  std::printf("diff (all phases) : %7.3f s\n", diff_s);
  std::printf("  core matching (phases 3+4): %7.3f s\n",
              stats.phase3_seconds + stats.phase4_seconds);
  std::printf("write delta       : %7.3f s\n", write_s);
  std::printf("total             : %7.3f s\n", read_s + diff_s + write_s);
  bench::Rule();
  std::printf("delta size        : %s (%.0f%% of snapshot)\n",
              bench::Bytes(static_cast<double>(delta_xml.size())).c_str(),
              100.0 * static_cast<double>(delta_xml.size()) /
                  static_cast<double>(old_xml.size()));
  std::printf("operations        : %zu (del %zu, ins %zu, mov %zu, upd %zu,"
              " attr %zu)\n",
              delta->operation_count(), delta->deletes().size(),
              delta->inserts().size(), delta->moves().size(),
              delta->updates().size(), delta->attribute_ops().size());
  const double core = stats.phase3_seconds + stats.phase4_seconds;
  const double total = read_s + diff_s + write_s;
  std::printf("core share        : %.0f%% of total — paper: <2s of ~30s"
              " (~7%%)\n", 100.0 * core / total);
  return 0;
}
