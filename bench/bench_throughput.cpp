// Warehouse throughput — the motivating requirement of §1/§2.
//
// "In the Xyleme project, we were lead to compute the diff between the
// millions of documents loaded each day and previous versions of these
// documents ... The diff has to run at the speed of the indexer (not to
// slow down the whole system). It also has to use little memory."
//
// This bench drives the full ingest path — parse old + new, diff, write
// the delta — over a web-like corpus and reports documents/second and
// MB/second for one core, plus the projected documents/day. (A crawler
// loading "millions of pages per day" needs ~12 docs/s sustained per
// million.)

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/warehouse.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;
  using bench::Timer;

  bench::Banner("Warehouse ingest throughput (single core)",
                "ICDE 2002 paper, Sections 1-2 throughput requirement");

  Rng rng(604800);  // Seconds per week.
  WebCorpusOptions corpus_options;
  corpus_options.document_count = 300;
  std::vector<XmlDocument> corpus = GenerateWebCorpus(&rng, corpus_options);
  const ChangeSimOptions weekly = WeeklyWebChangeProfile();

  // Materialize the version pairs as text, as the crawler would hand
  // them over.
  struct Pair {
    std::string old_xml;
    std::string new_xml;
  };
  std::vector<Pair> pairs;
  pairs.reserve(corpus.size());
  size_t total_bytes = 0;
  for (XmlDocument& doc : corpus) {
    doc.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(doc, weekly, &rng);
    if (!change.ok()) return 1;
    Pair pair{SerializeDocument(doc),
              SerializeDocument(change->new_version)};
    total_bytes += pair.old_xml.size() + pair.new_xml.size();
    pairs.push_back(std::move(pair));
  }

  // The measured loop: parse both versions, diff, serialize the delta.
  // Best-of-3: the box's clock frequency drifts ±10%, and a single
  // timing would make the pipelined-vs-straight-line ratio below
  // depend on *when* each side ran rather than on the code.
  double seconds = 0;
  size_t delta_bytes = 0;
  size_t operations = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    size_t rep_delta_bytes = 0;
    size_t rep_operations = 0;
    for (const Pair& pair : pairs) {
      Result<XmlDocument> old_doc = ParseXml(pair.old_xml);
      Result<XmlDocument> new_doc = ParseXml(pair.new_xml);
      if (!old_doc.ok() || !new_doc.ok()) return 1;
      old_doc->AssignInitialXids();
      Result<Delta> delta = XyDiff(&old_doc.value(), &new_doc.value());
      if (!delta.ok()) return 1;
      rep_delta_bytes += SerializeDelta(*delta).size();
      rep_operations += delta->operation_count();
    }
    const double rep_seconds = timer.Seconds();
    if (rep == 0 || rep_seconds < seconds) seconds = rep_seconds;
    delta_bytes = rep_delta_bytes;
    operations = rep_operations;
  }

  const double docs_per_second = static_cast<double>(pairs.size()) / seconds;
  const double mb_per_second = static_cast<double>(total_bytes) / seconds / 1e6;
  const size_t peak_rss = bench::PeakRssBytes();
  std::printf("documents      : %zu version pairs, %s of XML\n", pairs.size(),
              bench::Bytes(static_cast<double>(total_bytes)).c_str());
  std::printf("wall time      : %.2f s\n", seconds);
  std::printf("throughput     : %.0f docs/s, %s/s\n", docs_per_second,
              bench::Bytes(static_cast<double>(total_bytes) / seconds).c_str());
  std::printf("projected      : %.1f million docs/day on one core\n",
              docs_per_second * 86400.0 / 1e6);
  std::printf("delta output   : %s, %zu operations\n",
              bench::Bytes(static_cast<double>(delta_bytes)).c_str(),
              operations);
  std::printf("peak RSS       : %s\n",
              bench::Bytes(static_cast<double>(peak_rss)).c_str());

  {
    // Machine-readable result, next to the binary. `baseline` is the
    // last recorded pre-arena measurement on the reference box (see
    // BENCH_throughput.json at the repo root), kept here so a regression
    // shows up in the same file that reports the new number.
    bench::JsonReport baseline;
    baseline.AddNumber("docs_per_second", 327.0);
    baseline.AddNumber("mb_per_second", 29.71);
    baseline.AddNumber("peak_rss_bytes", 718900.0 * 1024.0);
    bench::JsonReport report;
    report.AddString("bench", "throughput");
    report.AddNumber("documents", static_cast<double>(pairs.size()));
    report.AddNumber("xml_bytes", static_cast<double>(total_bytes));
    report.AddNumber("wall_seconds", seconds);
    report.AddNumber("docs_per_second", docs_per_second);
    report.AddNumber("mb_per_second", mb_per_second);
    report.AddNumber("peak_rss_bytes", static_cast<double>(peak_rss));
    report.AddNumber("delta_bytes", static_cast<double>(delta_bytes));
    report.AddNumber("operations", static_cast<double>(operations));
    report.AddObject("baseline", baseline);
    if (!report.WriteFile("BENCH_throughput.json")) {
      std::fprintf(stderr, "warning: could not write BENCH_throughput.json\n");
    } else {
      std::printf("json report    : BENCH_throughput.json\n");
    }
  }
  // --- Part 2: the warehouse's parallel ingest (per-document work is
  // embarrassingly parallel; Figure 1's pipeline shards by document). ----
  std::printf("\n--- warehouse batch ingest (diff pipeline + alerter +"
              " stats + index) ---\n");
  std::printf("hardware concurrency: %u core(s) — thread scaling is only\n"
              "observable with more than one\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %12s %12s\n", "threads", "wall_s", "docs/s");
  bench::Rule();
  for (int threads : {1, 2, 4, 8}) {
    Warehouse warehouse;
    if (!warehouse.Subscribe("all-products", "//item").ok()) return 1;
    // Week 1 (not timed): parse + first-version store.
    std::vector<std::pair<std::string, XmlDocument>> week1;
    std::vector<std::pair<std::string, XmlDocument>> week2;
    for (size_t i = 0; i < pairs.size(); ++i) {
      Result<XmlDocument> v1 = ParseXml(pairs[i].old_xml);
      Result<XmlDocument> v2 = ParseXml(pairs[i].new_xml);
      if (!v1.ok() || !v2.ok()) return 1;
      week1.emplace_back("url" + std::to_string(i), std::move(*v1));
      week2.emplace_back("url" + std::to_string(i), std::move(*v2));
    }
    for (auto& r : warehouse.IngestBatch(std::move(week1), threads)) {
      if (!r.ok()) return 1;
    }
    Timer batch_timer;
    for (auto& r : warehouse.IngestBatch(std::move(week2), threads)) {
      if (!r.ok()) return 1;
    }
    const double batch_s = batch_timer.Seconds();
    std::printf("%-8d %12.2f %12.0f\n", threads, batch_s,
                static_cast<double>(pairs.size()) / batch_s);
  }

  // --- Part 3: the staged DiffBatch pipeline (parse → diff → store on
  // the work-stealing pool, bounded queues, backpressure) with a thread
  // sweep recorded machine-readably in BENCH_parallel.json. -------------
  std::printf("\n--- DiffBatch pipeline (parse -> diff -> store), thread"
              " sweep ---\n");
  std::printf("%-8s %12s %12s %10s %12s\n", "threads", "wall_s", "docs/s",
              "speedup", "stall_s");
  bench::Rule();

  bench::JsonReport parallel_report;
  parallel_report.AddString("bench", "parallel_pipeline");
  parallel_report.AddNumber("documents", static_cast<double>(pairs.size()));
  parallel_report.AddNumber("xml_bytes", static_cast<double>(total_bytes));
  parallel_report.AddNumber(
      "hardware_concurrency",
      static_cast<double>(std::thread::hardware_concurrency()));
  double single_thread_docs_per_s = 0;
  for (int threads : {1, 2, 4, 8}) {
    // Best-of-3, fresh warehouse per rep (a version pair can only be
    // ingested once). No subscription: alerts are never deferred, so
    // one would force node-index + alerter work per slot that the
    // part-1 straight-line loop does not do. Part 2 measures the
    // monitor-laden path; this sweep measures the pipeline itself.
    double batch_s = 0;
    PipelineStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      Warehouse warehouse;
      Warehouse::PipelineOptions pipeline;
      pipeline.threads = threads;

      std::vector<Warehouse::DiffJob> week1;
      std::vector<Warehouse::DiffJob> week2;
      week1.reserve(pairs.size());
      week2.reserve(pairs.size());
      for (size_t i = 0; i < pairs.size(); ++i) {
        week1.push_back({"url" + std::to_string(i), pairs[i].old_xml});
        week2.push_back({"url" + std::to_string(i), pairs[i].new_xml});
      }
      for (auto& r : warehouse.DiffBatch(std::move(week1), pipeline)) {
        if (!r.ok()) return 1;
      }
      PipelineStats rep_stats;
      Timer batch_timer;
      for (auto& r :
           warehouse.DiffBatch(std::move(week2), pipeline, &rep_stats)) {
        if (!r.ok()) return 1;
      }
      const double rep_s = batch_timer.Seconds();
      if (rep == 0 || rep_s < batch_s) {
        batch_s = rep_s;
        stats = rep_stats;
      }
    }
    const double docs_per_s = static_cast<double>(pairs.size()) / batch_s;
    if (threads == 1) single_thread_docs_per_s = docs_per_s;
    double stall_s = 0;
    for (const StageStats& stage : stats.stages) {
      stall_s += stage.stall_seconds;
    }
    const double speedup = single_thread_docs_per_s > 0
                               ? docs_per_s / single_thread_docs_per_s
                               : 1.0;
    std::printf("%-8d %12.2f %12.0f %9.2fx %12.3f\n", threads, batch_s,
                docs_per_s, speedup, stall_s);

    bench::JsonReport point;
    point.AddNumber("wall_seconds", batch_s);
    point.AddNumber("docs_per_second", docs_per_s);
    point.AddNumber("speedup_vs_1_thread", speedup);
    point.AddNumber("peak_in_flight", static_cast<double>(stats.peak_in_flight));
    point.AddNumber("stall_seconds", stall_s);
    for (const StageStats& stage : stats.stages) {
      point.AddNumber(stage.name + "_items",
                      static_cast<double>(stage.items));
      point.AddNumber(stage.name + "_peak_queue",
                      static_cast<double>(stage.peak_queue_depth));
    }
    parallel_report.AddObject("threads_" + std::to_string(threads), point);
  }
  // The PR 6 acceptance ratio: the staged pipeline at 1 thread vs the
  // part-1 straight-line loop, same corpus, same process. bench_smoke
  // gates this in ctest at >= 0.9; here it is recorded for trend lines.
  parallel_report.AddNumber("straight_line_docs_per_second", docs_per_second);
  parallel_report.AddNumber("pipelined_1_thread_docs_per_second",
                            single_thread_docs_per_s);
  parallel_report.AddNumber("pipelined_over_straight_line",
                            single_thread_docs_per_s / docs_per_second);
  std::printf("pipelined 1-thread vs straight-line: %.2fx\n",
              single_thread_docs_per_s / docs_per_second);
  if (!parallel_report.WriteFile("BENCH_parallel.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_parallel.json\n");
  } else {
    std::printf("json report    : BENCH_parallel.json\n");
  }

  std::printf(
      "\nExpected shape (paper): ingest keeps pace with a crawler loading\n"
      "millions of pages per day; diff is not the pipeline bottleneck, and\n"
      "per-document work scales near-linearly across cores (observable only\n"
      "when hardware_concurrency > 1).\n");
  return 0;
}
