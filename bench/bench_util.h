#ifndef XYDIFF_BENCH_BENCH_UTIL_H_
#define XYDIFF_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace xydiff::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a header banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const char* experiment, const char* paper_ref) {
  std::printf("\n=============================================================="
              "==================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================"
              "================\n");
}

/// Simple aligned table output: call Row with printf-style formatting.
inline void Rule() {
  std::printf("------------------------------------------------------------"
              "--------------------\n");
}

/// Human-readable byte count.
inline std::string Bytes(double n) {
  char buffer[32];
  if (n >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fMB", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKB", n / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fB", n);
  }
  return buffer;
}

/// Peak resident set size of this process so far, in bytes (0 if the
/// platform does not report it). Linux ru_maxrss is in kilobytes.
inline size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

/// Minimal JSON report: flat or one-level-nested objects of numbers and
/// strings, written with stable key order so diffs of the output are
/// readable. Enough for machine-checkable benchmark results without a
/// JSON dependency.
class JsonReport {
 public:
  void AddNumber(const std::string& key, double value) {
    char buffer[64];
    // Integral values print without a trailing ".0"; others keep
    // round-trip precision.
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    }
    fields_.emplace_back(key, buffer);
  }

  void AddString(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }

  void AddObject(const std::string& key, const JsonReport& object) {
    fields_.emplace_back(key, object.Dump());
  }

  std::string Dump() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + Escape(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Writes the report to `path` (single line + newline). Returns false
  /// on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = Dump() + "\n";
    const size_t written = std::fwrite(text.data(), 1, text.size(), f);
    return std::fclose(f) == 0 && written == text.size();
  }

 private:
  static std::string Escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace xydiff::bench

#endif  // XYDIFF_BENCH_BENCH_UTIL_H_
