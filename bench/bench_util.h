#ifndef XYDIFF_BENCH_BENCH_UTIL_H_
#define XYDIFF_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace xydiff::bench {

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints a header banner naming the experiment and the paper artifact it
/// regenerates.
inline void Banner(const char* experiment, const char* paper_ref) {
  std::printf("\n=============================================================="
              "==================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================"
              "================\n");
}

/// Simple aligned table output: call Row with printf-style formatting.
inline void Rule() {
  std::printf("------------------------------------------------------------"
              "--------------------\n");
}

/// Human-readable byte count.
inline std::string Bytes(double n) {
  char buffer[32];
  if (n >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2fMB", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fKB", n / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fB", n);
  }
  return buffer;
}

}  // namespace xydiff::bench

#endif  // XYDIFF_BENCH_BENCH_UTIL_H_
