// Figure 4 — "Time cost for the different phases".
//
// The paper plots, log-log, the time spent in phases 1+2 (parse, hash,
// ID registration), phase 3 (BULD matching), phase 4 (optimization
// propagation) and phase 5 (delta construction) against the total size of
// both XML documents, for documents from ~1 KB to ~10 MB changed by the
// simulator at 10% per-node probability for every operation. The claimed
// shape: every phase grows ~linearly, and phases 3+4 — the algorithmic
// core — are the cheapest; data-structure manipulation dominates.
//
// Here phase 1+2 additionally includes XML parsing time, as in the paper
// ("in phase 1 and 2, we parse the file and hash its content").

#include <cstdio>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;
  using bench::Timer;

  bench::Banner("Figure 4: time cost of the diff phases vs document size",
                "ICDE 2002 paper, Figure 4 (log-log, near-linear phases)");

  std::printf("%-12s %-10s %12s %12s %12s %12s %12s\n", "total_bytes",
              "nodes", "phase1+2_us", "phase3_us", "phase4_us", "phase5_us",
              "total_us");
  bench::Rule();

  Rng rng(42);
  ChangeSimOptions churn;  // Paper setting: 10% per node per operation.

  for (size_t target = 1 << 10; target <= (4u << 20); target *= 4) {
    DocGenOptions gen;
    gen.target_bytes = target;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(base, churn, &rng);
    if (!change.ok()) {
      std::fprintf(stderr, "%s\n", change.status().ToString().c_str());
      return 1;
    }
    const std::string old_xml = SerializeDocument(base);
    const std::string new_xml = SerializeDocument(change->new_version);
    const size_t total_bytes = old_xml.size() + new_xml.size();

    // Parse + diff, repeated a few times for stable numbers on the
    // smaller inputs.
    const int reps = total_bytes < (1 << 18) ? 5 : 1;
    double parse_s = 0;
    DiffStats stats{};
    for (int rep = 0; rep < reps; ++rep) {
      Timer parse_timer;
      Result<XmlDocument> old_doc = ParseXml(old_xml);
      Result<XmlDocument> new_doc = ParseXml(new_xml);
      parse_s += parse_timer.Seconds();
      if (!old_doc.ok() || !new_doc.ok()) {
        std::fprintf(stderr, "parse error\n");
        return 1;
      }
      old_doc->AssignInitialXids();
      DiffStats s{};
      Result<Delta> delta =
          XyDiff(&old_doc.value(), &new_doc.value(), DiffOptions{}, &s);
      if (!delta.ok()) {
        std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
        return 1;
      }
      stats = s;
    }
    parse_s /= reps;

    const double p12 =
        (parse_s + stats.phase1_seconds + stats.phase2_seconds) * 1e6;
    const double p3 = stats.phase3_seconds * 1e6;
    const double p4 = stats.phase4_seconds * 1e6;
    const double p5 = stats.phase5_seconds * 1e6;
    std::printf("%-12zu %-10zu %12.0f %12.0f %12.0f %12.0f %12.0f\n",
                total_bytes, stats.nodes_old + stats.nodes_new, p12, p3, p4,
                p5, p12 + p3 + p4 + p5);
  }

  std::printf(
      "\nExpected shape (paper): all phases near-linear in input size;\n"
      "phases 3+4 (matching) cheapest; parsing/hashing and delta\n"
      "construction (DOM manipulation) dominate.\n");
  return 0;
}
