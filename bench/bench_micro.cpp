// Micro-benchmarks (google-benchmark) for the substrate hot paths: XML
// parsing and serialization, subtree signatures, the weighted LOPS
// solver, the priority queue, and the hash function. These are the
// constants behind Figure 4's lines.

#include <benchmark/benchmark.h>

#include <numeric>

#include "delta/diff_tree.h"
#include "delta/lcs.h"
#include "core/node_queue.h"
#include "delta/options.h"
#include "delta/signature.h"
#include "simulator/doc_generator.h"
#include "util/hash.h"
#include "util/random.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

std::string SampleXml(size_t bytes) {
  Rng rng(1);
  DocGenOptions options;
  options.target_bytes = bytes;
  return SerializeDocument(GenerateDocument(&rng, options));
}

void BM_ParseXml(benchmark::State& state) {
  const std::string xml = SampleXml(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<XmlDocument> doc = ParseXml(xml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_ParseXml)->Arg(16 << 10)->Arg(256 << 10)->Arg(1 << 20);

void BM_SerializeXml(benchmark::State& state) {
  Rng rng(1);
  DocGenOptions options;
  options.target_bytes = static_cast<size_t>(state.range(0));
  XmlDocument doc = GenerateDocument(&rng, options);
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = SerializeDocument(doc);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SerializeXml)->Arg(16 << 10)->Arg(1 << 20);

void BM_Signatures(benchmark::State& state) {
  Rng rng(2);
  DocGenOptions options;
  options.target_bytes = static_cast<size_t>(state.range(0));
  XmlDocument doc = GenerateDocument(&rng, options);
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  const DiffOptions diff_options;
  for (auto _ : state) {
    ComputeSignaturesAndWeights(&tree, diff_options);
    benchmark::DoNotOptimize(tree.signature(0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          tree.size());
}
BENCHMARK(BM_Signatures)->Arg(16 << 10)->Arg(1 << 20);

void BM_DiffTreeBuild(benchmark::State& state) {
  Rng rng(3);
  DocGenOptions options;
  options.target_bytes = static_cast<size_t>(state.range(0));
  XmlDocument doc = GenerateDocument(&rng, options);
  for (auto _ : state) {
    LabelTable labels;
    DiffTree tree = DiffTree::Build(&doc, &labels);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_DiffTreeBuild)->Arg(16 << 10)->Arg(1 << 20);

void BM_HashBytes(benchmark::State& state) {
  Rng rng(4);
  const std::string data = rng.NextWord(3, 3 + static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashBytes(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HashBytes)->Arg(8)->Arg(64)->Arg(1024);

void BM_WeightedLis(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<size_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextIndex(i)]);
  }
  std::vector<double> weights(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedLis(values, weights));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WeightedLis)->Arg(50)->Arg(1000)->Arg(50000);

void BM_WindowedLis(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<size_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextIndex(i)]);
  }
  std::vector<double> weights(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WindowedLis(values, weights, 50));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WindowedLis)->Arg(1000)->Arg(50000);

void BM_NodeQueue(benchmark::State& state) {
  Rng rng(7);
  DocGenOptions options;
  options.target_bytes = 64 << 10;
  XmlDocument doc = GenerateDocument(&rng, options);
  LabelTable labels;
  DiffTree tree = DiffTree::Build(&doc, &labels);
  const DiffOptions diff_options;
  ComputeSignaturesAndWeights(&tree, diff_options);
  for (auto _ : state) {
    NodeQueue queue(&tree);
    for (NodeIndex i = 0; i < tree.size(); ++i) queue.Push(i);
    double acc = 0;
    while (!queue.empty()) acc += tree.weight(queue.Pop());
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          tree.size());
}
BENCHMARK(BM_NodeQueue);

}  // namespace
}  // namespace xydiff

BENCHMARK_MAIN();
