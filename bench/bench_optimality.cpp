// Optimality gap — §1/§6.1.
//
// "Since this problem is NP-hard, the linear time is obtained by trading
// some quality. We present experiments that show that the output of
// our algorithm is reasonably close to the 'optimal' in terms of
// quality."
//
// On small documents (where the exact ordered tree edit distance is
// computable with Zhang-Shasha) we compare BULD's edit cost against the
// optimum, for a sweep of change rates. Moves are excluded from the
// simulated mix because the classic edit distance has no move operation.

#include <cstdio>

#include "baseline/selkow.h"
#include "baseline/zhang_shasha.h"
#include "bench/bench_util.h"
#include "core/buld.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"

int main() {
  using namespace xydiff;

  bench::Banner("Optimality: BULD edit cost vs exact tree edit distance",
                "ICDE 2002 paper, Sections 1/6.1 quality-trade-off claim");

  std::printf("%-8s %-8s %12s %12s %12s %8s %8s\n", "change%", "rounds",
              "buld_cost", "selkow_cost", "optimal", "buld/opt",
              "selk/opt");
  bench::Rule();

  Rng rng(55);
  DocGenOptions gen;
  gen.target_bytes = 700;  // ~30-60 nodes: exact TED stays fast.

  for (double rate : {0.02, 0.05, 0.1, 0.2, 0.35}) {
    double total_buld = 0;
    double total_selkow = 0;
    double total_optimal = 0;
    const int rounds = 20;
    for (int round = 0; round < rounds; ++round) {
      XmlDocument base = GenerateDocument(&rng, gen);
      base.AssignInitialXids();
      ChangeSimOptions sim;
      sim.delete_probability = rate;
      sim.update_probability = rate;
      sim.insert_probability = rate;
      sim.move_probability = 0;  // TED has no move operation.
      Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
      if (!change.ok()) return 1;

      total_optimal += static_cast<double>(
          TreeEditDistance(*base.root(), *change->new_version.root()));
      total_selkow += static_cast<double>(
          SelkowEditDistance(*base.root(), *change->new_version.root()));
      XmlDocument a = base.Clone();
      XmlDocument b = change->new_version.Clone();
      Result<Delta> delta = XyDiff(&a, &b);
      if (!delta.ok()) return 1;
      total_buld += static_cast<double>(delta->edit_cost());
    }
    std::printf("%-8.0f %-8d %12.0f %12.0f %12.0f %8.2f %8.2f\n",
                rate * 100, rounds, total_buld, total_selkow, total_optimal,
                total_optimal > 0 ? total_buld / total_optimal : 1.0,
                total_optimal > 0 ? total_selkow / total_optimal : 1.0);
  }

  std::printf(
      "\nExpected shape (paper): the ratio stays a small constant — BULD\n"
      "trades bounded quality (coarser subtree-granularity scripts) for\n"
      "near-linear running time on an NP-hard problem.\n");
  return 0;
}
