// Contention bench — what serializes the warehouse pipeline, and what
// the group-commit protocol buys (DESIGN.md §3.13).
//
// Three experiments, all on the 300-document weekly-crawl corpus:
//
//   * lock hold-time histograms: a document's mutex is held for the
//     whole of one ingest, and the batch lock for the whole of one
//     group commit. Both distributions are bucketed into power-of-two
//     microsecond bins — the shape (not just the mean) decides how
//     wide a group can be before the store stage becomes the pipeline's
//     serial section;
//   * simulated multi-warehouse sharding: the corpus is partitioned
//     over {1, 2, 4, 16} independent warehouses diffed concurrently.
//     Sharding removes every cross-document lock (stats merge, alerter,
//     shard maps), so the spread between 1 and 16 shards bounds what
//     those shared locks cost. An Amdahl projection from the measured
//     serial fraction is reported next to the measured numbers;
//   * commit-point counting: every env operation of the store stage is
//     a syscall-ish unit; a counting env compares per-slot commits
//     (group_commit_slots = 1) against batched commits (8) over the
//     same 64 repositories.
//
// Results land in BENCH_contention.json for machine comparison.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/fault_env.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "version/storage.h"
#include "version/warehouse.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

namespace fs = std::filesystem;
using namespace xydiff;
using Clock = std::chrono::steady_clock;

struct Pair {
  std::string old_xml, new_xml;
};

std::vector<Pair> MakeCorpus(int documents) {
  Rng rng(604800);
  WebCorpusOptions corpus_options;
  corpus_options.document_count = documents;
  std::vector<XmlDocument> corpus = GenerateWebCorpus(&rng, corpus_options);
  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  std::vector<Pair> pairs;
  pairs.reserve(corpus.size());
  for (XmlDocument& doc : corpus) {
    doc.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(doc, weekly, &rng);
    if (!change.ok()) {
      std::fprintf(stderr, "corpus construction failed\n");
      std::exit(1);
    }
    pairs.push_back({SerializeDocument(doc),
                     SerializeDocument(change->new_version)});
  }
  return pairs;
}

/// Power-of-two microsecond histogram: bucket b holds samples in
/// [2^b, 2^(b+1)) µs; bucket 0 also catches sub-microsecond samples.
class MicrosHistogram {
 public:
  void Add(double seconds) {
    const double us = seconds * 1e6;
    size_t b = 0;
    while (b + 1 < counts_.size() && us >= static_cast<double>(2ull << b)) {
      ++b;
    }
    ++counts_[b];
    total_us_ += us;
    ++samples_;
    max_us_ = std::max(max_us_, us);
  }

  void Print(const char* name) const {
    std::printf("%s: %zu samples, mean %.1fus, max %.1fus\n", name, samples_,
                samples_ ? total_us_ / static_cast<double>(samples_) : 0.0,
                max_us_);
    for (size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      std::printf("  [%6llu..%6lluus) %6zu\n",
                  b == 0 ? 0ull : (1ull << b), 2ull << b, counts_[b]);
    }
  }

  void Report(bench::JsonReport* json, const std::string& prefix) const {
    json->AddNumber(prefix + "_samples", static_cast<double>(samples_));
    json->AddNumber(prefix + "_mean_us",
                    samples_ ? total_us_ / static_cast<double>(samples_) : 0);
    json->AddNumber(prefix + "_max_us", max_us_);
    for (size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      json->AddNumber(prefix + "_bucket_" + std::to_string(1ull << b) + "us",
                      static_cast<double>(counts_[b]));
    }
  }

  double total_seconds() const { return total_us_ / 1e6; }

 private:
  std::array<size_t, 24> counts_{};
  size_t samples_ = 0;
  double total_us_ = 0;
  double max_us_ = 0;
};

std::vector<Warehouse::DiffJob> JobsFor(const std::vector<Pair>& pairs,
                                        bool old_side, size_t shard,
                                        size_t shard_count) {
  std::vector<Warehouse::DiffJob> jobs;
  for (size_t i = shard; i < pairs.size(); i += shard_count) {
    jobs.push_back({"url" + std::to_string(i),
                    old_side ? pairs[i].old_xml : pairs[i].new_xml});
  }
  return jobs;
}

}  // namespace

int main() {
  bench::Banner("Lock contention: hold times, sharding, commit points",
                "ICDE 2002 paper, Section 1 (warehouse scale requirement)");

  const std::vector<Pair> pairs = MakeCorpus(300);
  bench::JsonReport json;
  json.AddString("bench", "contention");
  json.AddNumber("documents", static_cast<double>(pairs.size()));

  // --- Part 1: lock hold-time histograms -------------------------------
  // Ingest() holds the document mutex end to end, so per-ingest latency
  // IS the per-document lock hold time. Group commits hold the batch
  // lock end to end the same way.
  bench::Rule();
  std::printf("lock hold-time histograms (1 thread)\n");
  MicrosHistogram doc_hold;
  double ingest_wall = 0;
  {
    Warehouse warehouse;
    for (size_t i = 0; i < pairs.size(); ++i) {
      Result<XmlDocument> v1 = ParseXml(pairs[i].old_xml);
      if (!v1.ok() ||
          !warehouse.Ingest("url" + std::to_string(i), std::move(*v1)).ok()) {
        std::fprintf(stderr, "week1 ingest failed\n");
        return 1;
      }
    }
    bench::Timer wall;
    for (size_t i = 0; i < pairs.size(); ++i) {
      Result<XmlDocument> v2 = ParseXml(pairs[i].new_xml);
      if (!v2.ok()) return 1;
      bench::Timer hold;
      if (!warehouse.Ingest("url" + std::to_string(i), std::move(*v2)).ok()) {
        std::fprintf(stderr, "week2 ingest failed\n");
        return 1;
      }
      doc_hold.Add(hold.Seconds());
    }
    ingest_wall = wall.Seconds();
  }
  doc_hold.Print("doc-mutex hold");
  doc_hold.Report(&json, "doc_hold");

  // Group-commit hold times: persist 64 fresh single-version
  // repositories in groups of 8 — each SaveRepositoryBatch call holds
  // the batch lock for the whole group.
  MicrosHistogram batch_hold;
  {
    const std::string parent = (fs::temp_directory_path() /
                                "xydiff_bench_contention_hold").string();
    std::error_code ec;
    fs::remove_all(parent, ec);
    constexpr size_t kRepos = 64, kGroup = 8;
    std::vector<VersionRepository> repos;
    repos.reserve(kRepos);
    for (size_t i = 0; i < kRepos; ++i) {
      Result<XmlDocument> doc = ParseXml(pairs[i % pairs.size()].old_xml);
      if (!doc.ok()) return 1;
      repos.emplace_back(std::move(*doc));
    }
    for (size_t base = 0; base < kRepos; base += kGroup) {
      std::vector<RepositorySaveSlot> slots;
      for (size_t i = base; i < base + kGroup; ++i) {
        slots.push_back({&repos[i], "slot" + std::to_string(i)});
      }
      bench::Timer hold;
      if (!SaveRepositoryBatch(slots, parent).ok()) {
        std::fprintf(stderr, "group commit failed\n");
        return 1;
      }
      batch_hold.Add(hold.Seconds());
    }
    fs::remove_all(parent, ec);
  }
  batch_hold.Print("batch-lock hold (8-slot group commit)");
  batch_hold.Report(&json, "batch_hold");

  // --- Part 2: simulated multi-warehouse sharding -----------------------
  // Partition the corpus over N independent warehouses and diff every
  // shard concurrently on one 4-worker pool. More shards = fewer shared
  // locks in play; the spread bounds the cross-document serial section.
  bench::Rule();
  std::printf("multi-warehouse sharding, 4 pool workers "
              "(hardware_concurrency %u)\n%8s %10s %10s\n",
              std::thread::hardware_concurrency(), "shards", "wall_s",
              "docs/s");
  double wall_1_shard = 0, wall_16_shards = 0;
  for (size_t shard_count : {1u, 2u, 4u, 16u}) {
    std::vector<std::unique_ptr<Warehouse>> shards;
    for (size_t s = 0; s < shard_count; ++s) {
      shards.push_back(std::make_unique<Warehouse>());
    }
    Warehouse::PipelineOptions pipeline;
    pipeline.threads = 1;  // Per shard; the outer pool provides width.
    std::atomic<bool> failed{false};
    {
      ThreadPool pool(4);
      for (size_t s = 0; s < shard_count; ++s) {
        pool.Submit([&, s] {
          for (auto& r :
               shards[s]->DiffBatch(JobsFor(pairs, true, s, shard_count),
                                    pipeline)) {
            if (!r.ok()) failed.store(true);
          }
        });
      }
      pool.Wait();
    }
    if (failed.load()) {
      std::fprintf(stderr, "week1 shard ingest failed\n");
      return 1;
    }
    bench::Timer timer;
    {
      ThreadPool pool(4);
      for (size_t s = 0; s < shard_count; ++s) {
        pool.Submit([&, s] {
          for (auto& r :
               shards[s]->DiffBatch(JobsFor(pairs, false, s, shard_count),
                                    pipeline)) {
            if (!r.ok()) failed.store(true);
          }
        });
      }
      pool.Wait();
    }
    const double wall = timer.Seconds();
    if (failed.load()) {
      std::fprintf(stderr, "week2 shard ingest failed\n");
      return 1;
    }
    if (shard_count == 1) wall_1_shard = wall;
    if (shard_count == 16) wall_16_shards = wall;
    std::printf("%8zu %10.2f %10.0f\n", shard_count, wall,
                static_cast<double>(pairs.size()) / wall);
    json.AddNumber("shards_" + std::to_string(shard_count) + "_wall_seconds",
                   wall);
    json.AddNumber("shards_" + std::to_string(shard_count) + "_docs_per_second",
                   static_cast<double>(pairs.size()) / wall);
  }

  // Amdahl projection: treat the 1→16 shard spread as the serial
  // fraction s (everything shards cannot remove is per-document work):
  //   s = (T_1 - T_16) / T_1, predicted speedup(k) = 1 / (s/k + (1-s))
  // with the roles inverted — sharding removes the *shared* section, so
  // the spread IS that section's weight.
  const double shared_fraction =
      wall_1_shard > 0 ? std::max(0.0, (wall_1_shard - wall_16_shards) /
                                           wall_1_shard)
                       : 0;
  std::printf("shared-lock fraction (1 vs 16 shards): %.1f%%\n",
              shared_fraction * 100);
  json.AddNumber("shared_lock_fraction", shared_fraction);
  for (int k : {2, 4, 8}) {
    const double predicted =
        1.0 / (shared_fraction + (1.0 - shared_fraction) / k);
    std::printf("Amdahl predicted speedup at %d threads: %.2fx\n", k,
                predicted);
    json.AddNumber("amdahl_predicted_speedup_" + std::to_string(k),
                   predicted);
  }
  json.AddNumber("ingest_wall_seconds_1_thread", ingest_wall);

  // --- Part 3: commit points, per-slot vs grouped -----------------------
  // A FaultInjectionEnv with no fault armed is a pure counting env:
  // every intercepted call is one syscall-ish unit and one potential
  // crash point. The grouped protocol spends a few MORE ops per slot
  // (journal bookkeeping + the post-commit manifest fan-out), but the
  // *commit points* — the synchronous barriers a caller must wait out,
  // and the instants a crash can split a batch — drop from one per
  // slot to one per group.
  bench::Rule();
  std::printf("store-stage env operations, 64 slots\n");
  for (size_t group : {size_t{1}, size_t{8}}) {
    const std::string parent =
        (fs::temp_directory_path() /
         ("xydiff_bench_contention_ops" + std::to_string(group))).string();
    std::error_code ec;
    fs::remove_all(parent, ec);
    FaultInjectionEnv env;  // No fault armed: counts ops, injects nothing.
    constexpr size_t kRepos = 64;
    std::vector<VersionRepository> repos;
    repos.reserve(kRepos);
    for (size_t i = 0; i < kRepos; ++i) {
      Result<XmlDocument> doc = ParseXml(pairs[i % pairs.size()].old_xml);
      if (!doc.ok()) return 1;
      repos.emplace_back(std::move(*doc));
    }
    const int ops_before = env.op_count();
    if (group == 1) {
      for (size_t i = 0; i < kRepos; ++i) {
        if (!SaveRepository(repos[i],
                            parent + "/slot" + std::to_string(i), &env)
                 .ok()) {
          std::fprintf(stderr, "per-slot save failed\n");
          return 1;
        }
      }
    } else {
      for (size_t base = 0; base < kRepos; base += group) {
        std::vector<RepositorySaveSlot> slots;
        for (size_t i = base; i < base + group; ++i) {
          slots.push_back({&repos[i], "slot" + std::to_string(i)});
        }
        if (!SaveRepositoryBatch(slots, parent, &env).ok()) {
          std::fprintf(stderr, "grouped save failed\n");
          return 1;
        }
      }
    }
    const int ops = env.op_count() - ops_before;
    const size_t commit_points = kRepos / group;
    std::printf("  group_commit_slots=%zu: %d env ops total, %.1f per slot, "
                "%zu commit points\n",
                group, ops, static_cast<double>(ops) / kRepos, commit_points);
    json.AddNumber("env_ops_group_" + std::to_string(group),
                   static_cast<double>(ops));
    json.AddNumber("env_ops_per_slot_group_" + std::to_string(group),
                   static_cast<double>(ops) / kRepos);
    json.AddNumber("commit_points_group_" + std::to_string(group),
                   static_cast<double>(commit_points));
    fs::remove_all(parent, ec);
  }

  json.WriteFile("BENCH_contention.json");
  std::printf("json report    : BENCH_contention.json\n");
  return 0;
}
