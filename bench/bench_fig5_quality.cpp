// Figure 5 — "Quality of Diff".
//
// The paper plots the size of the delta computed by the diff against the
// size of the synthetic ("perfect") delta produced by the change
// simulator, for documents from a few hundred bytes to a megabyte and a
// sweep of change parameters including a high proportion of moves.
// Claimed shape: the computed delta tracks the perfect delta (ratio ~1)
// at low change rates; around ~30% changed nodes with many moves it may
// reach ~1.5x; at very high change rates it recovers and can even beat
// the simulator's script ("finds ways to compress the set of changes").

#include <cstdio>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"

int main() {
  using namespace xydiff;

  bench::Banner("Figure 5: computed delta size vs synthetic delta size",
                "ICDE 2002 paper, Figure 5 (points near the diagonal)");

  std::printf("%-10s %-8s %-8s %14s %14s %8s\n", "doc_bytes", "change%",
              "move%", "perfect_bytes", "computed_bytes", "ratio");
  bench::Rule();

  Rng rng(7);
  double worst = 0;
  double sum_ratio = 0;
  int count = 0;

  for (size_t target : {512u, 4096u, 32768u, 262144u, 1048576u}) {
    for (double rate : {0.01, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      for (double move_rate : {rate / 2, rate * 2}) {
        DocGenOptions gen;
        gen.target_bytes = target;
        XmlDocument base = GenerateDocument(&rng, gen);
        base.AssignInitialXids();

        ChangeSimOptions sim;
        sim.delete_probability = rate;
        sim.update_probability = rate;
        sim.insert_probability = rate;
        sim.move_probability = move_rate;
        Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
        if (!change.ok()) {
          std::fprintf(stderr, "%s\n", change.status().ToString().c_str());
          return 1;
        }

        XmlDocument a = base.Clone();
        XmlDocument b = change->new_version.Clone();
        Result<Delta> computed = XyDiff(&a, &b);
        if (!computed.ok()) {
          std::fprintf(stderr, "%s\n", computed.status().ToString().c_str());
          return 1;
        }

        const double perfect_bytes =
            static_cast<double>(SerializeDelta(change->perfect_delta).size());
        const double computed_bytes =
            static_cast<double>(SerializeDelta(*computed).size());
        const double ratio =
            perfect_bytes > 0 ? computed_bytes / perfect_bytes : 1.0;
        worst = std::max(worst, ratio);
        sum_ratio += ratio;
        ++count;
        std::printf("%-10zu %-8.0f %-8.0f %14.0f %14.0f %8.2f\n", target,
                    rate * 100, move_rate * 100, perfect_bytes,
                    computed_bytes, ratio);
      }
    }
  }

  bench::Rule();
  std::printf("points: %d   mean ratio: %.2f   worst ratio: %.2f\n", count,
              sum_ratio / count, worst);
  std::printf(
      "\nExpected shape (paper): ratio ~1 at low and very high change\n"
      "rates, bounded by ~1.5x in the move-heavy middle range.\n");
  return 0;
}
