// Figure 6 — "Delta over Unix Diff size ratio".
//
// The paper ran the diff over ~200 real web XML documents that changed on
// a per-week basis and compared the delta size against the Unix diff
// output for the same pair, plotted against original document size.
// Claimed shape: the deltas are "on average roughly the size of the Unix
// Diff result", scattered mostly between 0.5x and 2x, even though deltas
// carry far more structural information.
//
// The real 2001 crawl is unavailable; we substitute a generated corpus
// with the same size distribution (log-normal around ~10 KB, 100 B–1 MB)
// and the weekly change profile (see DESIGN.md, substitutions).

#include <cmath>
#include <cstdio>

#include "baseline/myers_diff.h"
#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;

  bench::Banner("Figure 6: delta size / Unix-diff size on weekly web XML",
                "ICDE 2002 paper, Figure 6 (ratio ~1, band 0.5x-2x)");

  Rng rng(2001);
  WebCorpusOptions corpus_options;
  corpus_options.document_count = 200;
  std::vector<XmlDocument> corpus = GenerateWebCorpus(&rng, corpus_options);

  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  // Unix diff works on pretty-printed XML (one element per line), the
  // favourable layout for a line diff; the paper notes long-line
  // documents make Unix diff much worse.
  const SerializeOptions pretty{.pretty = true};

  double sum_ratio = 0;
  double sum_log_ratio = 0;
  int within_half_to_double = 0;
  int delta_smaller = 0;
  int count = 0;
  int changed_docs = 0;

  std::printf("%-4s %12s %12s %12s %8s\n", "doc", "orig_bytes", "delta_bytes",
              "unixdiff_b", "ratio");
  bench::Rule();

  for (size_t d = 0; d < corpus.size(); ++d) {
    XmlDocument& base = corpus[d];
    base.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(base, weekly, &rng);
    if (!change.ok()) {
      std::fprintf(stderr, "%s\n", change.status().ToString().c_str());
      return 1;
    }
    if (change->perfect_delta.empty()) continue;  // Unchanged that week.
    ++changed_docs;

    const std::string old_text = SerializeDocument(base, pretty);
    const std::string new_text =
        SerializeDocument(change->new_version, pretty);
    const LineDiffResult unix_diff = MyersLineDiff(old_text, new_text);

    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> delta = XyDiff(&a, &b);
    if (!delta.ok()) {
      std::fprintf(stderr, "%s\n", delta.status().ToString().c_str());
      return 1;
    }
    const size_t delta_bytes = SerializeDelta(*delta).size();
    if (unix_diff.output_bytes == 0) continue;

    const double ratio = static_cast<double>(delta_bytes) /
                         static_cast<double>(unix_diff.output_bytes);
    sum_ratio += ratio;
    sum_log_ratio += std::log(ratio);
    if (ratio >= 0.5 && ratio <= 2.0) ++within_half_to_double;
    if (ratio <= 1.0) ++delta_smaller;
    ++count;
    if (d % 10 == 0) {  // Sample rows; the summary has the statistics.
      std::printf("%-4zu %12zu %12zu %12zu %8.2f\n", d, old_text.size(),
                  delta_bytes, unix_diff.output_bytes, ratio);
    }
  }

  bench::Rule();
  std::printf("documents changed this 'week': %d of %zu (compared: %d)\n",
              changed_docs, corpus.size(), count);
  std::printf("mean ratio: %.2f   geometric mean: %.2f\n", sum_ratio / count,
              std::exp(sum_log_ratio / count));
  std::printf("within [0.5x, 2x] of Unix diff: %d/%d (%.0f%%)\n",
              within_half_to_double, count,
              100.0 * within_half_to_double / count);
  std::printf("delta smaller than Unix diff: %d/%d\n", delta_smaller, count);
  std::printf(
      "\nExpected shape (paper): average ratio about 1, most documents\n"
      "inside the 0.5x-2x band — structural deltas cost about as much as\n"
      "a plain line diff while carrying full change semantics.\n");
  return 0;
}
