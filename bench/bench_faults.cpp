// Fault-injection bench — the durability protocol of DESIGN.md §3.12.
//
// The paper's warehouse ("millions of documents loaded each day") runs
// unattended; a crash mid-store must never cost committed history. This
// bench measures what that guarantee costs and how well it holds:
//
//   * the crash-point sweep: every operation index of the save protocol
//     is crashed once; the reopened store must always be the old or the
//     new version (hybrids = 0), and recovery must be fast;
//   * the commit protocol's size: env operations per save (each op is a
//     syscall-ish unit, and each is a potential crash point);
//   * throughput of the crash-safe save and of recovery loads;
//   * transient-error absorption in the DiffBatch store stage: retries
//     spent vs slots degraded under an injected EIO window.
//
// Results land in BENCH_faults.json for machine comparison across runs.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/fault_env.h"
#include "util/random.h"
#include "version/storage.h"
#include "version/warehouse.h"
#include "xml/serializer.h"

namespace {

namespace fs = std::filesystem;
using namespace xydiff;

VersionRepository MakeRepo(uint64_t seed, int extra_versions,
                           size_t target_bytes) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = target_bytes;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 0; v < extra_versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), ChangeSimOptions{}, &rng);
    if (!change.ok() || !repo.Commit(std::move(change->new_version)).ok()) {
      std::fprintf(stderr, "corpus construction failed\n");
      std::exit(1);
    }
  }
  return repo;
}

}  // namespace

int main() {
  using bench::Timer;

  bench::Banner("Fault injection: crash sweep, recovery, retry absorption",
                "ICDE 2002 paper, Section 2 (persistent versioned storage)");

  const fs::path dir =
      fs::temp_directory_path() /
      ("xydiff_bench_faults_" + std::to_string(::getpid()));
  const std::string store = dir.string();

  const VersionRepository before = MakeRepo(271828, 3, 4096);
  VersionRepository after = MakeRepo(271828, 3, 4096);
  {
    Rng rng(314159);
    Result<SimulatedChange> change =
        SimulateChanges(after.current(), ChangeSimOptions{}, &rng);
    if (!change.ok() || !after.Commit(std::move(change->new_version)).ok()) {
      return 1;
    }
  }

  // --- commit protocol size: env ops for one incremental save ----------
  fs::remove_all(dir);
  FaultInjectionEnv counting;
  if (!SaveRepository(before, store, &counting).ok()) return 1;
  const int ops_initial_save = counting.op_count();
  counting.Reset();
  if (!SaveRepository(after, store, &counting).ok()) return 1;
  const int ops_incremental_save = counting.op_count();
  std::printf("env ops per save        : %d initial, %d incremental\n",
              ops_initial_save, ops_incremental_save);

  // --- crash-point sweep ------------------------------------------------
  int crash_points = 0;
  int recovered_old = 0;
  int recovered_new = 0;
  int hybrids = 0;
  double recover_seconds = 0;
  for (int op = 0; op < 10000; ++op) {
    fs::remove_all(dir);
    FaultInjectionEnv env;
    if (!SaveRepository(before, store, &env).ok()) return 1;
    env.Reset();
    env.CrashAt(op);
    // The save may fail (expected) — the sweep judges the reopened disk.
    (void)SaveRepository(after, store, &env);
    const bool triggered = env.triggered();
    if (!env.DropUnsyncedData().ok()) return 1;

    Timer recover;
    RecoveryReport report;
    Result<VersionRepository> reopened = LoadRepository(store, nullptr,
                                                        &report);
    recover_seconds += recover.Seconds();
    if (!reopened.ok()) {
      ++hybrids;  // Committed history became unreadable: protocol bug.
    } else if (reopened->version_count() == after.version_count()) {
      ++recovered_new;
    } else if (reopened->version_count() == before.version_count()) {
      ++recovered_old;
    } else {
      ++hybrids;
    }
    if (!triggered) break;  // Walked off the end of the protocol.
    ++crash_points;
  }
  std::printf("crash sweep             : %d crash points, %d -> old, "
              "%d -> new, %d hybrids\n",
              crash_points, recovered_old, recovered_new, hybrids);
  std::printf("recovery                : %.3f ms mean\n",
              1e3 * recover_seconds / (crash_points + 1));

  // --- save / load throughput (the price of durability) -----------------
  constexpr int kRounds = 50;
  fs::remove_all(dir);
  Timer save_timer;
  for (int i = 0; i < kRounds; ++i) {
    fs::remove_all(dir);
    if (!SaveRepository(after, store, nullptr).ok()) return 1;
  }
  const double save_seconds = save_timer.Seconds() / kRounds;
  Timer load_timer;
  for (int i = 0; i < kRounds; ++i) {
    if (!LoadRepository(store).ok()) return 1;
  }
  const double load_seconds = load_timer.Seconds() / kRounds;
  std::printf("crash-safe save         : %.3f ms (%d versions, fsync'd)\n",
              1e3 * save_seconds, after.version_count());
  std::printf("verified load           : %.3f ms (checksums checked)\n",
              1e3 * load_seconds);

  // --- DiffBatch transient-error absorption -----------------------------
  constexpr int kDocs = 32;
  Warehouse warehouse;
  Rng rng(161803);
  DocGenOptions gen;
  gen.target_bytes = 2048;
  std::vector<Warehouse::DiffJob> jobs;
  for (int i = 0; i < kDocs; ++i) {
    XmlDocument doc = GenerateDocument(&rng, gen);
    doc.AssignInitialXids();
    const std::string url = "doc" + std::to_string(i);
    if (!warehouse.Ingest(url, doc.Clone()).ok()) return 1;
    Result<SimulatedChange> change =
        SimulateChanges(doc, ChangeSimOptions{}, &rng);
    if (!change.ok()) return 1;
    jobs.push_back({url, SerializeDocument(change->new_version)});
  }
  fs::remove_all(dir);
  FaultInjectionEnv flaky;
  flaky.InjectErrorAt(/*op=*/5, /*count=*/20);  // An EIO burst mid-batch.
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;
  pipeline.save_directory = store;
  pipeline.env = &flaky;
  pipeline.retry_backoff_ms = 1;
  PipelineStats stats;
  Timer batch_timer;
  const auto results = warehouse.DiffBatch(std::move(jobs), pipeline, &stats);
  const double batch_seconds = batch_timer.Seconds();
  size_t retries = 0;
  size_t degraded = 0;
  size_t failed_slots = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      ++failed_slots;
      continue;
    }
    retries += r->store_retries;
    if (r->store_degraded) ++degraded;
  }
  std::printf("diff batch under EIO    : %d docs, %zu retries absorbed, "
              "%zu degraded, %zu failed, %.3f s\n",
              kDocs, retries, degraded, failed_slots, batch_seconds);

  bench::Rule();

  bench::JsonReport sweep;
  sweep.AddNumber("crash_points", crash_points);
  sweep.AddNumber("recovered_old", recovered_old);
  sweep.AddNumber("recovered_new", recovered_new);
  sweep.AddNumber("hybrids", hybrids);
  sweep.AddNumber("mean_recover_ms",
                  1e3 * recover_seconds / (crash_points + 1));

  bench::JsonReport batch;
  batch.AddNumber("documents", kDocs);
  batch.AddNumber("retries_absorbed", retries);
  batch.AddNumber("degraded_slots", degraded);
  batch.AddNumber("failed_slots", failed_slots);
  batch.AddNumber("wall_seconds", batch_seconds);

  bench::JsonReport report;
  report.AddString("bench", "faults");
  report.AddNumber("versions", after.version_count());
  report.AddNumber("ops_initial_save", ops_initial_save);
  report.AddNumber("ops_incremental_save", ops_incremental_save);
  report.AddNumber("save_ms", 1e3 * save_seconds);
  report.AddNumber("load_ms", 1e3 * load_seconds);
  report.AddObject("crash_sweep", sweep);
  report.AddObject("diff_batch_eio", batch);
  report.AddNumber("peak_rss_bytes",
                   static_cast<double>(bench::PeakRssBytes()));
  if (!report.WriteFile("BENCH_faults.json")) {
    std::fprintf(stderr, "failed to write BENCH_faults.json\n");
    return 1;
  }
  std::printf("wrote BENCH_faults.json\n");

  fs::remove_all(dir);
  // The sweep's whole point: committed history survived every crash.
  return hybrids == 0 ? 0 : 1;
}
