// Complexity comparison — §1/§3/§5.3 claims.
//
// "Our algorithm runs in O(n log n) time vs. quadratic time for previous
// algorithms. Indeed, the running time significantly decreases when
// documents have few changes or when specific XML features like ID
// attributes are used."
//
// Three sweeps:
//   1. size sweep: XyDiff vs the LaDiff-style (quadratic leaf-LCS) and
//      DiffMK-style (flattened list) baselines;
//   2. change-rate sweep at fixed size: XyDiff only;
//   3. ID attributes on/off at fixed size and change rate.

#include <cstdio>

#include "baseline/ladiff.h"
#include "baseline/list_diff.h"
#include "bench/bench_util.h"
#include "core/buld.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/serializer.h"

namespace {

using namespace xydiff;
using bench::Timer;

double TimeXyDiff(const XmlDocument& base, const XmlDocument& changed,
                  const DiffOptions& options = {}) {
  XmlDocument a = base.Clone();
  XmlDocument b = changed.Clone();
  Timer timer;
  Result<Delta> delta = XyDiff(&a, &b, options);
  const double s = timer.Seconds();
  return delta.ok() ? s : -1;
}

double TimeLaDiff(const XmlDocument& base, const XmlDocument& changed) {
  XmlDocument a = base.Clone();
  XmlDocument b = changed.Clone();
  Timer timer;
  Result<Delta> delta = LaDiff(&a, &b);
  const double s = timer.Seconds();
  return delta.ok() ? s : -1;
}

double TimeListDiff(const XmlDocument& base, const XmlDocument& changed) {
  Timer timer;
  ListDiff(base, changed);
  return timer.Seconds();
}

}  // namespace

int main() {
  Rng rng(99);

  bench::Banner("Scaling: XyDiff vs quadratic baselines",
                "ICDE 2002 paper, Sections 1/3/5.3 complexity claims");

  std::printf("--- sweep 1: document size (10%% change mix) ---\n");
  std::printf("%-12s %-8s %12s %12s %12s\n", "bytes", "nodes", "xydiff_ms",
              "ladiff_ms", "listdiff_ms");
  bench::Rule();
  ChangeSimOptions churn;
  for (size_t target = 2048; target <= (1u << 20); target *= 4) {
    DocGenOptions gen;
    gen.target_bytes = target;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(base, churn, &rng);
    if (!change.ok()) return 1;

    const double xy = TimeXyDiff(base, change->new_version);
    // The quadratic baseline becomes impractical beyond ~256 KB; the
    // paper makes the same observation about prior algorithms.
    const bool run_ladiff = target <= (1u << 18);
    const double la =
        run_ladiff ? TimeLaDiff(base, change->new_version) : -1;
    const double ld = TimeListDiff(base, change->new_version);
    std::printf("%-12zu %-8zu %12.2f", target, base.node_count(), xy * 1e3);
    if (la >= 0) {
      std::printf(" %12.2f", la * 1e3);
    } else {
      std::printf(" %12s", "(skipped)");
    }
    std::printf(" %12.2f\n", ld * 1e3);
  }

  std::printf("\n--- sweep 2: change rate at 256 KB "
              "(\"excellent for few changes\") ---\n");
  std::printf("%-10s %12s %12s\n", "change%", "xydiff_ms", "ops");
  bench::Rule();
  {
    DocGenOptions gen;
    gen.target_bytes = 256 * 1024;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    for (double rate : {0.001, 0.01, 0.05, 0.1, 0.3}) {
      ChangeSimOptions sim;
      sim.delete_probability = rate;
      sim.update_probability = rate;
      sim.insert_probability = rate;
      sim.move_probability = rate;
      Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
      if (!change.ok()) return 1;
      XmlDocument a = base.Clone();
      XmlDocument b = change->new_version.Clone();
      Timer timer;
      Result<Delta> delta = XyDiff(&a, &b);
      const double s = timer.Seconds();
      if (!delta.ok()) return 1;
      std::printf("%-10.1f %12.2f %12zu\n", rate * 100, s * 1e3,
                  delta->operation_count());
    }
  }

  std::printf("\n--- sweep 3: ID attributes (Phase 1 shortcut) ---\n");
  std::printf("%-14s %12s %12s\n", "id_attributes", "xydiff_ms",
              "id_matched");
  bench::Rule();
  {
    DocGenOptions gen;
    gen.target_bytes = 256 * 1024;
    gen.with_id_attributes = true;
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(base, churn, &rng);
    if (!change.ok()) return 1;

    for (bool use_ids : {true, false}) {
      DiffOptions options;
      options.use_id_attributes = use_ids;
      XmlDocument a = base.Clone();
      XmlDocument b = change->new_version.Clone();
      DiffStats stats;
      Timer timer;
      Result<Delta> delta = XyDiff(&a, &b, options, &stats);
      const double s = timer.Seconds();
      if (!delta.ok()) return 1;
      std::printf("%-14s %12.2f %12zu\n", use_ids ? "on" : "off", s * 1e3,
                  stats.id_matched_nodes);
    }
  }

  std::printf(
      "\nExpected shape (paper): XyDiff grows ~n log n (near-linear in the\n"
      "table), the LaDiff-style baseline grows ~quadratically and falls\n"
      "behind well before 1 MB; diff time drops with fewer changes; ID\n"
      "attributes shift matching work into the cheap Phase 1.\n");
  return 0;
}
