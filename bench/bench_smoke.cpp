// Pipeline regression smoke gate — run as a ctest, not a benchmark.
//
// The staged DiffBatch pipeline exists to ADD value over a straight
// diff loop (persistence, alerts, deferred index maintenance), so it
// must never again cost 3x the throughput (the regression this gate was
// born from: 179 docs/s pipelined vs 540 straight-line). Both paths run
// in this one process, interleaved trial by trial on the same corpus,
// so frequency drift and cache state cancel out; the gate fails
// (exit 1) if the 1-thread pipeline delivers less than 0.9x the
// straight-line docs/s.
//
// Each path is timed kTrials times and the gate compares the BEST run
// of each: a single 0.2s sample on a loaded single-core host jitters
// past the threshold (observed 0.87x–1.07x across back-to-back runs of
// the one-sample version of this gate), while the minimum is stable and
// a real 3x regression cannot hide in it.
//
// The corpus is kept small (100 documents) so the gate stays under a
// few seconds in CI; the ratio, not the absolute rate, is the contract.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/buld.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/warehouse.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace {

using namespace xydiff;

struct Pair {
  std::string old_xml, new_xml;
};

constexpr double kMinRatio = 0.9;
constexpr int kTrials = 3;

// Straight-line: parse both versions, diff, serialize — the loop the
// pipeline replaces. Returns elapsed seconds, or < 0 on error.
double RunStraightLine(const std::vector<Pair>& pairs, size_t* bytes_out) {
  size_t bytes = 0;
  bench::Timer timer;
  for (const Pair& p : pairs) {
    Result<XmlDocument> v1 = ParseXml(p.old_xml);
    Result<XmlDocument> v2 = ParseXml(p.new_xml);
    if (!v1.ok() || !v2.ok()) return -1.0;
    v1->AssignInitialXids();
    Result<Delta> delta = XyDiff(&*v1, &*v2, {});
    if (!delta.ok()) return -1.0;
    bytes += SerializeDelta(*delta).size();
  }
  *bytes_out = bytes;
  return timer.Seconds();
}

// Pipelined: a fresh warehouse per trial — week 1 seeds it (untimed),
// week 2 is the timed 1-thread staged pipeline. A fresh warehouse keeps
// every trial diffing version 1 -> version 2, the same work as the
// straight-line loop. Returns elapsed seconds, or < 0 on error.
double RunPipelined(const std::vector<Pair>& pairs, size_t* bytes_out) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  std::vector<Warehouse::DiffJob> week1, week2;
  week1.reserve(pairs.size());
  week2.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    week1.push_back({"url" + std::to_string(i), pairs[i].old_xml});
    week2.push_back({"url" + std::to_string(i), pairs[i].new_xml});
  }
  for (auto& r : warehouse.DiffBatch(std::move(week1), pipeline)) {
    if (!r.ok()) {
      std::fprintf(stderr, "week1 pipeline failed: %s\n",
                   r.status().ToString().c_str());
      return -1.0;
    }
  }
  size_t bytes = 0;
  bench::Timer timer;
  for (auto& r : warehouse.DiffBatch(std::move(week2), pipeline)) {
    if (!r.ok()) {
      std::fprintf(stderr, "week2 pipeline failed: %s\n",
                   r.status().ToString().c_str());
      return -1.0;
    }
    bytes += r->delta_bytes;
  }
  *bytes_out = bytes;
  return timer.Seconds();
}

}  // namespace

int main() {
  Rng rng(604800);
  WebCorpusOptions corpus_options;
  corpus_options.document_count = 100;
  std::vector<XmlDocument> corpus = GenerateWebCorpus(&rng, corpus_options);
  const ChangeSimOptions weekly = WeeklyWebChangeProfile();
  std::vector<Pair> pairs;
  pairs.reserve(corpus.size());
  for (XmlDocument& doc : corpus) {
    doc.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(doc, weekly, &rng);
    if (!change.ok()) {
      std::fprintf(stderr, "corpus construction failed\n");
      return 1;
    }
    pairs.push_back({SerializeDocument(doc),
                     SerializeDocument(change->new_version)});
  }

  double straight_best = -1.0, pipelined_best = -1.0;
  size_t straight_bytes = 0, pipelined_bytes = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    size_t sb = 0, pb = 0;
    const double ss = RunStraightLine(pairs, &sb);
    if (ss < 0) return 1;
    const double ps = RunPipelined(pairs, &pb);
    if (ps < 0) return 1;
    if (pb != sb) {
      // Both paths diff the same 100 version pairs; serialized delta
      // volume must agree or the "same work" premise of the gate is
      // gone.
      std::fprintf(stderr,
                   "FAIL: delta volume diverged (%zu straight vs %zu "
                   "pipelined) in trial %d\n",
                   sb, pb, trial + 1);
      return 1;
    }
    straight_bytes = sb;
    pipelined_bytes = pb;
    if (straight_best < 0 || ss < straight_best) straight_best = ss;
    if (pipelined_best < 0 || ps < pipelined_best) pipelined_best = ps;
  }

  const double docs = static_cast<double>(pairs.size());
  const double straight_rate = docs / straight_best;
  const double pipelined_rate = docs / pipelined_best;
  const double ratio = pipelined_rate / straight_rate;
  std::printf("straight-line : %7.0f docs/s (best of %d: %.3fs, %zu delta "
              "bytes)\n",
              straight_rate, kTrials, straight_best, straight_bytes);
  std::printf("pipelined (1t): %7.0f docs/s (best of %d: %.3fs, %zu delta "
              "bytes)\n",
              pipelined_rate, kTrials, pipelined_best, pipelined_bytes);
  std::printf("ratio         : %.2fx (gate: >= %.2fx)\n", ratio, kMinRatio);

  if (ratio < kMinRatio) {
    std::fprintf(stderr,
                 "FAIL: staged pipeline fell below %.2fx of straight-line "
                 "throughput\n",
                 kMinRatio);
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
