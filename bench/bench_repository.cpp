// Versioning storage experiment — §6.2's storage observation.
//
// "Other experiments we conducted [19] showed that the delta size is
// usually less than the size of one version. In some cases, in particular
// for larger documents (e.g. more than 100 kilobytes), the delta size is
// less than 10 percent of the size of the document."
//
// We commit a chain of weekly versions into the change-centric repository
// and report, per document size: the average delta size relative to one
// version, the total storage of (newest version + delta chain) relative
// to storing every version in full, and the checkout latency as a
// function of distance from the newest version.

#include <cstdio>

#include "bench/bench_util.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "simulator/web_corpus.h"
#include "util/random.h"
#include "version/repository.h"
#include "xml/serializer.h"

int main() {
  using namespace xydiff;
  using bench::Timer;

  bench::Banner("Change-centric storage: delta chains vs full versions",
                "ICDE 2002 paper, Section 6.2 storage observation (via [19])");

  Rng rng(777);
  const int kVersions = 10;
  // A stable document's week: the paper's storage observation concerns
  // ordinary web documents, most of which change only slightly between
  // crawls. (Deltas are *completed* — they carry both directions — so a
  // delta costs roughly twice the changed content.)
  ChangeSimOptions weekly;
  weekly.delete_probability = 0.002;
  weekly.update_probability = 0.01;
  weekly.insert_probability = 0.003;
  weekly.move_probability = 0.001;

  std::printf("%-12s %12s %12s %14s %14s\n", "doc_bytes", "avg_delta_b",
              "delta/ver%", "chain_total_b", "full_total_b");
  bench::Rule();

  for (size_t target : {16u << 10, 128u << 10, 1u << 20}) {
    DocGenOptions gen;
    gen.target_bytes = target;
    VersionRepository repo(GenerateDocument(&rng, gen));
    size_t full_total = SerializeDocument(repo.current()).size();
    size_t version_bytes_sum = full_total;

    for (int v = 1; v < kVersions; ++v) {
      Result<SimulatedChange> change =
          SimulateChanges(repo.current(), weekly, &rng);
      if (!change.ok()) return 1;
      if (!repo.Commit(std::move(change->new_version)).ok()) return 1;
      const size_t version_bytes = SerializeDocument(repo.current()).size();
      full_total += version_bytes;
      version_bytes_sum += version_bytes;
    }

    const size_t delta_total = repo.stored_delta_bytes();
    const double avg_delta =
        static_cast<double>(delta_total) / (kVersions - 1);
    const double avg_version =
        static_cast<double>(version_bytes_sum) / kVersions;
    const size_t chain_total =
        SerializeDocument(repo.current()).size() + delta_total;
    std::printf("%-12zu %12.0f %12.1f %14zu %14zu\n", target, avg_delta,
                100.0 * avg_delta / avg_version, chain_total, full_total);
  }

  // Checkout latency by distance from the newest version.
  std::printf("\ncheckout latency by distance (1 MB document, %d versions)\n",
              kVersions);
  std::printf("%-10s %12s\n", "version", "checkout_ms");
  bench::Rule();
  {
    DocGenOptions gen;
    gen.target_bytes = 1 << 20;
    VersionRepository repo(GenerateDocument(&rng, gen));
    for (int v = 1; v < kVersions; ++v) {
      Result<SimulatedChange> change =
          SimulateChanges(repo.current(), weekly, &rng);
      if (!change.ok()) return 1;
      if (!repo.Commit(std::move(change->new_version)).ok()) return 1;
    }
    for (int v : {10, 8, 5, 1}) {
      Timer timer;
      Result<XmlDocument> doc = repo.Checkout(v);
      const double ms = timer.Seconds() * 1e3;
      if (!doc.ok()) return 1;
      std::printf("%-10d %12.2f\n", v, ms);
    }
  }

  std::printf(
      "\nExpected shape (paper/[19]): weekly deltas are a small fraction of\n"
      "one version (<10%% for large documents), so the delta chain stores a\n"
      "full history for little more than the newest version; checkout cost\n"
      "grows with distance from the newest version.\n");
  return 0;
}
