// Any-version reconstruction experiment — the O(log n) skip-delta claim.
//
// A version store that keeps only the newest document plus the delta
// chain pays n - v delta applications to check out version v: the median
// lookup over a long history costs ~n/2 applies. The reconstruction
// index (checkpoint + skip-deltas composed with the delta algebra) bounds
// every lookup by ceil(log2 n) + C applications instead.
//
// This bench grows one simulated chain, reconstructs a spread of
// versions through both paths — plain backward replay and the indexed
// forward plan — and cross-checks that they produce bit-identical
// documents (XIDs included). It also totals the on-disk cost of the
// binary codec against the XML serialization it replaces.
//
// Results land in BENCH_reconstruct.json for machine comparison.
//
// `--smoke` runs a 1k-version chain as a ctest gate: every indexed
// checkout must stay within the ceil(log2 n) + 2 application bound and
// match the replay path bit-exactly, else exit 1.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "delta/codec.h"
#include "delta/delta_xml.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "version/repository.h"
#include "xml/serializer.h"

namespace {

using namespace xydiff;
using bench::Timer;

size_t CeilLog2(size_t n) {
  size_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  return bits;
}

double Median(std::vector<size_t> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  return static_cast<double>(values[values.size() / 2]);
}

std::string WithXids(const XmlDocument& doc) {
  SerializeOptions options;
  options.emit_xids = true;
  return SerializeDocument(doc, options);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int versions = smoke ? 1000 : 10000;

  bench::Banner("Any-version reconstruction: skip-delta index vs replay",
                "ICDE 2002 paper, Section 7 storage model (O(log n) lookup)");

  // A long history of light edits: the regime where replay cost hurts —
  // each delta is cheap, there are just thousands of them between the
  // newest version and the one a consumer asks for.
  Rng rng(271828);
  ChangeSimOptions light;
  light.delete_probability = 0.002;
  light.update_probability = 0.01;
  light.insert_probability = 0.003;
  light.move_probability = 0.001;
  DocGenOptions gen;
  gen.target_bytes = 2048;

  Timer build_timer;
  VersionRepository repo(GenerateDocument(&rng, gen));
  for (int v = 1; v < versions; ++v) {
    Result<SimulatedChange> change =
        SimulateChanges(repo.current(), light, &rng);
    if (!change.ok() || !repo.Commit(std::move(change->new_version)).ok()) {
      std::fprintf(stderr, "chain construction failed at version %d\n", v);
      return 1;
    }
  }
  const double chain_seconds = build_timer.Seconds();

  // The legacy view: same current document, same chain, no index.
  std::vector<Delta> chain;
  chain.reserve(repo.deltas().size());
  for (const Delta& d : repo.deltas()) chain.push_back(d.Clone());
  const VersionRepository legacy =
      VersionRepository::FromParts(repo.current().Clone(), std::move(chain));

  // On-disk bytes: binary codec vs the XML serialization it replaces.
  size_t bin_bytes = 0, xml_bytes = 0;
  for (const Delta& d : repo.deltas()) {
    bin_bytes += EncodeDeltaBinary(d).size();
    xml_bytes += SerializeDelta(d).size();
  }

  Timer index_timer;
  if (!repo.EnsureReconstructionIndex().ok()) {
    std::fprintf(stderr, "index construction failed\n");
    return 1;
  }
  const double index_seconds = index_timer.Seconds();
  size_t skip_entries = 0, skip_bytes = 0;
  const ReconstructionIndex& index = repo.reconstruction_index();
  for (const auto& level : index.levels) {
    for (const auto& entry : level) {
      if (!entry.has_value()) continue;
      ++skip_entries;
      skip_bytes += EncodeDeltaBinary(*entry).size();
    }
  }

  const size_t n = static_cast<size_t>(repo.version_count());
  const size_t bound = CeilLog2(n) + 2;

  // Smoke sweeps every version through the indexed path (the gate);
  // the full run samples a uniform spread so the legacy replay side
  // stays tractable (its cost is the point being measured).
  const int stride = smoke ? 1 : std::max(1, versions / 128);
  const int legacy_stride = smoke ? std::max(1, versions / 32) : stride;

  std::vector<size_t> indexed_applies;
  double indexed_seconds = 0;
  size_t indexed_checkouts = 0;
  for (int v = 1; v <= repo.version_count(); v += stride) {
    CheckoutStats stats;
    Timer timer;
    Result<XmlDocument> doc = repo.Checkout(v, &stats);
    indexed_seconds += timer.Seconds();
    ++indexed_checkouts;
    if (!doc.ok()) {
      std::fprintf(stderr, "indexed checkout of version %d failed: %s\n", v,
                   doc.status().ToString().c_str());
      return 1;
    }
    indexed_applies.push_back(stats.applications);
    if (stats.applications > bound) {
      std::fprintf(stderr,
                   "GATE FAILED: version %d took %zu applications, bound is "
                   "ceil(log2 %zu) + 2 = %zu\n",
                   v, stats.applications, n, bound);
      return 1;
    }
  }

  std::vector<size_t> legacy_applies;
  double legacy_seconds = 0;
  size_t legacy_checkouts = 0;
  for (int v = 1; v <= repo.version_count(); v += legacy_stride) {
    CheckoutStats stats;
    Timer timer;
    Result<XmlDocument> slow = legacy.Checkout(v, &stats);
    legacy_seconds += timer.Seconds();
    ++legacy_checkouts;
    if (!slow.ok()) {
      std::fprintf(stderr, "replay checkout of version %d failed\n", v);
      return 1;
    }
    legacy_applies.push_back(stats.applications);
    // Both paths must land on the same bytes, XIDs included.
    Result<XmlDocument> fast = repo.Checkout(v);
    if (!fast.ok() || WithXids(*fast) != WithXids(*slow)) {
      std::fprintf(stderr,
                   "GATE FAILED: version %d differs between the indexed and "
                   "replay paths\n",
                   v);
      return 1;
    }
  }

  const double indexed_median = Median(indexed_applies);
  const double legacy_median = Median(legacy_applies);
  const size_t indexed_max =
      *std::max_element(indexed_applies.begin(), indexed_applies.end());
  const size_t legacy_max =
      *std::max_element(legacy_applies.begin(), legacy_applies.end());
  const double indexed_ms =
      1e3 * indexed_seconds / static_cast<double>(indexed_checkouts);
  const double legacy_ms =
      1e3 * legacy_seconds / static_cast<double>(legacy_checkouts);

  std::printf("chain: %zu versions built in %.1fs; index: %zu levels, %zu "
              "skip-deltas (%s) in %.2fs\n",
              n, chain_seconds, index.levels.size(), skip_entries,
              bench::Bytes(static_cast<double>(skip_bytes)).c_str(),
              index_seconds);
  std::printf("delta bytes: binary %s vs XML %s (%.1f%%)\n\n",
              bench::Bytes(static_cast<double>(bin_bytes)).c_str(),
              bench::Bytes(static_cast<double>(xml_bytes)).c_str(),
              100.0 * static_cast<double>(bin_bytes) /
                  static_cast<double>(xml_bytes));
  std::printf("%-22s %14s %14s %14s\n", "path", "applies_median",
              "applies_max", "checkout_ms");
  bench::Rule();
  std::printf("%-22s %14.0f %14zu %14.3f\n", "indexed (skip-delta)",
              indexed_median, indexed_max, indexed_ms);
  std::printf("%-22s %14.0f %14zu %14.3f\n", "legacy (replay)", legacy_median,
              legacy_max, legacy_ms);
  std::printf("\nbound: ceil(log2 %zu) + 2 = %zu applications — every indexed "
              "checkout held.\n",
              n, bound);

  bench::JsonReport report;
  report.AddString("mode", smoke ? "smoke" : "full");
  report.AddNumber("versions", static_cast<double>(n));
  report.AddNumber("application_bound", static_cast<double>(bound));
  report.AddNumber("indexed_applications_median", indexed_median);
  report.AddNumber("indexed_applications_max",
                   static_cast<double>(indexed_max));
  report.AddNumber("legacy_applications_median", legacy_median);
  report.AddNumber("legacy_applications_max",
                   static_cast<double>(legacy_max));
  report.AddNumber("indexed_checkout_ms_mean", indexed_ms);
  report.AddNumber("legacy_checkout_ms_mean", legacy_ms);
  report.AddNumber("binary_delta_bytes", static_cast<double>(bin_bytes));
  report.AddNumber("xml_delta_bytes", static_cast<double>(xml_bytes));
  report.AddNumber("binary_to_xml_ratio",
                   static_cast<double>(bin_bytes) /
                       static_cast<double>(xml_bytes));
  report.AddNumber("skip_levels", static_cast<double>(index.levels.size()));
  report.AddNumber("skip_delta_count", static_cast<double>(skip_entries));
  report.AddNumber("skip_delta_bytes", static_cast<double>(skip_bytes));
  report.AddNumber("index_build_seconds", index_seconds);
  if (!report.WriteFile("BENCH_reconstruct.json")) {
    std::fprintf(stderr, "warning: could not write BENCH_reconstruct.json\n");
  } else {
    std::printf("json report    : BENCH_reconstruct.json\n");
  }
  return 0;
}
