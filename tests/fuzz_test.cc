// Tests for the fuzzing subsystem itself (src/fuzz/): the grammar
// catalog's determinism contract, the oracle library on friendly and
// hostile inputs, the crash-interleaving trials, and campaign plumbing
// (repro, unknown-profile handling, summary accounting). The long
// adversarial sweep lives in the fuzz_smoke ctest entry driving
// tools/fuzz_driver; this file pins the machinery that sweep relies on.

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "fuzz/grammar.h"
#include "fuzz/oracles.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

class FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_fuzz_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

std::string VersionBytes(const FuzzTrial& trial) {
  SerializeOptions with_xids;
  with_xids.emit_xids = true;
  std::string out;
  for (const auto* doc : {&trial.v1, &trial.v2, &trial.v3}) {
    if (doc->has_value()) out += SerializeDocument(**doc, with_xids);
  }
  return out;
}

// The deterministic contract every repro line depends on: the same
// (profile, seed, size) triple yields byte-identical inputs AND a
// byte-identical version chain (XIDs included), for every grammar.
TEST_F(FuzzTest, EveryProfileGeneratesDeterministically) {
  for (const FuzzProfile& profile : FuzzProfiles()) {
    const FuzzTrial a = GenerateTrial(profile, 7, 768);
    const FuzzTrial b = GenerateTrial(profile, 7, 768);
    EXPECT_EQ(a.document_xml, b.document_xml) << profile.name;
    EXPECT_EQ(a.rejection, b.rejection) << profile.name;
    EXPECT_EQ(VersionBytes(a), VersionBytes(b)) << profile.name;

    // A different seed must actually change the input (grammars that
    // ignore their seed fuzz nothing).
    const FuzzTrial c = GenerateTrial(profile, 8, 768);
    EXPECT_NE(a.document_xml, c.document_xml) << profile.name;
  }
}

TEST_F(FuzzTest, CatalogCoversTheAdversarialGrammars) {
  const std::vector<FuzzProfile>& catalog = FuzzProfiles();
  EXPECT_GE(catalog.size(), 5u);
  for (const char* name :
       {"paper-default", "deep-nesting", "wide-fanout",
        "near-duplicate-siblings", "move-storm", "hostile-entity",
        "byte-mutation"}) {
    EXPECT_NE(FindFuzzProfile(name), nullptr) << name;
  }
  EXPECT_EQ(FindFuzzProfile("no-such-grammar"), nullptr);
}

TEST_F(FuzzTest, OraclesPassOnFriendlyTrials) {
  const FuzzProfile* profile = FindFuzzProfile("paper-default");
  ASSERT_NE(profile, nullptr);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const FuzzTrial trial = GenerateTrial(*profile, seed, 1024);
    ASSERT_TRUE(trial.has_versions()) << trial.ReproLine();
    const OracleReport report = CheckTrialOracles(trial);
    EXPECT_TRUE(report.ok())
        << trial.ReproLine() << ": " << report.ToString();
    EXPECT_GT(report.checks, 0u);
  }
}

// The raw-byte grammars' first oracle is the hardened parser: every
// hostile input must either parse into a judged version chain or be
// rejected with a clean ParseError — and the grammar must actually
// produce some rejected inputs, or it is not adversarial.
TEST_F(FuzzTest, HostileInputsParseOrRejectCleanly) {
  for (const char* name : {"hostile-entity", "byte-mutation"}) {
    const FuzzProfile* profile = FindFuzzProfile(name);
    ASSERT_NE(profile, nullptr) << name;
    size_t rejected = 0;
    for (uint64_t seed = 1; seed <= 24; ++seed) {
      const FuzzTrial trial = GenerateTrial(*profile, seed, 1024);
      if (!trial.has_versions()) ++rejected;
      const OracleReport report = CheckTrialOracles(trial);
      EXPECT_TRUE(report.ok())
          << trial.ReproLine() << ": " << report.ToString();
    }
    EXPECT_GT(rejected, 0u) << name;
  }
}

TEST_F(FuzzTest, CrashBatchSaveTrialsFindNoHybridStates) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const std::string trial_dir = Dir() + "/save-" + std::to_string(seed);
    fs::create_directories(trial_dir);
    XY_EXPECT_OK(RunCrashBatchSaveTrial(seed, trial_dir));
  }
}

TEST_F(FuzzTest, CrashDiffBatchTrialsFindNoHybridStates) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const std::string trial_dir = Dir() + "/diff-" + std::to_string(seed);
    fs::create_directories(trial_dir);
    XY_EXPECT_OK(RunCrashDiffBatchTrial(seed, trial_dir));
  }
}

TEST_F(FuzzTest, ReproduceTrialReplaysFromTheReproTriple) {
  const OracleReport known_good = ReproduceTrial("paper-default", 3, 1024);
  EXPECT_TRUE(known_good.ok()) << known_good.ToString();
  EXPECT_GT(known_good.checks, 0u);

  const OracleReport unknown = ReproduceTrial("no-such-grammar", 1, 64);
  EXPECT_FALSE(unknown.ok());
}

TEST_F(FuzzTest, SmallCampaignAccountsForEveryTrial) {
  FuzzOptions options;
  options.profiles = {"paper-default", "move-storm"};
  options.trials_per_profile = 3;
  options.size = 512;
  options.crash_interleaving = false;
  const FuzzSummary summary = RunFuzz(options);
  EXPECT_TRUE(summary.ok()) << summary.ToString();
  EXPECT_EQ(summary.trials, 6u);
  EXPECT_EQ(summary.accepted + summary.rejected, 6u);
  EXPECT_GT(summary.oracle_checks, 0u);
  EXPECT_EQ(summary.profiles_run.size(), 2u);
}

TEST_F(FuzzTest, UnknownProfileIsAConfigFailureNotACrash) {
  FuzzOptions options;
  options.profiles = {"no-such-grammar"};
  options.crash_interleaving = false;
  const FuzzSummary summary = RunFuzz(options);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures[0].kind, "config");
}

// Campaign failures must persist a corpus entry that replays: simulate
// by pointing a tiny campaign at a corpus directory and checking that a
// clean run leaves it empty (entries appear only for real findings).
TEST_F(FuzzTest, CleanCampaignWritesNoCorpusEntries) {
  FuzzOptions options;
  options.profiles = {"paper-default"};
  options.trials_per_profile = 2;
  options.size = 512;
  options.crash_interleaving = false;
  options.corpus_directory = Dir() + "/corpus";
  const FuzzSummary summary = RunFuzz(options);
  EXPECT_TRUE(summary.ok()) << summary.ToString();
  EXPECT_FALSE(fs::exists(options.corpus_directory) &&
               !fs::is_empty(options.corpus_directory));
}

}  // namespace
}  // namespace xydiff
