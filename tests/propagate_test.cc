#include "core/propagate.h"

#include "delta/signature.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

struct Fixture {
  XmlDocument old_doc;
  XmlDocument new_doc;
  LabelTable labels;
  DiffTree t1;
  DiffTree t2;
  DiffOptions options;

  Fixture(std::string_view old_xml, std::string_view new_xml) {
    old_doc = MustParse(old_xml);
    new_doc = MustParse(new_xml);
    t1 = DiffTree::Build(&old_doc, &labels);
    t2 = DiffTree::Build(&new_doc, &labels);
    ComputeSignaturesAndWeights(&t1, options);
    ComputeSignaturesAndWeights(&t2, options);
  }

  void MatchPair(NodeIndex i1, NodeIndex i2) {
    t1.set_match(i1, i2);
    t2.set_match(i2, i1);
  }
};

TEST(PropagateTest, BottomUpMatchesParentOfMatchedChildren) {
  // Both docs: <r><p><a/><b/></p></r>. Match the leaves only; one pass
  // should match p (support from children) and then r is NOT matched
  // bottom-up (p's parent support exists though — r gets matched too via
  // p's vote in the same pass order? postorder: leaves, then p, then r).
  Fixture f("<r><p><a/><b/></p></r>", "<r><p><a/><b/></p></r>");
  f.MatchPair(2, 2);  // a
  f.MatchPair(3, 3);  // b
  const size_t added = PropagateMatchings(&f.t1, &f.t2, f.options);
  EXPECT_GE(added, 2u);
  EXPECT_EQ(f.t2.match(1), 1);  // p matched.
  EXPECT_EQ(f.t2.match(0), 0);  // r matched (postorder pass cascades).
}

TEST(PropagateTest, BottomUpPrefersHeavierSupport) {
  // New p has children matched into two different old parents; the
  // heavier set must win.
  Fixture f("<r><p1><a>heavy text wins here</a></p1><p2><b/></p2></r>",
            "<r><p><a>heavy text wins here</a><b/></p></r>");
  // old: r=0 p1=1 a=2 text=3 p2=4 b=5 ; new: r=0 p=1 a=2 text=3 b=4.
  f.MatchPair(2, 2);
  f.MatchPair(3, 3);
  f.MatchPair(5, 4);
  // Labels differ (p1/p2 vs p) so no parent match is possible; votes are
  // counted but rejected on label.
  PropagateMatchings(&f.t1, &f.t2, f.options);
  EXPECT_FALSE(f.t2.matched(1));

  // Same structure with agreeing labels.
  Fixture g("<r><p><a>heavy text wins here</a></p><p><b/></p></r>",
            "<r><p><a>heavy text wins here</a><b/></p></r>");
  // old: r=0 p=1 a=2 t=3 p=4 b=5 ; new: r=0 p=1 a=2 t=3 b=4.
  g.MatchPair(2, 2);
  g.MatchPair(3, 3);
  g.MatchPair(5, 4);
  PropagateMatchings(&g.t1, &g.t2, g.options);
  ASSERT_TRUE(g.t2.matched(1));
  EXPECT_EQ(g.t2.match(1), 1);  // The heavy <a> subtree's parent wins.
}

TEST(PropagateTest, TopDownMatchesUniqueLabelChildren) {
  Fixture f("<r><x/><y/></r>", "<r><x/><y/></r>");
  f.MatchPair(0, 0);
  const size_t added = PropagateMatchings(&f.t1, &f.t2, f.options);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(f.t2.match(1), 1);
  EXPECT_EQ(f.t2.match(2), 2);
}

TEST(PropagateTest, TopDownSkipsAmbiguousLabels) {
  Fixture f("<r><x/><x/></r>", "<r><x/><x/></r>");
  f.MatchPair(0, 0);
  PropagateMatchings(&f.t1, &f.t2, f.options);
  EXPECT_FALSE(f.t2.matched(1));
  EXPECT_FALSE(f.t2.matched(2));
}

TEST(PropagateTest, TopDownMatchesSingleUnmatchedTextChild) {
  // The price-update scenario of Figure 2: matched parents with one
  // changed text child each -> the texts match, enabling an update op.
  Fixture f("<Price>$799</Price>", "<Price>$699</Price>");
  f.MatchPair(0, 0);
  PropagateMatchings(&f.t1, &f.t2, f.options);
  ASSERT_TRUE(f.t2.matched(1));
  EXPECT_EQ(f.t2.match(1), 1);
}

TEST(PropagateTest, IdLockedNodesAreSkipped) {
  Fixture f("<r><x/></r>", "<r><x/></r>");
  f.MatchPair(0, 0);
  f.t1.set_id_locked(1);
  PropagateMatchings(&f.t1, &f.t2, f.options);
  EXPECT_FALSE(f.t1.matched(1));
}

TEST(PropagateTest, NoMatchesNoCrash) {
  Fixture f("<a><b/></a>", "<c><d/></c>");
  EXPECT_EQ(PropagateMatchings(&f.t1, &f.t2, f.options), 0u);
}

TEST(PropagateTest, MultiplePassesReachFixpoint) {
  // A chain where each pass unlocks the next level.
  Fixture f("<a><b><c><d>leaf</d></c></b></a>",
            "<a><b><c><d>leaf</d></c></b></a>");
  f.MatchPair(4, 4);  // Just the leaf text.
  DiffOptions multi;
  multi.propagation_passes = 8;
  PropagateMatchings(&f.t1, &f.t2, multi);
  // Bottom-up alone walks the whole chain in one postorder pass.
  EXPECT_TRUE(f.t2.matched(0));
  EXPECT_TRUE(f.t2.matched(1));
  EXPECT_TRUE(f.t2.matched(2));
  EXPECT_TRUE(f.t2.matched(3));
}

}  // namespace
}  // namespace xydiff
