#include "delta/delta.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

XmlNodePtr SmallSubtree() {
  auto node = XmlNode::Element("p");
  node->set_xid(2);
  auto text = XmlNode::Text("x");
  text->set_xid(1);
  node->AppendChild(std::move(text));
  return node;
}

TEST(DeltaTest, EmptyByDefault) {
  Delta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.operation_count(), 0u);
  EXPECT_EQ(delta.snapshot_node_count(), 0u);
  EXPECT_EQ(delta.edit_cost(), 0u);
}

TEST(DeltaTest, OperationCountSumsAllKinds) {
  Delta delta;
  delta.deletes().emplace_back(2, 5, 1, SmallSubtree());
  delta.inserts().emplace_back(7, 5, 2, SmallSubtree());
  delta.moves().push_back(MoveOp{3, 5, 1, 6, 2});
  delta.updates().push_back(UpdateOp{4, "a", "b"});
  delta.attribute_ops().push_back(
      {AttributeOpKind::kUpdate, 5, "k", "1", "2"});
  EXPECT_EQ(delta.operation_count(), 5u);
  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(delta.snapshot_node_count(), 4u);
  EXPECT_EQ(delta.edit_cost(), 4u + 3u);
}

TEST(DeltaTest, CloneIsDeep) {
  Delta delta;
  delta.deletes().emplace_back(2, 5, 1, SmallSubtree());
  delta.updates().push_back(UpdateOp{4, "a", "b"});
  delta.set_old_next_xid(10);
  delta.set_new_next_xid(20);

  Delta copy = delta.Clone();
  EXPECT_EQ(copy.operation_count(), 2u);
  EXPECT_EQ(copy.old_next_xid(), 10u);
  EXPECT_EQ(copy.new_next_xid(), 20u);
  ASSERT_NE(copy.deletes()[0].subtree, nullptr);
  EXPECT_NE(copy.deletes()[0].subtree.get(), delta.deletes()[0].subtree.get());
  EXPECT_TRUE(
      copy.deletes()[0].subtree->DeepEquals(*delta.deletes()[0].subtree));
  // Mutating the copy leaves the original intact.
  copy.deletes()[0].subtree->SetAttribute("mut", "1");
  EXPECT_EQ(delta.deletes()[0].subtree->FindAttribute("mut"), nullptr);
}

TEST(DeltaTest, OpCloneHelpers) {
  DeleteOp del(2, 5, 1, SmallSubtree());
  DeleteOp del2 = del.Clone();
  EXPECT_EQ(del2.xid, del.xid);
  EXPECT_TRUE(del2.subtree->DeepEquals(*del.subtree));

  InsertOp ins(2, 5, 1, SmallSubtree());
  InsertOp ins2 = ins.Clone();
  EXPECT_EQ(ins2.parent_xid, 5u);
  EXPECT_TRUE(ins2.subtree->DeepEquals(*ins.subtree));
}

TEST(DeltaTest, MoveOpEquality) {
  MoveOp a{1, 2, 3, 4, 5};
  MoveOp b{1, 2, 3, 4, 5};
  MoveOp c{1, 2, 3, 4, 6};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace xydiff
