#include "xid/xid_map.h"
#include "xml/xid_map_tree.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(XidMapTest, FromSubtreeIsPostorder) {
  // <a><b>t</b><c/></a> with postfix xids t=1,b=2,c=3,a=4.
  XmlDocument doc = MustParse("<a><b>t</b><c/></a>");
  doc.AssignInitialXids();
  XidMap map = XidMapFromSubtree(*doc.root());
  EXPECT_EQ(map.xids(), (std::vector<Xid>{1, 2, 3, 4}));
  EXPECT_EQ(map.root_xid(), 4u);
}

TEST(XidMapTest, ToStringCollapsesRuns) {
  EXPECT_EQ(XidMap(std::vector<Xid>{1, 2, 3, 4}).ToString(), "(1-4)");
  EXPECT_EQ(XidMap(std::vector<Xid>{5}).ToString(), "(5)");
  EXPECT_EQ(XidMap(std::vector<Xid>{1, 2, 9, 10, 11, 4}).ToString(), "(1-2;9-11;4)");
  EXPECT_EQ(XidMap(std::vector<Xid>{}).ToString(), "()");
}

TEST(XidMapTest, ParseRoundTrip) {
  for (const auto& xids :
       {std::vector<Xid>{1, 2, 3}, std::vector<Xid>{7},
        std::vector<Xid>{3, 4, 5, 6, 7}, std::vector<Xid>{10, 2, 3, 99},
        std::vector<Xid>{}}) {
    XidMap map(xids);
    Result<XidMap> reparsed = XidMap::Parse(map.ToString());
    ASSERT_TRUE(reparsed.ok()) << map.ToString();
    EXPECT_EQ(*reparsed, map);
  }
}

TEST(XidMapTest, ParsePaperExample) {
  Result<XidMap> map = XidMap::Parse("(3-7)");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->xids(), (std::vector<Xid>{3, 4, 5, 6, 7}));
}

TEST(XidMapTest, ParseWithSpaces) {
  Result<XidMap> map = XidMap::Parse("  ( 1-2 ; 5 )  ");
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->xids(), (std::vector<Xid>{1, 2, 5}));
}

TEST(XidMapTest, ParseErrors) {
  EXPECT_FALSE(XidMap::Parse("1-4").ok());       // No parens.
  EXPECT_FALSE(XidMap::Parse("(a-b)").ok());     // Not numbers.
  EXPECT_FALSE(XidMap::Parse("(4-1)").ok());     // Reversed range.
  EXPECT_FALSE(XidMap::Parse("(1-)").ok());
  EXPECT_FALSE(XidMap::Parse("(").ok());
  EXPECT_FALSE(XidMap::Parse("").ok());
}

TEST(XidMapTest, ApplyToSubtree) {
  XmlDocument doc = MustParse("<a><b>t</b><c/></a>");
  XidMap map({10, 20, 30, 40});
  XY_ASSERT_OK(ApplyXidMapToSubtree(map, doc.root()));
  EXPECT_EQ(doc.root()->xid(), 40u);
  EXPECT_EQ(doc.root()->child(0)->xid(), 20u);
  EXPECT_EQ(doc.root()->child(0)->child(0)->xid(), 10u);
  EXPECT_EQ(doc.root()->child(1)->xid(), 30u);
}

TEST(XidMapTest, ApplySizeMismatchFails) {
  XmlDocument doc = MustParse("<a><b/></a>");
  XidMap map({1, 2, 3});
  EXPECT_EQ(ApplyXidMapToSubtree(map, doc.root()).code(), StatusCode::kCorruption);
}

TEST(XidMapTest, FromThenApplyIsIdentity) {
  XmlDocument doc = MustParse("<a><b>x</b><c><d/><e/></c></a>");
  doc.AssignInitialXids();
  XidMap map = XidMapFromSubtree(*doc.root());
  XmlDocument copy = doc.Clone();
  // Zero out and restore.
  copy.root()->Visit([](XmlNode* n) { n->set_xid(kNoXid); });
  XY_ASSERT_OK(ApplyXidMapToSubtree(map, copy.root()));
  EXPECT_TRUE(DocsEqualWithXids(doc, copy));
}

}  // namespace
}  // namespace xydiff
