// Differential testing of independent diff implementations — the
// technique that finds semantic bugs spot-checks miss (cf. Li & Rigger,
// "Finding XPath Bugs in XML Document Processors via Differential
// Testing", 2024). BULD and the LaDiff baseline were written
// independently against the same Delta model, so over the same
// simulator-generated document pairs both must satisfy the paper's
// correctness contract: applying the computed delta to the old version
// reproduces the new version *byte-identically* after canonical
// serialization. The distance baselines (Zhang–Shasha, Selkow) and the
// text baselines (Myers, DiffMK list diff) cross-check as oracles:
// identical documents must cost zero everywhere, changed documents must
// cost non-zero somewhere.
//
// A divergence is logged with the minimal reproducer the built-in
// shrinker can find (fewer bytes, then fewer simulated changes), so a
// red run hands the debugger a small case, not an 8 KB document.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/ladiff.h"
#include "baseline/list_diff.h"
#include "baseline/myers_diff.h"
#include "baseline/selkow.h"
#include "baseline/zhang_shasha.h"
#include "core/buld.h"
#include "delta/apply.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

/// Canonical bytes used for the byte-identical comparison: default
/// serializer options (stable attribute order, canonical escaping),
/// no XIDs — both implementations must agree on *structure and content*;
/// XID assignment is each algorithm's own business.
std::string Canonical(const XmlDocument& doc) {
  return SerializeDocument(doc);
}

/// One differential trial: diff `base` -> `changed` with `diff_fn`,
/// apply the delta to a fresh clone of `base`, canonically serialize.
/// Returns true and the patched bytes on success; false with the error
/// message otherwise.
template <typename DiffFn>
bool RunOneDiff(const XmlDocument& base, const XmlDocument& changed,
                DiffFn diff_fn, std::string* patched_bytes,
                std::string* error) {
  // Each algorithm gets private copies: both XyDiff and LaDiff annotate
  // the new document with XIDs as a side effect.
  XmlDocument old_doc = base.Clone();
  XmlDocument new_doc = changed.Clone();
  Result<Delta> delta = diff_fn(&old_doc, &new_doc);
  if (!delta.ok()) {
    *error = "diff failed: " + delta.status().ToString();
    return false;
  }
  XmlDocument patched = base.Clone();
  if (Status s = ApplyDelta(*delta, &patched); !s.ok()) {
    *error = "apply failed: " + s.ToString();
    return false;
  }
  *patched_bytes = Canonical(patched);
  return true;
}

struct TrialOutcome {
  bool ok = true;
  std::string detail;  // Which implementation diverged and how.
};

/// Runs BULD and LaDiff over one (base, changed) pair and cross-checks
/// every baseline oracle. Returns ok=false with a description on any
/// divergence.
TrialOutcome RunTrial(const XmlDocument& base, const XmlDocument& changed) {
  TrialOutcome outcome;
  const std::string expected = Canonical(changed);

  const auto buld = [](XmlDocument* a, XmlDocument* b) {
    return XyDiff(a, b, DiffOptions{});
  };
  const auto ladiff = [](XmlDocument* a, XmlDocument* b) {
    return LaDiff(a, b, DiffOptions{});
  };

  std::string buld_bytes, ladiff_bytes, error;
  if (!RunOneDiff(base, changed, buld, &buld_bytes, &error)) {
    outcome.ok = false;
    outcome.detail = "BULD: " + error;
    return outcome;
  }
  if (buld_bytes != expected) {
    outcome.ok = false;
    outcome.detail = "BULD patched bytes differ from the new version";
    return outcome;
  }
  if (!RunOneDiff(base, changed, ladiff, &ladiff_bytes, &error)) {
    outcome.ok = false;
    outcome.detail = "LaDiff: " + error;
    return outcome;
  }
  if (ladiff_bytes != expected) {
    outcome.ok = false;
    outcome.detail = "LaDiff patched bytes differ from the new version";
    return outcome;
  }
  // Both implementations agree with the ground truth, hence each other.

  // Oracle cross-checks on the *text* baselines: identical inputs diff
  // empty; changed canonical bytes imply a non-empty line diff.
  const std::string old_bytes = Canonical(base);
  LineDiffResult line = MyersLineDiff(old_bytes, expected);
  if (old_bytes == expected &&
      (line.deleted_lines != 0 || line.added_lines != 0)) {
    outcome.ok = false;
    outcome.detail = "Myers reports changes on identical documents";
    return outcome;
  }
  if (old_bytes != expected && line.hunks.empty()) {
    outcome.ok = false;
    outcome.detail = "Myers reports no changes on differing documents";
    return outcome;
  }
  ListDiffResult list = ListDiff(base, changed);
  if (old_bytes == expected &&
      (list.deleted_tokens != 0 || list.inserted_tokens != 0)) {
    outcome.ok = false;
    outcome.detail = "ListDiff reports changes on identical documents";
    return outcome;
  }
  return outcome;
}

/// Tree-distance oracles are quadratic-to-worse; keep them to small
/// trees and check the metric axioms the diff relies on.
TrialOutcome RunDistanceTrial(const XmlDocument& base,
                              const XmlDocument& changed) {
  TrialOutcome outcome;
  const size_t zs_same = TreeEditDistance(*base.root(), *base.root());
  const size_t selkow_same = SelkowEditDistance(*base.root(), *base.root());
  if (zs_same != 0 || selkow_same != 0) {
    outcome.ok = false;
    outcome.detail = "non-zero self distance (zs=" +
                     std::to_string(zs_same) +
                     ", selkow=" + std::to_string(selkow_same) + ")";
    return outcome;
  }
  const size_t zs = TreeEditDistance(*base.root(), *changed.root());
  const size_t selkow = SelkowEditDistance(*base.root(), *changed.root());
  const bool structurally_equal = Canonical(base) == Canonical(changed);
  if (structurally_equal && zs != 0) {
    outcome.ok = false;
    outcome.detail = "Zhang-Shasha non-zero on equal documents";
    return outcome;
  }
  if (!structurally_equal && zs == 0) {
    outcome.ok = false;
    outcome.detail = "Zhang-Shasha zero on differing documents";
    return outcome;
  }
  // Selkow restricts operations to subtree insert/delete + relabel, so
  // it can never beat the unrestricted exact distance.
  if (selkow < zs) {
    outcome.ok = false;
    outcome.detail = "Selkow distance " + std::to_string(selkow) +
                     " below exact distance " + std::to_string(zs);
    return outcome;
  }
  return outcome;
}

struct TrialInputs {
  XmlDocument base;
  XmlDocument changed;
};

/// Deterministically regenerates the trial inputs for (seed, bytes,
/// change scale). `scale` in (0, 1] multiplies every change probability —
/// the shrinker's second axis.
TrialInputs MakeInputs(uint64_t seed, size_t target_bytes, double scale,
                       const ChangeSimOptions& profile) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = target_bytes;
  TrialInputs inputs;
  inputs.base = GenerateDocument(&rng, gen);
  inputs.base.AssignInitialXids();
  ChangeSimOptions sim = profile;
  sim.delete_probability *= scale;
  sim.update_probability *= scale;
  sim.insert_probability *= scale;
  sim.move_probability *= scale;
  Result<SimulatedChange> change = SimulateChanges(inputs.base, sim, &rng);
  EXPECT_TRUE(change.ok()) << change.status().ToString();
  inputs.changed =
      change.ok() ? std::move(change->new_version) : inputs.base.Clone();
  return inputs;
}

/// Shrinks a failing trial: first smaller documents, then gentler change
/// mixes, re-running the differential check each time. Returns the
/// smallest still-failing pair it found (by construction at least the
/// original failure reproduces).
void LogMinimizedDivergence(uint64_t seed, size_t target_bytes,
                            const ChangeSimOptions& profile,
                            const std::string& first_detail) {
  size_t best_bytes = target_bytes;
  double best_scale = 1.0;
  std::string detail = first_detail;
  for (size_t bytes = target_bytes / 2; bytes >= 64; bytes /= 2) {
    TrialInputs inputs = MakeInputs(seed, bytes, best_scale, profile);
    TrialOutcome outcome = RunTrial(inputs.base, inputs.changed);
    if (!outcome.ok) {
      best_bytes = bytes;
      detail = outcome.detail;
    }
  }
  for (double scale : {0.5, 0.25, 0.1}) {
    TrialInputs inputs = MakeInputs(seed, best_bytes, scale, profile);
    TrialOutcome outcome = RunTrial(inputs.base, inputs.changed);
    if (!outcome.ok) {
      best_scale = scale;
      detail = outcome.detail;
    }
  }
  TrialInputs minimal = MakeInputs(seed, best_bytes, best_scale, profile);
  ADD_FAILURE() << "divergence (seed=" << seed << ", bytes=" << best_bytes
                << ", scale=" << best_scale << "): " << detail
                << "\n--- old ---\n"
                << Canonical(minimal.base) << "\n--- new ---\n"
                << Canonical(minimal.changed);
}

// The main sweep: >= 500 generated pairs across four change profiles.
// Sizes stay small enough that the quadratic LaDiff finishes the sweep
// in seconds — divergence hunting wants many pairs, not big ones.
TEST(DifferentialTest, BuldAndLaDiffAgreeOnFiveHundredPairs) {
  struct Profile {
    const char* name;
    ChangeSimOptions sim;
  };
  std::vector<Profile> profiles(4);
  profiles[0] = {"paper-10pct", {0.1, 0.1, 0.1, 0.1}};
  profiles[1] = {"weekly-web", {0.01, 0.03, 0.02, 0.005}};
  profiles[2] = {"heavy-churn", {0.3, 0.3, 0.3, 0.2}};
  profiles[3] = {"move-dominated", {0.15, 0.0, 0.0, 0.5}};

  size_t trials = 0;
  size_t divergences = 0;
  for (const Profile& profile : profiles) {
    for (uint64_t seed = 1; seed <= 125; ++seed) {
      const size_t bytes = 512 + (seed % 3) * 768;  // 512 / 1280 / 2048.
      TrialInputs inputs = MakeInputs(seed, bytes, 1.0, profile.sim);
      TrialOutcome outcome = RunTrial(inputs.base, inputs.changed);
      ++trials;
      if (!outcome.ok) {
        ++divergences;
        std::fprintf(stderr, "divergence in profile %s seed %llu: %s\n",
                     profile.name, static_cast<unsigned long long>(seed),
                     outcome.detail.c_str());
        LogMinimizedDivergence(seed, bytes, profile.sim, outcome.detail);
      }
    }
  }
  EXPECT_GE(trials, 500u);
  EXPECT_EQ(divergences, 0u);
}

// Distance-oracle sweep on small trees (the exact algorithms are
// O(n^2)..O(n^4); 64 pairs of ~40-node trees keep this instant).
TEST(DifferentialTest, DistanceOraclesAgreeOnSmallTrees) {
  ChangeSimOptions sim;  // Paper defaults: 10% per operation.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    TrialInputs inputs = MakeInputs(seed, 256, 1.0, sim);
    TrialOutcome outcome = RunDistanceTrial(inputs.base, inputs.changed);
    EXPECT_TRUE(outcome.ok) << "seed " << seed << ": " << outcome.detail;
  }
}

// The shrinker itself must reproduce deterministically: regenerating the
// same (seed, bytes, scale) twice yields byte-identical inputs.
TEST(DifferentialTest, TrialGenerationIsDeterministic) {
  ChangeSimOptions sim;
  TrialInputs a = MakeInputs(42, 1024, 0.5, sim);
  TrialInputs b = MakeInputs(42, 1024, 0.5, sim);
  EXPECT_EQ(Canonical(a.base), Canonical(b.base));
  EXPECT_EQ(Canonical(a.changed), Canonical(b.changed));
}

}  // namespace
}  // namespace xydiff
