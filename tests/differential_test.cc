// Differential testing of independent diff implementations — the
// technique that finds semantic bugs spot-checks miss (cf. Li & Rigger,
// "Finding XPath Bugs in XML Document Processors via Differential
// Testing", 2024). BULD and the LaDiff baseline were written
// independently against the same Delta model, so over the same
// simulator-generated document pairs both must satisfy the paper's
// correctness contract: applying the computed delta to the old version
// reproduces the new version *byte-identically* after canonical
// serialization. The distance baselines (Zhang–Shasha, Selkow) and the
// text baselines (Myers, DiffMK list diff) cross-check as oracles:
// identical documents must cost zero everywhere, changed documents must
// cost non-zero somewhere.
//
// The oracle and shrinking machinery lives in src/fuzz/ (oracles.h,
// shrink.h) and is shared with the fuzz_driver tool; this test is the
// fixed-seed tier-1 sweep. A divergence is logged with the minimal
// reproducer MinimizeFailure can find — fewer bytes, a gentler change
// mix, and finally single operation kinds knocked out, so a red run
// names the culprit operation, not just an 8 KB document.

#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/oracles.h"
#include "fuzz/shrink.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "util/random.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

std::string Canonical(const XmlDocument& doc) {
  return SerializeDocument(doc);
}

struct TrialInputs {
  XmlDocument base;
  XmlDocument changed;
};

/// Deterministically regenerates the trial inputs for one shrink spec —
/// a pure function of (seed, spec), which is what makes the shrinker's
/// candidate evaluation meaningful.
TrialInputs MakeInputs(uint64_t seed, const ShrinkSpec& spec) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = spec.size;
  TrialInputs inputs;
  inputs.base = GenerateDocument(&rng, gen);
  inputs.base.AssignInitialXids();
  Result<SimulatedChange> change =
      SimulateChanges(inputs.base, spec.sim, &rng);
  EXPECT_TRUE(change.ok()) << change.status().ToString();
  inputs.changed =
      change.ok() ? std::move(change->new_version) : inputs.base.Clone();
  return inputs;
}

ShrinkSpec MakeSpec(size_t bytes, const ChangeSimOptions& sim,
                    double scale = 1.0) {
  ShrinkSpec spec;
  spec.size = bytes;
  spec.sim = sim;
  spec.sim.delete_probability *= scale;
  spec.sim.update_probability *= scale;
  spec.sim.insert_probability *= scale;
  spec.sim.move_probability *= scale;
  return spec;
}

/// The pair-level differential + baseline oracles (no distance: those
/// run in their own small-tree sweep below).
OracleReport JudgePair(uint64_t seed, const ShrinkSpec& spec) {
  TrialInputs inputs = MakeInputs(seed, spec);
  OracleOptions oracles;
  oracles.check_distance = false;
  return CheckPairOracles(inputs.base, inputs.changed, oracles);
}

/// Shrinks a failing trial over all three axes — document size, change
/// scale, and the simulator profile itself (individual operation-kind
/// probabilities) — and logs the minimal reproducer.
void LogMinimizedDivergence(uint64_t seed, const ShrinkSpec& original,
                            const std::string& first_detail) {
  const ShrinkSpec minimal =
      MinimizeFailure(original, [seed](const ShrinkSpec& candidate) {
        return !JudgePair(seed, candidate).ok();
      });
  TrialInputs inputs = MakeInputs(seed, minimal);
  const OracleReport report = JudgePair(seed, minimal);
  ADD_FAILURE() << "divergence (seed=" << seed << ", " << minimal.ToString()
                << "): "
                << (report.ok() ? first_detail : report.ToString())
                << "\n--- old ---\n"
                << Canonical(inputs.base) << "\n--- new ---\n"
                << Canonical(inputs.changed);
}

// The main sweep: >= 500 generated pairs across four change profiles.
// Sizes stay small enough that the quadratic LaDiff finishes the sweep
// in seconds — divergence hunting wants many pairs, not big ones.
TEST(DifferentialTest, BuldAndLaDiffAgreeOnFiveHundredPairs) {
  struct Profile {
    const char* name;
    ChangeSimOptions sim;
  };
  std::vector<Profile> profiles(4);
  profiles[0] = {"paper-10pct", {0.1, 0.1, 0.1, 0.1}};
  profiles[1] = {"weekly-web", {0.01, 0.03, 0.02, 0.005}};
  profiles[2] = {"heavy-churn", {0.3, 0.3, 0.3, 0.2}};
  profiles[3] = {"move-dominated", {0.15, 0.0, 0.0, 0.5}};

  size_t trials = 0;
  size_t divergences = 0;
  for (const Profile& profile : profiles) {
    for (uint64_t seed = 1; seed <= 125; ++seed) {
      const size_t bytes = 512 + (seed % 3) * 768;  // 512 / 1280 / 2048.
      const ShrinkSpec spec = MakeSpec(bytes, profile.sim);
      const OracleReport report = JudgePair(seed, spec);
      ++trials;
      if (!report.ok()) {
        ++divergences;
        std::fprintf(stderr, "divergence in profile %s seed %llu: %s\n",
                     profile.name, static_cast<unsigned long long>(seed),
                     report.ToString().c_str());
        LogMinimizedDivergence(seed, spec, report.ToString());
      }
    }
  }
  EXPECT_GE(trials, 500u);
  EXPECT_EQ(divergences, 0u);
}

// Distance-oracle sweep on small trees (the exact algorithms are
// O(n^2)..O(n^4); 64 pairs of ~40-node trees keep this instant).
TEST(DifferentialTest, DistanceOraclesAgreeOnSmallTrees) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    TrialInputs inputs = MakeInputs(seed, MakeSpec(256, ChangeSimOptions{}));
    OracleOptions oracles;  // Everything on; trees are tiny.
    oracles.distance_node_limit = 512;
    const OracleReport report =
        CheckPairOracles(inputs.base, inputs.changed, oracles);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.ToString();
  }
}

// The shrinker itself must reproduce deterministically: regenerating the
// same (seed, spec) twice yields byte-identical inputs.
TEST(DifferentialTest, TrialGenerationIsDeterministic) {
  const ShrinkSpec spec = MakeSpec(1024, ChangeSimOptions{}, 0.5);
  TrialInputs a = MakeInputs(42, spec);
  TrialInputs b = MakeInputs(42, spec);
  EXPECT_EQ(Canonical(a.base), Canonical(b.base));
  EXPECT_EQ(Canonical(a.changed), Canonical(b.changed));
}

// The profile axis: a synthetic failure that only reproduces when moves
// are enabled must shrink to a move-only change mix — naming the culprit
// operation kind in the repro line.
TEST(DifferentialTest, ShrinkerMinimizesTheProfileDimension) {
  ShrinkSpec spec = MakeSpec(4096, ChangeSimOptions{0.2, 0.2, 0.2, 0.2});
  size_t candidates = 0;
  const ShrinkSpec minimal =
      MinimizeFailure(spec, [&candidates](const ShrinkSpec& candidate) {
        ++candidates;
        // "Fails" whenever moves are still possible.
        return candidate.sim.move_probability > 0.0;
      });
  EXPECT_GT(candidates, 0u);
  EXPECT_LE(minimal.size, 64u * 2);  // Size axis shrank to the floor.
  EXPECT_EQ(minimal.sim.delete_probability, 0.0);
  EXPECT_EQ(minimal.sim.update_probability, 0.0);
  EXPECT_EQ(minimal.sim.insert_probability, 0.0);
  EXPECT_GT(minimal.sim.move_probability, 0.0);  // The culprit survives.
}

}  // namespace
}  // namespace xydiff
