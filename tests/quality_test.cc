// Quality guardrails distilled from §6.1: the computed delta must stay
// in the same ballpark as the synthetic (perfect) delta, and close to the
// optimal edit distance on small inputs. These are regression tests, not
// benchmarks — bench/bench_fig5_quality reproduces the full figure.

#include "baseline/zhang_shasha.h"
#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(QualityTest, DeltaSizeTracksPerfectDelta) {
  Rng rng(100);
  DocGenOptions gen;
  gen.target_bytes = 16384;
  double worst_ratio = 0;
  for (int round = 0; round < 8; ++round) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change =
        SimulateChanges(base, ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());

    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> computed = XyDiff(&a, &b);
    ASSERT_TRUE(computed.ok());

    const double perfect =
        static_cast<double>(SerializeDelta(change->perfect_delta).size());
    const double actual =
        static_cast<double>(SerializeDelta(*computed).size());
    ASSERT_GT(perfect, 0);
    worst_ratio = std::max(worst_ratio, actual / perfect);
  }
  // §6.1: "the delta produced by diff is about the size of the delta
  // produced by the simulator", up to ~1.5x at high change rates. Allow
  // 2x as the regression threshold.
  EXPECT_LT(worst_ratio, 2.0) << "delta quality regressed";
}

TEST(QualityTest, FewChangesYieldSmallDeltas) {
  Rng rng(101);
  DocGenOptions gen;
  gen.target_bytes = 32768;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  ChangeSimOptions tiny;
  tiny.delete_probability = 0.002;
  tiny.update_probability = 0.005;
  tiny.insert_probability = 0.002;
  tiny.move_probability = 0.001;
  Result<SimulatedChange> change = SimulateChanges(base, tiny, &rng);
  ASSERT_TRUE(change.ok());
  XmlDocument a = base.Clone();
  XmlDocument b = change->new_version.Clone();
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());
  // The delta must be a small fraction of the document ("delta size is
  // usually less than the size of one version", often < 10%).
  EXPECT_LT(SerializeDelta(*delta).size(),
            SerializeDocument(base).size() / 2);
}

TEST(QualityTest, EditCostNearOptimalOnSmallDocuments) {
  // Compare BULD's edit cost against the exact tree edit distance on
  // small random documents. BULD counts whole-subtree inserts/deletes
  // node by node plus moves/updates, so its cost is an upper bound of a
  // unit-cost script; require it within a constant factor of optimal.
  Rng rng(102);
  DocGenOptions gen;
  gen.target_bytes = 600;
  double total_buld = 0;
  double total_optimal = 0;
  for (int round = 0; round < 12; ++round) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    ChangeSimOptions mild;
    mild.delete_probability = 0.05;
    mild.update_probability = 0.08;
    mild.insert_probability = 0.05;
    mild.move_probability = 0.0;  // TED has no move op; keep comparable.
    Result<SimulatedChange> change = SimulateChanges(base, mild, &rng);
    ASSERT_TRUE(change.ok());

    const size_t optimal =
        TreeEditDistance(*base.root(), *change->new_version.root());
    XmlDocument a = base.Clone();
    XmlDocument b = change->new_version.Clone();
    Result<Delta> delta = XyDiff(&a, &b);
    ASSERT_TRUE(delta.ok());
    total_buld += static_cast<double>(delta->edit_cost());
    total_optimal += static_cast<double>(optimal);
  }
  if (total_optimal == 0) GTEST_SKIP() << "no changes generated";
  // "reasonably close to the optimal" — BULD's cost model is coarser
  // than unit-cost TED (subtree granularity), so allow a 3x envelope.
  EXPECT_LT(total_buld, 3.0 * total_optimal + 10.0)
      << "buld=" << total_buld << " optimal=" << total_optimal;
}

TEST(QualityTest, MoveHeavyWorkloadUsesMoves) {
  // Detecting moves is "a main contribution" (§6.1): on a move-dominated
  // change mix, the delta should contain moves and stay far below the
  // cost of delete+insert for the moved material.
  Rng rng(103);
  DocGenOptions gen;
  gen.target_bytes = 8192;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  ChangeSimOptions movy;
  movy.delete_probability = 0.1;
  movy.update_probability = 0.0;
  movy.insert_probability = 0.0;
  movy.move_probability = 0.6;
  Result<SimulatedChange> change = SimulateChanges(base, movy, &rng);
  ASSERT_TRUE(change.ok());
  ASSERT_GT(change->moved_subtrees, 0u);

  XmlDocument a = base.Clone();
  XmlDocument b = change->new_version.Clone();
  Result<Delta> with_moves = XyDiff(&a, &b);
  ASSERT_TRUE(with_moves.ok());
  EXPECT_FALSE(with_moves->moves().empty());

  DiffOptions no_moves;
  no_moves.detect_moves = false;
  XmlDocument a2 = base.Clone();
  XmlDocument b2 = change->new_version.Clone();
  Result<Delta> without_moves = XyDiff(&a2, &b2, no_moves);
  ASSERT_TRUE(without_moves.ok());
  EXPECT_LT(SerializeDelta(*with_moves).size(),
            SerializeDelta(*without_moves).size());
}

TEST(QualityTest, WindowedLopsStaysCorrectAndComparable) {
  Rng rng(104);
  DocGenOptions gen;
  gen.target_bytes = 8192;
  gen.min_fanout = 8;
  gen.max_fanout = 20;
  XmlDocument base = GenerateDocument(&rng, gen);
  base.AssignInitialXids();
  ChangeSimOptions movy;
  movy.move_probability = 0.4;
  Result<SimulatedChange> change = SimulateChanges(base, movy, &rng);
  ASSERT_TRUE(change.ok());

  DiffOptions windowed;
  windowed.lops_window = 50;  // The paper's heuristic.
  XmlDocument a = base.Clone();
  XmlDocument b = change->new_version.Clone();
  Result<Delta> delta = XyDiff(&a, &b, windowed);
  ASSERT_TRUE(delta.ok());
  // Correctness is untouched by the heuristic.
  XmlDocument patched = base.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, b));
}

}  // namespace
}  // namespace xydiff
