#ifndef FIXTURE_UTIL_CLEAN_H_
#define FIXTURE_UTIL_CLEAN_H_
namespace xydiff {
inline int CleanValue() { return 7; }
}  // namespace xydiff
#endif
