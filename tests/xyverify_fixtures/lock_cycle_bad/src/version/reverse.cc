#include "core/pair.h"
namespace xydiff {
void Pair::ReverseSweep() {
  MutexLock b(mu_b_);
  MutexLock a(mu_a_);
}
}  // namespace xydiff
