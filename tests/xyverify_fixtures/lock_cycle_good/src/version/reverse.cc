#include "core/pair.h"
namespace xydiff {
void Pair::ReverseSweep() {
  MutexLock a(mu_a_);
  MutexLock b(mu_b_);
}
}  // namespace xydiff
