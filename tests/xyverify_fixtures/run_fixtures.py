#!/usr/bin/env python3
"""Runs xyverify against each fixture tree and checks the findings.

Every directory here is a miniature repository (its own src/, tools/).
The file EXPECT inside a fixture lists the rule ids xyverify must report
for that tree, one per line; an empty EXPECT means the tree must come
back clean (exit 0).  A fixture may also carry a baseline.json, which is
passed via --baseline to exercise the suppression/hygiene rules.

Each failing fixture has a *_good twin differing only in the fix, so the
corpus pins both directions: the rule fires on the bug and stays quiet
once the bug is gone.
"""

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))


def run_fixture(name):
    fixture = os.path.join(HERE, name)
    expect_path = os.path.join(fixture, "EXPECT")
    with open(expect_path, encoding="utf-8") as f:
        expected = {line.strip() for line in f if line.strip()}
    cmd = [sys.executable, "-m", "tools.xyverify",
           "--root", fixture, "--json"]
    baseline = os.path.join(fixture, "baseline.json")
    if os.path.exists(baseline):
        cmd += ["--baseline", baseline]
    proc = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        return ["{}: xyverify crashed (exit {}):\n{}".format(
            name, proc.returncode, proc.stderr)]
    doc = json.loads(proc.stdout)
    got = {r["ruleId"] for r in doc["runs"][0]["results"]}
    errors = []
    if got != expected:
        errors.append("{}: expected rules {} but got {}".format(
            name, sorted(expected) or "[]", sorted(got) or "[]"))
    want_exit = 1 if expected else 0
    if proc.returncode != want_exit:
        errors.append("{}: expected exit {} but got {}".format(
            name, want_exit, proc.returncode))
    return errors


def main():
    names = sorted(
        d for d in os.listdir(HERE)
        if os.path.isdir(os.path.join(HERE, d)) and
        os.path.exists(os.path.join(HERE, d, "EXPECT")))
    if not names:
        print("run_fixtures: no fixtures found", file=sys.stderr)
        return 2
    failures = []
    for name in names:
        errors = run_fixture(name)
        status = "ok" if not errors else "FAIL"
        print("{:24} {}".format(name, status))
        failures += errors
    for e in failures:
        print(e, file=sys.stderr)
    print("{}/{} fixtures passed".format(len(names) - len(failures),
                                         len(names)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
