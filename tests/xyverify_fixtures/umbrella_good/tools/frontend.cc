#include "xydiff.h"
int main() { return 0; }
