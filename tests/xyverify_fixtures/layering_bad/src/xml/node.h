#ifndef FIXTURE_XML_NODE_H_
#define FIXTURE_XML_NODE_H_
namespace xydiff {
class XmlNode {};
}  // namespace xydiff
#endif
