#ifndef FIXTURE_UTIL_UPLINK_H_
#define FIXTURE_UTIL_UPLINK_H_
#include "xml/node.h"
namespace xydiff {
inline int UplinkDepth(const XmlNode&) { return 0; }
}  // namespace xydiff
#endif
