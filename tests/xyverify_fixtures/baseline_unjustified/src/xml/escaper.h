#ifndef FIXTURE_XML_ESCAPER_H_
#define FIXTURE_XML_ESCAPER_H_
namespace xydiff {
class XmlNode {};
class Escaper {
 public:
  XmlNode* leak() const;
};
}  // namespace xydiff
#endif
