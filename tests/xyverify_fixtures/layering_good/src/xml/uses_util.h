#ifndef FIXTURE_XML_USES_UTIL_H_
#define FIXTURE_XML_USES_UTIL_H_
#include "util/helper.h"
namespace xydiff {
inline int NodeDepth() { return HelperDepth(); }
}  // namespace xydiff
#endif
