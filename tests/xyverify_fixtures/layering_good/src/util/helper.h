#ifndef FIXTURE_UTIL_HELPER_H_
#define FIXTURE_UTIL_HELPER_H_
namespace xydiff {
inline int HelperDepth() { return 0; }
}  // namespace xydiff
#endif
