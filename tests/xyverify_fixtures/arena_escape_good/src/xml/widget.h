#ifndef FIXTURE_XML_WIDGET_H_
#define FIXTURE_XML_WIDGET_H_
namespace xydiff {
class XmlNode {};
class Widget {
 public:
  XmlNode* peek() const XY_ARENA_BOUND("widget's document");
};
}  // namespace xydiff
#endif
