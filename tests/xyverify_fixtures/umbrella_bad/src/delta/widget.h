#ifndef FIXTURE_DELTA_WIDGET_H_
#define FIXTURE_DELTA_WIDGET_H_
#include "xydiff.h"
namespace xydiff {
inline int WidgetKind() { return 1; }
}  // namespace xydiff
#endif
