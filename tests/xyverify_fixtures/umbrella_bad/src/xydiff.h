#ifndef FIXTURE_XYDIFF_H_
#define FIXTURE_XYDIFF_H_
namespace xydiff {}
#endif
