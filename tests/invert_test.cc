#include "delta/invert.h"

#include "core/buld.h"
#include "delta/apply.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

TEST(InvertTest, SwapsOperationKinds) {
  Delta delta;
  auto del_tree = XmlNode::Element("d");
  del_tree->set_xid(1);
  delta.deletes().emplace_back(1, 10, 2, std::move(del_tree));
  auto ins_tree = XmlNode::Element("i");
  ins_tree->set_xid(5);
  delta.inserts().emplace_back(5, 11, 3, std::move(ins_tree));
  delta.moves().push_back(MoveOp{7, 1, 2, 3, 4});
  delta.updates().push_back(UpdateOp{8, "old", "new"});
  delta.attribute_ops().push_back({AttributeOpKind::kInsert, 9, "a", "", "v"});
  delta.attribute_ops().push_back({AttributeOpKind::kDelete, 9, "b", "w", ""});
  delta.attribute_ops().push_back(
      {AttributeOpKind::kUpdate, 9, "c", "1", "2"});
  delta.set_old_next_xid(100);
  delta.set_new_next_xid(200);

  Delta inv = InvertDelta(delta);
  ASSERT_EQ(inv.deletes().size(), 1u);
  ASSERT_EQ(inv.inserts().size(), 1u);
  EXPECT_EQ(inv.deletes()[0].xid, 5u);   // Was the insert.
  EXPECT_EQ(inv.inserts()[0].xid, 1u);   // Was the delete.
  EXPECT_EQ(inv.inserts()[0].parent_xid, 10u);
  EXPECT_EQ(inv.inserts()[0].pos, 2u);

  ASSERT_EQ(inv.moves().size(), 1u);
  EXPECT_EQ(inv.moves()[0], (MoveOp{7, 3, 4, 1, 2}));

  ASSERT_EQ(inv.updates().size(), 1u);
  EXPECT_EQ(inv.updates()[0].old_value, "new");
  EXPECT_EQ(inv.updates()[0].new_value, "old");

  ASSERT_EQ(inv.attribute_ops().size(), 3u);
  EXPECT_EQ(inv.attribute_ops()[0].kind, AttributeOpKind::kDelete);
  EXPECT_EQ(inv.attribute_ops()[0].old_value, "v");
  EXPECT_EQ(inv.attribute_ops()[1].kind, AttributeOpKind::kInsert);
  EXPECT_EQ(inv.attribute_ops()[1].new_value, "w");
  EXPECT_EQ(inv.attribute_ops()[2].kind, AttributeOpKind::kUpdate);
  EXPECT_EQ(inv.attribute_ops()[2].old_value, "2");

  EXPECT_EQ(inv.old_next_xid(), 200u);
  EXPECT_EQ(inv.new_next_xid(), 100u);
}

TEST(InvertTest, DoubleInversionIsIdentity) {
  XmlDocument a = MustParse(
      "<r><x>one</x><y k=\"1\">two</y><z/><w>mover</w></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><y k=\"2\">two!</y><x>one</x><q><w>mover</w></q></r>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());

  const Delta inv2 = InvertDelta(InvertDelta(*delta));
  // Same operation multiset — compare via serialized application.
  XmlDocument p1 = a.Clone();
  XmlDocument p2 = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &p1));
  XY_ASSERT_OK(ApplyDelta(inv2, &p2));
  EXPECT_TRUE(DocsEqualWithXids(p1, p2));
  EXPECT_EQ(inv2.operation_count(), delta->operation_count());
}

TEST(InvertTest, ApplyInverseRestoresOldVersion) {
  XmlDocument a = MustParse(
      "<shop><item>apple</item><item>pear</item><sale><item>plum</item>"
      "</sale></shop>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<shop><sale><item>plum</item><item>apple</item></sale>"
      "<item>cherry</item></shop>");
  Result<Delta> delta = XyDiff(&a, &b);
  ASSERT_TRUE(delta.ok());

  XmlDocument forward = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &forward));
  EXPECT_TRUE(DocsEqualWithXids(forward, b));

  XY_ASSERT_OK(ApplyDelta(InvertDelta(*delta), &forward));
  EXPECT_TRUE(DocsEqualWithXids(forward, a));

  // And ApplyDeltaInverse is the same thing.
  XmlDocument forward2 = a.Clone();
  XY_ASSERT_OK(ApplyDelta(*delta, &forward2));
  XY_ASSERT_OK(ApplyDeltaInverse(*delta, &forward2));
  EXPECT_TRUE(DocsEqualWithXids(forward2, a));
}

TEST(InvertTest, EmptyDelta) {
  Delta empty;
  Delta inv = InvertDelta(empty);
  EXPECT_TRUE(inv.empty());
}

}  // namespace
}  // namespace xydiff
