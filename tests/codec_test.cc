#include "delta/codec.h"

#include <string>
#include <string_view>

#include "core/buld.h"
#include "delta/delta_xml.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

// The codec's correctness contract: byte-identity of the XML
// serialization across an encode/decode round trip.
std::string RoundTripXml(const Delta& delta) {
  const std::string encoded = EncodeDeltaBinary(delta);
  Result<Delta> decoded = DecodeDeltaBinary(encoded);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  if (!decoded.ok()) return {};
  return SerializeDelta(*decoded);
}

TEST(CodecTest, EmptyDeltaRoundTrips) {
  Delta delta;
  EXPECT_EQ(RoundTripXml(delta), SerializeDelta(delta));
  EXPECT_TRUE(LooksLikeBinaryDelta(EncodeDeltaBinary(delta)));
}

TEST(CodecTest, SimulatedPairsRoundTripByteIdentically) {
  size_t total_binary = 0, total_xml = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    DocGenOptions gen;
    gen.target_bytes = 4096;
    XmlDocument old_doc = GenerateDocument(&rng, gen);
    old_doc.AssignInitialXids();
    Result<SimulatedChange> change =
        SimulateChanges(old_doc, ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok()) << change.status().ToString();
    Result<Delta> delta = XyDiff(&old_doc, &change->new_version);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();

    const std::string xml = SerializeDelta(*delta);
    const std::string binary = EncodeDeltaBinary(*delta);
    EXPECT_EQ(RoundTripXml(*delta), xml) << "seed " << seed;
    total_binary += binary.size();
    total_xml += xml.size();
  }
  // The compact codec must beat the XML serialization it replaces.
  EXPECT_LT(total_binary, total_xml);
}

/// A delta exercising every operation kind, every attribute-op kind,
/// the §7 compressed update form, and snapshots with interned labels,
/// attributes, and text leaves.
Delta MakeAllOpKindsDelta() {
  Delta delta;
  delta.set_old_next_xid(50);
  delta.set_new_next_xid(60);
  Arena* arena = delta.snapshot_arena();

  DeleteOp del;
  del.xid = 7;
  del.parent_xid = 1;
  del.pos = 2;
  del.subtree = XmlNode::ElementIn(arena, "item");
  del.subtree->set_xid(7);
  del.subtree->SetAttribute("id", "a-1");
  XmlNodePtr del_text = XmlNode::TextIn(arena, "bye");
  del_text->set_xid(8);
  del.subtree->AppendChild(std::move(del_text));
  delta.deletes().push_back(std::move(del));

  InsertOp ins;
  ins.xid = 51;
  ins.parent_xid = 1;
  ins.pos = 3;
  ins.subtree = XmlNode::ElementIn(arena, "item");  // Interned with del's.
  ins.subtree->set_xid(51);
  ins.subtree->SetAttribute("id", "a-2");
  XmlNodePtr ins_child = XmlNode::ElementIn(arena, "name");
  ins_child->set_xid(52);
  XmlNodePtr ins_text = XmlNode::TextIn(arena, "gamma");
  ins_text->set_xid(53);
  ins_child->AppendChild(std::move(ins_text));
  ins.subtree->AppendChild(std::move(ins_child));
  delta.inserts().push_back(std::move(ins));

  MoveOp move;
  move.xid = 9;
  move.from_parent = 1;
  move.from_pos = 4;
  move.to_parent = 51;
  move.to_pos = 1;
  delta.moves().push_back(move);

  UpdateOp update;  // Compressed: "hello world" -> "hello brave world".
  update.xid = 11;
  update.prefix = 6;
  update.suffix = 5;
  update.old_value = "";
  update.new_value = "brave ";
  delta.updates().push_back(std::move(update));

  AttributeOp attr_insert;
  attr_insert.kind = AttributeOpKind::kInsert;
  attr_insert.element_xid = 2;
  attr_insert.name = "lang";
  attr_insert.new_value = "en";
  delta.attribute_ops().push_back(std::move(attr_insert));

  AttributeOp attr_delete;
  attr_delete.kind = AttributeOpKind::kDelete;
  attr_delete.element_xid = 3;
  attr_delete.name = "stale";
  attr_delete.old_value = "yes";
  delta.attribute_ops().push_back(std::move(attr_delete));

  AttributeOp attr_update;
  attr_update.kind = AttributeOpKind::kUpdate;
  attr_update.element_xid = 4;
  attr_update.name = "id";  // Interned with the snapshot attributes.
  attr_update.old_value = "a-3";
  attr_update.new_value = "a-4";
  delta.attribute_ops().push_back(std::move(attr_update));
  return delta;
}

TEST(CodecTest, AllOpKindsRoundTripByteIdentically) {
  const Delta delta = MakeAllOpKindsDelta();
  EXPECT_EQ(RoundTripXml(delta), SerializeDelta(delta));
}

TEST(CodecTest, SniffsFormats) {
  EXPECT_TRUE(LooksLikeBinaryDelta(EncodeDeltaBinary(Delta{})));
  EXPECT_FALSE(LooksLikeBinaryDelta("<xy:delta/>"));
  EXPECT_FALSE(LooksLikeBinaryDelta(""));
  EXPECT_FALSE(LooksLikeBinaryDelta("XYD"));
}

// --- adversarial decode ------------------------------------------------
// Hostile bytes must come back as Status (kCorruption), never UB; run
// under ASan/UBSan these tests double as memory-safety proofs.

void ExpectCorrupt(const std::string& bytes, const char* what) {
  Result<Delta> decoded = DecodeDeltaBinary(bytes);
  ASSERT_FALSE(decoded.ok()) << what;
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption) << what;
}

TEST(CodecTest, EveryTruncationIsRejected) {
  const std::string encoded = EncodeDeltaBinary(MakeAllOpKindsDelta());
  for (size_t len = 0; len < encoded.size(); ++len) {
    ExpectCorrupt(encoded.substr(0, len), "truncated prefix");
  }
}

TEST(CodecTest, MutatedBytesNeverCrash) {
  const std::string encoded = EncodeDeltaBinary(MakeAllOpKindsDelta());
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (const char flip : {char(0x01), char(0x80), char(0xff)}) {
      std::string mutated = encoded;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      // Any outcome is fine — decoded garbage or a Status — as long as
      // the decoder neither crashes nor reads out of bounds.
      // Justified discard: only the absence of UB is under test.
      (void)DecodeDeltaBinary(mutated);
    }
  }
}

// Wire-format building blocks for hand-crafted hostile buffers.
std::string V(uint64_t value) {
  std::string out;
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
  return out;
}

std::string Hdr() { return std::string("XYDB") + '\x01'; }

TEST(CodecTest, BadMagicRejected) {
  ExpectCorrupt("ABCD\x01", "wrong magic");
  ExpectCorrupt("", "empty input");
}

TEST(CodecTest, UnsupportedVersionRejected) {
  ExpectCorrupt(std::string("XYDB") + '\x02' + V(1) + V(1) + V(0) + V(0) +
                    V(0) + V(0) + V(0) + V(0),
                "future format version");
}

TEST(CodecTest, OverlongVarintRejected) {
  // 0x80 0x00 encodes 0 in two bytes — non-canonical padding.
  ExpectCorrupt(Hdr() + '\x80' + '\x00', "overlong varint");
}

TEST(CodecTest, OverflowingVarintRejected) {
  // Ten groups whose final one pushes past 64 bits.
  ExpectCorrupt(Hdr() + std::string(9, '\xff') + '\x7f', "65-bit varint");
}

TEST(CodecTest, EndlessVarintRejected) {
  ExpectCorrupt(Hdr() + std::string(10, '\x80'), "unterminated varint");
}

TEST(CodecTest, HostileCountRejectedBeforeAllocation) {
  // A dictionary claiming ~1 trillion entries in a 10-byte buffer must
  // fail the count-vs-remaining check, not attempt the allocation.
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(uint64_t{1} << 40), "huge count");
}

TEST(CodecTest, TrailingBytesRejected) {
  ExpectCorrupt(EncodeDeltaBinary(Delta{}) + '\x00', "trailing byte");
}

TEST(CodecTest, DictionaryIdOutOfRangeRejected) {
  // Empty dictionary, one attribute op naming dictionary entry 9.
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(0) + V(0) + V(0) + V(0) + V(0) +
                    V(1) + '\x00' + V(1) + V(9),
                "dict id out of range");
}

TEST(CodecTest, BadSnapshotKindRejected) {
  // One delete op whose snapshot root claims node kind 7.
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(0) + V(1) + V(1) + V(0) + V(1) +
                    '\x01' + '\x07',
                "unknown snapshot node kind");
}

TEST(CodecTest, BadSnapshotFlagRejected) {
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(0) + V(1) + V(1) + V(0) + V(1) +
                    '\x02',
                "snapshot flag neither 0 nor 1");
}

TEST(CodecTest, BadAttributeKindRejected) {
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(0) + V(0) + V(0) + V(0) + V(0) +
                    V(1) + '\x03' + V(1) + V(0),
                "attribute op kind 3");
}

TEST(CodecTest, PositionBeyondUint32Rejected) {
  // Insert op with pos = 2^32: the wire varint fits, uint32_t does not.
  ExpectCorrupt(Hdr() + V(1) + V(1) + V(0) + V(0) + V(1) + V(1) + V(0) +
                    V(uint64_t{1} << 32),
                "pos overflows uint32");
}

TEST(CodecTest, RunawayNestingRejected) {
  // 10100 nested single-child elements: deeper than any snapshot the
  // parser can produce, so the decoder's depth cap must fire instead of
  // exhausting the stack.
  std::string bytes = Hdr() + V(1) + V(1);
  bytes += V(1) + V(1) + "e";          // Dictionary: one label.
  bytes += V(1);                       // One delete op...
  bytes += V(1) + V(0) + V(1) + '\x01';  // ...with a subtree.
  for (int depth = 0; depth < 10100; ++depth) {
    bytes += '\x00';        // Element...
    bytes += V(0) + V(1);   // ...label id 0, xid 1...
    bytes += V(0) + V(1);   // ...no attributes, one child.
  }
  ExpectCorrupt(bytes, "runaway nesting");
}

}  // namespace
}  // namespace xydiff
