#include "core/node_queue.h"

#include "delta/signature.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

struct Fixture {
  XmlDocument doc;
  LabelTable labels;
  DiffTree tree;

  explicit Fixture(std::string_view xml) {
    doc = MustParse(xml);
    tree = DiffTree::Build(&doc, &labels);
    DiffOptions options;
    ComputeSignaturesAndWeights(&tree, options);
  }
};

TEST(NodeQueueTest, PopsHeaviestFirst) {
  // Root is heaviest, then the <big> subtree, then small leaves.
  Fixture f("<r><big><a>lots of text here</a><b>more text</b></big>"
            "<small/></r>");
  NodeQueue queue(&f.tree);
  for (NodeIndex i = 0; i < f.tree.size(); ++i) queue.Push(i);
  double last = 1e300;
  while (!queue.empty()) {
    const NodeIndex node = queue.Pop();
    EXPECT_LE(f.tree.weight(node), last);
    last = f.tree.weight(node);
  }
}

TEST(NodeQueueTest, TiesBrokenByInsertionOrder) {
  // §5.2: "When several nodes have the same weight, the first subtree
  // inserted in the queue is chosen."
  Fixture f("<r><a/><b/><c/></r>");  // Three weight-1 leaves.
  NodeQueue queue(&f.tree);
  queue.Push(2);  // b first.
  queue.Push(1);  // a second.
  queue.Push(3);  // c third.
  // Root not pushed; all three children have equal weight.
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(NodeQueueTest, SizeAndEmpty) {
  Fixture f("<r><a/></r>");
  NodeQueue queue(&f.tree);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  queue.Push(0);
  queue.Push(1);
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.size(), 2u);
  queue.Pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(NodeQueueTest, ReinsertionAllowed) {
  // Phase 3 re-enqueues children of matched/failed nodes; the queue
  // must handle repeated pushes of one index.
  Fixture f("<r><a/></r>");
  NodeQueue queue(&f.tree);
  queue.Push(1);
  queue.Push(1);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.empty());
}

TEST(NodeQueueTest, RandomizedHeapProperty) {
  Rng rng(3);
  Fixture f("<r><a>text one</a><b>text two longer</b><c/><d>x</d></r>");
  for (int round = 0; round < 50; ++round) {
    NodeQueue queue(&f.tree);
    const int pushes = 1 + static_cast<int>(rng.NextIndex(20));
    for (int i = 0; i < pushes; ++i) {
      queue.Push(static_cast<NodeIndex>(rng.NextIndex(
          static_cast<size_t>(f.tree.size()))));
    }
    double last = 1e300;
    while (!queue.empty()) {
      const double w = f.tree.weight(queue.Pop());
      ASSERT_LE(w, last);
      last = w;
    }
  }
}

}  // namespace
}  // namespace xydiff
