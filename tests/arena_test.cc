// Lifetime and ownership tests for the bump-pointer arena, the string
// interner, and the arena-backed DOM: every XmlNode of a parsed document
// lives in the document's arena (destruction is one arena free), nodes
// built standalone own a private mini-arena, and subtrees moving between
// domains are adoption-cloned so no tree ever mixes domains.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "util/arena.h"
#include "util/interner.h"
#include "xml/document.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  Arena arena;
  void* a = arena.Allocate(1);
  void* b = arena.Allocate(3);
  void* c = arena.Allocate(64, 32);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(max_align_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(max_align_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 32, 0u);
}

TEST(ArenaTest, GrowsBeyondFirstBlock) {
  Arena arena(/*first_block_hint=*/128);
  // Write to every byte of many oversized allocations; ASan would flag
  // any block-boundary bug.
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(arena.Allocate(257));
    for (int k = 0; k < 257; ++k) p[k] = static_cast<char>(i);
  }
  EXPECT_GE(arena.bytes_used(), 100u * 257u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(ArenaTest, CopyStringIsStableAcrossGrowth) {
  Arena arena(/*first_block_hint=*/64);
  const std::string_view stored = arena.CopyString("hello world");
  const char* data = stored.data();
  for (int i = 0; i < 1000; ++i) arena.Allocate(64);
  EXPECT_EQ(stored, "hello world");
  EXPECT_EQ(stored.data(), data);  // Never relocated.
  EXPECT_TRUE(arena.CopyString("").empty());
}

TEST(ArenaTest, ResetReclaimsEverything) {
  Arena arena;
  arena.Allocate(10000);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  // Usable again after Reset.
  EXPECT_EQ(arena.CopyString("again"), "again");
}

TEST(ArenaAllocatorTest, VectorInArena) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.bytes_used(), 1000u * sizeof(int));
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  // A default (nullptr) allocator must behave like std::allocator so
  // value-initialized containers keep working.
  std::vector<int, ArenaAllocator<int>> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
}

TEST(StringInternerTest, DenseIdsAndPointerStability) {
  Arena arena;
  StringInterner interner(&arena);
  const int32_t a = interner.Intern("alpha");
  const int32_t b = interner.Intern("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(interner.Intern("alpha"), a);  // Idempotent.
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.Find("beta"), b);
  EXPECT_EQ(interner.Find("gamma"), -1);
  const char* alpha_bytes = interner.View(a).data();
  for (int i = 0; i < 500; ++i) {
    interner.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(interner.View(a).data(), alpha_bytes);
  EXPECT_EQ(interner.View(a), "alpha");
}

TEST(NodeOwnershipTest, StandaloneNodesOwnTheirBytes) {
  // Built from a temporary; the node must own a copy.
  XmlNodePtr node;
  {
    std::string label = "ephemeral";
    node = XmlNode::Element(label);
    label.assign(label.size(), 'x');  // Clobber the source.
  }
  EXPECT_EQ(node->label(), "ephemeral");
  EXPECT_TRUE(node->heap_allocated());
  EXPECT_EQ(node->domain(), nullptr);
}

TEST(NodeOwnershipTest, ParsedDocumentLivesInOneArena) {
  XmlDocument doc = MustParse("<a x='1'><b>t</b><b>u</b></a>");
  ASSERT_NE(doc.arena(), nullptr);
  doc.root()->Visit([&](const XmlNode* n) {
    EXPECT_FALSE(n->heap_allocated());
    EXPECT_EQ(n->domain(), doc.arena());
  });
}

TEST(NodeOwnershipTest, CrossDomainInsertAdoptionClones) {
  XmlDocument doc = MustParse("<a><b/></a>");
  // A heap-built subtree appended into an arena document must be copied
  // into the document's domain, keeping the tree homogeneous.
  auto extra = XmlNode::Element("extra");
  extra->AppendChild(XmlNode::Text("payload"));
  XmlNode* inserted = doc.root()->AppendChild(std::move(extra));
  EXPECT_EQ(inserted->domain(), doc.arena());
  EXPECT_EQ(inserted->child(0)->domain(), doc.arena());
  EXPECT_EQ(SerializeNode(*doc.root()),
            "<a><b/><extra>payload</extra></a>");
}

TEST(NodeOwnershipTest, RemovedArenaNodeOutlivesRemoval) {
  XmlDocument doc = MustParse("<a><b>kept</b><c/></a>");
  XmlNodePtr removed = doc.root()->RemoveChild(0);
  // The node stays alive (backed by the document arena) as long as the
  // document does; the deleter is a no-op for arena residents.
  EXPECT_EQ(removed->label(), "b");
  EXPECT_EQ(removed->child(0)->text(), "kept");
  EXPECT_EQ(doc.root()->child_count(), 1u);
}

TEST(NodeOwnershipTest, CloneToHeapDetachesFromArena) {
  XmlNodePtr copy;
  {
    XmlDocument doc = MustParse("<a k='v'><b>text</b></a>");
    copy = doc.root()->Clone();  // Heap domain by default.
  }  // Document (and its arena) destroyed here.
  EXPECT_TRUE(copy->heap_allocated());
  EXPECT_EQ(copy->label(), "a");
  EXPECT_EQ(*copy->FindAttribute("k"), "v");
  EXPECT_EQ(copy->child(0)->child(0)->text(), "text");
}

TEST(InternedLabelTest, RepeatedLabelsShareBytesAndIds) {
  XmlDocument doc =
      MustParse("<list><item>1</item><item>2</item><item>3</item></list>");
  const XmlNode* first = doc.root()->child(0);
  ASSERT_GE(first->label_id(), 0);
  for (size_t i = 1; i < doc.root()->child_count(); ++i) {
    const XmlNode* item = doc.root()->child(i);
    // Same interner id and the very same bytes: label equality inside
    // one document is a pointer compare.
    EXPECT_EQ(item->label_id(), first->label_id());
    EXPECT_EQ(item->label().data(), first->label().data());
  }
  EXPECT_NE(doc.root()->label_id(), first->label_id());
}

TEST(ArenaDocumentTest, ArenaParseSerializeRoundTrip) {
  const std::string text =
      "<catalog><item id=\"1\">first &amp; second</item>"
      "<item id=\"2\"><![CDATA[raw <data>]]></item><empty/></catalog>";
  XmlDocument doc = MustParse(text);
  const std::string once = SerializeDocument(doc);
  XmlDocument again = MustParse(once);
  EXPECT_EQ(SerializeDocument(again), once);
  EXPECT_TRUE(DocsEqual(doc, again));
}

TEST(ArenaDocumentTest, ArenaBackedFactoryProvidesInterner) {
  XmlDocument doc = XmlDocument::ArenaBacked();
  ASSERT_NE(doc.arena(), nullptr);
  ASSERT_NE(doc.interner(), nullptr);
  doc.set_root(XmlNode::ElementIn(doc.arena(), "root"));
  EXPECT_EQ(doc.root()->domain(), doc.arena());
  EXPECT_GT(doc.arena()->bytes_used(), 0u);
}

TEST(ArenaTest, RewindKeepsNewestBlockAndReusesIt) {
  Arena arena(64);
  // Force growth past the first block so Rewind has older blocks to
  // free and a newest block to keep.
  for (int i = 0; i < 64; ++i) arena.Allocate(64);
  const size_t blocks_before = arena.block_count();
  ASSERT_GT(blocks_before, 1u);
  const size_t reserved_before = arena.bytes_reserved();

  arena.Rewind();
  EXPECT_EQ(arena.block_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_LT(arena.bytes_reserved(), reserved_before);

  // The kept block satisfies new allocations without growing.
  const size_t reserved_after = arena.bytes_reserved();
  arena.Allocate(128);
  EXPECT_EQ(arena.bytes_reserved(), reserved_after);
}

TEST(ArenaPoolTest, ReleaseRecyclesAndAcquireReuses) {
  ArenaPool pool;
  std::shared_ptr<Arena> arena = pool.Acquire();
  Arena* raw = arena.get();
  arena->Allocate(1000);
  EXPECT_EQ(pool.idle_count(), 0u);

  arena.reset();  // Last owner gone: the deleter parks it, rewound.
  EXPECT_EQ(pool.idle_count(), 1u);

  std::shared_ptr<Arena> again = pool.Acquire();
  EXPECT_EQ(again.get(), raw);  // Same shard, same thread: same arena.
  EXPECT_EQ(again->bytes_used(), 0u);
  EXPECT_EQ(pool.recycled_count(), 1u);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(ArenaPoolTest, SharedOwnershipDefersRecyclingUntilLastOwner) {
  // The aliasing regression the pipeline relies on: an arena re-enters
  // the pool (and is rewound, scribbling its memory in debug builds)
  // only when NO owner remains. Two documents can therefore never see
  // each other's bytes through a pooled arena.
  ArenaPool pool;
  std::shared_ptr<Arena> first = pool.Acquire();
  std::shared_ptr<Arena> alias = first;  // Second owner (e.g. a delta).
  const std::string_view pinned = first->CopyString("must stay intact");

  first.reset();
  EXPECT_EQ(pool.idle_count(), 0u);  // Still owned: not recycled.
  std::shared_ptr<Arena> other = pool.Acquire();
  EXPECT_NE(other.get(), alias.get());  // A fresh arena, not ours.
  EXPECT_EQ(pinned, "must stay intact");

  alias.reset();
  EXPECT_EQ(pool.idle_count(), 1u);  // Now it recycles.
}

TEST(ArenaPoolTest, SurplusArenasAreFreedNotHoarded) {
  ArenaPool pool(/*max_idle_per_shard=*/1);
  std::shared_ptr<Arena> a = pool.Acquire();
  std::shared_ptr<Arena> b = pool.Acquire();
  a.reset();
  b.reset();
  // Same thread = same shard; the second release exceeds the cap and
  // frees instead of parking.
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(ArenaPoolTest, PoolMayDieBeforeItsArenas) {
  std::shared_ptr<Arena> survivor;
  {
    ArenaPool pool;
    survivor = pool.Acquire();
    survivor->CopyString("outlives the pool");
  }
  // The deleter holds only a weak_ptr to the pool's state: releasing
  // after the pool died frees the arena instead of crashing.
  EXPECT_GT(survivor->bytes_used(), 0u);
  survivor.reset();
}

TEST(ArenaPoolTest, PooledParseDocumentsShareNoBytes) {
  // Parse two documents through the pool sequentially (the pipeline's
  // steady state: slot N+1 reuses slot N's memory) while the FIRST
  // document is still alive — its text must stay intact even as the
  // second parses, and both must serialize independently.
  ArenaPool pool;
  ParseOptions options;
  options.arena = pool.Acquire();
  Result<XmlDocument> one =
      ParseXml("<a><t>first document text</t></a>", options);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  options.arena = pool.Acquire();
  Result<XmlDocument> two =
      ParseXml("<a><t>second document text</t></a>", options);
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_NE(SerializeDocument(*one), SerializeDocument(*two));
  EXPECT_NE(SerializeDocument(*one).find("first document text"),
            std::string::npos);
  EXPECT_NE(SerializeDocument(*two).find("second document text"),
            std::string::npos);
}

}  // namespace
}  // namespace xydiff
