// Reproduces the worked example of §4 of the paper: the Digital Cameras
// catalog whose new version deletes product tx123, inserts product abc,
// moves product zy456 from NewProducts to Discount, and updates its price
// from $799 to $699 (Figure 2 and the delta listing of §4).

#include "core/buld.h"
#include "delta/apply.h"
#include "delta/delta_xml.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

constexpr std::string_view kOldVersion = R"(<Category>
  <Title>Digital Cameras</Title>
  <Discount>
    <Product><Name>tx123</Name><Price>$499</Price></Product>
  </Discount>
  <NewProducts>
    <Product><Name>zy456</Name><Price>$799</Price></Product>
  </NewProducts>
</Category>)";

constexpr std::string_view kNewVersion = R"(<Category>
  <Title>Digital Cameras</Title>
  <Discount>
    <Product><Name>zy456</Name><Price>$699</Price></Product>
  </Discount>
  <NewProducts>
    <Product><Name>abc</Name><Price>$899</Price></Product>
  </NewProducts>
</Category>)";

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    old_doc_ = MustParse(kOldVersion);
    old_doc_.AssignInitialXids();
    new_doc_ = MustParse(kNewVersion);
    Result<Delta> delta = XyDiff(&old_doc_, &new_doc_);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    delta_ = std::move(delta.value());
  }

  XmlDocument old_doc_;
  XmlDocument new_doc_;
  Delta delta_;
};

TEST_F(PaperExampleTest, PostfixXidsMatchPaperNumbering) {
  // The paper identifies nodes by postfix order: the old document has 15
  // nodes, the root Category = 15, Discount's Product subtree = XIDs 3-7.
  EXPECT_EQ(old_doc_.root()->xid(), 15u);
  EXPECT_EQ(old_doc_.node_count(), 15u);
  const XmlNode* discount_product = old_doc_.root()->child(1)->child(0);
  EXPECT_EQ(discount_product->xid(), 7u);
  const XmlNode* newproducts = old_doc_.root()->child(2);
  EXPECT_EQ(newproducts->xid(), 14u);
}

TEST_F(PaperExampleTest, DeltaHasTheFourPaperOperations) {
  // delete of tx123's Product, insert of abc's Product, move of zy456's
  // Product, update of the price.
  ASSERT_EQ(delta_.deletes().size(), 1u);
  ASSERT_EQ(delta_.inserts().size(), 1u);
  ASSERT_EQ(delta_.moves().size(), 1u);
  ASSERT_EQ(delta_.updates().size(), 1u);
  EXPECT_TRUE(delta_.attribute_ops().empty());
}

TEST_F(PaperExampleTest, DeleteMatchesPaperListing) {
  // <delete XID=7 XID-map="(3-7)" parentXID=8 pos=1>.
  const DeleteOp& del = delta_.deletes()[0];
  EXPECT_EQ(del.xid, 7u);
  EXPECT_EQ(del.parent_xid, 8u);
  EXPECT_EQ(del.pos, 1u);
  ASSERT_NE(del.subtree, nullptr);
  EXPECT_EQ(del.subtree->label(), "Product");
  EXPECT_EQ(del.subtree->child(0)->child(0)->text(), "tx123");
}

TEST_F(PaperExampleTest, InsertMatchesPaperListing) {
  // <insert XID=20 XID-map="(16-20)" parentXID=14 pos=1>.
  const InsertOp& ins = delta_.inserts()[0];
  EXPECT_EQ(ins.xid, 20u);
  EXPECT_EQ(ins.parent_xid, 14u);
  EXPECT_EQ(ins.pos, 1u);
  EXPECT_EQ(ins.subtree->child(0)->child(0)->text(), "abc");
}

TEST_F(PaperExampleTest, MoveMatchesPaperListing) {
  // <move XID=13 fromParent=14 fromPos=1 toParent=8 toPos=1/>.
  const MoveOp& move = delta_.moves()[0];
  EXPECT_EQ(move.xid, 13u);
  EXPECT_EQ(move.from_parent, 14u);
  EXPECT_EQ(move.from_pos, 1u);
  EXPECT_EQ(move.to_parent, 8u);
  EXPECT_EQ(move.to_pos, 1u);
}

TEST_F(PaperExampleTest, UpdateMatchesPaperListing) {
  // <update XID=11><oldval>$799</oldval><newval>$699</newval></update>.
  const UpdateOp& update = delta_.updates()[0];
  EXPECT_EQ(update.xid, 11u);  // The "$799" text node, as in the paper.
  EXPECT_EQ(update.old_value, "$799");
  EXPECT_EQ(update.new_value, "$699");
}

TEST_F(PaperExampleTest, SerializedDeltaCarriesPaperXidMaps) {
  const std::string xml = SerializeDelta(delta_);
  EXPECT_NE(xml.find("xidMap=\"(3-7)\""), std::string::npos) << xml;
  EXPECT_NE(xml.find("xidMap=\"(16-20)\""), std::string::npos) << xml;
}

TEST_F(PaperExampleTest, DeltaTransformsOldIntoNew) {
  XmlDocument patched = MustParse(kOldVersion);
  patched.AssignInitialXids();
  XY_ASSERT_OK(ApplyDelta(delta_, &patched));
  EXPECT_TRUE(DocsEqualWithXids(patched, new_doc_));
}

TEST_F(PaperExampleTest, MatchedSubtreesKeepIdentity) {
  // Figure 2's matchings: Title subtree, zy456's Product, the prices.
  // zy456's Product kept XID 13 in the new version.
  const XmlNode* moved = new_doc_.root()->child(1)->child(0);
  EXPECT_EQ(moved->xid(), 13u);
  EXPECT_EQ(moved->child(0)->child(0)->text(), "zy456");
  // Title kept its XID (2).
  EXPECT_EQ(new_doc_.root()->child(0)->xid(), 2u);
}

}  // namespace
}  // namespace xydiff
