// The staged DiffBatch pipeline (parse → diff → store over the
// work-stealing pool) must be a *refinement* of the sequential ingest
// path: same results, same stored versions, independent of scheduling.
// These tests drive real batches through the pipeline under every
// configuration the scheduler can reach — more threads than documents,
// queue capacity 1 (permanent backpressure), duplicate URLs, malformed
// members — and pin the outputs to the single-threaded run byte for
// byte. Run them under ASan/UBSan (XYDIFF_SANITIZE) and TSan
// (XYDIFF_TSAN, tools/run_tsan_tests.sh) to make the scheduling space
// itself part of the test.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "version/warehouse.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

struct Corpus {
  std::vector<Warehouse::DiffJob> week1;
  std::vector<Warehouse::DiffJob> week2;
};

/// Deterministic corpus of `count` documents with a simulated weekly
/// change applied to each. Small documents: the point is many
/// scheduling interleavings, not diff work.
Corpus MakeCorpus(size_t count, uint64_t seed) {
  Rng rng(seed);
  DocGenOptions gen;
  gen.target_bytes = 600;
  ChangeSimOptions sim;  // Paper defaults: 10% per operation.
  Corpus corpus;
  corpus.week1.reserve(count);
  corpus.week2.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
    EXPECT_TRUE(change.ok()) << change.status().ToString();
    const std::string url = "doc" + std::to_string(i);
    corpus.week1.push_back({url, SerializeDocument(base)});
    corpus.week2.push_back(
        {url, SerializeDocument(change.ok() ? change->new_version : base)});
  }
  return corpus;
}

/// Everything observable about one document after a batch, keyed by URL:
/// the ingest report fields plus the canonical XID-carrying serialization
/// of every stored version. Two runs are "the same" iff these maps are
/// equal — the serialization includes XIDs, so even identifier assignment
/// must not depend on scheduling.
struct DocumentOutcome {
  int version = 0;
  size_t operations = 0;
  size_t delta_bytes = 0;
  std::vector<std::string> versions_with_xids;

  bool operator==(const DocumentOutcome& other) const {
    return version == other.version && operations == other.operations &&
           delta_bytes == other.delta_bytes &&
           versions_with_xids == other.versions_with_xids;
  }
};

std::map<std::string, DocumentOutcome> Observe(
    const Warehouse& warehouse,
    const std::vector<Result<Warehouse::IngestReport>>& reports) {
  std::map<std::string, DocumentOutcome> outcomes;
  SerializeOptions with_xids;
  with_xids.emit_xids = true;
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (!report.ok()) continue;
    DocumentOutcome& outcome = outcomes[report->url];
    outcome.version = report->version;
    outcome.operations = report->operations;
    outcome.delta_bytes = report->delta_bytes;
    for (int v = 1; v <= report->version; ++v) {
      Result<XmlDocument> doc = warehouse.Checkout(report->url, v);
      EXPECT_TRUE(doc.ok()) << report->url << " v" << v << ": "
                            << doc.status().ToString();
      outcome.versions_with_xids.push_back(
          doc.ok() ? SerializeDocument(*doc, with_xids) : std::string());
    }
  }
  return outcomes;
}

/// Runs both weeks through DiffBatch with the given tuning and returns
/// the full observable outcome.
std::map<std::string, DocumentOutcome> RunPipeline(
    const Corpus& corpus, const Warehouse::PipelineOptions& pipeline,
    PipelineStats* stats = nullptr) {
  Warehouse warehouse;
  XY_EXPECT_OK(warehouse.Subscribe("items", "//item"));
  auto week1_reports = warehouse.DiffBatch(corpus.week1, pipeline);
  for (const auto& r : week1_reports) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      EXPECT_TRUE(r->first_version);
    }
  }
  auto week2_reports = warehouse.DiffBatch(corpus.week2, pipeline, stats);
  return Observe(warehouse, week2_reports);
}

// The headline scenario from the issue: 8 threads, 200 documents.
// Scheduling freedom is maximal (on a multicore box workers genuinely
// race; under TSan every access is checked), yet the outcome must be
// byte-identical to the 1-thread run — XIDs included.
TEST(ParallelPipelineTest, EightThreadsTwoHundredDocsMatchSingleThread) {
  Corpus corpus = MakeCorpus(200, 8200);

  Warehouse::PipelineOptions sequential;
  sequential.threads = 1;
  std::map<std::string, DocumentOutcome> expected =
      RunPipeline(corpus, sequential);
  ASSERT_EQ(expected.size(), 200u);

  Warehouse::PipelineOptions parallel;
  parallel.threads = 8;
  PipelineStats stats;
  std::map<std::string, DocumentOutcome> actual =
      RunPipeline(corpus, parallel, &stats);

  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [url, outcome] : expected) {
    auto it = actual.find(url);
    ASSERT_NE(it, actual.end()) << url;
    EXPECT_TRUE(it->second == outcome)
        << url << ": parallel outcome differs from sequential"
        << " (v" << it->second.version << " vs v" << outcome.version
        << ", ops " << it->second.operations << " vs " << outcome.operations
        << ")";
  }

  // Stage accounting: every document passed every stage exactly once.
  ASSERT_EQ(stats.stages.size(), 3u);
  for (const StageStats& stage : stats.stages) {
    EXPECT_EQ(stage.items, 200u) << stage.name;
    EXPECT_EQ(stage.failed, 0u) << stage.name;
  }
  EXPECT_GE(stats.peak_in_flight, 1u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

// Determinism across the whole tuning space: thread counts that divide,
// exceed, and oversubscribe the batch, with the queue bound cranked down
// to 1 so backpressure (the help-downstream path) is exercised on every
// hand-off.
TEST(ParallelPipelineTest, OutcomeIndependentOfThreadsAndQueueCapacity) {
  Corpus corpus = MakeCorpus(48, 4242);
  Warehouse::PipelineOptions reference;
  reference.threads = 1;
  std::map<std::string, DocumentOutcome> expected =
      RunPipeline(corpus, reference);

  for (int threads : {2, 3, 8, 64}) {
    for (size_t capacity : {size_t{1}, size_t{2}, size_t{32}}) {
      Warehouse::PipelineOptions pipeline;
      pipeline.threads = threads;
      pipeline.queue_capacity = capacity;
      std::map<std::string, DocumentOutcome> actual =
          RunPipeline(corpus, pipeline);
      EXPECT_TRUE(actual == expected)
          << "threads=" << threads << " queue_capacity=" << capacity;
    }
  }
}

// A malformed document fails its own slot and nothing else; the batch
// runs to completion and the failure names the culprit.
TEST(ParallelPipelineTest, MalformedDocumentFailsOnlyItsSlot) {
  Corpus corpus = MakeCorpus(24, 7);
  std::vector<Warehouse::DiffJob> week2 = corpus.week2;
  week2[5].xml = "<broken><unclosed>";
  week2[17].xml = "not xml at all";

  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 8;
  for (const auto& r : warehouse.DiffBatch(corpus.week1, pipeline)) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto reports = warehouse.DiffBatch(week2, pipeline);
  ASSERT_EQ(reports.size(), week2.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i == 5 || i == 17) {
      EXPECT_FALSE(reports[i].ok()) << "slot " << i;
      EXPECT_NE(reports[i].status().ToString().find(week2[i].url),
                std::string::npos)
          << "error should name the failing URL: "
          << reports[i].status().ToString();
    } else {
      EXPECT_TRUE(reports[i].ok()) << "slot " << i << ": "
                                   << reports[i].status().ToString();
    }
  }
  // The failed documents stay at version 1; their neighbours advanced.
  EXPECT_EQ(warehouse.version_count("doc5"), 1);
  EXPECT_EQ(warehouse.version_count("doc17"), 1);
  EXPECT_EQ(warehouse.version_count("doc6"), 2);
}

// Duplicate URLs in one batch are rejected up front (the pipeline would
// otherwise race two ingests of the same document non-deterministically).
TEST(ParallelPipelineTest, DuplicateUrlsInOneBatchAreRejected) {
  Corpus corpus = MakeCorpus(4, 11);
  std::vector<Warehouse::DiffJob> batch = corpus.week1;
  batch.push_back(batch[1]);  // Same URL twice.

  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;
  auto reports = warehouse.DiffBatch(batch, pipeline);
  ASSERT_EQ(reports.size(), 5u);
  EXPECT_FALSE(reports[4].ok());
  // The first occurrence still ingests normally.
  EXPECT_TRUE(reports[1].ok()) << reports[1].status().ToString();
}

// Reports preserve input order even though completion order is
// scheduler-dependent.
TEST(ParallelPipelineTest, ReportsComeBackInInputOrder) {
  Corpus corpus = MakeCorpus(32, 99);
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 8;
  pipeline.queue_capacity = 1;
  auto reports = warehouse.DiffBatch(corpus.week1, pipeline);
  ASSERT_EQ(reports.size(), corpus.week1.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].ok()) << reports[i].status().ToString();
    EXPECT_EQ(reports[i]->url, corpus.week1[i].url) << "slot " << i;
  }
}

// An empty batch is a no-op, not a hang (the worker loop's exit
// condition must not wait for items that never come).
TEST(ParallelPipelineTest, EmptyBatchCompletes) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 8;
  PipelineStats stats;
  auto reports = warehouse.DiffBatch({}, pipeline, &stats);
  EXPECT_TRUE(reports.empty());
  for (const StageStats& stage : stats.stages) {
    EXPECT_EQ(stage.items, 0u);
  }
}

// Mixed old and new URLs in one batch: first sights store version 1,
// known URLs diff — concurrently, in the same pipeline run.
TEST(ParallelPipelineTest, MixedFirstAndRepeatSightsInOneBatch) {
  Corpus corpus = MakeCorpus(16, 1234);
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;
  // Pre-ingest the even URLs only.
  std::vector<Warehouse::DiffJob> first;
  for (size_t i = 0; i < corpus.week1.size(); i += 2) {
    first.push_back(corpus.week1[i]);
  }
  for (const auto& r : warehouse.DiffBatch(first, pipeline)) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Now feed week2 for everyone: evens diff to v2, odds appear as v1.
  auto reports = warehouse.DiffBatch(corpus.week2, pipeline);
  ASSERT_EQ(reports.size(), corpus.week2.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].ok()) << reports[i].status().ToString();
    if (i % 2 == 0) {
      EXPECT_EQ(reports[i]->version, 2) << "slot " << i;
      EXPECT_FALSE(reports[i]->first_version);
    } else {
      EXPECT_EQ(reports[i]->version, 1) << "slot " << i;
      EXPECT_TRUE(reports[i]->first_version);
    }
  }
}

// Subscriptions fire identically through the parallel path: alerts are
// evaluated under the per-document lock, so a matching change in any
// document yields its alert regardless of which worker ingested it.
TEST(ParallelPipelineTest, AlertsFireThroughThePipeline) {
  Warehouse warehouse;
  XY_ASSERT_OK(warehouse.Subscribe("price-watch", "//price"));
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 4;

  std::vector<Warehouse::DiffJob> week1;
  std::vector<Warehouse::DiffJob> week2;
  for (int i = 0; i < 8; ++i) {
    const std::string url = "shop" + std::to_string(i);
    week1.push_back({url, "<catalog><price>10</price></catalog>"});
    week2.push_back(
        {url, "<catalog><price>" + std::to_string(11 + i) + "</price>"
              "</catalog>"});
  }
  for (const auto& r : warehouse.DiffBatch(week1, pipeline)) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto reports = warehouse.DiffBatch(week2, pipeline);
  for (const auto& r : reports) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->alerts.empty())
        << r->url << ": price change should trigger the subscription";
  }
}

// Arena recycling is an allocator change, never a semantic one: pooled
// and per-slot arenas must yield byte-identical stored versions — XIDs
// included — and identical deltas. Run under the ASan preset, this is
// also the aliasing check: a recycled arena that still carried another
// slot's live bytes would trip use-after-poison immediately.
TEST(ParallelPipelineTest, PooledArenasMatchFreshArenasByteForByte) {
  Corpus corpus = MakeCorpus(60, 4600);

  Warehouse::PipelineOptions fresh;
  fresh.threads = 4;
  fresh.reuse_arenas = false;
  std::map<std::string, DocumentOutcome> expected =
      RunPipeline(corpus, fresh);
  ASSERT_EQ(expected.size(), 60u);

  Warehouse::PipelineOptions pooled;
  pooled.threads = 4;
  pooled.reuse_arenas = true;
  std::map<std::string, DocumentOutcome> actual =
      RunPipeline(corpus, pooled);

  EXPECT_TRUE(expected == actual)
      << "arena recycling changed an observable outcome";
}

// Deferring monitor maintenance must change WHEN the index is built,
// never what it answers: a Search after a deferred batch (lazy rebuild)
// must equal a Search after an inline-maintained batch, and the stored
// versions must be untouched by the policy.
TEST(ParallelPipelineTest, DeferredMonitorsAnswerSearchesIdentically) {
  Corpus corpus = MakeCorpus(30, 3000);

  const auto run = [&](bool defer) {
    auto warehouse = std::make_unique<Warehouse>();
    Warehouse::PipelineOptions pipeline;
    pipeline.threads = 2;
    pipeline.defer_monitor_updates = defer;
    for (const auto& r : warehouse->DiffBatch(corpus.week1, pipeline)) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    for (const auto& r : warehouse->DiffBatch(corpus.week2, pipeline)) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    return warehouse;
  };

  const auto inline_wh = run(false);
  const auto deferred_wh = run(true);
  // Probe with words that appear in generated documents plus one miss.
  for (const char* word : {"the", "item", "price", "zzz-not-a-word"}) {
    auto expected = inline_wh->Search(word);
    auto actual = deferred_wh->Search(word);
    EXPECT_EQ(expected, actual) << "Search(\"" << word << "\") diverged";
  }
  // A later inline ingest over a stale index must rebuild, not corrupt:
  // re-ingest week2 via Ingest (inline monitors) on the deferred
  // warehouse and re-check.
  for (const auto& job : corpus.week2) {
    Result<XmlDocument> doc = ParseXml(job.xml);
    ASSERT_TRUE(doc.ok());
    auto report = deferred_wh->Ingest(job.url, std::move(*doc));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  for (const char* word : {"the", "item", "price"}) {
    // An identical re-ingest is a no-op delta: the rebuilt-then-applied
    // index must still answer exactly like the always-inline warehouse.
    EXPECT_EQ(deferred_wh->Search(word), inline_wh->Search(word)) << word;
  }
}

}  // namespace
}  // namespace xydiff
