// Compile-and-use check for the umbrella header: one include gives the
// whole public API.

#include "xydiff.h"

#include "gtest/gtest.h"

namespace xydiff {
namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughOneInclude) {
  Result<Delta> delta = XyDiffText("<a><b>x</b></a>", "<a><b>y</b></a>");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->updates().size(), 1u);

  XmlDocument doc =
      ElementBuilder("a").Child(ElementBuilder("b").Text("x")).BuildDocument();
  doc.AssignInitialXids();
  EXPECT_TRUE(ApplyDelta(*delta, &doc).ok());
  EXPECT_EQ(doc.root()->child(0)->child(0)->text(), "y");
  EXPECT_TRUE(ValidateDelta(*delta).ok());
}

}  // namespace
}  // namespace xydiff
