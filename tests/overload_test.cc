// Overload and degradation behaviour of the warehouse pipeline
// (DESIGN.md §3.17): admission control sheds slots against byte
// budgets, a dead context fails slots with kDeadlineExceeded /
// kCancelled without touching the store, the per-URL circuit breaker
// quarantines repeatedly failing inputs (and heals through probes),
// and persistent store IOError flips the warehouse into a documented
// degraded mode — ingest rejected, reads still served.

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/context.h"
#include "util/fault_env.h"
#include "util/status.h"
#include "version/warehouse.h"
#include "xml/parser.h"

namespace xydiff {
namespace {

namespace fs = std::filesystem;

using std::chrono::milliseconds;

class ScratchDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xydiff_overload_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Dir() const { return dir_.string(); }

  fs::path dir_;
};

std::string SmallDoc(int i, int version) {
  return "<doc><id>" + std::to_string(i) + "</id><v>page version " +
         std::to_string(version) + " payload</v></doc>";
}

std::vector<Warehouse::DiffJob> MakeJobs(size_t count, int version) {
  std::vector<Warehouse::DiffJob> jobs;
  for (size_t i = 0; i < count; ++i) {
    jobs.push_back({"doc" + std::to_string(i),
                    SmallDoc(static_cast<int>(i), version)});
  }
  return jobs;
}

TEST(OverloadTest, BatchByteBudgetShedsWithResourceExhausted) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 2;
  const std::vector<Warehouse::DiffJob> jobs = MakeJobs(8, 1);
  // Budget for roughly half the batch: some slots must be admitted,
  // some must be shed (which ones depends on claim order).
  size_t total = 0;
  for (const auto& job : jobs) total += job.xml.size();
  pipeline.max_batch_bytes = total / 2;

  PipelineStats stats;
  const auto reports = warehouse.DiffBatch(jobs, pipeline, &stats);
  size_t ok = 0, shed = 0;
  for (const auto& r : reports) {
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted)
          << r.status().ToString();
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(stats.shed_slots, shed);
  // Shed slots never became documents.
  EXPECT_EQ(warehouse.document_count(), ok);
}

TEST(OverloadTest, OversizedDocumentIsShedOthersProceed) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 2;
  pipeline.max_document_bytes = 256;
  std::vector<Warehouse::DiffJob> jobs = MakeJobs(3, 1);
  jobs.push_back({"hostile", "<doc><blob>" + std::string(4096, 'x') +
                                 "</blob></doc>"});
  PipelineStats stats;
  const auto reports = warehouse.DiffBatch(jobs, pipeline, &stats);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(reports[i].ok()) << reports[i].status().ToString();
  }
  ASSERT_FALSE(reports[3].ok());
  EXPECT_EQ(reports[3].status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stats.shed_slots, 1u);
  EXPECT_EQ(warehouse.document_count(), 3u);
}

TEST(OverloadTest, ExpiredDeadlineFailsEverySlotCleanly) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 2;
  const Context expired = Context::WithTimeout(milliseconds(0));
  pipeline.context = &expired;
  PipelineStats stats;
  const auto reports = warehouse.DiffBatch(MakeJobs(5, 1), pipeline, &stats);
  for (const auto& r : reports) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
  EXPECT_EQ(stats.deadline_slots, 5u);
  // No partial state: nothing was ingested.
  EXPECT_EQ(warehouse.document_count(), 0u);
}

TEST(OverloadTest, CancelledSourceFailsEverySlotWithCancelled) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 2;
  CancellationSource source;
  source.Cancel();
  const Context ctx = source.MakeContext();
  pipeline.context = &ctx;
  PipelineStats stats;
  const auto reports = warehouse.DiffBatch(MakeJobs(4, 1), pipeline, &stats);
  for (const auto& r : reports) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(stats.cancelled_slots, 4u);
  EXPECT_EQ(warehouse.document_count(), 0u);
}

TEST(OverloadTest, DeadlinePropagatesIntoSingleIngestDiff) {
  // The context reaches the diff itself (XyDiff checks it on entry), not
  // just the pipeline's admission gate.
  Warehouse warehouse;
  Result<XmlDocument> v1 = ParseXml(SmallDoc(0, 1));
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(warehouse.Ingest("doc0", std::move(*v1)).ok());

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  const Context expired = Context::WithTimeout(milliseconds(0));
  pipeline.context = &expired;
  const auto reports =
      warehouse.DiffBatch({{"doc0", SmallDoc(0, 2)}}, pipeline);
  ASSERT_FALSE(reports[0].ok());
  EXPECT_EQ(reports[0].status().code(), StatusCode::kDeadlineExceeded);
  // The failed slot must not have advanced the stored version.
  EXPECT_EQ(warehouse.version_count("doc0"), 1);
}

TEST(OverloadTest, BreakerOpensAfterRepeatedFailuresAndHealsViaProbe) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.breaker_failure_threshold = 2;
  pipeline.breaker_probe_interval = 2;

  // Two consecutive parse failures open the breaker for this URL.
  for (int round = 0; round < 2; ++round) {
    const auto reports =
        warehouse.DiffBatch({{"flaky", "<broken <<"}}, pipeline);
    ASSERT_FALSE(reports[0].ok());
    EXPECT_EQ(reports[0].status().code(), StatusCode::kParseError);
  }
  EXPECT_EQ(warehouse.health().open_breakers, 1u);

  // Open: the first arrival is rejected without work...
  {
    const auto reports =
        warehouse.DiffBatch({{"flaky", SmallDoc(7, 1)}}, pipeline);
    ASSERT_FALSE(reports[0].ok());
    EXPECT_EQ(reports[0].status().code(), StatusCode::kUnavailable);
  }
  // ...and with probe_interval = 2 the second is admitted as a probe;
  // the input is healthy now, so the probe succeeds and closes the
  // breaker.
  {
    const auto reports =
        warehouse.DiffBatch({{"flaky", SmallDoc(7, 1)}}, pipeline);
    ASSERT_TRUE(reports[0].ok()) << reports[0].status().ToString();
  }
  EXPECT_EQ(warehouse.health().open_breakers, 0u);
  // Closed for good: the next slot is admitted normally.
  const auto reports =
      warehouse.DiffBatch({{"flaky", SmallDoc(7, 2)}}, pipeline);
  ASSERT_TRUE(reports[0].ok()) << reports[0].status().ToString();
  EXPECT_EQ(warehouse.version_count("flaky"), 2);
}

TEST(OverloadTest, OtherUrlsAreUntouchedByAnOpenBreaker) {
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.breaker_failure_threshold = 1;
  ASSERT_FALSE(warehouse.DiffBatch({{"bad", "<broken <<"}}, pipeline)[0].ok());
  EXPECT_EQ(warehouse.health().open_breakers, 1u);
  const auto reports =
      warehouse.DiffBatch({{"good", SmallDoc(1, 1)}}, pipeline);
  EXPECT_TRUE(reports[0].ok()) << reports[0].status().ToString();
}

using OverloadStoreTest = ScratchDirTest;

TEST_F(OverloadStoreTest, PersistentStoreIOErrorDegradesWarehouse) {
  FaultInjectionEnv env;
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.save_directory = Dir();
  pipeline.env = &env;
  pipeline.max_io_retries = 0;
  pipeline.retry_backoff_ms = 0;
  // Per-slot commits: the first slot's failed save must flip the
  // warehouse to degraded BEFORE the second slot is claimed, so the
  // second is rejected at admission (a tail-flushed group would batch
  // both slots into one commit and reject neither).
  pipeline.group_commit_slots = 1;
  pipeline.degrade_after_io_failures = 1;

  // Round 1: version 1 everywhere — the store stage skips first-sight
  // slots, so this round succeeds even though the env will later fail.
  for (const auto& r : warehouse.DiffBatch(MakeJobs(2, 1), pipeline)) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_FALSE(warehouse.health().degraded);

  // Round 2: every I/O op fails with (transient-looking but persistent)
  // IOError. The first slot's commit fails after retries -> the
  // warehouse degrades; the second slot is rejected at admission.
  env.InjectErrorAt(0, 1 << 20);
  const auto reports = warehouse.DiffBatch(MakeJobs(2, 2), pipeline);
  EXPECT_TRUE(warehouse.health().degraded);
  size_t unavailable = 0;
  for (const auto& r : reports) {
    if (!r.ok() && r.status().code() == StatusCode::kUnavailable) {
      ++unavailable;
    }
  }
  EXPECT_GE(unavailable, 1u);

  // Degraded mode: ingest is rejected...
  Result<XmlDocument> doc = ParseXml(SmallDoc(9, 1));
  ASSERT_TRUE(doc.ok());
  Result<Warehouse::IngestReport> rejected =
      warehouse.Ingest("newdoc", std::move(*doc));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  // ...while reads are still served.
  EXPECT_FALSE(warehouse.Search("payload").empty());
  EXPECT_TRUE(warehouse.Checkout("doc0", 1).ok());

  // Operator action (or a healthy store) restores service.
  env.Reset();
  warehouse.ResetHealth();
  EXPECT_FALSE(warehouse.health().degraded);
  Result<XmlDocument> retry_doc = ParseXml(SmallDoc(9, 1));
  ASSERT_TRUE(retry_doc.ok());
  EXPECT_TRUE(warehouse.Ingest("newdoc", std::move(*retry_doc)).ok());
}

TEST(OverloadTest, HealthSnapshotReportsCountsAndPrints) {
  Warehouse warehouse;
  Warehouse::Health healthy = warehouse.health();
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(healthy.open_breakers, 0u);
  EXPECT_EQ(healthy.documents, 0u);
  EXPECT_NE(healthy.ToString().find("healthy"), std::string::npos);

  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 1;
  pipeline.breaker_failure_threshold = 1;
  ASSERT_FALSE(warehouse.DiffBatch({{"bad", "<broken <<"}}, pipeline)[0].ok());
  for (const auto& r : warehouse.DiffBatch(MakeJobs(2, 1), pipeline)) {
    ASSERT_TRUE(r.ok());
  }
  const Warehouse::Health after = warehouse.health();
  EXPECT_EQ(after.open_breakers, 1u);
  EXPECT_EQ(after.documents, 2u);
  EXPECT_NE(after.ToString().find("open_breakers=1"), std::string::npos);
}

TEST(OverloadTest, DefaultOptionsImposeNoLimits) {
  // All overload knobs default off: a plain batch behaves exactly as
  // before this subsystem existed.
  Warehouse warehouse;
  Warehouse::PipelineOptions pipeline;
  pipeline.threads = 2;
  PipelineStats stats;
  const auto reports = warehouse.DiffBatch(MakeJobs(6, 1), pipeline, &stats);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(stats.shed_slots, 0u);
  EXPECT_EQ(stats.quarantined_slots, 0u);
  EXPECT_EQ(stats.deadline_slots, 0u);
  EXPECT_EQ(stats.cancelled_slots, 0u);
}

}  // namespace
}  // namespace xydiff
