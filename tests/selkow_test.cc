#include "baseline/selkow.h"

#include "baseline/zhang_shasha.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

size_t Selkow(std::string_view a, std::string_view b) {
  XmlDocument da = MustParse(a);
  XmlDocument db = MustParse(b);
  return SelkowEditDistance(*da.root(), *db.root());
}

TEST(SelkowTest, IdenticalTrees) {
  EXPECT_EQ(Selkow("<a><b>x</b><c/></a>", "<a><b>x</b><c/></a>"), 0u);
}

TEST(SelkowTest, SingleRelabel) {
  EXPECT_EQ(Selkow("<a/>", "<b/>"), 1u);
  EXPECT_EQ(Selkow("<a><x/></a>", "<a><y/></a>"), 1u);
  EXPECT_EQ(Selkow("<a>t</a>", "<a>u</a>"), 1u);
}

TEST(SelkowTest, SubtreeInsertDeleteCostsItsSize) {
  EXPECT_EQ(Selkow("<a/>", "<a><b><c/><d/></b></a>"), 3u);
  EXPECT_EQ(Selkow("<a><b><c/><d/></b></a>", "<a/>"), 3u);
}

TEST(SelkowTest, ChildSequenceEdit) {
  // One child replaced among three.
  EXPECT_EQ(Selkow("<r><a/><b/><c/></r>", "<r><a/><x/><c/></r>"), 1u);
  // One deleted, one appended.
  EXPECT_EQ(Selkow("<r><a/><b/></r>", "<r><b/><c/></r>"), 2u);
}

TEST(SelkowTest, NoCrossLevelMatching) {
  // Wrapping children costs delete + reinsert in the Selkow model (no
  // level changes), unlike the general edit distance where it costs 1.
  const std::string_view flat = "<a><b>xx</b><c>yy</c></a>";
  const std::string_view wrapped = "<a><w><b>xx</b><c>yy</c></w></a>";
  XmlDocument flat_doc = MustParse(flat);
  XmlDocument wrapped_doc = MustParse(wrapped);
  EXPECT_EQ(TreeEditDistance(*flat_doc.root(), *wrapped_doc.root()), 1u);
  EXPECT_GT(Selkow(flat, wrapped), 1u);
}

TEST(SelkowTest, UpperBoundsGeneralEditDistance) {
  // Selkow's restricted model can never beat the unrestricted distance.
  Rng rng(12);
  DocGenOptions gen;
  gen.target_bytes = 400;
  for (int round = 0; round < 10; ++round) {
    XmlDocument base = GenerateDocument(&rng, gen);
    base.AssignInitialXids();
    ChangeSimOptions sim;
    sim.move_probability = 0;
    Result<SimulatedChange> change = SimulateChanges(base, sim, &rng);
    ASSERT_TRUE(change.ok());
    const size_t selkow =
        SelkowEditDistance(*base.root(), *change->new_version.root());
    const size_t general =
        TreeEditDistance(*base.root(), *change->new_version.root());
    EXPECT_GE(selkow, general) << "round " << round;
  }
}

TEST(SelkowTest, SymmetricCosts) {
  const std::string_view t1 = "<a><b>1</b><c><d/></c></a>";
  const std::string_view t2 = "<a><c><d/><e/></c></a>";
  EXPECT_EQ(Selkow(t1, t2), Selkow(t2, t1));
}

TEST(SelkowTest, LeafOnlyDocuments) {
  EXPECT_EQ(Selkow("<a>same</a>", "<a>same</a>"), 0u);
  EXPECT_EQ(Selkow("<a>one</a>", "<a>two</a>"), 1u);
}

}  // namespace
}  // namespace xydiff
