#include "monitor/index.h"

#include "core/buld.h"
#include "gtest/gtest.h"
#include "simulator/change_simulator.h"
#include "simulator/doc_generator.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

TEST(TokenizeTest, Basics) {
  EXPECT_EQ(FullTextIndex::Tokenize("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(FullTextIndex::Tokenize("  a1-b2  "),
            (std::vector<std::string>{"a1", "b2"}));
  EXPECT_TRUE(FullTextIndex::Tokenize("...").empty());
  EXPECT_TRUE(FullTextIndex::Tokenize("").empty());
}

TEST(FullTextIndexTest, BuildAndLookup) {
  XmlDocument doc = MustParse(
      "<cat><p>digital camera sale</p><p>film camera</p></cat>");
  doc.AssignInitialXids();  // texts: 1 and 3.
  FullTextIndex index = FullTextIndex::Build(doc);
  EXPECT_EQ(index.Lookup("camera"), (std::vector<Xid>{1, 3}));
  EXPECT_EQ(index.Lookup("digital"), (std::vector<Xid>{1}));
  EXPECT_EQ(index.Lookup("CAMERA"), (std::vector<Xid>{1, 3}));
  EXPECT_TRUE(index.Lookup("absent").empty());
  EXPECT_EQ(index.word_count(), 4u);
  EXPECT_EQ(index.posting_count(), 5u);
}

TEST(FullTextIndexTest, IncrementalMatchesRebuild) {
  Rng rng(17);
  DocGenOptions gen;
  gen.target_bytes = 8192;
  XmlDocument current = GenerateDocument(&rng, gen);
  current.AssignInitialXids();
  FullTextIndex incremental = FullTextIndex::Build(current);

  for (int round = 0; round < 6; ++round) {
    Result<SimulatedChange> change =
        SimulateChanges(current, ChangeSimOptions{}, &rng);
    ASSERT_TRUE(change.ok());
    XmlDocument old_version = std::move(current);
    XmlDocument new_version = std::move(change->new_version);
    XmlDocument a = old_version.Clone();
    XmlDocument b = new_version.Clone();
    Result<Delta> delta = XyDiff(&a, &b);
    ASSERT_TRUE(delta.ok());

    XY_ASSERT_OK(incremental.Apply(*delta, old_version, b));
    const FullTextIndex rebuilt = FullTextIndex::Build(b);
    ASSERT_TRUE(incremental == rebuilt) << "diverged at round " << round;
    current = std::move(b);
  }
}

TEST(FullTextIndexTest, IncrementalWithCompressedUpdates) {
  XmlDocument a = MustParse(
      "<r><t>the quick brown fox jumps over the lazy dog</t></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><t>the quick brown cat jumps over the lazy dog</t></r>");
  DiffOptions options;
  options.compress_updates = true;
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = XyDiff(&a2, &b, options);
  ASSERT_TRUE(delta.ok());
  ASSERT_EQ(delta->updates().size(), 1u);
  ASSERT_TRUE(delta->updates()[0].is_compressed());

  FullTextIndex index = FullTextIndex::Build(a);
  XY_ASSERT_OK(index.Apply(*delta, a, b));
  EXPECT_TRUE(index.Lookup("fox").empty());
  EXPECT_FALSE(index.Lookup("cat").empty());
  EXPECT_TRUE(index == FullTextIndex::Build(b));
}

TEST(FullTextIndexTest, MovesAreFree) {
  // A moved subtree keeps its XIDs, so the index needs no change at all.
  XmlDocument a = MustParse(
      "<r><x><t>unique payload words</t></x><y/></r>");
  a.AssignInitialXids();
  XmlDocument b = MustParse(
      "<r><x/><y><t>unique payload words</t></y></r>");
  XmlDocument a2 = a.Clone();
  Result<Delta> delta = XyDiff(&a2, &b);
  ASSERT_TRUE(delta.ok());
  ASSERT_FALSE(delta->moves().empty());
  ASSERT_TRUE(delta->deletes().empty());

  FullTextIndex index = FullTextIndex::Build(a);
  const FullTextIndex before = index;
  XY_ASSERT_OK(index.Apply(*delta, a, b));
  EXPECT_TRUE(index == before);  // Nothing to do.
  EXPECT_TRUE(index == FullTextIndex::Build(b));
}

TEST(FullTextIndexTest, ErrorOnBadDelta) {
  XmlDocument doc = MustParse("<r><t>x</t></r>");
  doc.AssignInitialXids();
  FullTextIndex index = FullTextIndex::Build(doc);
  Delta delta;
  delta.updates().push_back(UpdateOp{99, "x", "y"});
  EXPECT_EQ(index.Apply(delta, doc, doc).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xydiff
