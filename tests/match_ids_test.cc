#include "core/match_ids.h"

#include "delta/signature.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace xydiff {
namespace {

struct Fixture {
  XmlDocument old_doc;
  XmlDocument new_doc;
  LabelTable labels;
  DiffTree t1;
  DiffTree t2;

  Fixture(std::string_view old_xml, std::string_view new_xml) {
    old_doc = MustParse(old_xml);
    new_doc = MustParse(new_xml);
    t1 = DiffTree::Build(&old_doc, &labels);
    t2 = DiffTree::Build(&new_doc, &labels);
  }

  size_t Match() {
    return MatchByIdAttributes(&t1, &t2, old_doc.dtd(), new_doc.dtd());
  }
};

constexpr std::string_view kDtd =
    "<!DOCTYPE cat [<!ATTLIST product ref ID #REQUIRED>]>";

TEST(MatchIdsTest, NoIdAttributesNoWork) {
  Fixture f("<a><b/></a>", "<a><b/></a>");
  EXPECT_EQ(f.Match(), 0u);
}

TEST(MatchIdsTest, MatchesByIdValue) {
  Fixture f(std::string(kDtd) +
                "<cat><product ref=\"p1\"/><product ref=\"p2\"/></cat>",
            std::string(kDtd) +
                "<cat><product ref=\"p2\"/><product ref=\"p1\"/></cat>");
  EXPECT_EQ(f.Match(), 2u);
  // old product p1 (index 1) matches new index 2; p2 (index 2) matches 1.
  EXPECT_EQ(f.t1.match(1), 2);
  EXPECT_EQ(f.t1.match(2), 1);
  EXPECT_TRUE(f.t1.id_locked(1));
  EXPECT_TRUE(f.t2.id_locked(2));
}

TEST(MatchIdsTest, UnmatchedIdNodesAreLocked) {
  Fixture f(std::string(kDtd) + "<cat><product ref=\"gone\"/></cat>",
            std::string(kDtd) + "<cat><product ref=\"fresh\"/></cat>");
  EXPECT_EQ(f.Match(), 0u);
  EXPECT_TRUE(f.t1.id_locked(1));
  EXPECT_TRUE(f.t2.id_locked(1));
  EXPECT_FALSE(f.t1.matched(1));
  EXPECT_FALSE(f.t2.matched(1));
}

TEST(MatchIdsTest, LabelMustAgree) {
  const std::string dtd =
      "<!DOCTYPE cat [<!ATTLIST a k ID #IMPLIED><!ATTLIST b k ID #IMPLIED>]>";
  Fixture f(dtd + "<cat><a k=\"same\"/></cat>",
            dtd + "<cat><b k=\"same\"/></cat>");
  EXPECT_EQ(f.Match(), 0u);
}

TEST(MatchIdsTest, DuplicateOldIdsIgnored) {
  Fixture f(std::string(kDtd) +
                "<cat><product ref=\"dup\"/><product ref=\"dup\"/></cat>",
            std::string(kDtd) + "<cat><product ref=\"dup\"/></cat>");
  EXPECT_EQ(f.Match(), 0u);
  EXPECT_FALSE(f.t2.matched(1));
}

TEST(MatchIdsTest, DuplicateNewIdsRollBack) {
  Fixture f(std::string(kDtd) + "<cat><product ref=\"dup\"/></cat>",
            std::string(kDtd) +
                "<cat><product ref=\"dup\"/><product ref=\"dup\"/></cat>");
  EXPECT_EQ(f.Match(), 0u);
  EXPECT_FALSE(f.t1.matched(1));
  EXPECT_FALSE(f.t2.matched(1));
  EXPECT_FALSE(f.t2.matched(2));
}

TEST(MatchIdsTest, ElementsWithoutTheIdAttributeAreNotLocked) {
  Fixture f(std::string(kDtd) + "<cat><product/></cat>",
            std::string(kDtd) + "<cat><product/></cat>");
  EXPECT_EQ(f.Match(), 0u);
  EXPECT_FALSE(f.t1.id_locked(1));
}

TEST(MatchIdsTest, DtdFromEitherDocumentCounts) {
  // Only the old document declares the DTD.
  Fixture f(std::string(kDtd) + "<cat><product ref=\"x\"/></cat>",
            "<cat><product ref=\"x\"/></cat>");
  EXPECT_EQ(f.Match(), 1u);
}

TEST(MatchIdsTest, DeepIdNodesMatchAcrossStructure) {
  Fixture f(std::string(kDtd) +
                "<cat><zone><product ref=\"p\"/></zone></cat>",
            std::string(kDtd) +
                "<cat><other><wrap><product ref=\"p\"/></wrap></other></cat>");
  EXPECT_EQ(f.Match(), 1u);
  EXPECT_EQ(f.t1.match(2), 3);
}

}  // namespace
}  // namespace xydiff
