#include "simulator/web_corpus.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/serializer.h"

namespace xydiff {
namespace {

TEST(WebCorpusTest, GeneratesRequestedCount) {
  Rng rng(1);
  WebCorpusOptions options;
  options.document_count = 25;
  const auto corpus = GenerateWebCorpus(&rng, options);
  EXPECT_EQ(corpus.size(), 25u);
}

TEST(WebCorpusTest, SizesRespectBounds) {
  Rng rng(2);
  WebCorpusOptions options;
  options.document_count = 40;
  const auto corpus = GenerateWebCorpus(&rng, options);
  for (const XmlDocument& doc : corpus) {
    const size_t size = SerializeDocument(doc).size();
    // The generator overshoots its byte budget by at most one item
    // subtree; allow slack on both ends.
    EXPECT_GT(size, 20u);
    EXPECT_LT(size, 3u * options.max_bytes);
  }
}

TEST(WebCorpusTest, SizesAreSkewed) {
  // Log-normal: most documents are smallish, a few are much larger.
  Rng rng(3);
  WebCorpusOptions options;
  options.document_count = 60;
  const auto corpus = GenerateWebCorpus(&rng, options);
  std::vector<size_t> sizes;
  for (const XmlDocument& doc : corpus) {
    sizes.push_back(SerializeDocument(doc).size());
  }
  std::sort(sizes.begin(), sizes.end());
  const size_t median = sizes[sizes.size() / 2];
  const size_t max = sizes.back();
  EXPECT_GT(max, 4 * median) << "expected a long tail";
}

TEST(WebCorpusTest, WeeklyProfileIsGentle) {
  const ChangeSimOptions profile = WeeklyWebChangeProfile();
  EXPECT_LT(profile.delete_probability, 0.1);
  EXPECT_LT(profile.update_probability, 0.1);
  EXPECT_LT(profile.insert_probability, 0.1);
  EXPECT_LT(profile.move_probability, 0.05);
}

TEST(SiteSnapshotTest, PageCountAndShape) {
  Rng rng(4);
  XmlDocument site = GenerateSiteSnapshot(&rng, 50);
  EXPECT_EQ(site.root()->label(), "site");
  EXPECT_EQ(site.root()->child_count(), 50u);
  const XmlNode* page = site.root()->child(0);
  EXPECT_EQ(page->label(), "page");
  EXPECT_NE(page->FindAttribute("url"), nullptr);
  // title, lastModified, links, summary.
  EXPECT_EQ(page->child_count(), 4u);
}

TEST(SiteSnapshotTest, PaperScaleSiteIsAboutFiveMegabytes) {
  // §6.2: ~14 000 pages -> ~5 MB document. Check the scaling factor on a
  // small sample to keep the test fast.
  Rng rng(5);
  XmlDocument sample = GenerateSiteSnapshot(&rng, 1400);
  const size_t bytes = SerializeDocument(sample).size();
  const double projected = static_cast<double>(bytes) * 10.0;
  EXPECT_GT(projected, 2.5e6);
  EXPECT_LT(projected, 10e6);
}

TEST(SiteSnapshotTest, RoundTripsThroughParser) {
  Rng rng(6);
  XmlDocument site = GenerateSiteSnapshot(&rng, 20);
  XmlDocument reparsed = MustParse(SerializeDocument(site));
  EXPECT_TRUE(DocsEqual(site, reparsed));
}

}  // namespace
}  // namespace xydiff
