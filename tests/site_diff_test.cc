#include "version/site_diff.h"

#include "gtest/gtest.h"
#include "simulator/web_corpus.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace xydiff {
namespace {

constexpr std::string_view kWeek1 = R"(<site>
  <section name="docs">
    <page url="/docs/a"><title>Alpha</title><summary>about alpha</summary></page>
    <page url="/docs/b"><title>Beta</title><summary>about beta</summary></page>
  </section>
  <section name="blog">
    <page url="/blog/1"><title>Post one</title><summary>hello</summary></page>
  </section>
</site>)";

TEST(SiteDiffTest, NoChanges) {
  XmlDocument a = MustParse(kWeek1);
  XmlDocument b = MustParse(kWeek1);
  Result<SiteDiffResult> result = DiffSites(&a, &b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->changes.empty());
  EXPECT_EQ(result->pages_old, 3u);
  EXPECT_EQ(result->pages_new, 3u);
  EXPECT_EQ(result->pages_unchanged(), 3u);
}

TEST(SiteDiffTest, AddedAndRemovedPages) {
  XmlDocument a = MustParse(kWeek1);
  XmlDocument b = MustParse(R"(<site>
    <section name="docs">
      <page url="/docs/a"><title>Alpha</title><summary>about alpha</summary></page>
      <page url="/docs/c"><title>Gamma</title><summary>new page</summary></page>
    </section>
    <section name="blog">
      <page url="/blog/1"><title>Post one</title><summary>hello</summary></page>
    </section>
  </site>)");
  Result<SiteDiffResult> result = DiffSites(&a, &b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pages_added, 1u);
  EXPECT_EQ(result->pages_removed, 1u);
  EXPECT_EQ(result->pages_modified, 0u);
  ASSERT_EQ(result->changes.size(), 2u);  // Sorted by URL: /docs/b, /docs/c.
  EXPECT_EQ(result->changes[0].url, "/docs/b");
  EXPECT_EQ(result->changes[0].kind, PageChangeKind::kRemoved);
  EXPECT_EQ(result->changes[1].url, "/docs/c");
  EXPECT_EQ(result->changes[1].kind, PageChangeKind::kAdded);
}

TEST(SiteDiffTest, ModifiedPage) {
  XmlDocument a = MustParse(kWeek1);
  XmlDocument b = MustParse(R"(<site>
  <section name="docs">
    <page url="/docs/a"><title>Alpha v2</title><summary>about alpha</summary></page>
    <page url="/docs/b"><title>Beta</title><summary>about beta</summary></page>
  </section>
  <section name="blog">
    <page url="/blog/1"><title>Post one</title><summary>hello</summary></page>
  </section>
</site>)");
  Result<SiteDiffResult> result = DiffSites(&a, &b);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->changes.size(), 1u);
  EXPECT_EQ(result->changes[0].url, "/docs/a");
  EXPECT_EQ(result->changes[0].kind, PageChangeKind::kModified);
  EXPECT_EQ(result->pages_unchanged(), 2u);
}

TEST(SiteDiffTest, PageMovedBetweenSections) {
  // /blog/1 relocates into docs; URL pinning keeps its identity, the
  // summary reports a move, not remove+add.
  XmlDocument a = MustParse(kWeek1);
  XmlDocument b = MustParse(R"(<site>
  <section name="docs">
    <page url="/docs/a"><title>Alpha</title><summary>about alpha</summary></page>
    <page url="/docs/b"><title>Beta</title><summary>about beta</summary></page>
    <page url="/blog/1"><title>Post one</title><summary>hello</summary></page>
  </section>
  <section name="blog"/>
</site>)");
  Result<SiteDiffResult> result = DiffSites(&a, &b);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->changes.size(), 1u);
  EXPECT_EQ(result->changes[0].url, "/blog/1");
  EXPECT_EQ(result->changes[0].kind, PageChangeKind::kMoved);
  EXPECT_EQ(result->pages_added, 0u);
  EXPECT_EQ(result->pages_removed, 0u);
}

TEST(SiteDiffTest, UrlReuseCountsAsModified) {
  // The page at /docs/a is deleted and a brand-new page takes its URL.
  XmlDocument a = MustParse(
      R"(<site><page url="/docs/a"><title>Old</title></page></site>)");
  XmlDocument b = MustParse(
      R"(<site><other><page url="/docs/a"><body>totally new</body></page>
      </other></site>)");
  Result<SiteDiffResult> result = DiffSites(&a, &b);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->changes.size(), 1u);
  EXPECT_EQ(result->changes[0].kind, PageChangeKind::kModified);
}

TEST(SiteDiffTest, GeneratedSnapshotScale) {
  Rng rng(8);
  XmlDocument week1 = GenerateSiteSnapshot(&rng, 300);
  week1.AssignInitialXids();
  // Mutate: drop one page, retitle another.
  XmlDocument week2 = week1.Clone();
  week2.root()->RemoveChild(5);
  week2.root()->child(10)->child(0)->child(0)->set_text("retitled page");
  // Strip week2's XIDs (a fresh crawl has none).
  week2.root()->Visit([](XmlNode* n) { n->set_xid(kNoXid); });

  Result<SiteDiffResult> result = DiffSites(&week1, &week2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pages_old, 300u);
  EXPECT_EQ(result->pages_new, 299u);
  EXPECT_EQ(result->pages_removed, 1u);
  EXPECT_EQ(result->pages_modified, 1u);
  EXPECT_EQ(result->pages_added, 0u);
}

TEST(SiteDiffTest, EmptySnapshotRejected) {
  XmlDocument a;
  XmlDocument b = MustParse("<site/>");
  EXPECT_FALSE(DiffSites(&a, &b).ok());
}

// Batch driver: many snapshot pairs diffed concurrently, each parsed
// into its own arenas. Results match the sequential API slot for slot,
// regardless of thread count, and a malformed pair fails alone.
TEST(SiteDiffTest, BatchMatchesSequentialAndIsolatesFailures) {
  std::vector<SiteDiffJob> jobs;
  for (int i = 0; i < 12; ++i) {
    const std::string id = std::to_string(i);
    jobs.push_back(
        {"<site><page url=\"/p" + id + "\"><title>old " + id +
             "</title></page></site>",
         "<site><page url=\"/p" + id + "\"><title>new " + id +
             "</title></page><page url=\"/extra\"><title>x</title></page>"
             "</site>"});
  }
  jobs.push_back({"<site><broken", "<site/>"});

  for (int threads : {1, 4, 8}) {
    auto results = DiffSitesBatch(jobs, threads);
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i + 1 < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << "threads=" << threads << " slot " << i << ": "
          << results[i].status().ToString();
      EXPECT_EQ(results[i]->pages_added, 1u);
      EXPECT_EQ(results[i]->pages_modified, 1u);
      EXPECT_EQ(results[i]->pages_old, 1u);
      EXPECT_EQ(results[i]->pages_new, 2u);
    }
    EXPECT_FALSE(results.back().ok()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace xydiff
