#include "xml/node.h"

#include "gtest/gtest.h"
#include "xml/document.h"

namespace xydiff {
namespace {

TEST(XmlNodeTest, ElementFactory) {
  auto e = XmlNode::Element("product");
  EXPECT_TRUE(e->is_element());
  EXPECT_FALSE(e->is_text());
  EXPECT_EQ(e->label(), "product");
  EXPECT_EQ(e->child_count(), 0u);
  EXPECT_EQ(e->parent(), nullptr);
  EXPECT_EQ(e->xid(), kNoXid);
}

TEST(XmlNodeTest, TextFactory) {
  auto t = XmlNode::Text("hello");
  EXPECT_TRUE(t->is_text());
  EXPECT_EQ(t->text(), "hello");
  t->set_text("world");
  EXPECT_EQ(t->text(), "world");
}

TEST(XmlNodeTest, AttributeSetFindRemove) {
  auto e = XmlNode::Element("e");
  EXPECT_EQ(e->FindAttribute("a"), nullptr);
  e->SetAttribute("a", "1");
  ASSERT_NE(e->FindAttribute("a"), nullptr);
  EXPECT_EQ(*e->FindAttribute("a"), "1");
  e->SetAttribute("a", "2");  // Overwrite.
  EXPECT_EQ(*e->FindAttribute("a"), "2");
  EXPECT_EQ(e->attributes().size(), 1u);
  EXPECT_TRUE(e->RemoveAttribute("a"));
  EXPECT_FALSE(e->RemoveAttribute("a"));
  EXPECT_EQ(e->FindAttribute("a"), nullptr);
}

TEST(XmlNodeTest, ChildInsertionAndOrder) {
  auto e = XmlNode::Element("parent");
  XmlNode* c1 = e->AppendChild(XmlNode::Element("one"));
  XmlNode* c3 = e->AppendChild(XmlNode::Element("three"));
  XmlNode* c2 = e->InsertChild(1, XmlNode::Element("two"));
  ASSERT_EQ(e->child_count(), 3u);
  EXPECT_EQ(e->child(0), c1);
  EXPECT_EQ(e->child(1), c2);
  EXPECT_EQ(e->child(2), c3);
  EXPECT_EQ(c2->parent(), e.get());
  EXPECT_EQ(c1->IndexInParent(), 0u);
  EXPECT_EQ(c2->IndexInParent(), 1u);
  EXPECT_EQ(c3->IndexInParent(), 2u);
}

TEST(XmlNodeTest, InsertChildClampsIndex) {
  auto e = XmlNode::Element("parent");
  e->AppendChild(XmlNode::Element("a"));
  XmlNode* b = e->InsertChild(99, XmlNode::Element("b"));
  EXPECT_EQ(e->child(1), b);
}

TEST(XmlNodeTest, RemoveChildDetaches) {
  auto e = XmlNode::Element("parent");
  e->AppendChild(XmlNode::Element("a"));
  XmlNode* b = e->AppendChild(XmlNode::Element("b"));
  XmlNodePtr removed = e->RemoveChild(1);
  EXPECT_EQ(removed.get(), b);
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(e->child_count(), 1u);
}

TEST(XmlNodeTest, CloneIsDeepAndKeepsXids) {
  auto e = XmlNode::Element("root");
  e->set_xid(5);
  e->SetAttribute("k", "v");
  XmlNode* child = e->AppendChild(XmlNode::Text("data"));
  child->set_xid(4);

  auto copy = e->Clone();
  EXPECT_TRUE(copy->DeepEquals(*e));
  EXPECT_EQ(copy->xid(), 5u);
  EXPECT_EQ(copy->child(0)->xid(), 4u);
  // Mutating the copy must not touch the original.
  copy->child(0)->set_text("changed");
  EXPECT_EQ(e->child(0)->text(), "data");
}

TEST(XmlNodeTest, DeepEqualsIgnoresXidsAndAttributeOrder) {
  auto a = XmlNode::Element("e");
  a->SetAttribute("x", "1");
  a->SetAttribute("y", "2");
  a->set_xid(1);
  auto b = XmlNode::Element("e");
  b->SetAttribute("y", "2");
  b->SetAttribute("x", "1");
  b->set_xid(99);
  EXPECT_TRUE(a->DeepEquals(*b));
}

TEST(XmlNodeTest, DeepEqualsDetectsDifferences) {
  auto a = XmlNode::Element("e");
  a->AppendChild(XmlNode::Text("t"));
  auto b = XmlNode::Element("e");
  b->AppendChild(XmlNode::Text("u"));
  EXPECT_FALSE(a->DeepEquals(*b));

  auto c = XmlNode::Element("f");
  EXPECT_FALSE(a->DeepEquals(*c));

  auto d = XmlNode::Element("e");
  EXPECT_FALSE(a->DeepEquals(*d));  // Child count differs.

  auto e2 = XmlNode::Element("e");
  e2->AppendChild(XmlNode::Text("t"));
  e2->SetAttribute("k", "v");
  EXPECT_FALSE(a->DeepEquals(*e2));  // Attribute count differs.
}

TEST(XmlNodeTest, DeepEqualsChildOrderMatters) {
  auto a = XmlNode::Element("e");
  a->AppendChild(XmlNode::Element("x"));
  a->AppendChild(XmlNode::Element("y"));
  auto b = XmlNode::Element("e");
  b->AppendChild(XmlNode::Element("y"));
  b->AppendChild(XmlNode::Element("x"));
  EXPECT_FALSE(a->DeepEquals(*b));
}

TEST(XmlNodeTest, SubtreeSize) {
  auto e = XmlNode::Element("root");
  EXPECT_EQ(e->SubtreeSize(), 1u);
  XmlNode* c = e->AppendChild(XmlNode::Element("c"));
  c->AppendChild(XmlNode::Text("t"));
  e->AppendChild(XmlNode::Text("u"));
  EXPECT_EQ(e->SubtreeSize(), 4u);
}

TEST(XmlNodeTest, VisitIsDocumentOrder) {
  auto e = XmlNode::Element("a");
  XmlNode* b = e->AppendChild(XmlNode::Element("b"));
  b->AppendChild(XmlNode::Text("t"));
  e->AppendChild(XmlNode::Element("c"));
  std::vector<std::string> order;
  e->Visit([&](const XmlNode* n) {
    order.push_back(n->is_element() ? std::string(n->label()) : std::string("#text"));
  });
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "#text", "c"}));
}

TEST(XmlDocumentTest, AssignInitialXidsIsPostfix) {
  // <a><b>t</b><c/></a>: postfix order t=1, b=2, c=3, a=4.
  auto a = XmlNode::Element("a");
  XmlNode* b = a->AppendChild(XmlNode::Element("b"));
  XmlNode* t = b->AppendChild(XmlNode::Text("t"));
  XmlNode* c = a->AppendChild(XmlNode::Element("c"));
  XmlDocument doc(std::move(a));
  doc.AssignInitialXids();
  EXPECT_EQ(t->xid(), 1u);
  EXPECT_EQ(b->xid(), 2u);
  EXPECT_EQ(c->xid(), 3u);
  EXPECT_EQ(doc.root()->xid(), 4u);
  EXPECT_EQ(doc.next_xid(), 5u);
  EXPECT_TRUE(doc.AllXidsAssigned());
}

TEST(XmlDocumentTest, AllocateXidAdvances) {
  XmlDocument doc(XmlNode::Element("r"));
  doc.AssignInitialXids();
  const Xid first = doc.AllocateXid();
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(doc.AllocateXid(), 3u);
  doc.ReserveXidsThrough(10);
  EXPECT_EQ(doc.AllocateXid(), 11u);
  doc.ReserveXidsThrough(5);  // No regression.
  EXPECT_EQ(doc.AllocateXid(), 12u);
}

TEST(XmlDocumentTest, BuildXidIndex) {
  XmlDocument doc(XmlNode::Element("r"));
  doc.root()->AppendChild(XmlNode::Text("x"));
  doc.AssignInitialXids();
  auto index = doc.BuildXidIndex();
  ASSERT_EQ(index.size(), 2u);
  EXPECT_EQ(index[2], doc.root());
  EXPECT_EQ(index[1], doc.root()->child(0));
}

TEST(XmlDocumentTest, CloneCopiesEverything) {
  XmlDocument doc(XmlNode::Element("r"));
  doc.dtd().DeclareIdAttribute("r", "id");
  doc.AssignInitialXids();
  doc.AllocateXid();
  XmlDocument copy = doc.Clone();
  EXPECT_TRUE(copy.root()->DeepEquals(*doc.root()));
  EXPECT_EQ(copy.next_xid(), doc.next_xid());
  EXPECT_NE(copy.dtd().IdAttributeFor("r"), nullptr);
}

TEST(XmlDocumentTest, EmptyDocument) {
  XmlDocument doc;
  EXPECT_EQ(doc.root(), nullptr);
  EXPECT_EQ(doc.node_count(), 0u);
  EXPECT_TRUE(doc.AllXidsAssigned());
  doc.AssignInitialXids();  // No crash.
}

}  // namespace
}  // namespace xydiff
